"""Golden-value pin of the vectorized calibration data generator.

``CostModelCalibrator._calibration_rows`` feeds the least-squares fit of the
cost-model parameters: the figure reproductions (fig6/fig7/fig10) depend on
the exact sample stream, so the numpy ``Generator`` rewrite is pinned to the
byte — a silent change of the stream (different bit generator, different
seed mixing, re-ordered draws) fails here before it surfaces as an
inscrutable advisor regression.
"""

import hashlib
import json

from repro.core.cost_model.calibration import CostModelCalibrator

GOLDEN_SHA256 = "6b7ba5a771017898d465f3a7ef890bf865fbe10a62248294c7545bbab4e71cf1"

GOLDEN_FIRST_ROW = {
    "id": 0,
    "key_int": 96,
    "key_double": 211.0444279372443,
    "key_decimal": 31.1,
    "group_small": "g0",
    "group_large": 0,
    "filter_value": 456,
    "status": "open",
    "payload_a": 0.21944239042376978,
    "payload_b": 707710,
    "payload_c": "text_0",
    "flag": False,
}


class TestCalibrationRowsGolden:
    def test_default_seed_stream_is_pinned(self):
        rows = CostModelCalibrator()._calibration_rows(1000)
        assert rows[0] == GOLDEN_FIRST_ROW
        assert sum(row["key_int"] for row in rows) == 253601
        assert sum(row["filter_value"] for row in rows) == 506979
        digest = hashlib.sha256(
            json.dumps(rows, sort_keys=True).encode()
        ).hexdigest()
        assert digest == GOLDEN_SHA256

    def test_same_seed_same_rows(self):
        first = CostModelCalibrator()._calibration_rows(3000)
        second = CostModelCalibrator()._calibration_rows(3000)
        assert first == second

    def test_seed_and_size_change_the_stream(self):
        base = CostModelCalibrator()._calibration_rows(1000)
        other_seed = CostModelCalibrator(seed=99)._calibration_rows(1000)
        assert base != other_seed
        longer = CostModelCalibrator()._calibration_rows(3000)
        # Distinct streams per table size, not a shared-prefix stream.
        assert longer[:1000] != base

    def test_rows_carry_plain_python_scalars(self):
        # DataType.coerce expects native scalars; numpy ints would slip
        # through isinstance checks differently.
        row = CostModelCalibrator()._calibration_rows(10)[3]
        assert type(row["key_int"]) is int
        assert type(row["key_double"]) is float
        assert type(row["payload_b"]) is int
        assert type(row["flag"]) is bool
