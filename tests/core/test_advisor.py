"""Tests for the storage advisor: calibration, table-level and partition-level
recommendations, DDL generation, application and the online monitor."""

import pytest

from repro.config import AdvisorConfig
from repro.core import (
    CostModel,
    CostModelCalibrator,
    OnlineAdvisorMonitor,
    StorageAdvisor,
    WorkloadStatistics,
)
from repro.core.advisor.ddl import statement_for_partitioning, statement_for_store, statements_for_layout
from repro.core.advisor.partition_advisor import PartitionAdvisor
from repro.core.advisor.recommendation import StorageLayout
from repro.core.advisor.table_level import TableLevelAdvisor
from repro.core.cost_model.estimator import TableProfile
from repro.engine import HybridDatabase, Store, TablePartitioning, VerticalPartitionSpec
from repro.engine.statistics import compute_table_statistics
from repro.errors import AdvisorError
from repro.query import (
    Workload,
    aggregate,
    between,
    eq,
    insert,
    select,
    update,
)


def olap_heavy_workload(n_olap=20, n_oltp=5) -> Workload:
    queries = [aggregate("sales").sum("revenue").group_by("region").build()] * n_olap
    queries += [update("sales", {"status": "x"}, eq("id", i)) for i in range(n_oltp)]
    return Workload(queries, name="olap-heavy")


def oltp_heavy_workload(n_olap=1, n_oltp=200) -> Workload:
    queries = [aggregate("sales").sum("revenue").build()] * n_olap
    queries += [update("sales", {"status": "x"}, eq("id", i)) for i in range(n_oltp)]
    queries += [select("sales").where(eq("id", i)).build() for i in range(n_oltp // 2)]
    return Workload(queries, name="oltp-heavy")


class TestCalibration:
    def test_calibration_produces_samples_and_fits_groups(self):
        calibrator = CostModelCalibrator(sizes=(500, 1_500))
        report = calibrator.calibrate()
        assert report.num_samples > 30
        assert len(report.fitted_groups) >= 8  # both stores, several query types
        for weights in report.parameters.per_store_and_type.values():
            assert all(value >= 0 for value in weights.weights.values())

    def test_calibrated_model_estimates_accurately(self, database_factory):
        report = CostModelCalibrator(sizes=(500, 1_500, 4_000)).calibrate()
        cost_model = CostModel(parameters=report.parameters)
        query = aggregate("sales").sum("revenue").avg("quantity").group_by("region").build()
        for store in Store:
            database = database_factory(store)
            actual = database.execute(query).runtime_ms
            profiles = CostModel.profiles_from_catalog(database.catalog)
            estimate = cost_model.estimate_query_ms(query, {"sales": store}, profiles)
            assert estimate == pytest.approx(actual, rel=0.30)


class TestTableLevelAdvisor:
    def test_olap_heavy_workload_prefers_column_store(self, row_database):
        advisor = TableLevelAdvisor(CostModel())
        profiles = CostModel.profiles_from_catalog(row_database.catalog)
        result = advisor.recommend(olap_heavy_workload(), profiles)
        assert result.assignment["sales"] is Store.COLUMN

    def test_oltp_heavy_workload_prefers_row_store(self, row_database):
        advisor = TableLevelAdvisor(CostModel())
        profiles = CostModel.profiles_from_catalog(row_database.catalog)
        result = advisor.recommend(oltp_heavy_workload(), profiles)
        assert result.assignment["sales"] is Store.ROW

    def test_join_groups_are_optimised_together(self):
        advisor = TableLevelAdvisor(CostModel())
        workload = Workload([
            aggregate("fact").sum("fact.v").group_by("dim.label")
            .join("dim", "dim_id", "id").build()
        ])
        groups = advisor._join_groups(workload, ["fact", "dim"])
        assert len(groups) == 1 and groups[0] == {"fact", "dim"}

    def test_empty_workload_rejected(self, row_database):
        advisor = StorageAdvisor()
        with pytest.raises(AdvisorError):
            advisor.recommend(row_database, Workload([]))


class TestPartitionAdvisor:
    def build_profile(self, database):
        return TableProfile(
            schema=database.schema("sales"),
            statistics=compute_table_statistics(database.table_object("sales")),
        )

    def test_pure_oltp_table_is_not_partitioned(self, row_database):
        advisor = PartitionAdvisor()
        workload = Workload([update("sales", {"status": "x"}, eq("id", 1))] * 50)
        decision = advisor.recommend_for_table("sales", workload, self.build_profile(row_database))
        assert decision.partitioning is None

    def test_vertical_split_moves_oltp_attributes_to_row_store(self, row_database):
        advisor = PartitionAdvisor()
        queries = [aggregate("sales").sum("revenue").group_by("region").build()] * 10
        queries += [update("sales", {"status": "s"}, eq("id", i)) for i in range(30)]
        decision = advisor.recommend_for_table(
            "sales", Workload(queries), self.build_profile(row_database)
        )
        assert decision.partitioning is not None
        vertical = decision.partitioning.vertical
        assert vertical is not None
        assert "status" in vertical.row_store_columns
        assert "revenue" in vertical.column_store_columns

    def test_hot_update_region_triggers_horizontal_split(self, row_database):
        advisor = PartitionAdvisor()
        queries = [aggregate("sales").sum("revenue").build()] * 10
        # Updates concentrate on the last ~10 % of the id range.
        queries += [
            update("sales", {"quantity": 1}, between("id", 900 + i, 905 + i))
            for i in range(0, 90, 5)
        ]
        decision = advisor.recommend_for_table(
            "sales", Workload(queries), self.build_profile(row_database)
        )
        assert decision.partitioning is not None
        horizontal = decision.partitioning.horizontal
        assert horizontal is not None
        assert decision.hot_region[0] == "id"
        assert decision.hot_region[1] >= 850

    def test_insert_heavy_workload_gets_new_rows_partition(self, row_database):
        advisor = PartitionAdvisor(AdvisorConfig(insert_fraction_threshold=0.05))
        queries = [aggregate("sales").sum("revenue").build()] * 5
        queries += [
            insert("sales", [{"id": 10_000 + i, "region": "r", "product": 0,
                              "revenue": 0.0, "quantity": 1, "status": "new"}])
            for i in range(20)
        ]
        decision = advisor.recommend_for_table(
            "sales", Workload(queries), self.build_profile(row_database)
        )
        assert decision.partitioning is not None
        assert decision.partitioning.horizontal is not None
        assert decision.insert_fraction > 0.05


class TestDdl:
    def test_statements_for_stores_and_partitionings(self):
        assert statement_for_store("sales", Store.COLUMN) == (
            "ALTER TABLE sales MOVE TO COLUMN STORE;"
        )
        partitioning = TablePartitioning(
            vertical=VerticalPartitionSpec(("status",), ("revenue",))
        )
        statement = statement_for_partitioning("sales", partitioning)
        assert "PARTITION BY" in statement
        assert "status" in statement

    def test_statements_skip_tables_already_in_place(self):
        layout = StorageLayout({"a": Store.ROW, "b": Store.COLUMN})
        statements = statements_for_layout(layout, current_layout={"a": Store.ROW})
        assert statements == ["ALTER TABLE b MOVE TO COLUMN STORE;"]


class TestStorageAdvisorFacade:
    def test_recommend_and_apply_improves_olap_workload(self, row_database):
        advisor = StorageAdvisor()
        workload = olap_heavy_workload()
        before = row_database.run_workload(workload).total_runtime_ms
        recommendation = advisor.recommend(row_database, workload)
        assert recommendation.choice_for("sales") is not Store.ROW or \
            recommendation.layout.partitioned_tables()
        advisor.apply(row_database, recommendation)
        after = row_database.run_workload(workload).total_runtime_ms
        assert after < before
        assert recommendation.ddl_statements
        assert "sales" in recommendation.describe()

    def test_offline_recommendation_from_schema_and_statistics(self, sales_schema):
        from repro.engine.statistics import statistics_from_schema

        advisor = StorageAdvisor()
        statistics = statistics_from_schema(sales_schema, num_rows=50_000)
        recommendation = advisor.recommend_offline(
            {"sales": sales_schema}, {"sales": statistics}, olap_heavy_workload(),
            include_partitioning=False,
        )
        assert recommendation.choice_for("sales") is Store.COLUMN
        assert recommendation.estimated_row_only_ms > recommendation.estimated_total_ms

    def test_estimated_improvements_are_consistent(self, row_database):
        advisor = StorageAdvisor()
        recommendation = advisor.recommend(row_database, olap_heavy_workload(),
                                           include_partitioning=False)
        assert 0.0 <= recommendation.estimated_improvement_vs_row <= 1.0
        assert recommendation.estimated_total_ms <= recommendation.estimated_row_only_ms
        assert recommendation.estimated_total_ms <= recommendation.estimated_column_only_ms


class TestWorkloadStatistics:
    def test_from_workload_counts(self):
        statistics = WorkloadStatistics.from_workload(olap_heavy_workload(10, 5))
        table_stats = statistics.table("sales")
        assert table_stats.num_aggregations == 10
        assert table_stats.num_updates == 5
        assert table_stats.attribute("revenue").aggregations == 10
        assert table_stats.attribute("status").updates == 5
        assert statistics.total_queries == 15

    def test_join_counts(self):
        workload = Workload([
            aggregate("fact").sum("v").join("dim", "d", "id").build()
        ] * 3)
        statistics = WorkloadStatistics.from_workload(workload)
        assert statistics.joins_between("fact", "dim") == 3
        assert statistics.joined_tables("fact") == ("dim",)

    def test_summary_text(self):
        statistics = WorkloadStatistics.from_workload(olap_heavy_workload(2, 1))
        assert "sales" in statistics.summary()


class TestOnlineMonitor:
    def test_monitor_records_and_recommends_adaptation(self, row_database):
        advisor = StorageAdvisor(AdvisorConfig(online_reevaluation_interval=30))
        adaptations = []
        monitor = OnlineAdvisorMonitor(
            advisor, row_database,
            include_partitioning=False,
            on_adaptation=adaptations.append,
        )
        with monitor:
            for _ in range(35):
                row_database.execute(
                    aggregate("sales").sum("revenue").group_by("region").build()
                )
        assert monitor.state.total_queries == 35
        assert monitor.state.evaluations >= 1
        # The OLAP-only stream should trigger a row -> column adaptation.
        assert adaptations
        assert adaptations[0].choice_for("sales") is Store.COLUMN
        assert monitor.apply_pending()
        assert row_database.store_of("sales") is Store.COLUMN

    def test_monitor_is_quiet_when_layout_is_already_optimal(self, column_database):
        advisor = StorageAdvisor(AdvisorConfig(online_reevaluation_interval=20))
        adaptations = []
        monitor = OnlineAdvisorMonitor(
            advisor, column_database,
            include_partitioning=False,
            on_adaptation=adaptations.append,
        )
        with monitor:
            for _ in range(25):
                column_database.execute(
                    aggregate("sales").sum("revenue").group_by("region").build()
                )
        assert not adaptations

    def test_detached_monitor_stops_recording(self, row_database):
        advisor = StorageAdvisor()
        monitor = OnlineAdvisorMonitor(advisor, row_database)
        monitor.attach()
        monitor.detach()
        row_database.execute(select("sales").where(eq("id", 1)).build())
        assert monitor.state.total_queries == 0
