"""The CostModel's per-(query, stores, profiles) estimate memoization."""

import pytest

from repro.core.cost_model import CostModel
from repro.engine import Store
from repro.query import Workload, aggregate, eq, select


@pytest.fixture
def profiles(row_database):
    return CostModel.profiles_from_catalog(row_database.catalog)


class TestEstimateMemoization:
    def test_repeat_estimates_hit_the_cache(self, profiles):
        model = CostModel()
        query = aggregate("sales").sum("revenue").build()
        first = model.estimate_query_ms(query, {"sales": Store.ROW}, profiles)
        assert model.cache_hits == 0 and model.cache_misses == 1
        second = model.estimate_query_ms(query, {"sales": Store.ROW}, profiles)
        assert second == first
        assert model.cache_hits == 1
        assert model.cache_hit_rate == pytest.approx(0.5)

    def test_cached_estimates_match_fresh_model(self, profiles):
        queries = [
            aggregate("sales").sum("revenue").group_by("region").build(),
            select("sales").where(eq("id", 5)).build(),
        ]
        workload = Workload(queries, name="memo")
        cached_model = CostModel()
        for _ in range(3):
            cached_total = cached_model.estimate_workload_ms(
                workload, {"sales": Store.COLUMN}, profiles
            )
        fresh_total = CostModel().estimate_workload_ms(
            workload, {"sales": Store.COLUMN}, profiles
        )
        assert cached_total == fresh_total
        assert cached_model.cache_hits > 0

    def test_store_flip_is_a_distinct_entry(self, profiles):
        model = CostModel()
        query = aggregate("sales").sum("revenue").build()
        row_ms = model.estimate_query_ms(query, {"sales": Store.ROW}, profiles)
        column_ms = model.estimate_query_ms(query, {"sales": Store.COLUMN}, profiles)
        assert model.cache_misses == 2
        assert row_ms != column_ms

    def test_identical_refreshed_profiles_share_the_entry(self, row_database):
        # Content-based keying: a statistics refresh that did not change the
        # data characteristics keeps serving the memoized estimate.
        model = CostModel()
        query = aggregate("sales").sum("revenue").build()
        profiles = CostModel.profiles_from_catalog(row_database.catalog)
        model.estimate_query_ms(query, {"sales": Store.ROW}, profiles)
        refreshed = CostModel.profiles_from_catalog(row_database.catalog)
        model.estimate_query_ms(query, {"sales": Store.ROW}, refreshed)
        assert model.cache_misses == 1 and model.cache_hits == 1

    def test_changed_statistics_invalidate(self, row_database):
        model = CostModel()
        query = aggregate("sales").sum("revenue").build()
        profiles = CostModel.profiles_from_catalog(row_database.catalog)
        first = model.estimate_query_ms(query, {"sales": Store.ROW}, profiles)
        # Loading data changes the statistics content; the memo must
        # re-estimate rather than serve the stale entry.
        row_database.load_rows(
            "sales",
            [{"id": 10_000 + i, "region": "new", "product": 1, "revenue": 1.0,
              "quantity": 1, "status": "open"} for i in range(50)],
        )
        refreshed = CostModel.profiles_from_catalog(row_database.catalog)
        second = model.estimate_query_ms(query, {"sales": Store.ROW}, refreshed)
        assert model.cache_misses == 2
        assert second != first

    def test_equal_query_content_shares_the_entry(self, profiles):
        # Separately built but structurally identical queries share one
        # entry — this is what lets separately parsed SQL text hit.
        model = CostModel()
        first = model.estimate_query_ms(
            aggregate("sales").sum("revenue").build(), {"sales": Store.ROW}, profiles
        )
        second = model.estimate_query_ms(
            aggregate("sales").sum("revenue").build(), {"sales": Store.ROW}, profiles
        )
        assert first == second
        assert model.cache_hits == 1 and model.cache_misses == 1

    def test_shared_memo_across_models(self, profiles):
        from repro.core.cost_model.model import EstimateMemo

        memo = EstimateMemo()
        query = select("sales").where(eq("id", 5)).build()
        first = CostModel(memo=memo).estimate_query_ms(
            query, {"sales": Store.ROW}, profiles
        )
        second = CostModel(memo=memo).estimate_query_ms(
            query, {"sales": Store.ROW}, profiles
        )
        assert first == second
        assert memo.hits == 1 and memo.misses == 1

    def test_recalibrated_parameters_do_not_collide(self, profiles):
        from repro.core.cost_model.model import EstimateMemo
        from repro.core.cost_model.parameters import analytic_parameters
        from repro.config import DeviceModelConfig

        memo = EstimateMemo()
        query = aggregate("sales").sum("revenue").build()
        default_ms = CostModel(memo=memo).estimate_query_ms(
            query, {"sales": Store.ROW}, profiles
        )
        slow = analytic_parameters(DeviceModelConfig(seq_read_ns_per_byte=10.0))
        slow_ms = CostModel(parameters=slow, memo=memo).estimate_query_ms(
            query, {"sales": Store.ROW}, profiles
        )
        assert memo.misses == 2  # distinct parameter fingerprints, no hit
        assert slow_ms != default_ms

    def test_reset_cache(self, profiles):
        model = CostModel()
        query = select("sales").where(eq("id", 1)).build()
        model.estimate_query_ms(query, {"sales": Store.ROW}, profiles)
        model.estimate_query_ms(query, {"sales": Store.ROW}, profiles)
        model.reset_cache()
        assert model.cache_hits == 0 and model.cache_misses == 0
        assert model.cache_hit_rate == 0.0
