"""The CostModel's per-(query, stores, profiles) estimate memoization."""

import pytest

from repro.core.cost_model import CostModel
from repro.engine import Store
from repro.query import Workload, aggregate, eq, select


@pytest.fixture
def profiles(row_database):
    return CostModel.profiles_from_catalog(row_database.catalog)


class TestEstimateMemoization:
    def test_repeat_estimates_hit_the_cache(self, profiles):
        model = CostModel()
        query = aggregate("sales").sum("revenue").build()
        first = model.estimate_query_ms(query, {"sales": Store.ROW}, profiles)
        assert model.cache_hits == 0 and model.cache_misses == 1
        second = model.estimate_query_ms(query, {"sales": Store.ROW}, profiles)
        assert second == first
        assert model.cache_hits == 1
        assert model.cache_hit_rate == pytest.approx(0.5)

    def test_cached_estimates_match_fresh_model(self, profiles):
        queries = [
            aggregate("sales").sum("revenue").group_by("region").build(),
            select("sales").where(eq("id", 5)).build(),
        ]
        workload = Workload(queries, name="memo")
        cached_model = CostModel()
        for _ in range(3):
            cached_total = cached_model.estimate_workload_ms(
                workload, {"sales": Store.COLUMN}, profiles
            )
        fresh_total = CostModel().estimate_workload_ms(
            workload, {"sales": Store.COLUMN}, profiles
        )
        assert cached_total == fresh_total
        assert cached_model.cache_hits > 0

    def test_store_flip_is_a_distinct_entry(self, profiles):
        model = CostModel()
        query = aggregate("sales").sum("revenue").build()
        row_ms = model.estimate_query_ms(query, {"sales": Store.ROW}, profiles)
        column_ms = model.estimate_query_ms(query, {"sales": Store.COLUMN}, profiles)
        assert model.cache_misses == 2
        assert row_ms != column_ms

    def test_refreshed_profiles_invalidate(self, row_database):
        model = CostModel()
        query = aggregate("sales").sum("revenue").build()
        profiles = CostModel.profiles_from_catalog(row_database.catalog)
        model.estimate_query_ms(query, {"sales": Store.ROW}, profiles)
        # A refreshed catalog produces new profile objects; the memo must
        # re-estimate rather than serve the stale entry.
        refreshed = CostModel.profiles_from_catalog(row_database.catalog)
        model.estimate_query_ms(query, {"sales": Store.ROW}, refreshed)
        assert model.cache_misses == 2

    def test_reset_cache(self, profiles):
        model = CostModel()
        query = select("sales").where(eq("id", 1)).build()
        model.estimate_query_ms(query, {"sales": Store.ROW}, profiles)
        model.estimate_query_ms(query, {"sales": Store.ROW}, profiles)
        model.reset_cache()
        assert model.cache_hits == 0 and model.cache_misses == 0
        assert model.cache_hit_rate == 0.0
