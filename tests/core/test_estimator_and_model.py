"""Tests for cost-term extraction, parameters and the cost model."""

import pytest

from repro.core.cost_model import (
    COST_TERMS,
    CostModel,
    CostModelParameters,
    CostTermWeights,
    TableProfile,
    analytic_parameters,
    query_contributions,
)
from repro.engine import HybridDatabase, Store
from repro.engine.statistics import compute_table_statistics
from repro.errors import EstimationError
from repro.query import (
    Workload,
    aggregate,
    between,
    delete,
    eq,
    insert,
    select,
    update,
)


@pytest.fixture
def profiles(row_database):
    return CostModel.profiles_from_catalog(row_database.catalog)


@pytest.fixture
def cost_model():
    return CostModel()


class TestCostTermExtraction:
    def test_row_store_aggregation_scans_full_width(self, profiles):
        query = aggregate("sales").sum("revenue").build()
        (contribution,) = query_contributions(query, {"sales": Store.ROW}, profiles)
        profile = profiles["sales"]
        assert contribution.terms["row_scan_bytes"] == pytest.approx(
            profile.num_rows * profile.row_width_bytes
        )
        assert "column_scan_bytes" not in contribution.terms

    def test_column_store_aggregation_scans_only_needed_columns(self, profiles):
        query = aggregate("sales").sum("revenue").group_by("region").build()
        (contribution,) = query_contributions(query, {"sales": Store.COLUMN}, profiles)
        profile = profiles["sales"]
        expected = profile.column_code_bytes("revenue") + profile.column_code_bytes("region")
        assert contribution.terms["column_scan_bytes"] == pytest.approx(expected)
        assert contribution.terms["group_rows"] == profile.num_rows

    def test_point_select_uses_index_on_row_store(self, profiles):
        query = select("sales").where(eq("id", 3)).build()
        (contribution,) = query_contributions(query, {"sales": Store.ROW}, profiles)
        assert "row_scan_bytes" not in contribution.terms
        assert contribution.terms["index_probes"] == 1.0

    def test_point_select_scans_codes_on_column_store(self, profiles):
        query = select("sales").where(eq("id", 3)).build()
        (contribution,) = query_contributions(query, {"sales": Store.COLUMN}, profiles)
        assert contribution.terms["column_scan_bytes"] > 0
        assert contribution.terms["vector_compares"] == profiles["sales"].num_rows

    def test_non_key_select_scans_row_store(self, profiles):
        query = select("sales").where(eq("region", "region_1")).build()
        (contribution,) = query_contributions(query, {"sales": Store.ROW}, profiles)
        assert contribution.terms["row_scan_bytes"] > 0

    def test_insert_terms_differ_by_store(self, profiles):
        query = insert("sales", [{"id": 10_000, "region": "r", "product": 1,
                                  "revenue": 1.0, "quantity": 1, "status": "s"}])
        (row_terms,) = query_contributions(query, {"sales": Store.ROW}, profiles)
        (column_terms,) = query_contributions(query, {"sales": Store.COLUMN}, profiles)
        assert row_terms.terms["insert_bytes"] > 0
        assert "insert_cells" not in row_terms.terms
        assert column_terms.terms["insert_cells"] == profiles["sales"].schema.num_columns

    def test_update_charges_full_row_on_column_store(self, profiles):
        query = update("sales", {"status": "x"}, eq("id", 5))
        (row_terms,) = query_contributions(query, {"sales": Store.ROW}, profiles)
        (column_terms,) = query_contributions(query, {"sales": Store.COLUMN}, profiles)
        assert row_terms.terms["update_cells"] == pytest.approx(1.0)
        assert column_terms.terms["update_cells"] == pytest.approx(
            profiles["sales"].schema.num_columns
        )

    def test_delete_terms(self, profiles):
        query = delete("sales", between("id", 0, 99))
        (contribution,) = query_contributions(query, {"sales": Store.ROW}, profiles)
        assert contribution.terms["update_cells"] > 0

    def test_join_query_produces_two_contributions(self, profiles, sales_schema):
        query = (
            aggregate("sales")
            .sum("revenue")
            .group_by("dim.label")
            .join("dim", "product", "id")
            .build()
        )
        # Provide a fake dimension profile.
        from repro.engine.schema import TableSchema
        from repro.engine.statistics import statistics_from_schema
        from repro.engine.types import DataType

        dim_schema = TableSchema.build(
            "dim", [("id", DataType.INTEGER), ("label", DataType.VARCHAR)], primary_key=["id"]
        )
        extended = dict(profiles)
        extended["dim"] = TableProfile(
            schema=dim_schema, statistics=statistics_from_schema(dim_schema, 100)
        )
        contributions = query_contributions(
            query, {"sales": Store.COLUMN, "dim": Store.ROW}, extended
        )
        assert len(contributions) == 2
        base = contributions[0]
        assert base.terms["join_build_rows"] == 100
        assert base.terms["join_probe_rows"] == profiles["sales"].num_rows
        assert base.terms["conversion_cells"] > 0  # different stores

    def test_missing_assignment_raises(self, profiles):
        query = aggregate("sales").sum("revenue").build()
        with pytest.raises(EstimationError):
            query_contributions(query, {}, profiles)


class TestParameters:
    def test_analytic_parameters_cover_all_groups(self):
        from repro.query.ast import QueryType

        parameters = analytic_parameters()
        for store in Store:
            for query_type in QueryType:
                weights = parameters.weights_for(store, query_type)
                assert weights.weights
                assert set(weights.weights) <= set(COST_TERMS)

    def test_weights_dot_product(self):
        weights = CostTermWeights({"rows": 2.0, "queries": 10.0})
        assert weights.cost_ns({"rows": 5, "queries": 1}) == pytest.approx(20.0)
        assert weights.cost_ms({"rows": 5, "queries": 1}) == pytest.approx(2e-5)

    def test_serialisation_round_trip(self):
        parameters = analytic_parameters()
        restored = CostModelParameters.from_dict(parameters.to_dict())
        for key, weights in parameters.per_store_and_type.items():
            assert restored.per_store_and_type[key].weights == weights.weights


class TestCostModel:
    def test_estimates_are_positive_and_store_specific(self, cost_model, profiles):
        query = aggregate("sales").sum("revenue").build()
        estimates = cost_model.estimate_query_per_store(query, profiles)
        assert estimates[Store.ROW] > 0
        assert estimates[Store.COLUMN] > 0
        assert estimates[Store.COLUMN] < estimates[Store.ROW]

    def test_oltp_queries_favour_row_store(self, cost_model, profiles):
        query = update("sales", {"status": "x"}, eq("id", 1))
        estimates = cost_model.estimate_query_per_store(query, profiles)
        assert estimates[Store.ROW] < estimates[Store.COLUMN]

    def test_workload_estimate_sums_queries(self, cost_model, profiles):
        workload = Workload([
            aggregate("sales").sum("revenue").build(),
            select("sales").where(eq("id", 1)).build(),
        ])
        estimate = cost_model.estimate_workload(workload, {"sales": Store.ROW}, profiles)
        assert estimate.total_ms == pytest.approx(sum(estimate.per_query_ms))
        assert len(estimate.per_query_ms) == 2

    def test_workload_estimate_requires_complete_assignment(self, cost_model, profiles):
        workload = Workload([aggregate("sales").sum("revenue").build()])
        with pytest.raises(EstimationError):
            cost_model.estimate_workload(workload, {}, profiles)

    def test_analytic_estimates_track_engine_runtimes(self, database_factory):
        """Without calibration the analytic model should be within ~40 % of the engine."""
        query = aggregate("sales").sum("revenue").avg("quantity").group_by("region").build()
        cost_model = CostModel()
        for store in Store:
            database = database_factory(store)
            actual = database.execute(query).runtime_ms
            profiles = CostModel.profiles_from_catalog(database.catalog)
            estimate = cost_model.estimate_query_ms(query, {"sales": store}, profiles)
            assert estimate == pytest.approx(actual, rel=0.4)
