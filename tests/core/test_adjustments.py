"""Tests for the cost-model adjustment function families."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cost_model.adjustments import (
    AdjustmentFunction,
    ConstantAdjustment,
    LinearAdjustment,
    PiecewiseLinearAdjustment,
)
from repro.errors import CalibrationError


class TestConstantAdjustment:
    def test_ignores_input(self):
        adjustment = ConstantAdjustment(1.4)
        assert adjustment() == 1.4
        assert adjustment(100.0) == 1.4

    def test_round_trip_serialisation(self):
        adjustment = ConstantAdjustment(2.5)
        assert AdjustmentFunction.from_dict(adjustment.to_dict()) == adjustment


class TestLinearAdjustment:
    def test_evaluation(self):
        adjustment = LinearAdjustment(slope=2.0, intercept=1.0)
        assert adjustment(0.0) == 1.0
        assert adjustment(10.0) == 21.0

    def test_fit_recovers_exact_line(self):
        xs = [0, 1, 2, 3, 4]
        ys = [3.0 + 2.0 * x for x in xs]
        fitted = LinearAdjustment.fit(xs, ys)
        assert fitted.slope == pytest.approx(2.0)
        assert fitted.intercept == pytest.approx(3.0)

    def test_fit_requires_two_samples(self):
        with pytest.raises(CalibrationError):
            LinearAdjustment.fit([1.0], [2.0])

    def test_round_trip_serialisation(self):
        adjustment = LinearAdjustment(0.5, -1.0)
        assert AdjustmentFunction.from_dict(adjustment.to_dict()) == adjustment

    @given(
        slope=st.floats(min_value=-10, max_value=10, allow_nan=False),
        intercept=st.floats(min_value=-10, max_value=10, allow_nan=False),
    )
    @settings(max_examples=30, deadline=None)
    def test_fit_is_exact_on_noiseless_data(self, slope, intercept):
        xs = [0.0, 1.0, 2.0, 5.0, 10.0]
        ys = [slope * x + intercept for x in xs]
        fitted = LinearAdjustment.fit(xs, ys)
        assert fitted(7.0) == pytest.approx(slope * 7.0 + intercept, abs=1e-6)


class TestPiecewiseLinearAdjustment:
    def test_interpolation_and_extrapolation(self):
        adjustment = PiecewiseLinearAdjustment(xs=(0.0, 1.0, 2.0), ys=(0.0, 10.0, 30.0))
        assert adjustment(0.5) == pytest.approx(5.0)
        assert adjustment(1.5) == pytest.approx(20.0)
        assert adjustment(-1.0) == pytest.approx(-10.0)   # extrapolate first segment
        assert adjustment(3.0) == pytest.approx(50.0)     # extrapolate last segment

    def test_invalid_breakpoints_rejected(self):
        with pytest.raises(CalibrationError):
            PiecewiseLinearAdjustment(xs=(0.0,), ys=(1.0,))
        with pytest.raises(CalibrationError):
            PiecewiseLinearAdjustment(xs=(0.0, 0.0), ys=(1.0, 2.0))

    def test_fit_approximates_samples(self):
        xs = list(range(11))
        ys = [x * x for x in xs]
        fitted = PiecewiseLinearAdjustment.fit(xs, ys, num_segments=5)
        assert fitted(0.0) == pytest.approx(0.0, abs=1.0)
        assert fitted(10.0) == pytest.approx(100.0, abs=1.0)
        # Between breakpoints the piecewise approximation stays close.
        assert fitted(5.0) == pytest.approx(25.0, abs=5.0)

    def test_round_trip_serialisation(self):
        adjustment = PiecewiseLinearAdjustment(xs=(0.0, 1.0), ys=(1.0, 2.0))
        assert AdjustmentFunction.from_dict(adjustment.to_dict()) == adjustment

    def test_unknown_kind_rejected(self):
        with pytest.raises(CalibrationError):
            AdjustmentFunction.from_dict({"kind": "mystery"})
