"""Tests for the experiment harness (result containers and registry)."""

import pytest

from repro.bench import (
    ExperimentResult,
    ExperimentSeries,
    available_experiments,
    get_experiment,
    run_experiment,
)


class TestSeriesAndResults:
    def test_series_columns_and_text_rendering(self):
        series = ExperimentSeries(
            name="runtime", x_label="fraction", columns=["row_s", "column_s"],
            y_label="seconds",
        )
        series.add_point(0.0, {"row_s": 1.0, "column_s": 2.0})
        series.add_point(0.5, {"row_s": 3.0, "column_s": 1.5}, annotations={"choice": "column"})
        assert series.xs() == [0.0, 0.5]
        assert series.column("row_s") == [1.0, 3.0]
        text = series.to_text()
        assert "fraction" in text and "row_s" in text
        csv = series.to_csv()
        assert csv.splitlines()[0] == "fraction,row_s,column_s"

    def test_result_rendering_and_lookup(self):
        result = ExperimentResult("figX", "A test experiment", metadata={"rows": 10})
        series = result.add_series(
            ExperimentSeries(name="s", x_label="x", columns=["y"])
        )
        series.add_point(1, {"y": 2.0})
        result.add_note("a note")
        rendered = result.render()
        assert "figX" in rendered and "a note" in rendered and "rows: 10" in rendered
        assert result.series_named("s") is series
        with pytest.raises(KeyError):
            result.series_named("missing")


class TestRegistry:
    def test_all_paper_experiments_are_registered(self):
        registered = available_experiments()
        for experiment_id in ("fig6a", "fig6b", "fig7a", "fig7b", "fig8", "fig9a",
                              "fig9b", "fig10"):
            assert experiment_id in registered

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")

    def test_fig6a_runs_at_tiny_scale(self):
        result = run_experiment("fig6a", sizes=(500, 1_000), calibrate=False)
        series = result.series[0]
        assert len(series.points) == 2
        # Linear growth: doubling the rows roughly doubles the runtime.
        row_runtimes = series.column("row_actual_ms")
        assert row_runtimes[1] == pytest.approx(2 * row_runtimes[0], rel=0.3)
        # Estimates exist and are positive for both stores.
        assert all(value > 0 for value in series.column("column_estimate_ms"))
