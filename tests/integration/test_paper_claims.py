"""Integration tests asserting the paper's qualitative claims at small scale.

These tests run miniature versions of the evaluation experiments and assert
the *shapes* the paper reports: estimation accuracy, the OLAP-fraction
crossover with the advisor tracking the lower envelope, the horizontal
partitioning minimum at the hot fraction, the vertical partitioning benefit,
and the ordering of the four TPC-H layouts.
"""

import pytest

from repro.bench import run_experiment
from repro.engine import Store


@pytest.fixture(scope="module")
def fig7a_result():
    return run_experiment(
        "fig7a", fractions=(0.0, 0.05), num_rows=6_000, num_queries=120, calibrate=False
    )


class TestEstimationAccuracy:
    def test_fig6_estimates_close_to_measurements(self):
        result = run_experiment("fig6a", sizes=(2_000, 6_000), calibrate=True)
        series = result.series[0]
        for column in ("row_error", "column_error"):
            for error in series.column(column):
                assert error < 0.25

    def test_fig6_runtimes_grow_linearly(self):
        result = run_experiment("fig6a", sizes=(2_000, 8_000), calibrate=False)
        series = result.series[0]
        for column in ("row_actual_ms", "column_actual_ms"):
            small, large = series.column(column)
            assert large == pytest.approx(4 * small, rel=0.35)


class TestTableLevelRecommendation:
    def test_row_store_wins_pure_oltp_and_column_store_wins_olap(self, fig7a_result):
        series = fig7a_result.series[0]
        pure_oltp = series.points[0]
        assert pure_oltp.values["row_only_s"] < pure_oltp.values["column_only_s"]
        olap_heavy = series.points[-1]
        assert olap_heavy.values["column_only_s"] < olap_heavy.values["row_only_s"]

    def test_advisor_tracks_the_lower_envelope(self, fig7a_result):
        series = fig7a_result.series[0]
        for point in series.points:
            best = min(point.values["row_only_s"], point.values["column_only_s"])
            assert point.values["advisor_s"] <= best * 1.10


class TestPartitioningClaims:
    def test_fig8_minimum_at_recommended_hot_fraction(self):
        result = run_experiment(
            "fig8",
            row_store_fractions=(0.0, 0.05, 0.10, 0.20),
            num_rows=6_000,
            num_queries=150,
            hot_fraction=0.10,
        )
        series = result.series[0]
        runtimes = dict(zip(series.xs(), series.column("runtime_s")))
        assert runtimes[0.10] < runtimes[0.0]
        assert runtimes[0.10] < runtimes[0.05]
        assert runtimes[0.10] <= runtimes[0.20]
        # The advisor's own recommendation identifies roughly the hot 10 %.
        assert result.metadata.get("advisor_row_store_fraction", 0) == pytest.approx(
            0.10, abs=0.03
        )

    def test_fig9_vertical_partitioning_beats_pure_stores_for_mixed_workloads(self):
        result = run_experiment(
            "fig9a", fractions=(0.0, 0.025), num_rows=6_000, num_queries=150
        )
        series = result.series[0]
        pure_oltp = series.points[0]
        # At 0 % OLAP the plain row store is (as in the paper) the best layout.
        assert pure_oltp.values["row_only_s"] <= pure_oltp.values["vertical_partitioned_s"]
        mixed = series.points[-1]
        assert mixed.values["vertical_partitioned_s"] < mixed.values["row_only_s"]
        assert mixed.values["vertical_partitioned_s"] < mixed.values["column_only_s"]


class TestTpchCombination:
    def test_fig10_layout_ordering(self):
        result = run_experiment("fig10", scale_factor=0.002, num_queries=600,
                                calibrate=True)
        series = result.series[0]
        runtimes = dict(zip(series.xs(), series.column("runtime_s")))
        # The advisor's layouts beat both uniform layouts; partitioning wins overall.
        assert runtimes["table"] <= min(runtimes["rs_only"], runtimes["cs_only"]) * 1.02
        assert runtimes["partitioned"] < runtimes["table"]
        assert runtimes["partitioned"] < runtimes["cs_only"]
        # lineitem ends up in the column store at table level, as in the paper.
        assert "lineitem" in result.metadata.get("table_level_column_tables", "")
        # lineitem and orders are the partitioned tables, as in the paper.
        assert "lineitem" in result.metadata.get("partitioned_tables", "")
