"""Tests for the synthetic, star-schema and mixed workload generators."""

import pytest

from repro.engine import HybridDatabase, Store
from repro.errors import WorkloadError
from repro.query import QueryType
from repro.workloads import (
    HotRegion,
    MixedWorkloadConfig,
    OlapQueryGenerator,
    OltpMix,
    OltpQueryGenerator,
    SyntheticTableConfig,
    build_mixed_workload,
    build_star_schema,
    build_star_workload,
    build_table,
    olap_fraction_sweep,
    olap_setting_table,
    oltp_setting_table,
    paper_accuracy_table,
)


class TestSyntheticTables:
    def test_paper_accuracy_table_has_30_attributes(self):
        table = paper_accuracy_table(100)
        assert table.schema.num_columns == 30
        assert len(table.rows) == 100
        assert table.roles.keyfigures == tuple(f"kf_{i}" for i in range(10))

    def test_fig9_table_shapes(self):
        olap_table = olap_setting_table(50)
        assert len(olap_table.roles.keyfigures) == 10
        assert len(olap_table.roles.group_attrs) == 8
        assert len(olap_table.roles.oltp_attrs) == 2
        oltp_table = oltp_setting_table(50)
        assert len(oltp_table.roles.oltp_attrs) == 18
        assert len(oltp_table.roles.keyfigures) == 1

    def test_generation_is_deterministic(self):
        config = SyntheticTableConfig(num_rows=200, seed=7)
        assert build_table(config).rows == build_table(config).rows

    def test_rows_validate_against_schema(self):
        table = build_table(SyntheticTableConfig(num_rows=50))
        for row in table.rows[:10]:
            table.schema.validate_row(row)

    def test_load_into_database(self):
        table = build_table(SyntheticTableConfig(num_rows=100))
        database = HybridDatabase()
        table.load_into(database, Store.COLUMN)
        assert database.statistics("facts").num_rows == 100

    def test_invalid_config_rejected(self):
        with pytest.raises(WorkloadError):
            SyntheticTableConfig(num_rows=-1)
        with pytest.raises(WorkloadError):
            SyntheticTableConfig(num_keyfigures=0)


class TestQueryGenerators:
    def test_olap_generator_produces_valid_aggregations(self):
        table = build_table(SyntheticTableConfig(num_rows=100))
        generator = OlapQueryGenerator(table.roles, seed=1)
        queries = generator.generate(20)
        assert all(query.query_type is QueryType.AGGREGATION for query in queries)
        assert any(query.has_group_by for query in queries)
        for query in queries:
            for spec in query.aggregates:
                assert spec.column in table.roles.keyfigures

    @pytest.mark.matview
    def test_recurring_report_workload_feeds_the_view_advisor(self):
        from repro.core import StorageAdvisor
        from repro.query.fingerprint import query_fingerprint

        table = build_table(SyntheticTableConfig(num_rows=100))
        generator = OlapQueryGenerator(table.roles, seed=5)
        workload = generator.recurring_report_workload(num_shapes=3, repetitions=4)
        assert workload.num_queries == 12
        counts = {}
        for query in workload:
            assert query.query_type is QueryType.AGGREGATION
            assert not query.joins
            fingerprint = query_fingerprint(query)
            counts[fingerprint] = counts.get(fingerprint, 0) + 1
        assert sum(counts.values()) == 12
        assert all(count % 4 == 0 for count in counts.values())

        # The shapes are view candidates end-to-end: the advisor proposes
        # materializing each recurring fingerprint.
        database = HybridDatabase()
        table.load_into(database, Store.COLUMN)
        recommendations = StorageAdvisor().recommend_views(database, workload)
        assert len(recommendations) == len(counts)
        assert all(rec.estimated_benefit_ms > 0 for rec in recommendations)

    def test_oltp_generator_respects_mix(self):
        table = build_table(SyntheticTableConfig(num_rows=100))
        generator = OltpQueryGenerator(
            table.roles, mix=OltpMix(0.0, 0.0, 1.0), seed=2
        )
        queries = generator.generate(10)
        assert all(query.query_type is QueryType.INSERT for query in queries)
        # Inserted ids continue after the existing rows (no PK collisions).
        ids = [query.rows[0]["id"] for query in queries]
        assert min(ids) >= 100
        assert len(set(ids)) == len(ids)

    def test_invalid_mix_rejected(self):
        with pytest.raises(WorkloadError):
            OltpMix(0.5, 0.2, 0.1)

    def test_hot_region_updates_stay_in_region(self):
        table = build_table(SyntheticTableConfig(num_rows=1_000))
        generator = OltpQueryGenerator(
            table.roles,
            mix=OltpMix(0.0, 1.0, 0.0),
            hot_region=HotRegion(column="id", low=900, high=999, span=10),
            seed=3,
        )
        for query in generator.generate(20):
            predicate = query.predicate
            assert predicate.low >= 900 and predicate.high <= 999


class TestMixedWorkloads:
    def test_olap_fraction_is_respected(self):
        table = build_table(SyntheticTableConfig(num_rows=100))
        workload = build_mixed_workload(
            table.roles, MixedWorkloadConfig(num_queries=200, olap_fraction=0.1)
        )
        assert workload.num_queries == 200
        assert workload.olap_fraction == pytest.approx(0.1, abs=0.01)

    def test_zero_and_full_olap_fractions(self):
        table = build_table(SyntheticTableConfig(num_rows=100))
        pure_oltp = build_mixed_workload(
            table.roles, MixedWorkloadConfig(num_queries=50, olap_fraction=0.0)
        )
        assert pure_oltp.olap_fraction == 0.0
        pure_olap = build_mixed_workload(
            table.roles, MixedWorkloadConfig(num_queries=50, olap_fraction=1.0)
        )
        assert pure_olap.olap_fraction == 1.0

    def test_sweep_builds_one_workload_per_fraction(self):
        table = build_table(SyntheticTableConfig(num_rows=100))
        workloads = olap_fraction_sweep(table.roles, (0.0, 0.05, 0.1), num_queries=40)
        assert len(workloads) == 3
        assert [w.olap_fraction for w in workloads] == pytest.approx([0.0, 0.05, 0.1])

    def test_invalid_fraction_rejected(self):
        with pytest.raises(WorkloadError):
            MixedWorkloadConfig(olap_fraction=1.5)


class TestStarSchema:
    def test_star_schema_shapes(self):
        star = build_star_schema()
        assert star.fact_schema.num_columns == 10
        assert star.dimension_schema.num_columns == 6
        assert len(star.dimension_rows) == 1_000

    def test_star_workload_joins_the_dimension(self):
        star = build_star_schema()
        workload = build_star_workload(star, num_queries=100, olap_fraction=0.1)
        olap_queries = workload.olap_queries
        assert olap_queries
        assert all(query.joins and query.joins[0].table == "dim" for query in olap_queries)

    def test_star_workload_executes_on_database(self):
        from repro.workloads.star_schema import StarSchemaConfig

        star = build_star_schema(StarSchemaConfig(fact_rows=500, dimension_rows=50))
        database = HybridDatabase()
        star.load_into(database)
        workload = build_star_workload(star, num_queries=30, olap_fraction=0.1)
        run = database.run_workload(workload)
        assert run.num_queries == 30
        assert run.total_runtime_ms > 0
