"""Tests for the TPC-H schema, data generator and workload."""

import pytest

from repro.engine import HybridDatabase, Store
from repro.query import QueryType
from repro.workloads.tpch import (
    OLTP_TABLES,
    TPCH_TABLE_ORDER,
    TpchGenerator,
    TpchOlapQueryGenerator,
    TpchOltpQueryGenerator,
    build_tpch_workload,
    scaled_cardinality,
    tpch_schemas,
)


@pytest.fixture(scope="module")
def tiny_tpch():
    return TpchGenerator(scale_factor=0.001, seed=11).generate_all()


class TestSchemas:
    def test_all_eight_tables_defined(self):
        schemas = tpch_schemas()
        assert set(schemas) == set(TPCH_TABLE_ORDER)
        assert schemas["lineitem"].num_columns == 16
        assert schemas["orders"].primary_key == ("o_orderkey",)

    def test_scaled_cardinalities(self):
        assert scaled_cardinality("region", 0.01) == 5       # fixed-size table
        assert scaled_cardinality("nation", 0.01) == 25
        assert scaled_cardinality("lineitem", 0.01) == 60_000
        assert scaled_cardinality("lineitem", 0.001) == 6_000


class TestDataGenerator:
    def test_row_counts_match_scale(self, tiny_tpch):
        assert tiny_tpch.num_rows("lineitem") == 6_000
        assert tiny_tpch.num_rows("orders") == 1_500
        assert tiny_tpch.num_rows("region") == 5

    def test_rows_validate_against_schema(self, tiny_tpch):
        schemas = tpch_schemas()
        for name in TPCH_TABLE_ORDER:
            schema = schemas[name]
            for row in tiny_tpch.tables[name][:5]:
                schema.validate_row(row)

    def test_foreign_keys_reference_existing_rows(self, tiny_tpch):
        num_orders = tiny_tpch.num_rows("orders")
        num_customers = tiny_tpch.num_rows("customer")
        for row in tiny_tpch.tables["lineitem"][:200]:
            assert 0 <= row["l_orderkey"] < num_orders
        for row in tiny_tpch.tables["orders"][:200]:
            assert 0 <= row["o_custkey"] < num_customers

    def test_generation_is_deterministic(self):
        first = TpchGenerator(scale_factor=0.001, seed=11).generate_all()
        second = TpchGenerator(scale_factor=0.001, seed=11).generate_all()
        assert first.tables["orders"][:50] == second.tables["orders"][:50]

    def test_load_into_database(self, tiny_tpch):
        database = HybridDatabase()
        tiny_tpch.load_into(database, default_store=Store.ROW)
        assert set(database.table_names()) == set(TPCH_TABLE_ORDER)
        assert database.statistics("lineitem").num_rows == 6_000


class TestTpchWorkload:
    def test_olap_queries_target_lineitem_and_orders(self, tiny_tpch):
        generator = TpchOlapQueryGenerator(tiny_tpch, seed=3)
        queries = generator.generate(40)
        tables = [query.table for query in queries]
        assert tables.count("lineitem") + tables.count("orders") >= 30
        assert any(query.joins for query in queries)

    def test_oltp_queries_avoid_nation_and_region(self, tiny_tpch):
        generator = TpchOltpQueryGenerator(tiny_tpch, seed=4)
        queries = generator.generate(100)
        for query in queries:
            assert query.table in OLTP_TABLES
            assert query.table not in ("nation", "region")

    def test_workload_mix_matches_requested_fraction(self, tiny_tpch):
        workload = build_tpch_workload(tiny_tpch, num_queries=300, olap_fraction=0.02)
        assert workload.num_queries == 300
        assert workload.olap_fraction == pytest.approx(0.02, abs=0.005)

    def test_workload_executes_end_to_end(self, tiny_tpch):
        database = HybridDatabase()
        tiny_tpch.load_into(database, default_store=Store.ROW)
        workload = build_tpch_workload(tiny_tpch, num_queries=60, olap_fraction=0.05)
        run = database.run_workload(workload)
        assert run.num_queries == 60
        assert run.runtime_by_type_ms.get(QueryType.AGGREGATION, 0) > 0
