"""Tests for the SQL-ish parser."""

import pytest

from repro.errors import ParseError
from repro.query.ast import AggregateFunction, QueryType
from repro.query.parser import parse
from repro.query.predicates import And, Between, CompareOp, Comparison


class TestSelectParsing:
    def test_aggregation_with_group_by_and_where(self):
        query = parse(
            "SELECT sum(revenue), avg(quantity) AS qty FROM sales "
            "WHERE product BETWEEN 1 AND 10 GROUP BY region;"
        )
        assert query.query_type is QueryType.AGGREGATION
        assert query.table == "sales"
        assert [spec.function for spec in query.aggregates] == [
            AggregateFunction.SUM, AggregateFunction.AVG,
        ]
        assert query.aggregates[1].alias == "qty"
        assert query.group_by == ("region",)
        assert isinstance(query.predicate, Between)

    def test_count_star(self):
        query = parse("SELECT count(*) FROM sales")
        assert query.aggregates[0].column == "*"

    def test_join_query(self):
        query = parse(
            "SELECT sum(revenue) FROM fact JOIN dim ON fact.dim_id = dim.id "
            "GROUP BY dim.label"
        )
        assert query.joins[0].table == "dim"
        assert query.joins[0].left_column == "dim_id"
        assert query.joins[0].right_column == "id"
        assert query.group_by == ("dim.label",)

    def test_point_select(self):
        query = parse("SELECT id, status FROM sales WHERE id = 42 LIMIT 5")
        assert query.query_type is QueryType.SELECT
        assert query.columns == ("id", "status")
        assert query.limit == 5
        assert query.predicate == Comparison("id", CompareOp.EQ, 42)

    def test_select_star(self):
        query = parse("SELECT * FROM sales WHERE region = 'west'")
        assert query.selects_all_columns
        assert query.predicate.value == "west"

    def test_and_connected_predicates(self):
        query = parse("SELECT * FROM sales WHERE region = 'west' AND product >= 5")
        assert isinstance(query.predicate, And)
        assert len(query.predicate.predicates) == 2

    def test_group_by_on_plain_select_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT id FROM sales GROUP BY region")


class TestDmlParsing:
    def test_insert(self):
        query = parse(
            "INSERT INTO sales (id, region, revenue, open_flag) "
            "VALUES (7, 'west', 12.5, true)"
        )
        assert query.query_type is QueryType.INSERT
        assert query.rows[0] == {"id": 7, "region": "west", "revenue": 12.5,
                                 "open_flag": True}

    def test_insert_length_mismatch_rejected(self):
        with pytest.raises(ParseError):
            parse("INSERT INTO sales (id, region) VALUES (1)")

    def test_update(self):
        query = parse("UPDATE sales SET status = 'shipped', quantity = 3 WHERE id = 9")
        assert query.query_type is QueryType.UPDATE
        assert query.assignments == {"status": "shipped", "quantity": 3}
        assert query.predicate == Comparison("id", CompareOp.EQ, 9)

    def test_delete(self):
        query = parse("DELETE FROM sales WHERE id >= 100")
        assert query.query_type is QueryType.DELETE
        assert query.predicate == Comparison("id", CompareOp.GE, 100)

    def test_unsupported_statement_rejected(self):
        with pytest.raises(ParseError):
            parse("CREATE TABLE t (a int)")
        with pytest.raises(ParseError):
            parse("")


class TestPlaceholders:
    def test_positional_placeholders_number_left_to_right(self):
        from repro.query.ast import Parameter

        query = parse(
            "UPDATE sales SET status = ?, quantity = ? WHERE id = ?"
        )
        assert query.assignments["status"] == Parameter(index=0)
        assert query.assignments["quantity"] == Parameter(index=1)
        assert query.predicate.value == Parameter(index=2)

    def test_named_placeholders(self):
        from repro.query.ast import Parameter

        query = parse(
            "SELECT count(*) FROM sales WHERE quantity BETWEEN :low AND :high"
        )
        assert query.predicate.low == Parameter(name="low")
        assert query.predicate.high == Parameter(name="high")

    def test_insert_placeholders(self):
        from repro.query.ast import Parameter

        query = parse("INSERT INTO sales (id, region) VALUES (?, ?)")
        assert query.rows[0] == {
            "id": Parameter(index=0), "region": Parameter(index=1)
        }

    def test_quoted_question_mark_is_a_literal(self):
        query = parse("SELECT * FROM sales WHERE status = '?'")
        assert query.predicate.value == "?"


class TestParseErrorPositions:
    def test_dangling_and_rejected_with_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse("SELECT * FROM sales WHERE id = 1 AND")
        assert "dangling AND" in str(excinfo.value)
        assert excinfo.value.line == 1
        assert excinfo.value.column == 34

    def test_dangling_and_after_between(self):
        with pytest.raises(ParseError, match="dangling AND"):
            parse("SELECT * FROM sales WHERE id BETWEEN 1 AND")

    def test_leading_and_rejected(self):
        with pytest.raises(ParseError, match="must not start with AND"):
            parse("SELECT * FROM sales WHERE AND id = 1")

    def test_position_not_misled_by_identifier_containing_and(self):
        statement = "SELECT * FROM sales WHERE brandname = 1 AND"
        with pytest.raises(ParseError) as excinfo:
            parse(statement)
        # Points at the dangling AND, not at the 'and' inside 'brandname'.
        assert excinfo.value.column == statement.rindex("AND") + 1

    def test_multiline_positions(self):
        with pytest.raises(ParseError) as excinfo:
            parse("SELECT *\nFROM sales\nWHERE id = 1 AND")
        assert excinfo.value.line == 3
        assert excinfo.value.column == 14

    def test_bad_predicate_carries_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse("SELECT * FROM sales WHERE ~~nonsense~~")
        assert excinfo.value.line == 1
        assert excinfo.value.column == 27

    def test_trailing_and_inside_string_literal_is_fine(self):
        query = parse("SELECT * FROM sales WHERE status = 'x and'")
        assert query.predicate.value == "x and"

    def test_between_still_parses(self):
        query = parse("SELECT * FROM sales WHERE id BETWEEN 1 AND 10 AND product = 2")
        assert isinstance(query.predicate, And)


class TestParserEndToEnd:
    def test_parsed_queries_execute_on_the_engine(self, row_database, sales_rows):
        result = row_database.execute(
            parse("SELECT sum(revenue) FROM sales GROUP BY region")
        )
        assert len(result.rows) == 7
        result = row_database.execute(parse("SELECT id, status FROM sales WHERE id = 3"))
        assert result.rows[0]["id"] == 3
        row_database.execute(parse("UPDATE sales SET status = 'x' WHERE id = 3"))
        result = row_database.execute(parse("SELECT status FROM sales WHERE id = 3"))
        assert result.rows[0]["status"] == "x"
