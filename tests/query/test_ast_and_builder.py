"""Tests for the query AST, the fluent builders and workload containers."""

import pytest

from repro.errors import QueryError, WorkloadError
from repro.query import (
    AggregateFunction,
    AggregationQuery,
    DeleteQuery,
    InsertQuery,
    QueryType,
    SelectQuery,
    UpdateQuery,
    Workload,
    aggregate,
    between,
    delete,
    eq,
    insert,
    interleave,
    select,
    update,
)
from repro.query.ast import AggregateSpec, JoinClause, split_qualified


class TestAst:
    def test_split_qualified(self):
        assert split_qualified("dim.label") == ("dim", "label")
        assert split_qualified("label") == (None, "label")

    def test_aggregation_query_properties(self):
        query = AggregationQuery(
            table="fact",
            aggregates=(AggregateSpec(AggregateFunction.SUM, "value"),),
            group_by=("dim.label",),
            predicate=eq("flag", "x"),
            joins=(JoinClause("dim", "dim_id", "id"),),
        )
        assert query.query_type is QueryType.AGGREGATION
        assert query.is_olap
        assert query.tables == ("fact", "dim")
        assert query.has_group_by
        assert query.columns_of("fact") == frozenset({"value", "flag", "dim_id"})
        assert query.columns_of("dim") == frozenset({"label", "id"})
        assert query.aggregated_columns("fact") == frozenset({"value"})

    def test_aggregation_requires_aggregates(self):
        with pytest.raises(QueryError):
            AggregationQuery(table="t", aggregates=())

    def test_select_query_properties(self):
        query = SelectQuery("t", columns=("a",), predicate=eq("b", 1))
        assert not query.is_olap
        assert query.columns_of("t") == frozenset({"a", "b"})
        assert not query.selects_all_columns
        assert SelectQuery("t").selects_all_columns

    def test_insert_query_properties(self):
        query = InsertQuery("t", ({"a": 1, "b": 2},))
        assert query.num_rows == 1
        assert query.columns_of("t") == frozenset({"a", "b"})
        with pytest.raises(QueryError):
            InsertQuery("t", ())

    def test_update_delete_properties(self):
        query = UpdateQuery("t", {"a": 1}, eq("b", 2))
        assert query.updated_columns == frozenset({"a"})
        assert query.columns_of("t") == frozenset({"a", "b"})
        with pytest.raises(QueryError):
            UpdateQuery("t", {})
        assert DeleteQuery("t", eq("a", 1)).columns_of("t") == frozenset({"a"})

    def test_output_name_of_aggregates(self):
        assert AggregateSpec(AggregateFunction.SUM, "revenue").output_name == "sum_revenue"
        assert AggregateSpec(AggregateFunction.AVG, "dim.qty").output_name == "avg_dim_qty"
        assert AggregateSpec(AggregateFunction.SUM, "x", alias="total").output_name == "total"


class TestBuilders:
    def test_aggregate_builder(self):
        query = (
            aggregate("sales")
            .sum("revenue")
            .avg("quantity")
            .min("revenue")
            .max("revenue")
            .count("*")
            .group_by("region")
            .where(between("product", 1, 10))
            .join("dim", "product", "id")
            .build()
        )
        assert len(query.aggregates) == 5
        assert query.group_by == ("region",)
        assert query.joins[0].table == "dim"

    def test_empty_aggregate_builder_rejected(self):
        with pytest.raises(QueryError):
            aggregate("sales").build()

    def test_select_builder(self):
        query = select("sales").columns("id", "status").where(eq("id", 1)).limit(5).build()
        assert query.columns == ("id", "status")
        assert query.limit == 5

    def test_dml_builders(self):
        assert insert("t", [{"a": 1}]).num_rows == 1
        assert update("t", {"a": 2}, eq("id", 1)).assignments == {"a": 2}
        assert delete("t", eq("id", 1)).table == "t"


class TestWorkload:
    def build_workload(self):
        return Workload(
            [
                aggregate("sales").sum("revenue").group_by("region").build(),
                select("sales").where(eq("id", 1)).build(),
                update("sales", {"status": "x"}, eq("id", 2)),
                insert("sales", [{"id": 10}]),
                aggregate("other").sum("v").build(),
            ],
            name="test",
        )

    def test_fractions_and_counts(self):
        workload = self.build_workload()
        assert workload.num_queries == 5
        assert workload.olap_fraction == pytest.approx(0.4)
        assert workload.insert_fraction == pytest.approx(0.2)
        assert workload.update_fraction == pytest.approx(0.2)
        assert workload.count_by_type()[QueryType.AGGREGATION] == 2

    def test_tables_and_restriction(self):
        workload = self.build_workload()
        assert workload.tables() == ("sales", "other")
        restricted = workload.restricted_to("sales")
        assert restricted.num_queries == 4

    def test_attribute_access_profile(self):
        workload = self.build_workload()
        profile = workload.attribute_access_profile("sales")
        assert profile["revenue"].aggregations == 1
        assert profile["region"].group_bys == 1
        assert profile["status"].updates == 1
        assert profile["id"].point_selections >= 2
        assert profile["status"].oltp_ratio == 1.0

    def test_merge_and_interleave(self):
        left = Workload([select("t").build()] * 3, name="left")
        right = Workload([insert("t", [{"a": 1}])] * 2, name="right")
        merged = left.merged_with(right)
        assert merged.num_queries == 5
        mixed = interleave([left, right])
        assert mixed.num_queries == 5
        assert mixed[0].query_type is QueryType.SELECT
        assert mixed[1].query_type is QueryType.INSERT
        with pytest.raises(WorkloadError):
            interleave([])

    def test_summary_mentions_counts(self):
        summary = self.build_workload().summary()
        assert "5 queries" in summary
        assert "olap_fraction" in summary
