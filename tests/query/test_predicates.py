"""Tests for the predicate model (evaluation, columns, selectivity)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.statistics import ColumnStatistics
from repro.engine.types import DataType
from repro.errors import QueryError
from repro.query.predicates import (
    And,
    Between,
    CompareOp,
    Comparison,
    InList,
    IsNull,
    Not,
    Or,
    TruePredicate,
    between,
    eq,
    ge,
    gt,
    in_list,
    le,
    lt,
    ne,
)

ROW = {"a": 5, "b": "x", "c": None, "d": 2.5}


class TestEvaluation:
    def test_comparison_operators(self):
        assert eq("a", 5).evaluate(ROW)
        assert not eq("a", 6).evaluate(ROW)
        assert ne("a", 6).evaluate(ROW)
        assert lt("a", 6).evaluate(ROW)
        assert le("a", 5).evaluate(ROW)
        assert gt("a", 4).evaluate(ROW)
        assert ge("a", 5).evaluate(ROW)

    def test_null_values_never_match_comparisons(self):
        assert not eq("c", 1).evaluate(ROW)
        assert not lt("c", 1).evaluate(ROW)

    def test_between_bounds(self):
        assert between("a", 1, 5).evaluate(ROW)
        assert not between("a", 6, 10).evaluate(ROW)
        assert not Between("a", 1, 5, include_high=False).evaluate(ROW)
        assert Between("a", 5, None).evaluate(ROW)
        assert Between("a", None, 5).evaluate(ROW)
        with pytest.raises(QueryError):
            Between("a")

    def test_in_list_and_is_null(self):
        assert in_list("b", ["x", "y"]).evaluate(ROW)
        assert not in_list("b", ["z"]).evaluate(ROW)
        assert IsNull("c").evaluate(ROW)
        assert not IsNull("a").evaluate(ROW)
        with pytest.raises(QueryError):
            InList("b", ())

    def test_boolean_combinators(self):
        assert And((eq("a", 5), eq("b", "x"))).evaluate(ROW)
        assert not And((eq("a", 5), eq("b", "y"))).evaluate(ROW)
        assert Or((eq("a", 9), eq("b", "x"))).evaluate(ROW)
        assert Not(eq("a", 9)).evaluate(ROW)
        assert (eq("a", 5) & eq("b", "x")).evaluate(ROW)
        assert (eq("a", 9) | eq("b", "x")).evaluate(ROW)
        assert (~eq("a", 9)).evaluate(ROW)

    def test_true_predicate(self):
        assert TruePredicate().evaluate({})
        assert TruePredicate().estimate_selectivity() == 1.0

    def test_columns_collection(self):
        predicate = And((eq("a", 1), Or((between("d", 0, 1), eq("b", "x")))))
        assert predicate.columns() == frozenset({"a", "b", "d"})


class TestSelectivity:
    def make_stats(self):
        return {
            "a": ColumnStatistics("a", DataType.INTEGER, num_distinct=100,
                                  min_value=0, max_value=999),
            "b": ColumnStatistics("b", DataType.VARCHAR, num_distinct=4),
        }

    def test_equality_uses_distinct_count(self):
        stats = self.make_stats()
        assert eq("a", 5).estimate_selectivity(stats) == pytest.approx(0.01)
        assert eq("b", "x").estimate_selectivity(stats) == pytest.approx(0.25)

    def test_range_interpolates_within_min_max(self):
        stats = self.make_stats()
        assert le("a", 499).estimate_selectivity(stats) == pytest.approx(0.5, abs=0.01)
        assert ge("a", 900).estimate_selectivity(stats) == pytest.approx(0.1, abs=0.01)
        assert between("a", 0, 99).estimate_selectivity(stats) == pytest.approx(0.1, abs=0.01)

    def test_defaults_without_statistics(self):
        assert eq("z", 1).estimate_selectivity() == pytest.approx(0.01)
        assert between("z", 0, 1).estimate_selectivity() == pytest.approx(0.25)

    def test_in_list_selectivity(self):
        stats = self.make_stats()
        assert in_list("b", ["x", "y"]).estimate_selectivity(stats) == pytest.approx(0.5)

    def test_combinators_stay_within_bounds(self):
        stats = self.make_stats()
        both = And((eq("a", 1), eq("b", "x"))).estimate_selectivity(stats)
        either = Or((eq("a", 1), eq("b", "x"))).estimate_selectivity(stats)
        negated = Not(eq("a", 1)).estimate_selectivity(stats)
        assert 0.0 <= both <= either <= 1.0
        assert 0.0 <= negated <= 1.0


class TestPredicateProperties:
    @given(
        value=st.integers(min_value=-100, max_value=100),
        threshold=st.integers(min_value=-100, max_value=100),
        op=st.sampled_from(list(CompareOp)),
    )
    @settings(max_examples=100, deadline=None)
    def test_comparison_matches_python_semantics(self, value, threshold, op):
        predicate = Comparison("v", op, threshold)
        python_result = {
            CompareOp.EQ: value == threshold,
            CompareOp.NE: value != threshold,
            CompareOp.LT: value < threshold,
            CompareOp.LE: value <= threshold,
            CompareOp.GT: value > threshold,
            CompareOp.GE: value >= threshold,
        }[op]
        assert predicate.evaluate({"v": value}) == python_result

    @given(
        value=st.integers(min_value=-100, max_value=100),
        low=st.integers(min_value=-100, max_value=100),
        width=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=100, deadline=None)
    def test_between_matches_python_semantics(self, value, low, width):
        predicate = Between("v", low, low + width)
        assert predicate.evaluate({"v": value}) == (low <= value <= low + width)

    @given(st.integers(min_value=-50, max_value=50), st.integers(min_value=-50, max_value=50))
    @settings(max_examples=50, deadline=None)
    def test_not_inverts_evaluation(self, value, threshold):
        predicate = eq("v", threshold)
        assert Not(predicate).evaluate({"v": value}) != predicate.evaluate({"v": value})
