"""Differential fuzz: Session pipeline vs. legacy ``HybridDatabase.execute``.

The session API must be a pure re-organisation of the execution flow: for
any query stream, running through ``parse → bind → plan → execute`` (with
the plan cache warm or cold) must produce the same rows *and a bit-identical*
:class:`~repro.engine.timing.CostBreakdown` as the legacy single-shot path.
This suite re-drives the engine differential fuzzer's seeded query/DML
stream through both entry points over identically initialised databases.

Runs in tier-1; part of the ``fuzz`` marker group.
"""

import importlib.util
import pathlib
import random

import pytest

from repro.api import connect
from repro.engine.database import HybridDatabase
from repro.engine.types import Store
from repro.query.builder import select

pytestmark = pytest.mark.fuzz

_FUZZ_PATH = (
    pathlib.Path(__file__).parent.parent / "engine" / "test_differential_fuzz.py"
)
_spec = importlib.util.spec_from_file_location("engine_differential_fuzz", _FUZZ_PATH)
fuzz = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(fuzz)

QUERIES_PER_SEED = 40
DML_EVERY = 10


def build_pair(store: Store, rows, dim_rows):
    """Two identically loaded databases: one legacy, one session-driven."""
    databases = []
    for _ in range(2):
        database = HybridDatabase()
        database.create_table(fuzz.FACTS_SCHEMA, store=store)
        database.create_table(fuzz.DIM_SCHEMA, store=store)
        if rows:
            database.load_rows("facts", rows)
        database.load_rows("customers", dim_rows)
        databases.append(database)
    legacy, session_database = databases
    return legacy, connect(database=session_database)


@pytest.mark.parametrize("store", [Store.ROW, Store.COLUMN])
@pytest.mark.parametrize("seed", range(2))
def test_session_matches_legacy_execute(seed, store):
    rng = random.Random(1000 + seed)
    num_rows = rng.choice([0, rng.randrange(1, 80), rng.randrange(80, 220)])
    rows = fuzz.generate_rows(rng, num_rows)
    legacy, session = build_pair(store, rows, fuzz.generate_dim_rows())
    next_id = num_rows

    for step in range(QUERIES_PER_SEED):
        if step and step % DML_EVERY == 0:
            statement, next_id = fuzz.random_dml(rng, next_id)
            legacy_result = legacy.execute(statement)
            session_result = session.execute(statement)
            assert session_result.affected_rows == legacy_result.affected_rows
            assert session_result.cost.components == legacy_result.cost.components, (
                f"seed={seed} step={step} DML cost drift: {statement!r}"
            )
            continue
        query = (
            fuzz.random_select(rng)
            if rng.random() < 0.4
            else fuzz.random_aggregation(rng)
        )
        context = f"seed={seed} step={step} store={store.value} query={query!r}"
        legacy_result = legacy.execute(query)
        session_result = session.execute(query)
        fuzz.assert_rows_equivalent(
            context, legacy_result.rows, session_result.rows
        )
        # Bit-identical cost accounting: same components, same floats.
        assert session_result.cost.components == legacy_result.cost.components, (
            f"{context}: cost drift "
            f"{session_result.cost.components} vs {legacy_result.cost.components}"
        )

    final = select("facts").build()
    fuzz.assert_rows_equivalent(
        f"seed={seed} final state",
        legacy.execute(final).rows,
        session.execute(final).rows,
    )
    # The repeated stream must actually have exercised the plan cache.
    assert session.stats().plan_cache_misses > 0


def test_cached_plan_re_execution_is_cost_identical():
    """Hot plan-cache hits charge exactly what a cold execution charges."""
    rng = random.Random(7)
    rows = fuzz.generate_rows(rng, 120)
    legacy, session = build_pair(Store.COLUMN, rows, fuzz.generate_dim_rows())
    query = fuzz.random_aggregation(rng)
    legacy_costs = [legacy.execute(query).cost.components for _ in range(3)]
    session_costs = [session.execute(query).cost.components for _ in range(3)]
    assert session.stats().plan_cache_hits >= 2
    for legacy_cost, session_cost in zip(legacy_costs, session_costs):
        assert session_cost == legacy_cost
