"""EXPLAIN golden outputs.

The rendered plans are fully deterministic (analytic cost-model defaults,
fixed data) — pinned here verbatim.  If a cost-model or renderer change
legitimately shifts the text, re-record the goldens from the assertion
diff.
"""

import textwrap

import pytest

from repro.api import connect
from repro.engine import DataType, Store, TableSchema


@pytest.fixture
def session():
    schema = TableSchema.build(
        "events",
        [
            ("id", DataType.INTEGER),
            ("kind", DataType.VARCHAR),
            ("value", DataType.DOUBLE),
        ],
        primary_key=["id"],
    )
    session = connect()
    session.create_table(schema, Store.ROW)
    session.load_rows(
        "events",
        [
            {"id": i, "kind": f"k{i % 4}", "value": float(i)}
            for i in range(100)
        ],
    )
    return session


def golden(text: str) -> str:
    return textwrap.dedent(text).strip("\n")


class TestExplainGolden:
    def test_point_select(self, session):
        text = session.explain("SELECT id, value FROM events WHERE id = 7")
        assert text == golden(
            """
            SelectQuery [query c00fb84032638b40]
              estimated: 0.015 ms
              -> Project id, value
                 -> Scan events: row store, 100 rows, index lookup(id)
                    predicate: id = 7
              estimated cost terms (ms):
                index_probes              0.0000
                queries                   0.0150
                random_fetches            0.0002
            """
        )

    def test_grouped_aggregation(self, session):
        text = session.explain(
            "SELECT sum(value), count(*) FROM events GROUP BY kind"
        )
        assert text == golden(
            """
            AggregationQuery [query d0140836901104a0]
              estimated: 0.019 ms
              -> Aggregate sum(value), count(*)
                 group by: kind
                 strategy: operator (row-store scan)
                 -> Scan events: row store, 100 rows, full scan
              estimated cost terms (ms):
                agg_updates               0.0009
                group_rows                0.0010
                queries                   0.0150
                row_scan_bytes            0.0018
            """
        )

    def test_parameterized_template(self, session):
        statement = session.prepare("SELECT id FROM events WHERE value > ?")
        text = statement.explain()
        assert text == golden(
            """
            SelectQuery [query 5756bc710ffae40c]
              estimated: 0.019 ms
              -> Project id
                 -> Scan events: row store, 100 rows, full scan + predicate
                    predicate: value > ?
              estimated cost terms (ms):
                pred_evals                0.0003
                queries                   0.0150
                random_fetches            0.0022
                row_scan_bytes            0.0018
              """
        )


class TestExplainAnalyzePartitionCounts:
    """EXPLAIN ANALYZE's scanned/skipped counts == the executor's accesses.

    The plan records the zone-pruning decision when the paths are resolved;
    execution consumes the same object.  This pins that the predicted counts,
    the executed counts and the rendered text all coincide.
    """

    @pytest.fixture
    def partitioned_session(self):
        from repro.engine import (
            HorizontalPartitionSpec,
            TablePartitioning,
        )
        from repro.query.predicates import ge

        schema = TableSchema.build(
            "metrics",
            [("id", DataType.INTEGER), ("day", DataType.INTEGER),
             ("value", DataType.DOUBLE)],
            primary_key=["id"],
        )
        session = connect()
        session.create_table(schema, Store.ROW)
        session.load_rows(
            "metrics",
            [{"id": i, "day": i, "value": float(i)} for i in range(200)],
        )
        session.apply_partitioning(
            "metrics",
            TablePartitioning(
                horizontal=HorizontalPartitionSpec(predicate=ge("day", 150))
            ),
        )
        return session

    def test_counts_match_actual_accesses(self, partitioned_session):
        session = partitioned_session
        sql = "SELECT id FROM metrics WHERE day <= 20"
        plan = session.plan_for(sql)
        decision = plan.scan_decisions["metrics"]
        assert (decision.scanned, decision.skipped) == (1, 1)

        result = session.execute(sql)
        assert len(result.rows) == 21
        # The executor's actual accesses equal the plan's prediction.
        assert result.scan_stats["metrics"] == (decision.scanned, decision.skipped)

        text = session.explain(sql, analyze=True)
        assert "partitions (scanned/skipped):" in text
        assert "metrics" + " " * 18 + "1 / 1" in text
        assert "[zone pruning: 1 scanned, 1 skipped (hot)]" in text

    def test_unpartitioned_scan_reports_single_partition(self, session):
        text = session.explain("SELECT id FROM events WHERE value > 1", analyze=True)
        assert "partitions (scanned/skipped):" in text
        assert "events" + " " * 19 + "1 / 0" in text


class TestExplainAnalyze:
    def test_actual_costs_rendered(self, session):
        text = session.explain(
            "SELECT sum(value) FROM events GROUP BY kind", analyze=True
        )
        assert "  actual:    " in text
        assert "actual cost components (ms):" in text
        assert "query_overhead" in text

    def test_explain_statement_via_sql(self, session):
        result = session.sql("EXPLAIN SELECT count(*) FROM events")
        assert result.rows[0]["plan"].startswith("AggregationQuery [query ")
        assert result.cost.total_ms == 0.0

    def test_explain_analyze_via_sql(self, session):
        result = session.sql("EXPLAIN ANALYZE SELECT count(*) FROM events")
        assert any("actual" in row["plan"] for row in result.rows)
