"""Session surface of the durability subsystem, and close/failure hygiene.

* ``connect(wal_path=...)`` attaches a WAL so every statement is durable;
  ``repro.api.recover(path)`` rebuilds the database and re-opens the log.
* :meth:`Session.close` is idempotent and exception-safe: double close is a
  no-op, ``with`` closes on exceptions, listeners are dropped, and the WAL
  is flushed and closed (so ``off``-mode buffers become durable at close).
* A statement that fails mid-execution leaves no stale session state: no
  listener fires for it, the plan cache is not poisoned, and the session
  keeps executing — the regression net for the failing-UPDATE-mid-``sql()``
  class of bugs.
"""

import pytest

from repro.api import connect, recover
from repro.config import DurabilityConfig
from repro.engine import DataType, Store, TableSchema
from repro.errors import ExecutionError

SCHEMA = TableSchema.build(
    "t",
    [("id", DataType.INTEGER), ("v", DataType.VARCHAR)],
    primary_key=["id"],
)


def populated_session(wal_path=None, durability=None):
    session = connect(wal_path=wal_path, durability=durability)
    session.create_table(SCHEMA, Store.COLUMN)
    session.load_rows("t", [{"id": i, "v": f"v{i}"} for i in range(6)])
    return session


class TestClose:
    def test_close_is_idempotent(self):
        session = populated_session()
        assert not session.closed
        session.close()
        assert session.closed
        session.close()  # second close: no-op, no error
        assert session.closed

    def test_close_drops_listeners(self):
        session = populated_session()
        session.add_plan_listener(lambda *args: None)
        session.close()
        assert session._plan_listeners == []

    def test_context_manager_closes_on_exception(self, tmp_path):
        path = str(tmp_path / "db.wal")
        with pytest.raises(RuntimeError, match="boom"):
            with populated_session(wal_path=path) as session:
                raise RuntimeError("boom")
        assert session.closed
        assert session.database.wal.closed

    def test_close_flushes_an_off_mode_wal(self, tmp_path):
        path = str(tmp_path / "db.wal")
        session = populated_session(
            wal_path=path, durability=DurabilityConfig(wal_sync_mode="off")
        )
        session.sql("INSERT INTO t (id, v) VALUES (100, 'late')")
        lost, _ = recover(str(tmp_path / "probe.wal"))  # unrelated fresh log
        lost.close()
        session.close()  # flush happens here
        recovered, report = recover(path)
        assert report.records_applied == 3
        ids = {row["id"] for row in recovered.sql("SELECT id FROM t").rows}
        assert 100 in ids
        recovered.close()

    def test_database_stays_usable_after_close(self):
        session = populated_session()
        session.close()
        assert session.database.table_names() == ["t"]


class TestFailedStatementHygiene:
    def test_failing_update_leaves_no_stale_state(self):
        session = populated_session()
        notified = []
        session.add_plan_listener(lambda query, plan, result: notified.append(query))

        failing = "UPDATE t SET id = 1 WHERE id = 5"
        with pytest.raises(ExecutionError, match="duplicate primary key"):
            session.sql(failing)
        # No listener fired for the failed statement, none was leaked.
        assert notified == []
        assert len(session._plan_listeners) == 1

        # The session keeps working, and the cached plan for the failing
        # statement re-executes (and re-fails) rather than serving junk.
        assert session.sql("SELECT v FROM t WHERE id = 5").rows == [{"v": "v5"}]
        with pytest.raises(ExecutionError, match="duplicate primary key"):
            session.sql(failing)
        session.sql("UPDATE t SET id = 50 WHERE id = 5")
        assert session.sql("SELECT v FROM t WHERE id = 50").rows == [{"v": "v5"}]
        # Exactly the successful statements notified the listener.
        assert len(notified) == 3

    def test_failing_dml_is_still_durable(self, tmp_path):
        # The engine's partial-state contract: a failed statement may have
        # committed a prefix, so it is logged and replays to the same state.
        path = str(tmp_path / "db.wal")
        session = populated_session(wal_path=path)
        with pytest.raises(ExecutionError):
            session.sql("UPDATE t SET id = 1 WHERE id = 5")
        session.close()
        recovered, report = recover(path)
        assert [lsn for lsn, _ in report.replay_errors] == [3]
        assert "duplicate primary key" in report.replay_errors[0][1]
        assert recovered.sql("SELECT v FROM t WHERE id = 5").rows == [{"v": "v5"}]
        recovered.close()


class TestDurabilitySurface:
    def test_connect_recover_roundtrip(self, tmp_path):
        path = str(tmp_path / "db.wal")
        session = populated_session(wal_path=path)
        session.sql("INSERT INTO t (id, v) VALUES (10, 'ten')")
        session.close()
        recovered, report = recover(path)
        assert report.clean
        assert report.records_applied == 3
        rows = recovered.sql("SELECT * FROM t WHERE id = 10").rows
        assert rows == [{"id": 10, "v": "ten"}]
        # The recovered session is durable again: its statements land in
        # the same log and survive another recovery.
        recovered.sql("INSERT INTO t (id, v) VALUES (11, 'eleven')")
        recovered.close()
        again, _ = recover(path)
        assert again.sql("SELECT v FROM t WHERE id = 11").rows == [{"v": "eleven"}]
        again.close()

    def test_session_checkpoint(self, tmp_path):
        path = str(tmp_path / "db.wal")
        session = populated_session(wal_path=path)
        lsn = session.checkpoint()
        assert lsn == 2
        session.sql("INSERT INTO t (id, v) VALUES (10, 'ten')")
        session.close()
        recovered, report = recover(path)
        assert report.snapshot_restored
        assert report.snapshot_lsn == 2
        assert report.records_applied == 1
        assert len(recovered.sql("SELECT * FROM t").rows) == 7
        recovered.close()

    def test_durability_config_reaches_the_backends(self):
        session = populated_session(
            durability=DurabilityConfig(delta_merge_threshold=4)
        )
        backend = session.database.table_object("t").backend
        assert backend.merge_threshold == 4
        for i in range(4):
            session.sql(f"INSERT INTO t (id, v) VALUES ({20 + i}, 'd')")
        assert backend.delta_rows == 0  # threshold crossed: merged

    def test_session_snapshot_and_merge(self):
        session = populated_session()
        session.sql("INSERT INTO t (id, v) VALUES (10, 'ten')")
        snapshot = session.snapshot("t")
        before = snapshot.rows()
        assert session.merge_deltas("t") == 1
        session.sql("DELETE FROM t WHERE id >= 0")
        assert snapshot.rows() == before
        assert session.sql("SELECT * FROM t").rows == []
