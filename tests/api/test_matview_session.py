"""Materialized views through the session: serving, EXPLAIN, advisor, caching.

The serving contract: a statement whose fingerprint matches a view is
answered from the materialized rows — after an incremental (or, when
nothing is reusable, full) refresh if the base table changed — and the
rewrite is visible in ``EXPLAIN`` / ``EXPLAIN ANALYZE``.  With
``matview_disabled()`` the same statement takes the base path and charges
bit-identically to a session that never had views.  Plan-cache keys carry
the view-catalog version, so creating or dropping a view re-plans cached
statements instead of silently serving the pre-view plan.
"""

import pytest

from repro.api import connect
from repro.core import OnlineAdvisorMonitor
from repro.engine import HorizontalPartitionSpec, Store, TablePartitioning
from repro.engine.matview import matview_disabled
from repro.query.predicates import ge

pytestmark = pytest.mark.matview

SQL = "SELECT sum(revenue) FROM sales GROUP BY region"
INSERT = ("INSERT INTO sales (id, region, product, revenue, quantity, status) "
          "VALUES (50001, 'region_0', 1, 123.0, 2, 'open')")


@pytest.fixture
def session(database_factory):
    return connect(database=database_factory(Store.COLUMN))


def sorted_rows(rows):
    return sorted(rows, key=lambda row: str(sorted(row.items())))


class TestViewServing:
    def test_served_rows_match_base(self, session):
        with matview_disabled():
            reference = session.sql(SQL)
        session.create_view("mv_sales", SQL)
        result = session.sql(SQL)
        assert result.view_hits == {"mv_sales": "served"}
        assert sorted_rows(result.rows) == sorted_rows(reference.rows)

    def test_disabled_toggle_is_bit_identical(self, session):
        plain = session.sql(SQL)
        session.create_view("mv_sales", SQL)
        with matview_disabled():
            result = session.sql(SQL)
        assert result.view_hits == {}
        assert sorted_rows(result.rows) == sorted_rows(plain.rows)
        assert result.cost.components == plain.cost.components

    def test_stale_view_refreshed_before_serving(self, session):
        session.create_view("mv_sales", SQL)
        session.sql(INSERT)
        result = session.sql(SQL)
        assert result.view_hits == {"mv_sales": "served after full refresh"}
        with matview_disabled():
            reference = session.sql(SQL)
        assert sorted_rows(result.rows) == sorted_rows(reference.rows)

    def test_serving_charges_view_scan_only(self, session):
        session.create_view("mv_sales", SQL)
        result = session.sql(SQL)
        assert set(result.cost.components) == {"query_overhead", "view_scan"}


class TestExplainRendering:
    def test_explain_shows_rewrite(self, session):
        session.create_view("mv_sales", SQL)
        text = session.explain(SQL)
        assert "rewrite: materialized view mv_sales [view " in text

    def test_explain_analyze_shows_serving(self, session):
        session.create_view("mv_sales", SQL)
        text = session.explain(SQL, analyze=True)
        assert "materialized view:" in text
        assert "mv_sales" in text
        assert "served" in text

    def test_explain_without_view_is_unchanged(self, session):
        before = session.explain(SQL)
        assert "materialized view" not in before
        assert "rewrite:" not in before


class TestSessionCounters:
    def test_hits_misses_and_refresh_kinds(self, session):
        session.create_view("mv_sales", SQL)
        session.sql(SQL)
        session.sql(SQL)
        stats = session.stats()
        assert stats.view_rewrite_hits == 2
        assert stats.view_rewrite_misses == 0
        assert stats.view_full_refreshes == 0

        with matview_disabled():
            session.sql(SQL)
        assert session.stats().view_rewrite_misses == 1

        session.sql(INSERT)
        session.sql(SQL)
        stats = session.stats()
        assert stats.view_rewrite_hits == 3
        assert stats.view_full_refreshes == 1
        assert stats.view_incremental_refreshes == 0

    def test_incremental_refresh_on_partitioned_base(self, session):
        # Inserts route to the hot partition, so the main partials survive
        # DML and serving refreshes incrementally.
        session.apply_partitioning(
            "sales",
            TablePartitioning(
                horizontal=HorizontalPartitionSpec(predicate=ge("id", 900))
            ),
        )
        session.create_view("mv_sales", SQL)
        session.sql(INSERT)
        result = session.sql(SQL)
        assert result.view_hits == {"mv_sales": "served after incremental refresh"}
        stats = session.stats()
        assert stats.view_incremental_refreshes == 1
        assert stats.view_full_refreshes == 0
        with matview_disabled():
            reference = session.sql(SQL)
        assert sorted_rows(result.rows) == sorted_rows(reference.rows)


class TestPlanCacheInteraction:
    def test_create_view_invalidates_cached_plans(self, session):
        """Regression: a stale cache hit would bypass a freshly created view.

        The plan-cache key carries the view-catalog version; without it the
        second ``session.sql(SQL)`` below would reuse the pre-view plan (no
        rewrite recorded) and silently keep scanning the base table.
        """
        session.sql(SQL)
        session.sql(SQL)
        stats = session.stats()
        assert (stats.plan_cache_hits, stats.plan_cache_misses) == (1, 1)

        session.create_view("mv_sales", SQL)
        result = session.sql(SQL)
        assert result.view_hits == {"mv_sales": "served"}
        stats = session.stats()
        assert stats.plan_cache_misses == 2  # re-planned after the create

    def test_drop_view_invalidates_cached_plans(self, session):
        session.create_view("mv_sales", SQL)
        assert session.sql(SQL).view_hits != {}
        session.drop_view("mv_sales")
        result = session.sql(SQL)
        assert result.view_hits == {}
        assert session.stats().plan_cache_misses == 2

    def test_explicit_refresh_bumps_view_version(self, session):
        session.create_view("mv_sales", SQL)
        version = session.database.catalog.view_catalog_version
        session.refresh_view("mv_sales")
        assert session.database.catalog.view_catalog_version > version


class TestViewDDL:
    def test_views_listing_and_lookup(self, session):
        session.create_view("mv_sales", SQL)
        assert session.views() == ["mv_sales"]
        view = session.view("mv_sales")
        assert view.name == "mv_sales"
        assert view.table == "sales"
        session.drop_view("mv_sales")
        assert session.views() == []


class TestAdvisorIntegration:
    def test_monitor_recommends_recurring_aggregate(self, session):
        monitor = OnlineAdvisorMonitor.for_session(session)
        for _ in range(3):
            session.sql(SQL)
        assert list(monitor.recurring_aggregates().values()) == [3]

        recommendations = monitor.recommend_views()
        assert len(recommendations) == 1
        recommendation = recommendations[0]
        assert recommendation.table == "sales"
        assert recommendation.view.startswith("mv_sales_")
        assert recommendation.occurrences == 3
        assert recommendation.estimated_view_ms < recommendation.estimated_base_ms
        assert recommendation.estimated_benefit_ms > 0
        assert recommendation.estimated_speedup > 1.0

        # The what-if plans render through the EXPLAIN renderer (both sides).
        text = recommendation.explain()
        assert "without view:" in text
        assert "with view:" in text
        assert f"rewrite: materialized view {recommendation.view}" in text

        # Re-advising is served from the shared EstimateMemo.
        hits_before = session.advisor().cost_model.cache_hits
        monitor.recommend_views()
        assert session.advisor().cost_model.cache_hits > hits_before

        # Creating the recommended view closes the loop: the recurring
        # statement is now answered from it, and it stops being recommended.
        session.create_view(recommendation.view, recommendation.query)
        result = session.sql(SQL)
        assert result.view_hits == {recommendation.view: "served"}
        assert monitor.recommend_views() == []

    def test_below_occurrence_floor_not_recommended(self, session):
        monitor = OnlineAdvisorMonitor.for_session(session)
        session.sql(SQL)
        assert monitor.recommend_views() == []
        assert monitor.recommend_views(min_occurrences=1) != []
