"""Parse → bind → plan round-trips and physical-plan contents."""

import pytest

from repro.api import connect
from repro.api.binder import bind, statement_parameters
from repro.engine import DataType, Store, TableSchema
from repro.engine.partitioning import TablePartitioning, VerticalPartitionSpec
from repro.errors import BindError
from repro.query.ast import Parameter
from repro.query.fingerprint import query_fingerprint
from repro.query.parser import parse
from repro.query.predicates import Between, Comparison


@pytest.fixture
def session(database_factory):
    return connect(database=database_factory(Store.ROW))


class TestBindRoundTrips:
    def test_select_round_trip(self, session):
        template = session.parse("SELECT id FROM sales WHERE id = ?")
        assert isinstance(template.predicate.value, Parameter)
        bound = session.bind(template, [5])
        assert bound.predicate == Comparison(
            "id", bound.predicate.op, 5
        )
        plan = session.plan_for(template)
        assert plan.query is template
        assert plan.table_plans[0].table == "sales"

    def test_bound_literals_survive_unchanged(self, session):
        # Binding must not rewrite already-valid literals (cost/result parity
        # with the legacy path depends on it).
        template = session.parse("SELECT id FROM sales WHERE revenue > 10.5")
        bound = session.bind(template)
        assert bound is template

    def test_between_parameters_bind_in_order(self, session):
        template = session.parse(
            "SELECT count(*) FROM sales WHERE quantity BETWEEN ? AND ?"
        )
        bound = session.bind(template, [2, 8])
        assert isinstance(bound.predicate, Between)
        assert (bound.predicate.low, bound.predicate.high) == (2, 8)

    def test_statement_parameters_order(self, session):
        template = session.parse(
            "UPDATE sales SET status = ?, quantity = ? WHERE id = ?"
        )
        parameters = statement_parameters(template)
        assert [p.index for p in parameters] == [0, 1, 2]

    def test_partial_bind_keeps_placeholders(self, session):
        template = session.parse("SELECT id FROM sales WHERE id = ?")
        bound = session.bind(template, partial=True)
        assert isinstance(bound.predicate.value, Parameter)

    def test_partial_bind_still_validates_names(self, session):
        template = session.parse("SELECT nope FROM sales WHERE id = ?")
        with pytest.raises(BindError, match="no column"):
            session.bind(template, partial=True)

    def test_join_columns_validate(self, session, sales_schema):
        other = TableSchema.build(
            "dim", [("id", DataType.INTEGER), ("label", DataType.VARCHAR)],
            primary_key=["id"],
        )
        session.create_table(other, Store.COLUMN)
        query = parse(
            "SELECT sum(revenue) FROM sales JOIN dim ON sales.product = dim.id "
            "GROUP BY dim.label"
        )
        bound = session.bind(query)
        assert bound.joins[0].table == "dim"
        with pytest.raises(BindError, match="no column"):
            session.bind(
                parse(
                    "SELECT sum(revenue) FROM sales JOIN dim ON "
                    "sales.product = dim.nope GROUP BY dim.label"
                )
            )


class TestFingerprints:
    def test_equal_content_equal_fingerprint(self):
        first = parse("SELECT id FROM sales WHERE id = 5")
        second = parse("SELECT id FROM sales WHERE id = 5")
        assert first is not second
        assert query_fingerprint(first) == query_fingerprint(second)

    def test_literal_type_distinguished(self):
        assert query_fingerprint(parse("SELECT id FROM sales WHERE id = 1")) != \
            query_fingerprint(parse("SELECT id FROM sales WHERE id = 1.0"))

    def test_placeholders_distinguished_from_literals(self):
        assert query_fingerprint(parse("SELECT id FROM sales WHERE id = ?")) != \
            query_fingerprint(parse("SELECT id FROM sales WHERE id = 5"))


class TestPhysicalPlanContents:
    def test_row_store_index_choice(self, session):
        plan = session.plan_for("SELECT id FROM sales WHERE id = 7")
        assert plan.table_plans[0].access == "index lookup(id)"
        plan = session.plan_for("SELECT id FROM sales WHERE id BETWEEN 1 AND 5")
        assert plan.table_plans[0].access == "index range scan(id)"
        plan = session.plan_for("SELECT id FROM sales WHERE quantity = 3")
        assert plan.table_plans[0].access == "full scan + predicate"

    def test_column_store_access(self, database_factory):
        session = connect(database=database_factory(Store.COLUMN))
        plan = session.plan_for("SELECT id FROM sales WHERE region = 'region_1'")
        assert plan.table_plans[0].access == "dictionary-coded scan(region)"
        assert plan.table_plans[0].store is Store.COLUMN

    def test_estimate_is_populated(self, session):
        plan = session.plan_for("SELECT sum(revenue) FROM sales GROUP BY region")
        assert plan.estimate.total_ms > 0
        assert plan.estimate.assignment == {"sales": Store.ROW}
        assert sum(plan.estimate.per_term_ms.values()) == pytest.approx(
            plan.estimate.total_ms
        )
        assert sum(plan.estimate.per_table_ms.values()) == pytest.approx(
            plan.estimate.total_ms
        )

    def test_vertical_pruning_note(self, session):
        partitioning = TablePartitioning(
            vertical=VerticalPartitionSpec(
                row_store_columns=("status", "quantity"),
                column_store_columns=("region", "product", "revenue"),
            )
        )
        session.apply_partitioning("sales", partitioning)
        plan = session.plan_for("SELECT sum(revenue) FROM sales GROUP BY region")
        table_plan = plan.table_plans[0]
        assert table_plan.partitioned
        assert "vertical pruning: 1 of 2" in table_plan.pruning
        # Results still correct through the partitioned plan.
        result = session.sql("SELECT count(*) FROM sales")
        assert result.rows[0]["count_star"] == 1000

    def test_fingerprints_recorded(self, session):
        plan = session.plan_for("SELECT count(*) FROM sales")
        assert plan.layout_fingerprint == (
            ("sales", session.database.table_version("sales")),
        )
        assert set(plan.statistics_fingerprints) == {"sales"}
