"""Plan-cache behaviour: hits on repetition, invalidation on layout change."""

import pytest

from repro.api import connect
from repro.engine import (
    DataType,
    HorizontalPartitionSpec,
    Store,
    TablePartitioning,
    TableSchema,
)
from repro.query import aggregate


SQL = "SELECT sum(revenue) FROM sales GROUP BY region"


@pytest.fixture
def session(database_factory):
    return connect(database=database_factory(Store.ROW))


def plan_counts(session):
    stats = session.stats()
    return stats.plan_cache_hits, stats.plan_cache_misses


class TestPlanCacheHits:
    def test_repeated_sql_hits(self, session):
        session.sql(SQL)
        hits0, misses0 = plan_counts(session)
        session.sql(SQL)
        session.sql(SQL)
        hits, misses = plan_counts(session)
        assert hits == hits0 + 2
        assert misses == misses0

    def test_structurally_equal_ast_queries_share_a_plan(self, session):
        session.execute(aggregate("sales").sum("revenue").group_by("region").build())
        session.execute(aggregate("sales").sum("revenue").group_by("region").build())
        hits, misses = plan_counts(session)
        assert (hits, misses) == (1, 1)

    def test_different_literals_are_different_plans(self, session):
        session.sql("SELECT id FROM sales WHERE id = 1")
        session.sql("SELECT id FROM sales WHERE id = 2")
        hits, misses = plan_counts(session)
        assert hits == 0 and misses == 2

    def test_plan_reuse_does_not_change_results_or_costs(self, session, row_database):
        first = session.sql(SQL)
        second = session.sql(SQL)  # served from the plan cache
        legacy = row_database.execute(
            aggregate("sales").sum("revenue").group_by("region").build()
        )
        assert second.rows == first.rows == legacy.rows
        assert second.cost.components == legacy.cost.components


class TestPlanCacheInvalidation:
    def test_ddl_invalidates(self, session, sales_schema):
        session.sql(SQL)
        session.drop_table("sales")
        session.create_table(sales_schema, Store.ROW)
        session.sql(SQL)
        hits, misses = plan_counts(session)
        assert hits == 0 and misses == 2

    def test_store_move_invalidates(self, session):
        session.sql(SQL)
        plan_row = session.plan_for(SQL)
        assert plan_row.table_plans[0].store is Store.ROW
        session.move_table("sales", Store.COLUMN)
        session.sql(SQL)
        plan_column = session.plan_for(SQL)
        assert plan_column.table_plans[0].store is Store.COLUMN
        stats = session.stats()
        # one miss before the move, one after; the plan_for calls hit.
        assert stats.plan_cache_misses == 2

    def test_repartitioning_invalidates(self, session):
        session.sql(SQL)
        from repro.query.predicates import ge

        partitioning = TablePartitioning(
            horizontal=HorizontalPartitionSpec(
                predicate=ge("id", 900),
                hot_store=Store.ROW, cold_store=Store.COLUMN,
            )
        )
        session.apply_partitioning("sales", partitioning)
        session.sql(SQL)
        plan = session.plan_for(SQL)
        assert plan.table_plans[0].partitioned
        stats = session.stats()
        assert stats.plan_cache_misses == 2

    def test_stats_refresh_invalidates(self, session):
        session.sql(SQL)
        session.refresh_statistics("sales")
        session.sql(SQL)
        stats = session.stats()
        assert stats.plan_cache_misses == 2

    def test_plain_dml_does_not_invalidate(self, session):
        session.sql(SQL)
        session.sql("UPDATE sales SET status = 'x' WHERE id = 1")
        session.sql(SQL)
        stats = session.stats()
        # The SELECT plan is reused; only the UPDATE added a miss.
        assert stats.plan_cache_hits == 1
        assert stats.plan_cache_misses == 2

    def test_delta_merge_invalidates(self, database_factory):
        """A merge that moved rows changes the costed physical state."""
        session = connect(database=database_factory(Store.COLUMN))
        session.sql(SQL)
        session.sql("INSERT INTO sales (id, region, product, revenue, quantity, "
                    "status) VALUES (99999, 'north', 1, 1.0, 2, 'ok')")
        merged = session.merge_deltas("sales")
        assert merged > 0
        session.sql(SQL)
        stats = session.stats()
        # The post-merge SELECT must re-plan: one miss before the merge, the
        # INSERT's miss, and one after.
        assert stats.plan_cache_misses == 3
        assert stats.plan_cache_hits == 0

    def test_empty_delta_merge_keeps_plans(self, database_factory):
        """A no-op merge must not spuriously invalidate cached plans."""
        session = connect(database=database_factory(Store.COLUMN))
        session.sql(SQL)
        assert session.merge_deltas("sales") == 0
        session.sql(SQL)
        stats = session.stats()
        assert stats.plan_cache_hits == 1
        assert stats.plan_cache_misses == 1

    def test_clear_caches_resets_estimate_memo(self, session):
        session.sql(SQL)
        stats = session.stats()
        assert stats.estimate_memo_misses > 0
        session.clear_caches()
        stats = session.stats()
        assert stats.estimate_memo_hits == 0
        assert stats.estimate_memo_misses == 0
        # The next statement re-plans (a fresh miss on the emptied cache)
        # and re-prices from scratch.
        session.sql(SQL)
        stats = session.stats()
        assert stats.plan_cache_misses == 2
        assert stats.plan_cache_hits == 0
        assert stats.estimate_memo_misses > 0

    def test_invalidation_is_per_table(self, database_factory, sales_schema):
        session = connect(database=database_factory(Store.ROW))
        other = TableSchema.build(
            "other", [("k", DataType.INTEGER)], primary_key=["k"]
        )
        session.create_table(other, Store.ROW)
        session.sql(SQL)
        session.sql("SELECT count(*) FROM other")
        # Touching `other` must not invalidate the `sales` plan.
        session.move_table("other", Store.COLUMN)
        session.sql(SQL)
        stats = session.stats()
        assert stats.plan_cache_hits == 1


class TestPlanCacheEviction:
    def test_lru_eviction(self, database_factory):
        session = connect(database=database_factory(Store.ROW),
                          plan_cache_capacity=2)
        session.sql("SELECT id FROM sales WHERE id = 1")
        session.sql("SELECT id FROM sales WHERE id = 2")
        session.sql("SELECT id FROM sales WHERE id = 3")
        stats = session.stats()
        assert stats.plan_cache_size == 2
        assert stats.plan_cache_evictions == 1
