"""The online monitor attached to a session: plan consumption, no double counting."""

import pytest

from repro.api import connect
from repro.core import OnlineAdvisorMonitor
from repro.engine import Store
from repro.query import aggregate, eq, select


@pytest.fixture
def session(database_factory):
    return connect(database=database_factory(Store.ROW))


class TestSessionMonitor:
    def test_for_session_records_each_query_once(self, session):
        monitor = OnlineAdvisorMonitor.for_session(session)
        with monitor:  # __enter__ must not add a second (database) listener
            for i in range(5):
                session.execute(select("sales").where(eq("id", i)).build())
        assert monitor.state.total_queries == 5
        assert len(monitor.recorded) == 5

    def test_estimation_drift_tracked_from_plans(self, session):
        monitor = OnlineAdvisorMonitor.for_session(session)
        query = aggregate("sales").sum("revenue").group_by("region").build()
        for _ in range(3):
            session.execute(query)
        assert monitor.state.actual_ms_total > 0
        assert monitor.state.estimated_ms_total > 0
        # The analytic estimate tracks the engine's charges closely.
        assert 0.5 < monitor.state.estimation_drift < 2.0

    def test_detach_session_stops_recording(self, session):
        monitor = OnlineAdvisorMonitor.for_session(session)
        session.execute(select("sales").where(eq("id", 1)).build())
        monitor.detach_session()
        session.execute(select("sales").where(eq("id", 2)).build())
        assert monitor.state.total_queries == 1

    def test_attach_session_supersedes_database_attach(self, session):
        monitor = OnlineAdvisorMonitor(session.advisor(), session.database)
        monitor.attach()
        monitor.attach_session(session)
        session.execute(select("sales").where(eq("id", 1)).build())
        assert monitor.state.total_queries == 1
