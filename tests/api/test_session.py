"""Session basics: the parse → bind → plan → execute pipeline."""

import pytest

from repro.api import connect
from repro.engine import Store
from repro.errors import BindError, ParseError
from repro.query import aggregate, eq, select


@pytest.fixture
def session(database_factory):
    return connect(database=database_factory(Store.ROW))


class TestSql:
    def test_select(self, session):
        result = session.sql("SELECT id, status FROM sales WHERE id = 3")
        assert result.rows == [{"id": 3, "status": "open"}]

    def test_aggregation(self, session, row_database):
        result = session.sql("SELECT sum(revenue) FROM sales GROUP BY region")
        legacy = row_database.execute(
            aggregate("sales").sum("revenue").group_by("region").build()
        )
        assert result.rows == legacy.rows

    def test_dml_roundtrip(self, session):
        session.sql("UPDATE sales SET status = 'x' WHERE id = 5")
        assert session.sql("SELECT status FROM sales WHERE id = 5").rows == [
            {"status": "x"}
        ]
        deleted = session.sql("DELETE FROM sales WHERE id = 5")
        assert deleted.affected_rows == 1
        inserted = session.sql(
            "INSERT INTO sales (id, region, product, revenue, quantity, status) "
            "VALUES (5, 'region_5', 1, 9.5, 2, 'open')"
        )
        assert inserted.affected_rows == 1

    def test_costs_match_legacy_execute(self, session, database_factory):
        query = aggregate("sales").sum("revenue").avg("quantity").group_by(
            "region"
        ).build()
        legacy = database_factory(Store.ROW).execute(query)
        via_session = session.execute(query)
        assert via_session.cost.components == legacy.cost.components

    def test_ast_queries_accepted(self, session):
        result = session.execute(select("sales").where(eq("id", 1)).build())
        assert len(result.rows) == 1


class TestBindErrors:
    def test_unknown_table(self, session):
        with pytest.raises(BindError, match="unknown table"):
            session.sql("SELECT * FROM nope")

    def test_unknown_column(self, session):
        with pytest.raises(BindError, match="no column"):
            session.sql("SELECT nope FROM sales")

    def test_unknown_predicate_column(self, session):
        with pytest.raises(BindError, match="no column"):
            session.sql("SELECT id FROM sales WHERE nope = 3")

    def test_literal_type_mismatch(self, session):
        with pytest.raises(BindError, match="type-check"):
            session.sql("SELECT id FROM sales WHERE id = 'abc'")

    def test_parse_errors_carry_position(self, session):
        with pytest.raises(ParseError) as excinfo:
            session.sql("SELECT id FROM sales WHERE id = 1 AND")
        assert excinfo.value.line == 1
        assert excinfo.value.column is not None


class TestPreparedStatements:
    def test_positional_parameters(self, session):
        statement = session.prepare("SELECT id, revenue FROM sales WHERE id = ?")
        assert len(statement.parameters) == 1
        assert statement.execute([3]).rows[0]["id"] == 3
        assert statement.execute([7]).rows[0]["id"] == 7

    def test_named_parameters(self, session):
        statement = session.prepare(
            "SELECT count(*) FROM sales WHERE quantity BETWEEN :low AND :high"
        )
        all_rows = statement.execute({"low": 1, "high": 20}).rows[0]["count_star"]
        some = statement.execute({"low": 1, "high": 3}).rows[0]["count_star"]
        assert 0 < some < all_rows

    def test_parameters_are_coerced(self, session):
        statement = session.prepare("SELECT id FROM sales WHERE id = ?")
        # A float parameter value coerces through the INTEGER column type.
        assert statement.execute([3.0]).rows == [{"id": 3}]

    def test_parameter_type_mismatch(self, session):
        statement = session.prepare("SELECT id FROM sales WHERE id = ?")
        with pytest.raises(BindError, match="not valid"):
            statement.execute(["abc"])

    def test_missing_parameters(self, session):
        statement = session.prepare("SELECT id FROM sales WHERE id = ?")
        with pytest.raises(BindError, match="parameter"):
            statement.execute()
        with pytest.raises(BindError, match="positional"):
            statement.execute([1, 2])

    def test_extra_named_parameters_rejected(self, session):
        statement = session.prepare("SELECT id FROM sales WHERE id = :id")
        with pytest.raises(BindError, match="does not use"):
            statement.execute({"id": 1, "typo": 2})

    def test_insert_with_placeholders(self, session):
        statement = session.prepare(
            "INSERT INTO sales (id, region, product, revenue, quantity, status) "
            "VALUES (?, ?, ?, ?, ?, ?)"
        )
        result = statement.execute([50_000, "region_9", 1, 1.5, 2, "open"])
        assert result.affected_rows == 1
        assert session.sql("SELECT region FROM sales WHERE id = 50000").rows == [
            {"region": "region_9"}
        ]

    def test_prepared_plan_is_reused(self, session):
        statement = session.prepare("SELECT id FROM sales WHERE id = ?")
        before = session.stats()
        statement.execute([1])
        statement.execute([2])
        statement.execute([3])
        after = session.stats()
        assert after.plan_cache_hits - before.plan_cache_hits == 3
        assert after.plan_cache_misses == before.plan_cache_misses


class TestSessionStats:
    def test_counters_move(self, session):
        session.sql("SELECT count(*) FROM sales")
        session.sql("SELECT count(*) FROM sales")
        stats = session.stats()
        assert stats.queries_executed == 2
        assert stats.parse_cache_hits == 1
        assert stats.plan_cache_hits == 1
        assert stats.plan_cache_misses == 1
        assert stats.plan_cache_hit_rate == pytest.approx(0.5)

    def test_estimate_memo_counters_exposed(self, session):
        session.sql("SELECT count(*) FROM sales")
        stats = session.stats()
        assert stats.estimate_memo_misses >= 1

    def test_advisor_shares_the_estimate_memo(self, session, sales_rows):
        # Planning a query estimates it under the current layout; the
        # advisor's evaluation of that same layout hits the shared memo.
        query = aggregate("sales").sum("revenue").build()
        session.execute(query)
        memo = session.advisor().cost_model.memo
        before_hits = memo.hits
        profiles = session.advisor().cost_model.profiles_from_catalog(
            session.database.catalog
        )
        session.advisor().cost_model.estimate_query_ms(
            query, {"sales": Store.ROW}, profiles
        )
        assert memo.hits == before_hits + 1


class TestNullsAndNaN:
    def test_nan_parameter(self, database_factory):
        session = connect(database=database_factory(Store.COLUMN))
        statement = session.prepare("SELECT count(*) FROM sales WHERE revenue > ?")
        count = statement.execute([float("nan")]).rows[0]["count_star"]
        assert count == 0  # NaN never compares


class TestWorkloads:
    def test_run_workload(self, session, row_database):
        from repro.query import Workload

        queries = [
            aggregate("sales").sum("revenue").group_by("region").build(),
            select("sales").where(eq("id", 5)).build(),
        ]
        run = session.run_workload(Workload(queries, name="w"))
        legacy = row_database.run_workload(Workload(queries, name="w"))
        assert run.num_queries == 2
        assert run.total_runtime_ms == pytest.approx(legacy.total_runtime_ms)
