"""Cross-store differential fuzzing: the stores must be indistinguishable.

The storage advisor's whole premise is that moving a table between the row
store, the column store, or a partitioned hybrid layout changes *costs* and
never *semantics*.  This suite pins that with a seeded, deterministic query
fuzzer: random filters, group-bys, joins and aggregates — over data with
all-NULL columns, *mixed* NULL columns (NULL alongside values — the column
store's reserved-code-0 dictionaries), NaN values, duplicate keys, and empty
tables, interleaved with random DML (including NULL↔value updates) —
executed against all three layouts, asserting identical results everywhere.
A second differential axis pins the scan paths themselves: every layout must
return identical rows with code-domain predicates + zone-map pruning enabled
and with both disabled (the decode-and-compare reference).

Vectorized rewrites (PR 1) and the late-materialized dictionary-code
pipeline both re-implement scalar semantics in bulk form; this suite is the
net that catches any path where the two drift apart.  Results are compared
as multisets (partitioned tables return rows in partition order) with
NaN-aware float comparison (concatenating partitions permutes the summation
order of grouped aggregates).

Runs in tier-1; the ``fuzz`` marker lets CI invoke it standalone
(``pytest -m fuzz``).
"""

import math
import random

import pytest

from repro.engine.database import HybridDatabase
from repro.engine.partitioning import (
    HorizontalPartitionSpec,
    TablePartitioning,
    VerticalPartitionSpec,
)
from repro.engine.schema import Column, TableSchema
from repro.engine.types import DataType, Store
from repro.query.builder import aggregate, delete, insert, select, update
from repro.query.predicates import (
    And,
    Between,
    CompareOp,
    Comparison,
    InList,
    IsNull,
    Not,
    Or,
)

pytestmark = pytest.mark.fuzz

FACTS_SCHEMA = TableSchema(
    "facts",
    (
        Column("id", DataType.INTEGER, primary_key=True),
        Column("category", DataType.VARCHAR),
        Column("amount", DataType.DOUBLE),
        Column("quantity", DataType.INTEGER),
        Column("customer", DataType.INTEGER),
        Column("note", DataType.VARCHAR, nullable=True),
        # Mixed NULL/value column: exercises the reserved-code-0 dictionary.
        Column("tag", DataType.VARCHAR, nullable=True),
    ),
)

TAGS = ["t0", "t1", "t2", "t3"]

DIM_SCHEMA = TableSchema.build(
    "customers",
    [
        ("customer_id", DataType.INTEGER),
        ("segment", DataType.VARCHAR),
        ("score", DataType.DOUBLE),
    ],
    primary_key=["customer_id"],
)

CATEGORIES = ["alpha", "beta", "gamma", "delta", "epsilon"]
NUM_CUSTOMERS = 18  # facts reference ids up to 25: some rows have no partner

QUERIES_PER_SEED = 50
DML_EVERY = 12


def generate_rows(rng, num_rows, id_offset=0):
    """Fact rows with duplicate keys, NaN amounts and an all-NULL column."""
    rows = []
    for i in range(num_rows):
        amount = round(rng.uniform(-50.0, 150.0), 2)
        if rng.random() < 0.05:
            amount = float("nan")
        rows.append(
            {
                "id": id_offset + i,
                "category": rng.choice(CATEGORIES),
                "amount": amount,
                "quantity": rng.randrange(0, 7),  # few distinct: duplicates
                "customer": rng.randrange(0, 26),
                # note stays NULL: the all-NULL dictionary column.
                # tag mixes NULL with values: reserved code 0 next to codes.
                "tag": None if rng.random() < 0.3 else rng.choice(TAGS),
            }
        )
    return rows


def generate_dim_rows():
    return [
        {"customer_id": i, "segment": f"seg_{i % 5}", "score": round(i * 1.5, 2)}
        for i in range(NUM_CUSTOMERS)
    ]


def build_layouts(rng, rows, dim_rows):
    """The same logical database in three physical layouts."""
    layouts = {}
    for label, store in (("row", Store.ROW), ("column", Store.COLUMN)):
        database = HybridDatabase()
        database.create_table(FACTS_SCHEMA, store=store)
        database.create_table(DIM_SCHEMA, store=store)
        if rows:
            database.load_rows("facts", rows)
        database.load_rows("customers", dim_rows)
        layouts[label] = database

    database = HybridDatabase()
    database.create_table(FACTS_SCHEMA, store=Store.ROW)
    database.create_table(DIM_SCHEMA, store=Store.COLUMN)
    if rows:
        database.load_rows("facts", rows)
    database.load_rows("customers", generate_dim_rows())
    split_at = rng.randrange(0, 7)
    database.apply_partitioning(
        "facts",
        TablePartitioning(
            horizontal=HorizontalPartitionSpec(
                predicate=Comparison("quantity", CompareOp.GE, split_at)
            ),
            vertical=VerticalPartitionSpec(
                row_store_columns=("quantity", "customer", "note"),
                # tag goes to the column store so the partitioned layout
                # exercises the mixed-NULL dictionary.
                column_store_columns=("category", "amount", "tag"),
            ),
        ),
    )
    layouts["partitioned"] = database
    return layouts


# -- random query generation ----------------------------------------------------------


def random_predicate(rng, depth=0):
    choice = rng.random()
    if depth < 2 and choice < 0.25:
        children = tuple(random_predicate(rng, depth + 1) for _ in range(rng.randrange(2, 4)))
        return And(children) if rng.random() < 0.5 else Or(children)
    if depth < 2 and choice < 0.32:
        return Not(random_predicate(rng, depth + 1))
    pick = rng.randrange(9)
    if pick == 0:
        return Comparison("category", rng.choice(list(CompareOp)),
                          rng.choice(CATEGORIES + ["unknown"]))
    if pick == 1:
        return Comparison("amount", rng.choice(list(CompareOp)),
                          round(rng.uniform(-60.0, 160.0), 1))
    if pick == 2:
        return Comparison("quantity", rng.choice(list(CompareOp)), rng.randrange(-1, 8))
    if pick == 3:
        low = round(rng.uniform(-60.0, 100.0), 1)
        return Between("amount", low, round(low + rng.uniform(0.0, 80.0), 1),
                       include_low=rng.random() < 0.8, include_high=rng.random() < 0.8)
    if pick == 4:
        low = rng.randrange(0, 5)
        return Between("quantity", low, low + rng.randrange(0, 4))
    if pick == 5:
        return InList("category", tuple(
            rng.sample(CATEGORIES + ["unknown"], rng.randrange(1, 4))
        ))
    if pick == 6:
        return IsNull("note") if rng.random() < 0.5 else Comparison(
            "note", rng.choice([CompareOp.EQ, CompareOp.NE]), "anything"
        )
    if pick == 7:
        roll = rng.random()
        if roll < 0.3:
            return IsNull("tag")
        if roll < 0.6:
            return Comparison("tag", rng.choice(list(CompareOp)),
                              rng.choice(TAGS + ["unknown"]))
        return InList("tag", tuple(
            rng.sample(TAGS + [None], rng.randrange(1, 4))
        ))
    return InList("quantity", tuple(rng.sample(range(8), rng.randrange(1, 4))))


def random_select(rng):
    builder = select("facts")
    if rng.random() < 0.7:
        builder = builder.where(random_predicate(rng))
    if rng.random() < 0.5:
        columns = rng.sample(FACTS_SCHEMA.column_names, rng.randrange(1, 5))
        builder = builder.columns(*columns)
    return builder.build()


def random_aggregation(rng):
    builder = aggregate("facts")
    joined = rng.random() < 0.3
    if joined:
        builder = builder.join("customers", "customer", "customer_id")
    # MIN/MAX stay off the NaN-bearing float column: the scalar min/max fold
    # is order-dependent around NaN, and partitioning permutes row order.
    choices = [
        lambda b: b.count(),
        lambda b: b.sum("amount"),
        lambda b: b.avg("amount"),
        lambda b: b.sum("quantity"),
        lambda b: b.avg("quantity"),
        lambda b: b.min("quantity"),
        lambda b: b.max("quantity"),
        lambda b: b.min("category"),
        lambda b: b.max("category"),
        lambda b: b.count("note"),
        lambda b: b.min("note"),
        lambda b: b.count("tag"),
        lambda b: b.min("tag"),
        lambda b: b.max("tag"),
    ]
    if joined:
        choices.extend([
            lambda b: b.sum("customers.score"),
            lambda b: b.avg("customers.score"),
        ])
    for pick in rng.sample(choices, rng.randrange(1, 4)):
        builder = pick(builder)
    group_candidates = ["category", "quantity", "note", "amount", "tag"]
    if joined:
        group_candidates.append("customers.segment")
    if rng.random() < 0.65:
        builder = builder.group_by(
            *rng.sample(group_candidates, rng.randrange(1, 3))
        )
    if rng.random() < 0.5:
        builder = builder.where(random_predicate(rng))
    return builder.build()


def random_dml(rng, next_id):
    pick = rng.randrange(3)
    if pick == 0:
        rows = generate_rows(rng, rng.randrange(1, 6), id_offset=next_id)
        return insert("facts", rows), next_id + len(rows)
    if pick == 1:
        assignments = {}
        if rng.random() < 0.6:
            assignments["category"] = rng.choice(CATEGORIES + ["rewritten"])
        if rng.random() < 0.5:
            assignments["quantity"] = rng.randrange(0, 7)
        if rng.random() < 0.4:
            # NULL <-> value transitions on the mixed-NULL column.
            assignments["tag"] = rng.choice(TAGS + [None, "fresh"])
        if not assignments:
            assignments["amount"] = round(rng.uniform(0.0, 10.0), 2)
        return update("facts", assignments, random_predicate(rng)), next_id
    return delete("facts", random_predicate(rng)), next_id


# -- result comparison -----------------------------------------------------------------


def _sort_token(value):
    if value is None:
        return "\x00null"
    if isinstance(value, float):
        if value != value:
            return "\x01nan"
        return f"{value:.6f}"
    return f"{type(value).__name__}:{value!r}"


def _row_sort_key(row):
    return [(key, _sort_token(row[key])) for key in sorted(row)]


def _values_equal(left, right):
    if isinstance(left, float) and isinstance(right, float):
        if left != left or right != right:
            return left != left and right != right
        return math.isclose(left, right, rel_tol=1e-9, abs_tol=1e-9)
    return left == right


def assert_rows_equivalent(context, left, right):
    """Order-insensitive, NaN-aware row-multiset equality."""
    assert len(left) == len(right), context
    for row_left, row_right in zip(
        sorted(left, key=_row_sort_key), sorted(right, key=_row_sort_key)
    ):
        assert set(row_left) == set(row_right), context
        for key in row_left:
            assert _values_equal(row_left[key], row_right[key]), (
                f"{context}: {key}={row_left[key]!r} vs {row_right[key]!r}"
            )


# -- the fuzzer ------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(4))
def test_layouts_agree_on_random_workload(seed):
    rng = random.Random(seed)
    num_rows = rng.choice([0, rng.randrange(1, 60), rng.randrange(60, 260)])
    rows = generate_rows(rng, num_rows)
    layouts = build_layouts(rng, rows, generate_dim_rows())
    next_id = num_rows

    for step in range(QUERIES_PER_SEED):
        if step and step % DML_EVERY == 0:
            statement, next_id = random_dml(rng, next_id)
            outcomes = {
                label: database.execute(statement)
                for label, database in layouts.items()
            }
            affected = {
                label: result.affected_rows for label, result in outcomes.items()
            }
            assert len(set(affected.values())) == 1, (
                f"seed={seed} step={step} {statement!r}: {affected}"
            )
            continue
        query = random_select(rng) if rng.random() < 0.4 else random_aggregation(rng)
        context = f"seed={seed} step={step} query={query!r}"
        results = {
            label: database.execute(query) for label, database in layouts.items()
        }
        reference = results["row"].rows
        for label in ("column", "partitioned"):
            assert_rows_equivalent(f"{context} [{label}]", reference, results[label].rows)

    # After the query/DML stream, the stores must agree cell for cell.
    final = select("facts").build()
    reference = layouts["row"].execute(final).rows
    for label in ("column", "partitioned"):
        assert_rows_equivalent(
            f"seed={seed} final state [{label}]",
            reference,
            layouts[label].execute(final).rows,
        )


@pytest.mark.parametrize("seed", range(2))
def test_pruning_and_code_domain_toggles_preserve_results(seed):
    """Scan-path differential: pruned/code-domain results == decode/compare.

    Every read query is executed twice against the same databases — once
    with code-domain predicates and zone-map pruning enabled (the default)
    and once with both disabled — and the row multisets must agree on every
    layout.  DML runs once, between the paired reads.
    """
    from repro.engine.column_store import code_domain_disabled
    from repro.engine.zonemap import zone_pruning_disabled

    rng = random.Random(1000 + seed)
    rows = generate_rows(rng, rng.randrange(40, 200))
    layouts = build_layouts(rng, rows, generate_dim_rows())
    next_id = len(rows)

    for step in range(25):
        if step and step % 8 == 0:
            statement, next_id = random_dml(rng, next_id)
            for database in layouts.values():
                database.execute(statement)
            continue
        query = random_select(rng) if rng.random() < 0.5 else random_aggregation(rng)
        for label, database in layouts.items():
            fast = database.execute(query).rows
            with code_domain_disabled(), zone_pruning_disabled():
                slow = database.execute(query).rows
            assert_rows_equivalent(
                f"seed={seed} step={step} [{label}] pruning-vs-decode "
                f"query={query!r}",
                fast,
                slow,
            )


@pytest.mark.parametrize("seed", range(2))
def test_aggregate_pushdown_toggle_preserves_results_and_charges(seed):
    """Pushdown differential: pushdown results == decode-then-reduce results.

    Every aggregation is executed twice against the same databases — once
    with aggregate pushdown enabled (zero-scan answers, code-domain grouped
    aggregation, partition-partial merging) and once under
    ``aggregate_pushdown_disabled()`` — and both the row multisets and the
    :class:`CostBreakdown` components must agree on every layout: pushdown
    is a wall-clock optimisation, never a cost-model or semantics change.
    Covers grouped + ungrouped aggregates over mixed-NULL, NaN,
    empty-partition and post-DML tables.
    """
    from repro.engine.executor.agg_pushdown import aggregate_pushdown_disabled

    rng = random.Random(2000 + seed)
    num_rows = rng.choice([0, rng.randrange(1, 60), rng.randrange(60, 260)])
    rows = generate_rows(rng, num_rows)
    layouts = build_layouts(rng, rows, generate_dim_rows())
    next_id = num_rows

    for step in range(30):
        if step and step % 7 == 0:
            statement, next_id = random_dml(rng, next_id)
            for database in layouts.values():
                database.execute(statement)
            continue
        query = random_aggregation(rng)
        for label, database in layouts.items():
            pushed = database.execute(query)
            with aggregate_pushdown_disabled():
                reference = database.execute(query)
            context = (
                f"seed={seed} step={step} [{label}] pushdown-vs-decode "
                f"query={query!r}"
            )
            assert_rows_equivalent(context, pushed.rows, reference.rows)
            assert pushed.cost.components == reference.cost.components, context


@pytest.mark.parametrize("seed", range(2))
def test_delta_writes_toggle_preserves_results_and_charges(seed):
    """Delta/main differential: buffered writes == inline writes, in full.

    Two databases per layout run the identical statement stream — one with
    delta writes on and a small merge threshold (so scans constantly read
    main+delta unions and merges fire mid-stream), one built and operated
    entirely under ``delta_writes_disabled()`` (the inline pre-split
    reference).  Every statement must agree on rows, affected counts *and*
    bit-identical :class:`CostBreakdown` components: the split is a
    wall-clock optimisation, never a semantics or cost-model change.  The
    stream includes duplicate-primary-key batches, whose mid-batch
    partial-commit contract must hold identically on both paths.
    """
    import contextlib

    from repro.engine.column_store import delta_writes_disabled
    from repro.errors import ExecutionError

    rng = random.Random(3000 + seed)
    rows = generate_rows(rng, rng.randrange(20, 120))
    dim_rows = generate_dim_rows()
    split_at = rng.randrange(0, 7)

    def construct(reference):
        guard = delta_writes_disabled() if reference else contextlib.nullcontext()
        with guard:
            databases = {}
            database = HybridDatabase()
            if not reference:
                database.delta_merge_threshold = 16
            database.create_table(FACTS_SCHEMA, store=Store.COLUMN)
            database.create_table(DIM_SCHEMA, store=Store.COLUMN)
            database.load_rows("facts", rows)
            database.load_rows("customers", dim_rows)
            databases["column"] = database

            database = HybridDatabase()
            if not reference:
                database.delta_merge_threshold = 16
            database.create_table(FACTS_SCHEMA, store=Store.ROW)
            database.create_table(DIM_SCHEMA, store=Store.COLUMN)
            database.load_rows("facts", rows)
            database.load_rows("customers", dim_rows)
            database.apply_partitioning(
                "facts",
                TablePartitioning(
                    horizontal=HorizontalPartitionSpec(
                        predicate=Comparison("quantity", CompareOp.GE, split_at)
                    ),
                    vertical=VerticalPartitionSpec(
                        row_store_columns=("quantity", "customer", "note"),
                        column_store_columns=("category", "amount", "tag"),
                    ),
                ),
            )
            databases["partitioned"] = database
            return databases

    delta_dbs = construct(reference=False)
    inline_dbs = construct(reference=True)
    next_id = 10_000  # clear of the loaded ids

    def run_both(label, statement):
        outcomes = []
        for databases, reference in ((delta_dbs, False), (inline_dbs, True)):
            guard = delta_writes_disabled() if reference else contextlib.nullcontext()
            with guard:
                try:
                    outcomes.append(("ok", databases[label].execute(statement)))
                except ExecutionError as error:
                    outcomes.append(("error", str(error)))
        return outcomes

    for step in range(36):
        if step % 11 == 5:
            # Duplicate PK mid-batch: row one commits, rows two/three do not
            # — on both paths, with identical errors and charges intact.
            batch = generate_rows(rng, 1, id_offset=next_id) * 2
            batch += generate_rows(rng, 1, id_offset=next_id + 1)
            statement = insert("facts", batch)
            next_id += 2  # id used by row one; +1 burned by the lost row
            for label in delta_dbs:
                (fast_kind, fast), (slow_kind, slow) = run_both(label, statement)
                context = f"seed={seed} step={step} [{label}] dup-pk"
                assert fast_kind == slow_kind == "error", context
                assert fast == slow, context
            continue
        if step % 4 == 3:
            statement, next_id = random_dml(rng, next_id)
            for label in delta_dbs:
                (fast_kind, fast), (slow_kind, slow) = run_both(label, statement)
                context = f"seed={seed} step={step} [{label}] {statement!r}"
                assert fast_kind == slow_kind == "ok", context
                assert fast.affected_rows == slow.affected_rows, context
                assert fast.cost.components == slow.cost.components, context
            continue
        query = random_select(rng) if rng.random() < 0.5 else random_aggregation(rng)
        for label in delta_dbs:
            (fast_kind, fast), (slow_kind, slow) = run_both(label, query)
            context = (
                f"seed={seed} step={step} [{label}] delta-vs-inline "
                f"query={query!r}"
            )
            assert fast_kind == slow_kind == "ok", context
            assert_rows_equivalent(context, fast.rows, slow.rows)
            assert fast.cost.components == slow.cost.components, context

    # Merging everything must converge on the inline physical state: the
    # same probes still charge identically afterwards.
    probe = select("facts").build()
    for label in delta_dbs:
        delta_dbs[label].merge_deltas()
        fast = delta_dbs[label].execute(probe)
        with delta_writes_disabled():
            slow = inline_dbs[label].execute(probe)
        context = f"seed={seed} [{label}] post-merge"
        assert_rows_equivalent(context, fast.rows, slow.rows)
        assert fast.cost.components == slow.cost.components, context


@pytest.mark.shard
@pytest.mark.parametrize("seed", range(2))
def test_shard_toggle_preserves_results_and_charges(seed):
    """Shard differential: scatter/gather results == serial results, in full.

    Every read query runs twice against the same databases — once with
    shard-parallel execution enabled (the floor dropped so the fuzz tables
    shard) and once under ``shard_execution_disabled()`` — and both the row
    multisets and the :class:`CostBreakdown` components must agree on every
    layout: sharding is a wall-clock optimisation, never a cost-model or
    semantics change.  DML pushes the column layout through the
    delta-blocks-sharding window (the decision refuses until the merge);
    merging re-arms it, and the suite asserts the sharded path *really*
    executed — ``shard_stats`` non-empty — often enough that a silent
    permanent fallback cannot pass.
    """
    from repro.engine.shard import (
        shard_config,
        shard_execution_disabled,
        shutdown_worker_pool,
    )

    rng = random.Random(4000 + seed)
    rows = generate_rows(rng, rng.randrange(40, 200))
    layouts = build_layouts(rng, rows, generate_dim_rows())
    next_id = len(rows)
    sharded_runs = 0

    try:
        with shard_config(fan_out=3, min_rows=1):
            for step in range(24):
                if step and step % 6 == 0:
                    statement, next_id = random_dml(rng, next_id)
                    for database in layouts.values():
                        database.execute(statement)
                    # Column-store DML lands in the delta, which blocks
                    # sharding by design; merge to re-arm the sharded path.
                    layouts["column"].merge_deltas()
                    continue
                query = (
                    random_select(rng) if rng.random() < 0.4
                    else random_aggregation(rng)
                )
                for label, database in layouts.items():
                    sharded = database.execute(query)
                    with shard_execution_disabled():
                        reference = database.execute(query)
                    context = (
                        f"seed={seed} step={step} [{label}] shard-vs-serial "
                        f"query={query!r}"
                    )
                    assert_rows_equivalent(context, sharded.rows, reference.rows)
                    assert sharded.cost.components == reference.cost.components, context
                    assert not reference.shard_stats, context
                    if sharded.shard_stats:
                        # Only the plain column layout is shard-eligible.
                        assert label == "column", context
                        sharded_runs += 1
    finally:
        shutdown_worker_pool()

    assert sharded_runs >= 4, (
        f"seed={seed}: only {sharded_runs} sharded executions — the "
        f"scatter/gather path is silently falling back"
    )


@pytest.mark.matview
@pytest.mark.parametrize("seed", range(2))
def test_matview_toggle_preserves_results_and_charges(seed):
    """Matview differential: served views == base execution, in full.

    Two sessions over identical databases — one with materialized views on
    the recurring aggregate shapes, one without — run the same interleaved
    stream of random DML and recurring aggregations.  Every DML must bill
    identically on both sessions (maintenance is off the DML path), every
    served aggregate must return the reference's row multiset (staleness is
    repaired before serving, never served), and re-running under
    ``matview_disabled()`` must charge the :class:`CostBreakdown`
    bit-identically to the view-free session: views are a wall-clock
    optimisation, never a cost-model or semantics change.  Seed 1 partitions
    the base table, so refreshes alternate between the incremental
    (hot-only DML) and full (main touched / NaN group keys) paths.
    """
    from repro.api import connect
    from repro.engine.matview import matview_disabled

    recurring = [
        aggregate("facts").sum("quantity").count().group_by("category").build(),
        aggregate("facts").avg("amount").count("tag").group_by("tag").build(),
        # NaN group keys: the merge hazard forces the full-recompute refresh.
        aggregate("facts").count().sum("quantity").group_by("amount").build(),
    ]

    rng = random.Random(6000 + seed)
    rows = generate_rows(rng, rng.randrange(40, 200))

    def build_database():
        database = HybridDatabase()
        database.create_table(FACTS_SCHEMA, store=Store.COLUMN)
        database.create_table(DIM_SCHEMA, store=Store.COLUMN)
        database.load_rows("facts", rows)
        database.load_rows("customers", generate_dim_rows())
        if seed % 2:
            database.apply_partitioning(
                "facts",
                TablePartitioning(
                    horizontal=HorizontalPartitionSpec(
                        predicate=Comparison("quantity", CompareOp.GE, 4)
                    )
                ),
            )
        return database

    viewful = connect(database=build_database())
    plain = connect(database=build_database())
    for index, query in enumerate(recurring):
        viewful.create_view(f"mv_{index}", query)

    next_id = len(rows)
    aggregate_steps = 0
    for step in range(24):
        if step and step % 3 == 0:
            statement, next_id = random_dml(rng, next_id)
            with_views = viewful.execute(statement)
            without = plain.execute(statement)
            context = f"seed={seed} step={step} dml={statement!r}"
            assert with_views.cost.components == without.cost.components, context
            continue
        aggregate_steps += 1
        query = recurring[step % len(recurring)]
        context = f"seed={seed} step={step} matview-vs-base query={query!r}"
        served = viewful.execute(query)
        reference = plain.execute(query)
        assert served.view_hits, context  # always rewritten, stale or not
        assert_rows_equivalent(context, served.rows, reference.rows)
        with matview_disabled():
            fallback = viewful.execute(query)
        assert not fallback.view_hits, context
        assert_rows_equivalent(context, fallback.rows, reference.rows)
        assert fallback.cost.components == reference.cost.components, context

    stats = viewful.stats()
    assert stats.view_rewrite_hits == aggregate_steps
    assert stats.view_incremental_refreshes + stats.view_full_refreshes > 0, (
        f"seed={seed}: no refresh ever ran — the DML stream never staled "
        f"the views"
    )


def test_fuzz_volume():
    """The suite executes the advertised ~200 differential queries."""
    assert 4 * QUERIES_PER_SEED >= 200
