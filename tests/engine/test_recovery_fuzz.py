"""Crash-point recovery differential: kill the engine everywhere, recover, compare.

The durability subsystem declares every instruction boundary a crash could
separate from its neighbours as a named fault point
(:data:`repro.testing.faults.CRASH_POINTS` — WAL append/flush windows, the
three delta-merge phases, the three checkpoint phases).  This suite runs a
fixed workload — DDL, bulk load, threshold-crossing inserts (so merges fire
mid-statement), an update, a *failing* duplicate-primary-key batch (the
engine's deterministic partial-state contract), a checkpoint, and more DML —
and for **every** crash point:

1. arms a :class:`FaultPlan` that raises :class:`CrashError` at that point
   (standing in for the process dying there),
2. recovers the database from the WAL left on disk,
3. rebuilds a *reference* database by applying the committed prefix — the
   first ``report.last_lsn`` loggable statements — to a fresh engine with no
   WAL at all, and
4. asserts the recovered database matches the reference on every probe
   query: identical rows *and* bit-identical simulated-cost components
   (physical state differences would show up as charge differences).

A torn-write variant crashes mid-``write(2)`` so only a prefix of the flush
buffer reaches the file, and a coverage test asserts the workload actually
reaches every declared crash point — a point the workload cannot reach is a
crash window the suite silently stopped testing.

Runs in tier-1; the ``faultinject`` marker lets CI invoke it standalone
(``pytest -m faultinject``).
"""

import pytest

from repro.engine.database import HybridDatabase
from repro.engine.schema import Column, TableSchema
from repro.engine.types import DataType, Store
from repro.engine.wal import WriteAheadLog, recover
from repro.errors import ExecutionError
from repro.query.builder import aggregate, delete, insert, select, update
from repro.query.predicates import ge, lt
from repro.testing.faults import CRASH_POINTS, CrashError, FaultPlan, inject

pytestmark = pytest.mark.faultinject

SCHEMA = TableSchema(
    "facts",
    (
        Column("id", DataType.INTEGER, primary_key=True),
        Column("category", DataType.VARCHAR),
        Column("amount", DataType.DOUBLE, nullable=True),
    ),
)

#: Small enough that the insert batches below trigger mid-statement merges.
MERGE_THRESHOLD = 6

CATEGORIES = ("alpha", "beta", "gamma")


def _rows(start, count):
    return [
        {
            "id": i,
            "category": CATEGORIES[i % len(CATEGORIES)],
            "amount": None if i % 5 == 4 else round(i * 1.25, 2),
        }
        for i in range(start, start + count)
    ]


def _failing_insert(database):
    """Duplicate PK mid-batch: id 17 commits, id 3 aborts, id 18 is lost."""
    try:
        database.execute(insert("facts", [*_rows(17, 1), *_rows(3, 1), *_rows(18, 1)]))
    except ExecutionError:
        pass  # the original run survives the statement and keeps going


#: The workload: ``(loggable, apply)`` steps.  Every loggable step appends
#: exactly one WAL record, so after a crash ``report.last_lsn`` equals the
#: number of leading loggable steps that became durable.
STEPS = (
    (True, lambda db: db.create_table(SCHEMA, Store.COLUMN)),
    (True, lambda db: db.load_rows("facts", _rows(0, 8))),
    (True, lambda db: db.execute(insert("facts", _rows(8, 4)))),
    # Crosses MERGE_THRESHOLD: the delta merge (and its crash points) fires
    # inside this statement, after the rows are already in the delta.
    (True, lambda db: db.execute(insert("facts", _rows(12, 5)))),
    (True, lambda db: db.execute(update("facts", {"category": "hot"}, ge("id", 14)))),
    (True, _failing_insert),
    (False, lambda db: db.checkpoint()),
    (True, lambda db: db.execute(insert("facts", _rows(20, 3)))),
    (True, lambda db: db.execute(delete("facts", lt("id", 2)))),
    # A second threshold-crossing insert: merge crash points are reachable
    # after the checkpoint too.
    (True, lambda db: db.execute(insert("facts", _rows(30, 7)))),
)

PROBES = (
    select("facts").build(),
    select("facts").where(ge("id", 10)).columns("id", "category").build(),
    aggregate("facts").count().sum("amount").group_by("category").build(),
)


def run_with_crash(path, crash_at, at_hit=1, torn_bytes=None):
    """Run the workload against a WAL at *path*, crashing per the plan.

    Returns ``(crashed, plan)``; the in-memory database is discarded, as a
    real crash would discard it.
    """
    database = HybridDatabase()
    database.delta_merge_threshold = MERGE_THRESHOLD
    database.attach_wal(WriteAheadLog(path, sync_mode="commit"))
    plan = FaultPlan(crash_at=crash_at, at_hit=at_hit, torn_bytes=torn_bytes)
    crashed = False
    with inject(plan):
        try:
            for _loggable, apply_step in STEPS:
                apply_step(database)
        except CrashError:
            crashed = True
    if not crashed:
        database.wal.close()
    return crashed, plan


def reference_database(num_durable):
    """The committed prefix, applied to a fresh engine without any WAL."""
    database = HybridDatabase()
    applied = 0
    for loggable, apply_step in STEPS:
        if not loggable:
            continue  # checkpoints never change logical state
        if applied == num_durable:
            break
        apply_step(database)
        applied += 1
    assert applied == num_durable, "workload has fewer steps than the log"
    return database


def assert_recovered_equals_reference(context, recovered, reference):
    assert recovered.table_names() == reference.table_names(), context
    if not reference.table_names():
        return
    for probe in PROBES:
        got = recovered.execute(probe)
        want = reference.execute(probe)
        assert got.rows == want.rows, f"{context} probe={probe!r}"
        assert got.cost.components == want.cost.components, (
            f"{context} probe={probe!r}: recovered physical state diverges "
            "from the committed prefix (charge mismatch)"
        )


@pytest.mark.parametrize("at_hit", (1, 3))
@pytest.mark.parametrize("crash_at", CRASH_POINTS)
def test_crash_at_every_point_recovers_the_committed_prefix(
    tmp_path, crash_at, at_hit
):
    path = str(tmp_path / "db.wal")
    crashed, _plan = run_with_crash(path, crash_at, at_hit=at_hit)
    if at_hit == 1:
        assert crashed, f"workload never reached crash point {crash_at!r}"
    result = recover(path)
    reference = reference_database(result.report.last_lsn)
    assert_recovered_equals_reference(
        f"crash_at={crash_at!r} at_hit={at_hit}", result.database, reference
    )


def test_torn_flush_loses_only_the_statement_in_flight(tmp_path):
    path = str(tmp_path / "db.wal")
    crashed, _plan = run_with_crash(
        path, "wal.flush.after_write", at_hit=4, torn_bytes=5
    )
    assert crashed
    result = recover(path)
    assert result.report.torn_tail_offset is not None
    assert result.report.torn_tail_bytes == 5
    assert result.report.last_lsn == 3  # the fourth record was torn
    reference = reference_database(3)
    assert_recovered_equals_reference("torn flush", result.database, reference)


def test_duplicate_pk_batch_replays_to_the_same_partial_state(tmp_path):
    """The failing statement is durable, and replaying it re-fails identically."""
    path = str(tmp_path / "db.wal")
    crashed, _plan = run_with_crash(path, crash_at=None)
    assert not crashed
    result = recover(path)
    # The checkpoint made the failing statement (LSN 6) stale; force a full
    # replay of the log instead by recovering from a WAL without a snapshot.
    bare = str(tmp_path / "bare.wal")
    crashed, _plan = run_with_crash_without_checkpoint(bare)
    assert not crashed
    replayed = recover(bare)
    assert [error_lsn for error_lsn, _ in replayed.report.replay_errors] == [6]
    assert "duplicate primary key" in replayed.report.replay_errors[0][1]
    ids = {row["id"] for row in replayed.database.execute(PROBES[0]).rows}
    assert 17 in ids  # the prefix before the duplicate committed
    assert 18 not in ids  # the suffix after it did not
    assert result.report.replay_errors == []  # snapshot path: nothing re-raised


def run_with_crash_without_checkpoint(path):
    database = HybridDatabase()
    database.delta_merge_threshold = MERGE_THRESHOLD
    database.attach_wal(WriteAheadLog(path, sync_mode="commit"))
    plan = FaultPlan(crash_at=None)
    crashed = False
    with inject(plan):
        try:
            for loggable, apply_step in STEPS:
                if not loggable:
                    continue
                apply_step(database)
        except CrashError:
            crashed = True
    if not crashed:
        database.wal.close()
    return crashed, plan


def test_checkpoint_replace_window_drops_stale_records(tmp_path):
    """Crash between the snapshot rename and ``truncate(0)``.

    The log still holds every pre-checkpoint record next to a snapshot that
    already contains their effects; recovery must restore the snapshot and
    provably drop all of them via the LSN filter instead of replaying any.
    """
    path = str(tmp_path / "db.wal")
    crashed, _plan = run_with_crash(path, "checkpoint.after_replace")
    assert crashed
    result = recover(path)
    assert result.report.snapshot_restored
    assert result.report.snapshot_lsn == 6
    # All six pre-checkpoint records are still on disk and all are stale.
    assert result.report.records_stale == 6
    assert result.report.records_applied == 0
    assert result.report.last_lsn == 6
    reference = reference_database(6)
    assert_recovered_equals_reference(
        "checkpoint.after_replace", result.database, reference
    )


def test_checkpoint_truncate_window_recovers_snapshot_alone(tmp_path):
    """Crash between ``truncate(0)`` and the magic landing on disk.

    The log file is empty — not even the magic made it — which historically
    made ``_scan_log`` raise "bad magic".  Recovery must treat it as an
    all-torn tail, restore the snapshot, and re-opening the log must
    reinitialize the header so appends keep working.
    """
    path = str(tmp_path / "db.wal")
    crashed, _plan = run_with_crash(path, "checkpoint.after_truncate")
    assert crashed
    result = recover(path)
    assert result.report.snapshot_restored
    assert result.report.snapshot_lsn == 6
    assert result.report.records_applied == 0
    assert result.report.records_stale == 0
    assert result.report.torn_tail_offset == 0
    reference = reference_database(6)
    assert_recovered_equals_reference(
        "checkpoint.after_truncate", result.database, reference
    )
    # Appends resume cleanly behind a rewritten magic.
    database = result.database
    database.attach_wal(WriteAheadLog(path, sync_mode="commit"))
    database.execute(insert("facts", _rows(50, 2)))
    database.wal.close()
    replayed = recover(path)
    assert replayed.report.records_applied == 1
    assert replayed.report.clean
    ids = {row["id"] for row in replayed.database.execute(PROBES[0]).rows}
    assert {50, 51} <= ids


def test_torn_magic_after_checkpoint_recovers_and_reopens(tmp_path):
    """A torn write of the magic itself (file holds a strict prefix of it)."""
    from repro.testing.faults import truncate_file

    path = str(tmp_path / "db.wal")
    crashed, _plan = run_with_crash(path, crash_at=None)
    assert not crashed
    truncate_file(path, 3)  # mid-magic: b"RPW"
    result = recover(path)
    assert result.report.snapshot_restored
    assert result.report.torn_tail_offset == 0
    assert result.report.torn_tail_bytes == 3
    # The three post-checkpoint records are gone with the torn reset; the
    # recovered state is exactly the snapshot.
    reference = reference_database(6)
    assert_recovered_equals_reference("torn magic", result.database, reference)
    log = WriteAheadLog(path, sync_mode="commit")
    log.append("dml", insert("facts", _rows(60, 1)))
    log.close()
    assert recover(path).report.clean


def test_workload_reaches_every_declared_crash_point(tmp_path):
    """Coverage guard: a point the workload misses is silently untested."""
    path = str(tmp_path / "db.wal")
    crashed, plan = run_with_crash(path, crash_at=None)
    assert not crashed
    missing = set(CRASH_POINTS) - set(plan.hits)
    assert not missing, f"workload never reaches: {sorted(missing)}"
