"""Materialized-view engine tests: refresh machinery, catalog, freshness.

The refresh contract under test: a view's materialized state is stamped with
per-unit zone-epoch tokens; DML only bumps epochs (maintenance is off the DML
path), and :meth:`MaterializedView.refresh` recomputes exactly the units
whose token changed — merging with the unchanged units' cached partials when
the partial-merge hazard check allows, recomputing from scratch otherwise —
so a refreshed view always equals the recompute-per-query reference.
"""

import math

import pytest

from repro.engine.database import HybridDatabase
from repro.engine.matview import (
    REFRESH_FULL,
    REFRESH_INCREMENTAL,
    REFRESH_INITIAL,
    REFRESH_NOOP,
    MaterializedView,
    matview_disabled,
    matview_enabled,
)
from repro.engine.partitioning import HorizontalPartitionSpec, TablePartitioning
from repro.engine.schema import Column, TableSchema
from repro.engine.types import DataType, Store
from repro.errors import CatalogError
from repro.query.builder import aggregate, insert, select, update
from repro.query.predicates import CompareOp, Comparison

pytestmark = pytest.mark.matview

SCHEMA = TableSchema(
    "facts",
    (
        Column("id", DataType.INTEGER, primary_key=True),
        Column("region", DataType.VARCHAR),
        Column("amount", DataType.DOUBLE),
        Column("quantity", DataType.INTEGER),
    ),
)


def make_rows(n, start=0):
    return [
        {
            "id": start + i,
            "region": f"r{i % 3}",
            "amount": float(i),
            "quantity": i % 5,
        }
        for i in range(n)
    ]


def build_database(store=Store.COLUMN, num_rows=60):
    database = HybridDatabase()
    database.create_table(SCHEMA, store=store)
    database.load_rows("facts", make_rows(num_rows))
    return database


def grouped_query():
    return aggregate("facts").sum("amount").count().group_by("region").build()


def sorted_rows(rows):
    return sorted(rows, key=lambda row: str(sorted(row.items())))


class TestRefresh:
    def test_initial_then_noop(self):
        database = build_database()
        view = MaterializedView("mv", grouped_query())
        table = database.table_object("facts")

        result = view.refresh(table, database.device)
        assert result.kind == REFRESH_INITIAL
        assert view.is_fresh(table)
        assert sorted_rows(view.result_rows) == sorted_rows(
            database.execute(grouped_query()).rows
        )

        again = view.refresh(table, database.device)
        assert again.kind == REFRESH_NOOP
        assert again.cost.components == {}

    @pytest.mark.parametrize("store", [Store.ROW, Store.COLUMN])
    def test_refresh_tracks_dml(self, store):
        database = build_database(store=store)
        view = MaterializedView("mv", grouped_query())
        table = database.table_object("facts")
        view.refresh(table, database.device)

        database.execute(insert("facts", make_rows(5, start=1000)))
        assert not view.is_fresh(table)
        view.refresh(table, database.device)
        assert view.is_fresh(table)
        assert sorted_rows(view.result_rows) == sorted_rows(
            database.execute(grouped_query()).rows
        )

        database.execute(
            update("facts", {"amount": 999.0},
                   Comparison("quantity", CompareOp.EQ, 1))
        )
        assert not view.is_fresh(table)
        view.refresh(table, database.device)
        assert sorted_rows(view.result_rows) == sorted_rows(
            database.execute(grouped_query()).rows
        )

    def test_incremental_reuses_untouched_main(self):
        """Hot-only DML refreshes incrementally: main's partials are reused."""
        database = build_database(store=Store.COLUMN, num_rows=80)
        database.apply_partitioning(
            "facts",
            TablePartitioning(
                horizontal=HorizontalPartitionSpec(
                    predicate=Comparison("id", CompareOp.GE, 70)
                )
            ),
        )
        table = database.table_object("facts")
        view = MaterializedView("mv", grouped_query())
        view.refresh(table, database.device)

        # Inserts route to the hot partition; main's epochs stay put.
        database.execute(insert("facts", make_rows(4, start=2000)))
        result = view.refresh(table, database.device)
        assert result.kind == REFRESH_INCREMENTAL
        assert "main" in result.units_reused
        assert result.units_recomputed == ("hot",)
        assert sorted_rows(view.result_rows) == sorted_rows(
            database.execute(grouped_query()).rows
        )

    def test_nan_group_key_forces_full_recompute(self):
        """A NaN among the group keys defeats the merge; refresh goes full."""
        database = build_database(num_rows=20)
        database.execute(
            insert("facts", [
                {"id": 500, "region": "rX", "amount": float("nan"), "quantity": 1},
            ])
        )
        query = (
            aggregate("facts").count().sum("quantity").group_by("amount").build()
        )
        table = database.table_object("facts")
        view = MaterializedView("mv", query)
        assert view.refresh(table, database.device).kind == REFRESH_INITIAL

        database.execute(insert("facts", make_rows(3, start=600)))
        result = view.refresh(table, database.device)
        assert result.kind == REFRESH_FULL
        assert result.units_reused == ()

        reference = database.execute(query).rows
        assert len(view.result_rows) == len(reference)
        nan_rows = [
            row for row in view.result_rows
            if isinstance(row["amount"], float) and math.isnan(row["amount"])
        ]
        assert len(nan_rows) == 1

    def test_refresh_charges_only_changed_units(self):
        """Incremental refresh charges strictly less than the initial one."""
        database = build_database(store=Store.COLUMN, num_rows=200)
        database.apply_partitioning(
            "facts",
            TablePartitioning(
                horizontal=HorizontalPartitionSpec(
                    predicate=Comparison("id", CompareOp.GE, 190)
                )
            ),
        )
        table = database.table_object("facts")
        view = MaterializedView("mv", grouped_query())
        initial = view.refresh(table, database.device)

        database.execute(insert("facts", make_rows(2, start=3000)))
        incremental = view.refresh(table, database.device)
        assert incremental.kind == REFRESH_INCREMENTAL
        assert incremental.cost.total_ms < initial.cost.total_ms


class TestViewValidation:
    def test_rejects_non_aggregations(self):
        with pytest.raises(CatalogError):
            MaterializedView("mv", select("facts").build())

    def test_rejects_joins(self):
        dim = TableSchema.build(
            "dims", [("k", DataType.INTEGER), ("v", DataType.VARCHAR)],
            primary_key=["k"],
        )
        assert dim is not None
        query = (
            aggregate("facts").sum("amount")
            .join("dims", "quantity", "k").build()
        )
        with pytest.raises(CatalogError):
            MaterializedView("mv", query)

    def test_rejects_placeholders(self):
        from repro.query.parser import parse

        query = parse("SELECT sum(amount) FROM facts WHERE quantity = ?")
        with pytest.raises(CatalogError):
            MaterializedView("mv", query)


class TestDatabaseViewDDL:
    def test_create_view_materializes_immediately(self):
        database = build_database()
        view = database.create_view("mv", grouped_query())
        assert database.view_names() == ["mv"]
        assert view.is_fresh(database.table_object("facts"))
        assert database.catalog.has_view("mv")
        assert "mv" in database.describe()

    def test_duplicate_name_and_fingerprint_rejected(self):
        database = build_database()
        database.create_view("mv", grouped_query())
        with pytest.raises(CatalogError):
            database.create_view("mv", aggregate("facts").count().build())
        with pytest.raises(CatalogError):
            database.create_view("other", grouped_query())

    def test_matching_view_by_fingerprint(self):
        database = build_database()
        created = database.create_view("mv", grouped_query())
        assert database.matching_view(grouped_query()) is created
        assert database.matching_view(aggregate("facts").count().build()) is None
        assert database.matching_view(select("facts").build()) is None

    def test_drop_table_cascades_views(self):
        database = build_database()
        database.create_view("mv", grouped_query())
        database.drop_table("facts")
        assert database.view_names() == []
        assert not database.catalog.has_view("mv")

    def test_view_catalog_version_bumps(self):
        database = build_database()
        catalog = database.catalog
        version = catalog.view_catalog_version
        database.create_view("mv", grouped_query())
        assert catalog.view_catalog_version > version

        version = catalog.view_catalog_version
        database.refresh_view("mv")  # explicit refresh is a catalog event
        assert catalog.view_catalog_version > version

        version = catalog.view_catalog_version
        database.drop_view("mv")
        assert catalog.view_catalog_version > version

    def test_refresh_view_reports_staleness(self):
        database = build_database()
        database.create_view("mv", grouped_query())
        assert database.refresh_view("mv").kind == REFRESH_NOOP
        database.execute(insert("facts", make_rows(2, start=700)))
        assert database.refresh_view("mv").kind != REFRESH_NOOP


def test_toggle_nests_and_restores():
    assert matview_enabled()
    with matview_disabled():
        assert not matview_enabled()
        with matview_disabled():
            assert not matview_enabled()
        assert not matview_enabled()
    assert matview_enabled()
