"""Tests for horizontal/vertical partitioning specs and PartitionedTable."""

import pytest

from repro.engine.partitioning import (
    HorizontalPartitionSpec,
    PartitionedTable,
    TablePartitioning,
    VerticalPartitionSpec,
)
from repro.engine.schema import TableSchema
from repro.engine.table import StoredTable
from repro.engine.types import DataType, Store
from repro.errors import PartitioningError
from repro.query.predicates import ge


@pytest.fixture
def schema() -> TableSchema:
    return TableSchema.build(
        "orders",
        [
            ("id", DataType.INTEGER),
            ("amount", DataType.DOUBLE),
            ("region", DataType.VARCHAR),
            ("status", DataType.VARCHAR),
        ],
        primary_key=["id"],
    )


@pytest.fixture
def rows():
    return [
        {"id": i, "amount": i * 1.0, "region": f"r{i % 4}", "status": "open"}
        for i in range(100)
    ]


def both_partitioning() -> TablePartitioning:
    return TablePartitioning(
        horizontal=HorizontalPartitionSpec(predicate=ge("id", 80)),
        vertical=VerticalPartitionSpec(
            row_store_columns=("status",), column_store_columns=("amount", "region")
        ),
    )


class TestSpecs:
    def test_vertical_spec_rejects_overlap(self):
        with pytest.raises(PartitioningError):
            VerticalPartitionSpec(("a", "b"), ("b", "c"))

    def test_vertical_spec_validation(self, schema):
        spec = VerticalPartitionSpec(("status",), ("amount", "region"))
        spec.validate(schema)
        with pytest.raises(PartitioningError):
            VerticalPartitionSpec(("status",), ("amount",)).validate(schema)  # missing region
        with pytest.raises(PartitioningError):
            VerticalPartitionSpec(("status", "id"), ("amount", "region")).validate(schema)
        with pytest.raises(PartitioningError):
            VerticalPartitionSpec(("status", "missing"), ("amount", "region")).validate(schema)

    def test_partitioning_requires_some_spec(self):
        with pytest.raises(PartitioningError):
            TablePartitioning()

    def test_horizontal_unknown_column_rejected(self, schema):
        partitioning = TablePartitioning(
            horizontal=HorizontalPartitionSpec(predicate=ge("missing", 1))
        )
        with pytest.raises(PartitioningError):
            partitioning.validate(schema)

    def test_store_of_vertical_columns(self, schema):
        spec = VerticalPartitionSpec(("status",), ("amount", "region"))
        assert spec.store_of("status", schema) is Store.ROW
        assert spec.store_of("amount", schema) is Store.COLUMN
        assert spec.store_of("id", schema) is Store.COLUMN

    def test_describe_mentions_both_schemes(self, schema):
        description = both_partitioning().describe()
        assert "horizontal" in description
        assert "vertical" in description


class TestPartitionedTable:
    def test_from_table_routes_rows(self, schema, rows):
        base = StoredTable(schema, Store.ROW)
        base.bulk_load(rows)
        partitioned = PartitionedTable.from_table(base, both_partitioning())
        assert partitioned.num_rows == 100
        assert partitioned.hot.num_rows == 20      # id >= 80
        assert partitioned.main_num_rows == 80
        assert partitioned.has_vertical_split
        assert partitioned.vertical_row_part.schema.column_names == ("id", "status")
        assert set(partitioned.vertical_col_part.schema.column_names) == {
            "id", "amount", "region"
        }

    def test_all_rows_round_trip(self, schema, rows):
        base = StoredTable(schema, Store.ROW)
        base.bulk_load(rows)
        partitioned = PartitionedTable.from_table(base, both_partitioning())
        reconstructed = sorted(partitioned.all_rows(), key=lambda row: row["id"])
        assert reconstructed == rows

    def test_inserts_route_to_hot_partition(self, schema, rows):
        base = StoredTable(schema, Store.ROW)
        base.bulk_load(rows)
        partitioned = PartitionedTable.from_table(base, both_partitioning())
        partitioned.insert_rows(
            [{"id": 500, "amount": 1.0, "region": "r0", "status": "new"}]
        )
        assert partitioned.hot.num_rows == 21
        assert partitioned.main_num_rows == 80

    def test_vertical_only_insert_splits_columns(self, schema, rows):
        partitioning = TablePartitioning(
            vertical=VerticalPartitionSpec(("status",), ("amount", "region"))
        )
        partitioned = PartitionedTable(schema, partitioning)
        partitioned.insert_rows(
            [{"id": 1, "amount": 2.0, "region": "r1", "status": "open"}]
        )
        assert partitioned.num_rows == 1
        assert partitioned.vertical_row_part.num_rows == 1
        assert partitioned.vertical_col_part.num_rows == 1

    def test_migrate_hot_to_main(self, schema, rows):
        base = StoredTable(schema, Store.ROW)
        base.bulk_load(rows)
        partitioned = PartitionedTable.from_table(base, both_partitioning())
        moved = partitioned.migrate_hot_to_main()
        assert moved == 20
        assert partitioned.hot.num_rows == 0
        assert partitioned.main_num_rows == 100
        assert partitioned.num_rows == 100

    def test_to_stored_table_collapses_layout(self, schema, rows):
        base = StoredTable(schema, Store.ROW)
        base.bulk_load(rows)
        partitioned = PartitionedTable.from_table(base, both_partitioning())
        collapsed = partitioned.to_stored_table(Store.COLUMN)
        assert collapsed.store is Store.COLUMN
        assert sorted(collapsed.all_rows(), key=lambda r: r["id"]) == rows

    def test_parts_for_columns_routing(self, schema, rows):
        base = StoredTable(schema, Store.ROW)
        base.bulk_load(rows)
        partitioned = PartitionedTable.from_table(base, both_partitioning())
        assert partitioned.main_parts_for_columns(["amount"]) == [
            partitioned.vertical_col_part
        ]
        assert partitioned.main_parts_for_columns(["status"]) == [
            partitioned.vertical_row_part
        ]
        assert len(partitioned.main_parts_for_columns(["amount", "status"])) == 2
        # Key-only access goes to the row part (indexed point lookups).
        assert partitioned.main_parts_for_columns(["id"]) == [
            partitioned.vertical_row_part
        ]

    def test_statistics_helpers(self, schema, rows):
        base = StoredTable(schema, Store.ROW)
        base.bulk_load(rows)
        partitioned = PartitionedTable.from_table(base, both_partitioning())
        assert partitioned.column_distinct_count("region") == 4
        assert partitioned.column_min_max("id") == (0, 99)
        assert 0 < partitioned.compression_rate() <= 1.0
