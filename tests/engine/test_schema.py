"""Tests for Column and TableSchema."""

import pytest

from repro.engine.schema import Column, TableSchema
from repro.engine.types import DataType
from repro.errors import SchemaError


def make_schema() -> TableSchema:
    return TableSchema.build(
        "orders",
        [
            ("id", DataType.INTEGER),
            ("customer", DataType.VARCHAR),
            ("total", DataType.DOUBLE),
            ("open_flag", DataType.BOOLEAN),
        ],
        primary_key=["id"],
    )


class TestColumn:
    def test_width_comes_from_dtype(self):
        column = Column("total", DataType.DOUBLE)
        assert column.width_bytes == DataType.DOUBLE.width_bytes

    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("", DataType.INTEGER)
        with pytest.raises(SchemaError):
            Column("bad name", DataType.INTEGER)

    def test_nullable_primary_key_rejected(self):
        with pytest.raises(SchemaError):
            Column("id", DataType.INTEGER, nullable=True, primary_key=True)


class TestTableSchema:
    def test_build_marks_primary_key(self):
        schema = make_schema()
        assert schema.primary_key == ("id",)
        assert schema.column("id").primary_key

    def test_column_names_preserve_order(self):
        schema = make_schema()
        assert schema.column_names == ("id", "customer", "total", "open_flag")

    def test_row_width_is_sum_of_column_widths(self):
        schema = make_schema()
        expected = sum(c.width_bytes for c in schema.columns)
        assert schema.row_width_bytes == expected

    def test_columns_width_bytes_subset(self):
        schema = make_schema()
        assert schema.columns_width_bytes(["id", "total"]) == (
            DataType.INTEGER.width_bytes + DataType.DOUBLE.width_bytes
        )

    def test_index_of_and_has_column(self):
        schema = make_schema()
        assert schema.index_of("total") == 2
        assert schema.has_column("customer")
        assert not schema.has_column("missing")

    def test_unknown_column_raises(self):
        schema = make_schema()
        with pytest.raises(SchemaError):
            schema.column("missing")
        with pytest.raises(SchemaError):
            schema.index_of("missing")

    def test_duplicate_column_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema.build("t", [("a", DataType.INTEGER), ("a", DataType.DOUBLE)])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", ())

    def test_unknown_primary_key_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema.build("t", [("a", DataType.INTEGER)], primary_key=["b"])

    def test_subset_preserves_column_definitions(self):
        schema = make_schema()
        subset = schema.subset(["id", "total"])
        assert subset.column_names == ("id", "total")
        assert subset.column("id").primary_key
        assert subset.name == "orders"


class TestRowValidation:
    def test_valid_row_is_coerced(self):
        schema = make_schema()
        row = schema.validate_row(
            {"id": "5", "customer": 77, "total": "1.5", "open_flag": "true"}
        )
        assert row == {"id": 5, "customer": "77", "total": 1.5, "open_flag": True}

    def test_missing_required_column_rejected(self):
        schema = make_schema()
        with pytest.raises(SchemaError):
            schema.validate_row({"id": 1, "customer": "x", "total": 2.0})

    def test_unknown_column_rejected(self):
        schema = make_schema()
        with pytest.raises(SchemaError):
            schema.validate_row({"id": 1, "customer": "x", "total": 2.0,
                                 "open_flag": True, "extra": 1})

    def test_nullable_column_defaults_to_none(self):
        schema = TableSchema(
            "t",
            (
                Column("id", DataType.INTEGER, primary_key=True),
                Column("note", DataType.VARCHAR, nullable=True),
            ),
        )
        row = schema.validate_row({"id": 3})
        assert row == {"id": 3, "note": None}
