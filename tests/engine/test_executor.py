"""Tests for the query executor: aggregation, selection, DML, joins.

Queries are executed through :class:`HybridDatabase` against the same data in
both stores; results must agree and match independently computed expectations.
"""

import pytest

from repro.engine import HybridDatabase, Store
from repro.engine.executor.aggregates import GroupedAggregation, aggregate_values
from repro.query import (
    AggregateFunction,
    AggregateSpec,
    AggregationQuery,
    aggregate,
    between,
    delete,
    eq,
    ge,
    insert,
    select,
    update,
)
from repro.errors import QueryError


def expected_sum(rows, column, predicate=None):
    return sum(row[column] for row in rows if predicate is None or predicate.evaluate(row))


@pytest.mark.parametrize("store", [Store.ROW, Store.COLUMN])
class TestAggregation:
    def test_ungrouped_sum_and_avg(self, database_factory, sales_rows, store):
        database = database_factory(store)
        query = aggregate("sales").sum("revenue").avg("quantity").build()
        result = database.execute(query)
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row["sum_revenue"] == pytest.approx(expected_sum(sales_rows, "revenue"))
        assert row["avg_quantity"] == pytest.approx(
            expected_sum(sales_rows, "quantity") / len(sales_rows)
        )
        assert result.runtime_ms > 0

    def test_grouped_aggregation(self, database_factory, sales_rows, store):
        database = database_factory(store)
        query = aggregate("sales").sum("revenue").group_by("region").build()
        result = database.execute(query)
        assert len(result.rows) == 7  # region_0 .. region_6
        by_region = {row["region"]: row["sum_revenue"] for row in result.rows}
        expected = {}
        for row in sales_rows:
            expected[row["region"]] = expected.get(row["region"], 0.0) + row["revenue"]
        for region, value in expected.items():
            assert by_region[region] == pytest.approx(value)

    def test_aggregation_with_predicate(self, database_factory, sales_rows, store):
        database = database_factory(store)
        predicate = between("product", 0, 9)
        query = aggregate("sales").sum("revenue").where(predicate).build()
        result = database.execute(query)
        assert result.rows[0]["sum_revenue"] == pytest.approx(
            expected_sum(sales_rows, "revenue", predicate)
        )

    def test_count_star(self, database_factory, sales_rows, store):
        database = database_factory(store)
        query = aggregate("sales").count("*").build()
        result = database.execute(query)
        assert result.rows[0]["count_star"] == len(sales_rows)

    def test_min_max(self, database_factory, sales_rows, store):
        database = database_factory(store)
        query = aggregate("sales").min("revenue").max("revenue").build()
        row = database.execute(query).rows[0]
        assert row["min_revenue"] == pytest.approx(min(r["revenue"] for r in sales_rows))
        assert row["max_revenue"] == pytest.approx(max(r["revenue"] for r in sales_rows))

    def test_unknown_column_rejected(self, database_factory, store):
        database = database_factory(store)
        query = aggregate("sales").sum("missing").build()
        with pytest.raises(QueryError):
            database.execute(query)


@pytest.mark.parametrize("store", [Store.ROW, Store.COLUMN])
class TestSelect:
    def test_point_query_by_primary_key(self, database_factory, sales_rows, store):
        database = database_factory(store)
        result = database.execute(select("sales").where(eq("id", 123)).build())
        assert len(result.rows) == 1
        assert result.rows[0]["id"] == 123
        assert result.rows[0]["region"] == sales_rows[123]["region"]

    def test_projection(self, database_factory, store):
        database = database_factory(store)
        result = database.execute(
            select("sales").columns("id", "status").where(eq("id", 5)).build()
        )
        assert set(result.rows[0].keys()) == {"id", "status"}

    def test_range_query_with_limit(self, database_factory, store):
        database = database_factory(store)
        result = database.execute(
            select("sales").where(between("id", 100, 199)).limit(10).build()
        )
        assert len(result.rows) == 10

    def test_full_scan_without_predicate(self, database_factory, sales_rows, store):
        database = database_factory(store)
        result = database.execute(select("sales").build())
        assert len(result.rows) == len(sales_rows)


@pytest.mark.parametrize("store", [Store.ROW, Store.COLUMN])
class TestWrites:
    def test_insert_then_read_back(self, database_factory, store):
        database = database_factory(store)
        new_row = {"id": 99_999, "region": "region_x", "product": 1,
                   "revenue": 5.5, "quantity": 2, "status": "open"}
        result = database.execute(insert("sales", [new_row]))
        assert result.affected_rows == 1
        read_back = database.execute(select("sales").where(eq("id", 99_999)).build())
        assert read_back.rows[0]["region"] == "region_x"

    def test_update_by_primary_key(self, database_factory, store):
        database = database_factory(store)
        result = database.execute(update("sales", {"status": "archived"}, eq("id", 10)))
        assert result.affected_rows == 1
        read_back = database.execute(select("sales").where(eq("id", 10)).build())
        assert read_back.rows[0]["status"] == "archived"

    def test_update_by_non_key_predicate(self, database_factory, sales_rows, store):
        database = database_factory(store)
        affected = database.execute(
            update("sales", {"quantity": 0}, eq("region", "region_3"))
        ).affected_rows
        expected = sum(1 for row in sales_rows if row["region"] == "region_3")
        assert affected == expected

    def test_delete(self, database_factory, sales_rows, store):
        database = database_factory(store)
        result = database.execute(delete("sales", ge("id", 900)))
        assert result.affected_rows == 100
        remaining = database.execute(aggregate("sales").count("*").build())
        assert remaining.rows[0]["count_star"] == len(sales_rows) - 100


class TestCostAsymmetries:
    """The qualitative store asymmetries that the whole paper relies on."""

    def test_column_store_is_faster_for_single_column_aggregation(self, database_factory):
        query = aggregate("sales").sum("revenue").build()
        row_ms = database_factory(Store.ROW).execute(query).runtime_ms
        column_ms = database_factory(Store.COLUMN).execute(query).runtime_ms
        assert column_ms < row_ms

    def test_row_store_is_faster_for_point_queries(self, database_factory):
        query = select("sales").where(eq("id", 77)).build()
        row_ms = database_factory(Store.ROW).execute(query).runtime_ms
        column_ms = database_factory(Store.COLUMN).execute(query).runtime_ms
        assert row_ms < column_ms

    def test_row_store_is_faster_for_updates(self, database_factory):
        query = update("sales", {"status": "x"}, eq("id", 50))
        row_ms = database_factory(Store.ROW).execute(query).runtime_ms
        column_ms = database_factory(Store.COLUMN).execute(query).runtime_ms
        assert row_ms < column_ms

    def test_row_store_is_faster_for_inserts(self, database_factory):
        new_row = {"id": 50_000, "region": "r", "product": 0, "revenue": 0.0,
                   "quantity": 1, "status": "new"}
        query = insert("sales", [new_row])
        row_ms = database_factory(Store.ROW).execute(query).runtime_ms
        column_ms = database_factory(Store.COLUMN).execute(query).runtime_ms
        assert row_ms < column_ms


class TestGroupedAggregationUnit:
    def test_aggregate_values_helpers(self):
        assert aggregate_values(AggregateFunction.SUM, [1, 2, 3]) == 6
        assert aggregate_values(AggregateFunction.AVG, [2, 4]) == 3
        assert aggregate_values(AggregateFunction.MIN, [5, 1, 3]) == 1
        assert aggregate_values(AggregateFunction.MAX, [5, 1, 3]) == 5
        assert aggregate_values(AggregateFunction.COUNT, [5, None, 3]) == 2
        assert aggregate_values(AggregateFunction.SUM, []) is None

    def test_grouped_run_handles_nulls_and_groups(self):
        aggregation = GroupedAggregation(
            aggregates=(AggregateSpec(AggregateFunction.SUM, "v"),),
            group_by_names=["g"],
        )
        rows = aggregation.run(
            aggregate_inputs=[[1, None, 3, 4]],
            group_key_columns=[["a", "a", "b", "b"]],
            num_rows=4,
        )
        by_group = {row["g"]: row["sum_v"] for row in rows}
        assert by_group == {"a": 1, "b": 7}
