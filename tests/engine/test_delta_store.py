"""Delta/main split of the column store: buffering, merge, charge parity.

Column-store inserts append to an uncompressed per-column *delta* instead of
rebuilding the dictionary-compressed *main* on every statement; scans read
the union.  The contract pinned here:

* results **and** simulated-cost charges are bit-identical to the inline
  reference (``delta_writes_disabled()`` routes writes straight into main,
  the pre-split behaviour) — the split is a wall-clock optimisation, never
  a cost-model change;
* :meth:`merge_delta` folds the delta into main and lands on the *exact*
  physical state (codes and dictionaries) the inline path would have built,
  because dictionary accumulation is history-order independent;
* inserts crossing ``merge_threshold`` merge automatically; updates and
  deletes merge first (positions address merged state);
* a duplicate primary key mid-batch keeps the batch prefix and discards the
  rest — and a column rejecting a value mid-append rolls back the already
  appended column tails, in **both** write modes, so the table never ends
  up with misaligned columns or leaked primary keys.
"""

import pytest

from repro.engine.column_store import (
    ColumnStoreTable,
    DeltaColumn,
    delta_writes_disabled,
    delta_writes_enabled,
)
from repro.engine.schema import Column, TableSchema
from repro.engine.timing import CostAccountant
from repro.engine.types import DataType
from repro.errors import ExecutionError
from repro.query.predicates import Between, IsNull, eq, ge, lt

SCHEMA = TableSchema(
    "d",
    (
        Column("id", DataType.INTEGER, primary_key=True),
        Column("category", DataType.VARCHAR),
        Column("amount", DataType.DOUBLE, nullable=True),
    ),
)


def make_rows(start, count):
    return [
        {
            "id": i,
            "category": f"cat_{i % 4}",
            "amount": None if i % 7 == 3 else float("nan") if i % 11 == 5 else i * 0.5,
        }
        for i in range(start, start + count)
    ]


def twin_tables():
    """The same batches into a delta-path table and an inline reference."""
    delta_table = ColumnStoreTable(SCHEMA)
    inline_table = ColumnStoreTable(SCHEMA)
    for start in (0, 10, 25):
        batch = make_rows(start, 10)
        delta_table.insert_rows(batch)
        with delta_writes_disabled():
            inline_table.insert_rows(batch)
    return delta_table, inline_table


class TestBuffering:
    def test_inserts_buffer_in_the_delta(self):
        table = ColumnStoreTable(SCHEMA)
        table.insert_rows(make_rows(0, 5))
        assert table.delta_rows == 5
        assert table.main_rows == 0
        assert table.num_rows == 5
        assert table.all_rows() == make_rows(0, 5) or len(table.all_rows()) == 5

    def test_bulk_load_merges_immediately(self):
        table = ColumnStoreTable(SCHEMA)
        table.bulk_load(make_rows(0, 8))
        assert table.delta_rows == 0
        assert table.main_rows == 8

    def test_threshold_crossing_insert_merges(self):
        table = ColumnStoreTable(SCHEMA)
        table.merge_threshold = 6
        table.insert_rows(make_rows(0, 4))
        assert table.delta_rows == 4
        table.insert_rows(make_rows(4, 4))  # 8 >= 6: merge fires
        assert table.delta_rows == 0
        assert table.main_rows == 8

    def test_updates_and_deletes_merge_first(self):
        table = ColumnStoreTable(SCHEMA)
        table.insert_rows(make_rows(0, 6))
        table.update_rows([2], {"category": "patched"})
        assert table.delta_rows == 0
        assert table.column_values("category", [2]) == ["patched"]
        table.insert_rows(make_rows(6, 3))
        assert table.delta_rows == 3
        table.delete_rows(table.filter_positions(eq("id", 7)).tolist())
        assert table.delta_rows == 0
        assert sorted(row["id"] for row in table.all_rows()) == [
            0, 1, 2, 3, 4, 5, 6, 8,
        ]

    def test_disabled_toggle_restores_itself(self):
        assert delta_writes_enabled()
        with delta_writes_disabled():
            assert not delta_writes_enabled()
        assert delta_writes_enabled()


class TestMergeEquivalence:
    def test_merge_lands_on_the_inline_physical_state(self):
        delta_table, inline_table = twin_tables()
        assert delta_table.delta_rows > 0
        delta_table.merge_delta()
        for name in SCHEMA.column_names:
            merged = delta_table._columns[name]
            inline = inline_table._columns[name]
            assert merged.codes.tolist() == inline.codes.tolist(), name
            # repr-compare: NaN belongs to the amount dictionary and NaN != NaN.
            assert [repr(v) for v in merged.dictionary.values] == [
                repr(v) for v in inline.dictionary.values
            ], name

    def test_union_reads_match_inline_before_merge(self):
        delta_table, inline_table = twin_tables()
        predicates = [
            eq("category", "cat_1"),
            ge("amount", 5.0),
            lt("id", 20),
            Between("amount", 2.0, 9.0),
            IsNull("amount"),
        ]
        for predicate in predicates:
            fast = CostAccountant()
            slow = CostAccountant()
            got = delta_table.filter_positions(predicate, fast).tolist()
            want = inline_table.filter_positions(predicate, slow).tolist()
            assert got == want, predicate
            assert fast.snapshot() == slow.snapshot(), predicate

    def test_logical_statistics_ignore_the_physical_split(self):
        delta_table, inline_table = twin_tables()
        assert delta_table.memory_bytes == inline_table.memory_bytes
        assert delta_table.compression_rate() == inline_table.compression_rate()
        for name in SCHEMA.column_names:
            assert delta_table.column_distinct_count(
                name
            ) == inline_table.column_distinct_count(name), name
            assert delta_table.column_compressed_bytes(
                name
            ) == inline_table.column_compressed_bytes(name), name
            assert delta_table.column_min_max(name) == inline_table.column_min_max(
                name
            ) or (
                # NaN-aware: (x, nan) tuples compare unequal to themselves.
                str(delta_table.column_min_max(name))
                == str(inline_table.column_min_max(name))
            ), name

    def test_insert_charges_are_identical(self):
        delta_table = ColumnStoreTable(SCHEMA)
        inline_table = ColumnStoreTable(SCHEMA)
        fast, slow = CostAccountant(), CostAccountant()
        delta_table.insert_rows(make_rows(0, 12), fast)
        with delta_writes_disabled():
            inline_table.insert_rows(make_rows(0, 12), slow)
        assert fast.snapshot() == slow.snapshot()


class TestMidBatchFailure:
    """Satellite: duplicate-PK / rejected-value batches stay consistent."""

    @pytest.mark.parametrize("mode", ["delta", "inline"])
    def test_duplicate_pk_keeps_the_prefix_and_stays_aligned(self, mode):
        table = ColumnStoreTable(SCHEMA)
        seed = make_rows(0, 4)
        batch = [*make_rows(10, 2), seed[1], *make_rows(12, 1)]  # dup id=1 mid-batch

        def run():
            table.insert_rows(seed)
            with pytest.raises(ExecutionError, match="duplicate primary key"):
                table.insert_rows(batch)

        if mode == "delta":
            run()
        else:
            with delta_writes_disabled():
                run()
        ids = sorted(row["id"] for row in table.all_rows())
        assert ids == [0, 1, 2, 3, 10, 11]  # prefix committed, suffix dropped
        # The aborted row's key is free again; the batch prefix's keys stay.
        table.insert_rows(make_rows(12, 1))
        with pytest.raises(ExecutionError):
            table.insert_rows(make_rows(11, 1))

    @pytest.mark.parametrize("mode", ["delta", "inline"])
    def test_rejected_value_rolls_back_appended_tails(self, mode, monkeypatch):
        """A column failing mid-append must truncate its siblings' tails."""
        table = ColumnStoreTable(SCHEMA)
        table.insert_rows(make_rows(0, 3))
        if mode == "inline":
            table.merge_delta()

        calls = {"n": 0}
        if mode == "delta":
            original = DeltaColumn.append

            def exploding_append(self, value, dictionary):
                # Reject one *new* value only: by then the id and category
                # columns are fully appended, and the rollback's survivor
                # re-append (old values) must still pass through cleanly.
                if value == 5.5:
                    raise TypeError("synthetic dictionary rejection")
                return original(self, value, dictionary)

            monkeypatch.setattr(DeltaColumn, "append", exploding_append)
            with pytest.raises(TypeError):
                table.insert_rows(make_rows(10, 3))  # row id=11 has amount 5.5
        else:
            from repro.engine.compression import CompressedColumn

            original_extend = CompressedColumn.extend

            def exploding_extend(self, values):
                calls["n"] += 1
                if calls["n"] > 1:  # first column extends, second explodes
                    raise TypeError("synthetic dictionary rejection")
                return original_extend(self, values)

            monkeypatch.setattr(CompressedColumn, "extend", exploding_extend)
            with delta_writes_disabled(), pytest.raises(TypeError):
                table.insert_rows(make_rows(10, 3))
        monkeypatch.undo()

        # Nothing of the failed batch survives: aligned columns, free keys.
        assert table.num_rows == 3
        assert sorted(row["id"] for row in table.all_rows()) == [0, 1, 2]
        table.insert_rows(make_rows(10, 3))  # keys were not leaked
        assert table.num_rows == 6
