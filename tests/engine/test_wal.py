"""Write-ahead log format, sync modes, damage tolerance and replay.

The WAL is a logical redo log: statements, not pages.  These tests pin

* the on-disk format (magic, length-prefixed CRC records) and its failure
  modes — torn tails (truncation mid-record) stop replay and are trimmed on
  re-open; checksum-corrupt records are *skipped* and the records behind
  them still replay;
* the three sync modes' durability windows (``commit`` per statement,
  ``batch`` per N records, ``off`` until an explicit flush);
* replay idempotency: :func:`repro.engine.wal.recover` is read-only, so
  recovering the same file twice yields identical databases *and* identical
  :class:`RecoveryReport`s — on clean, torn-at-a-boundary and torn
  mid-record logs alike;
* checkpointing: the snapshot + LSN filter make records before the
  checkpoint stale, and re-opening a log resumes its LSN sequence.

The crash-window differential (killing the engine at every declared fault
point) lives in ``test_recovery_fuzz.py``.
"""

import os
import struct

import pytest

from repro.engine.database import HybridDatabase
from repro.engine.schema import Column, TableSchema
from repro.engine.types import DataType, Store
from repro.engine.wal import MAGIC, WriteAheadLog, recover
from repro.errors import WalError
from repro.query.builder import delete, insert, select, update
from repro.query.predicates import eq, ge
from repro.testing.faults import flip_bit, truncate_file

SCHEMA = TableSchema(
    "t",
    (
        Column("id", DataType.INTEGER, primary_key=True),
        Column("v", DataType.VARCHAR, nullable=True),
    ),
)


def make_db(path, sync_mode="commit", batch_size=32):
    database = HybridDatabase()
    database.attach_wal(WriteAheadLog(path, sync_mode=sync_mode, batch_size=batch_size))
    return database


def run_workload(database):
    """Five loggable statements: create, load, two inserts, one update."""
    database.create_table(SCHEMA, Store.COLUMN)
    database.load_rows("t", [{"id": 0, "v": "zero"}, {"id": 1, "v": "one"}])
    database.execute(insert("t", [{"id": 2, "v": "two"}]))
    database.execute(insert("t", [{"id": 3, "v": None}]))
    database.execute(update("t", {"v": "ONE"}, eq("id", 1)))


EXPECTED_ROWS = [
    {"id": 0, "v": "zero"},
    {"id": 1, "v": "ONE"},
    {"id": 2, "v": "two"},
    {"id": 3, "v": None},
]


def rows_of(database):
    return database.execute(select("t").build()).rows


def record_spans(path):
    """``(offset, payload_length)`` of every record, parsed independently."""
    with open(path, "rb") as handle:
        data = handle.read()
    assert data.startswith(MAGIC)
    spans = []
    offset = len(MAGIC)
    while offset + 8 <= len(data):
        length, _crc = struct.unpack_from("<II", data, offset)
        spans.append((offset, length))
        offset += 8 + length
    return spans


class TestFormat:
    def test_magic_and_full_roundtrip(self, tmp_path):
        path = str(tmp_path / "db.wal")
        database = make_db(path)
        run_workload(database)
        database.wal.close()
        with open(path, "rb") as handle:
            assert handle.read(len(MAGIC)) == MAGIC
        result = recover(path)
        assert rows_of(result.database) == EXPECTED_ROWS
        assert result.report.records_applied == 5
        assert result.report.last_lsn == 5
        assert result.report.clean

    def test_bad_magic_raises(self, tmp_path):
        path = str(tmp_path / "junk.wal")
        with open(path, "wb") as handle:
            handle.write(b"not a wal file at all")
        with pytest.raises(WalError):
            recover(path)

    def test_bad_sync_mode_and_batch_size(self, tmp_path):
        with pytest.raises(WalError):
            WriteAheadLog(str(tmp_path / "a.wal"), sync_mode="always")
        with pytest.raises(WalError):
            WriteAheadLog(str(tmp_path / "b.wal"), sync_mode="batch", batch_size=0)

    def test_append_after_close_raises(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "c.wal"))
        wal.close()
        wal.close()  # idempotent
        assert wal.closed
        with pytest.raises(WalError):
            wal.append("dml", None)


class TestSyncModes:
    def test_commit_mode_is_durable_per_statement(self, tmp_path):
        path = str(tmp_path / "db.wal")
        database = make_db(path, sync_mode="commit")
        database.create_table(SCHEMA, Store.COLUMN)
        database.execute(insert("t", [{"id": 0, "v": "x"}]))
        # No flush/close: every record must already be on disk.
        result = recover(path)
        assert rows_of(result.database) == [{"id": 0, "v": "x"}]

    def test_off_mode_buffers_until_flush(self, tmp_path):
        path = str(tmp_path / "db.wal")
        database = make_db(path, sync_mode="off")
        database.create_table(SCHEMA, Store.COLUMN)
        database.execute(insert("t", [{"id": 0, "v": "x"}]))
        lost = recover(path)
        assert lost.database.table_names() == []  # nothing reached the file
        database.wal.flush()
        kept = recover(path)
        assert rows_of(kept.database) == [{"id": 0, "v": "x"}]

    def test_batch_mode_flushes_every_n_records(self, tmp_path):
        path = str(tmp_path / "db.wal")
        database = make_db(path, sync_mode="batch", batch_size=3)
        database.create_table(SCHEMA, Store.COLUMN)  # record 1
        database.execute(insert("t", [{"id": 0, "v": "x"}]))  # record 2
        assert recover(path).report.records_applied == 0  # batch not full
        database.execute(insert("t", [{"id": 1, "v": "y"}]))  # record 3: flush
        assert recover(path).report.records_applied == 3
        database.execute(insert("t", [{"id": 2, "v": "z"}]))  # record 4 buffers
        assert recover(path).report.records_applied == 3


class TestDamage:
    def _closed_log(self, tmp_path):
        path = str(tmp_path / "db.wal")
        database = make_db(path)
        run_workload(database)
        database.wal.close()
        return path

    def test_mid_record_truncation_is_a_torn_tail(self, tmp_path):
        path = self._closed_log(tmp_path)
        size = os.path.getsize(path)
        truncate_file(path, size - 3)
        result = recover(path)
        assert result.report.torn_tail_offset == record_spans(path)[-1][0]
        assert result.report.torn_tail_bytes > 0
        assert result.report.records_applied == 4  # last statement lost
        assert not result.report.clean
        # The update (record 5) was torn: row 1 keeps its loaded value.
        expected = [dict(row) for row in EXPECTED_ROWS]
        expected[1]["v"] = "one"
        assert rows_of(result.database) == expected

    def test_boundary_truncation_is_clean(self, tmp_path):
        path = self._closed_log(tmp_path)
        last_offset, _ = record_spans(path)[-1]
        truncate_file(path, last_offset)
        result = recover(path)
        assert result.report.clean
        assert result.report.torn_tail_bytes == 0
        assert result.report.records_applied == 4

    def test_reopen_truncates_the_torn_tail(self, tmp_path):
        path = self._closed_log(tmp_path)
        size = os.path.getsize(path)
        truncate_file(path, size - 3)
        boundary = record_spans(path)[-1][0]
        WriteAheadLog(path).close()  # re-open trims, close flushes nothing
        assert os.path.getsize(path) == boundary
        assert recover(path).report.clean

    def test_corrupt_record_is_skipped_but_suffix_replays(self, tmp_path):
        path = self._closed_log(tmp_path)
        spans = record_spans(path)
        # Flip a payload bit of record 4 (the id=3 insert); the header and
        # the records behind it stay parseable.
        offset, _length = spans[3]
        flip_bit(path, offset + 8 + 2)
        result = recover(path)
        assert result.report.corrupt_offsets == (offset,)
        assert result.report.records_applied == 4
        assert not result.report.clean
        expected = [row for row in EXPECTED_ROWS if row["id"] != 3]
        assert rows_of(result.database) == expected

    def test_resume_after_damage_keeps_appending(self, tmp_path):
        path = self._closed_log(tmp_path)
        truncate_file(path, os.path.getsize(path) - 3)
        result = recover(path)
        assert result.report.last_lsn == 4
        database = result.database
        # Re-open for appending: trims the tail, resumes LSN 4 -> 5.
        database.attach_wal(WriteAheadLog(path))
        database.execute(insert("t", [{"id": 9, "v": "late"}]))
        # The new statement must replay on top of the trimmed prefix.
        replayed = recover(path)
        assert replayed.report.last_lsn == 5
        assert {row["id"] for row in rows_of(replayed.database)} == {0, 1, 2, 3, 9}


class TestReplayIdempotency:
    """recover() never writes: same file in, same database + report out."""

    @pytest.mark.parametrize("damage", ["clean", "boundary", "mid_record", "corrupt"])
    def test_recover_twice_is_identical(self, tmp_path, damage):
        path = str(tmp_path / "db.wal")
        database = make_db(path)
        run_workload(database)
        database.wal.close()
        if damage == "boundary":
            truncate_file(path, record_spans(path)[-1][0])
        elif damage == "mid_record":
            truncate_file(path, os.path.getsize(path) - 3)
        elif damage == "corrupt":
            offset, _ = record_spans(path)[2]
            flip_bit(path, offset + 8 + 1)
        first = recover(path)
        second = recover(path)
        assert first.report == second.report
        assert rows_of(first.database) == rows_of(second.database)
        # Physical state must match too: the same probe charges bit-identical
        # simulated costs against both recovered databases.
        probe = select("t").where(ge("id", 1)).build()
        assert (
            first.database.execute(probe).cost.components
            == second.database.execute(probe).cost.components
        )


class TestCheckpoint:
    def test_checkpoint_resets_log_and_recovery_restores_snapshot(self, tmp_path):
        path = str(tmp_path / "db.wal")
        database = make_db(path)
        run_workload(database)
        snapshot_lsn = database.checkpoint()
        assert snapshot_lsn == 5
        assert record_spans(path) == []  # log reset to just the magic
        database.execute(delete("t", ge("id", 3)))
        result = recover(path)
        assert result.report.snapshot_restored
        assert result.report.snapshot_lsn == 5
        assert result.report.records_applied == 1
        assert result.report.records_stale == 0
        assert rows_of(result.database) == [row for row in EXPECTED_ROWS if row["id"] < 3]

    def test_stale_records_are_skipped_by_lsn(self, tmp_path):
        # Simulate the crash window where the snapshot was renamed but the
        # log was not yet truncated: recovery must not replay records whose
        # LSN the snapshot already covers.
        path = str(tmp_path / "db.wal")
        database = make_db(path)
        run_workload(database)
        with open(path, "rb") as handle:
            log_with_all_records = handle.read()
        database.checkpoint()
        with open(path, "wb") as handle:
            handle.write(log_with_all_records)  # undo the truncate only
        result = recover(path)
        assert result.report.snapshot_restored
        assert result.report.records_stale == 5
        assert result.report.records_applied == 0
        assert rows_of(result.database) == EXPECTED_ROWS

    def test_reopen_resumes_lsn_after_checkpoint(self, tmp_path):
        path = str(tmp_path / "db.wal")
        database = make_db(path)
        run_workload(database)
        database.checkpoint()
        database.wal.close()
        reopened = WriteAheadLog(path)
        assert reopened.last_lsn == 5  # from the snapshot side-car
        reopened.close()
