"""Tests for the row store backend."""

import pytest

from repro.engine.row_store import RowStoreTable
from repro.engine.schema import TableSchema
from repro.engine.timing import CostAccountant
from repro.engine.types import DataType, Store
from repro.errors import ExecutionError
from repro.query.predicates import between, eq, ge, gt


@pytest.fixture
def schema() -> TableSchema:
    return TableSchema.build(
        "items",
        [
            ("id", DataType.INTEGER),
            ("name", DataType.VARCHAR),
            ("price", DataType.DOUBLE),
            ("stock", DataType.INTEGER),
        ],
        primary_key=["id"],
    )


@pytest.fixture
def table(schema) -> RowStoreTable:
    store = RowStoreTable(schema)
    store.bulk_load(
        {"id": i, "name": f"item_{i % 5}", "price": i * 1.5, "stock": i % 10}
        for i in range(100)
    )
    return store


class TestBasics:
    def test_store_identity(self, table):
        assert table.store is Store.ROW

    def test_num_rows_and_memory(self, table):
        assert table.num_rows == 100
        assert table.memory_bytes == 100 * table.row_width_bytes

    def test_no_compression(self, table):
        assert table.compression_rate() == 1.0
        assert table.compression_rate("price") == 1.0

    def test_primary_key_is_indexed_by_default(self, table):
        assert table.has_index("id")
        assert not table.has_index("price")


class TestInserts:
    def test_insert_appends_rows(self, table):
        positions = table.insert_rows([{"id": 200, "name": "new", "price": 1.0, "stock": 1}])
        assert positions == [100]
        assert table.num_rows == 101

    def test_duplicate_primary_key_rejected(self, table):
        with pytest.raises(ExecutionError):
            table.insert_rows([{"id": 5, "name": "dup", "price": 1.0, "stock": 1}])

    def test_insert_charges_append_and_index_costs(self, schema):
        table = RowStoreTable(schema)
        accountant = CostAccountant()
        table.insert_rows([{"id": 1, "name": "a", "price": 1.0, "stock": 1}], accountant)
        components = accountant.snapshot()
        assert components.get("row_append", 0) > 0
        assert components.get("index_insert", 0) > 0


class TestFilterPositions:
    def test_none_predicate_returns_none(self, table):
        assert table.filter_positions(None) is None

    def test_equality_on_primary_key_uses_index(self, table):
        accountant = CostAccountant()
        positions = table.filter_positions(eq("id", 7), accountant)
        assert list(positions) == [7]
        assert "row_scan" not in accountant.snapshot()
        assert accountant.snapshot().get("index_probe", 0) > 0

    def test_range_on_primary_key_uses_sorted_index(self, table):
        accountant = CostAccountant()
        positions = table.filter_positions(between("id", 10, 14), accountant)
        assert sorted(int(p) for p in positions) == [10, 11, 12, 13, 14]
        assert "row_scan" not in accountant.snapshot()

    def test_open_range_on_primary_key(self, table):
        positions = table.filter_positions(ge("id", 95))
        assert sorted(int(p) for p in positions) == [95, 96, 97, 98, 99]
        positions = table.filter_positions(gt("id", 97))
        assert sorted(int(p) for p in positions) == [98, 99]

    def test_unindexed_predicate_scans_full_tuples(self, table):
        accountant = CostAccountant()
        positions = table.filter_positions(eq("name", "item_2"), accountant)
        assert len(positions) == 20
        assert accountant.snapshot().get("row_scan", 0) == pytest.approx(
            100 * table.row_width_bytes * 0.5
        )


class TestReads:
    def test_fetch_all_rows(self, table):
        rows = table.fetch_rows(None)
        assert len(rows) == 100
        assert rows[3]["name"] == "item_3"

    def test_fetch_projected_rows(self, table):
        rows = table.fetch_rows([1, 2], columns=["id", "price"])
        assert rows == [{"id": 1, "price": 1.5}, {"id": 2, "price": 3.0}]

    def test_column_values_full_and_positions(self, table):
        assert table.column_values("stock", [10, 11]) == [0, 1]
        assert len(table.column_values("stock")) == 100

    def test_scan_columns_single_pass_charges_one_scan(self, table):
        accountant = CostAccountant()
        values = table.scan_columns(["price", "stock"], None, accountant)
        assert len(values["price"]) == 100
        assert accountant.snapshot()["row_scan"] == pytest.approx(
            100 * table.row_width_bytes * 0.5
        )


class TestUpdatesAndDeletes:
    def test_update_changes_values_and_maintains_index(self, table):
        count = table.update_rows([5], {"price": 99.0, "id": 500})
        assert count == 1
        assert table.fetch_rows([5], ["id", "price"]) == [{"id": 500, "price": 99.0}]
        assert list(table.filter_positions(eq("id", 500))) == [5]
        assert list(table.filter_positions(eq("id", 5))) == []

    def test_update_empty_assignments_is_noop(self, table):
        assert table.update_rows([1], {}) == 0

    def test_delete_removes_rows_and_rebuilds_indexes(self, table):
        removed = table.delete_rows([0, 1, 2])
        assert removed == 3
        assert table.num_rows == 97
        # Former row id=3 is now at position 0 and still findable via the index.
        assert list(table.filter_positions(eq("id", 3))) == [0]

    def test_statistics_helpers(self, table):
        assert table.column_distinct_count("name") == 5
        assert table.column_min_max("id") == (0, 99)
