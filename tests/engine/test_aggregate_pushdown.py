"""Aggregate pushdown: zero-scan answers, code-domain grouped aggregation,
partition-partial merging, zone-pruned DML, and the strategy plumbing.

The tentpole contracts pinned here:

* zero-scan answers (ungrouped COUNT/MIN/MAX, predicate absent or
  zone-decidable) decode **nothing** — counted by instrumenting
  ``ColumnDictionary.decode_array``, like ``test_late_materialization``;
* every pushdown tier charges the :class:`CostBreakdown` bit-identically to
  the decode-then-reduce reference behind ``aggregate_pushdown_disabled()``;
* the strategy recorded at plan time is exactly what execution consumes
  (``EXPLAIN ANALYZE`` pins the coincidence) and stale zone-epoch tokens
  re-derive it, so DML after planning can never serve a stale answer;
* UPDATE/DELETE predicate scans reuse the read path's ScanDecision — a
  provably-empty DML scan is skipped with its charges replayed, keeping the
  write path's accounting identical to the seed;
* the catalog records per-partition min/max/null-count statistics, and the
  estimator prices partition pruning from them exactly.
"""

import random

import pytest

from repro.engine.column_store import ColumnStoreTable
from repro.engine.compression import ColumnDictionary
from repro.engine.database import HybridDatabase
from repro.engine.executor.agg_pushdown import (
    TIER_CODE_DOMAIN,
    TIER_OPERATOR,
    TIER_PARTITION_PARTIAL,
    TIER_ZERO_SCAN,
    aggregate_pushdown_disabled,
)
from repro.engine.partitioning import (
    HorizontalPartitionSpec,
    TablePartitioning,
    VerticalPartitionSpec,
)
from repro.engine.schema import Column, TableSchema
from repro.engine.types import DataType, Store
from repro.engine.zonemap import (
    ColumnZone,
    zone_must_match,
    zone_pruning_disabled,
)
from repro.query.builder import aggregate, delete, insert, select, update
from repro.query.predicates import (
    And,
    Between,
    InList,
    IsNull,
    Not,
    Or,
    between,
    eq,
    ge,
    gt,
    le,
    lt,
    ne,
)

SCHEMA = TableSchema(
    "events",
    (
        Column("id", DataType.INTEGER, primary_key=True),
        Column("day", DataType.INTEGER),
        Column("kind", DataType.VARCHAR),
        Column("score", DataType.DOUBLE, nullable=True),
    ),
)


def make_rows(start, stop, null_every=0):
    return [
        {
            "id": i,
            "day": i,
            "kind": f"k{i % 5}",
            "score": None if null_every and i % null_every == 0 else float(i),
        }
        for i in range(start, stop)
    ]


def build_database(store, rows):
    database = HybridDatabase()
    database.create_table(SCHEMA, store=store)
    if rows:
        database.load_rows("events", rows)
    return database


def build_partitioned_database(rows, split_at=150, vertical=True):
    database = HybridDatabase()
    database.create_table(SCHEMA, store=Store.ROW)
    if rows:
        database.load_rows("events", rows)
    specs = {"horizontal": HorizontalPartitionSpec(predicate=ge("day", split_at))}
    if vertical:
        specs["vertical"] = VerticalPartitionSpec(
            row_store_columns=("kind",),
            column_store_columns=("day", "score"),
        )
    database.apply_partitioning("events", TablePartitioning(**specs))
    return database


class DecodeCounter:
    """Counts values decoded through ``ColumnDictionary.decode_array``."""

    def __init__(self, monkeypatch):
        self.decoded = 0
        original = ColumnDictionary.decode_array

        def counting_decode_array(dictionary, codes):
            self.decoded += len(codes)
            return original(dictionary, codes)

        monkeypatch.setattr(ColumnDictionary, "decode_array", counting_decode_array)


def strategy_of(result):
    return result.agg_strategies["events"]


# -- zone_must_match -------------------------------------------------------------------


class TestZoneMustMatch:
    def test_covering_ranges_prove_all_true(self):
        zone = ColumnZone(10, 20, null_count=0, num_rows=5)
        zones = {"x": zone}
        assert zone_must_match(ge("x", 10), zones, 5)
        assert zone_must_match(le("x", 20), zones, 5)
        assert zone_must_match(between("x", 10, 20), zones, 5)
        assert zone_must_match(between("x", 0, 100), zones, 5)
        assert zone_must_match(ne("x", 99), zones, 5)
        assert not zone_must_match(ge("x", 11), zones, 5)
        assert not zone_must_match(between("x", 11, 20), zones, 5)
        assert not zone_must_match(eq("x", 10), zones, 5)
        assert not zone_must_match(ne("x", 15), zones, 5)

    def test_single_value_zone_proves_equality(self):
        zone = ColumnZone(7, 7, null_count=0, num_rows=3)
        zones = {"x": zone}
        assert zone_must_match(eq("x", 7), zones, 3)
        assert zone_must_match(InList("x", (5, 7)), zones, 3)
        assert not zone_must_match(InList("x", (5, 6)), zones, 3)

    def test_nulls_defeat_comparison_proofs(self):
        zone = ColumnZone(10, 20, null_count=1, num_rows=5)
        zones = {"x": zone}
        # A comparison never matches a NULL row: not provably all-true.
        assert not zone_must_match(ge("x", 0), zones, 5)
        assert not zone_must_match(between("x", 0, 100), zones, 5)
        all_null = ColumnZone(None, None, null_count=5, num_rows=5)
        assert zone_must_match(IsNull("x"), {"x": all_null}, 5)
        assert not zone_must_match(IsNull("x"), zones, 5)

    def test_nan_semantics(self):
        nan_zone = ColumnZone(1.0, 2.0, null_count=0, num_rows=5, has_nan=True)
        zones = {"x": nan_zone}
        # NaN fails ordered comparisons but passes BETWEEN (exclusion) and !=.
        assert not zone_must_match(ge("x", 0.0), zones, 5)
        assert zone_must_match(between("x", 0.0, 10.0), zones, 5)
        assert zone_must_match(ne("x", 99.0), zones, 5)
        assert not zone_must_match(eq("x", float("nan")), zones, 5)

    def test_boolean_combinators(self):
        zones = {"x": ColumnZone(10, 20, null_count=0, num_rows=5)}
        assert zone_must_match(And((ge("x", 0), le("x", 50))), zones, 5)
        assert not zone_must_match(And((ge("x", 0), ge("x", 15))), zones, 5)
        assert zone_must_match(Or((ge("x", 15), le("x", 50))), zones, 5)
        # NOT p is all-true exactly when p is provably empty.
        assert zone_must_match(Not(gt("x", 30)), zones, 5)
        assert not zone_must_match(Not(gt("x", 15)), zones, 5)

    def test_uncertainty_is_never_a_proof(self):
        zones = {"x": ColumnZone(10, 20, null_count=None, num_rows=5)}
        assert not zone_must_match(ge("x", 0), zones, 5)  # unknown null count
        assert not zone_must_match(ge("y", 0), zones, 5)  # no zone at all
        assert not zone_must_match(
            gt("x", "a-string"), zones, 5
        )  # incomparable literal
        assert zone_must_match(None, zones, 5)
        assert zone_must_match(ge("x", 99), zones, 0)  # vacuous on empty


# -- zero-scan -------------------------------------------------------------------------


class TestZeroScan:
    def test_no_predicate_answers_decode_nothing(self, monkeypatch):
        rows = make_rows(0, 100, null_every=10)
        database = build_database(Store.COLUMN, rows)
        counter = DecodeCounter(monkeypatch)
        result = database.execute(
            aggregate("events")
            .count().count("score").min("kind").max("kind").min("score")
            .build()
        )
        assert counter.decoded == 0
        assert result.rows == [{
            "count_star": 100,
            "count_score": 90,
            "min_kind": "k0",
            "max_kind": "k4",
            "min_score": 1.0,
        }]
        assert strategy_of(result).startswith(TIER_ZERO_SCAN)

    def test_all_true_predicate_answers_from_synopses(self, monkeypatch):
        rows = make_rows(0, 100)
        database = build_database(Store.COLUMN, rows)
        query = (
            aggregate("events").count().min("day").max("day")
            .where(Between("day", -10, 10_000)).build()
        )
        counter = DecodeCounter(monkeypatch)
        result = database.execute(query)
        assert counter.decoded == 0
        assert result.rows == [{"count_star": 100, "min_day": 0, "max_day": 99}]
        assert strategy_of(result).startswith(TIER_ZERO_SCAN)
        with aggregate_pushdown_disabled():
            reference = database.execute(query)
        assert reference.rows == result.rows
        assert reference.cost.components == result.cost.components

    def test_all_false_predicate_yields_identity_answers(self):
        database = build_database(Store.COLUMN, make_rows(0, 50))
        query = (
            aggregate("events").count().count("score").min("kind")
            .where(gt("day", 10_000)).build()
        )
        result = database.execute(query)
        assert result.rows == [
            {"count_star": 0, "count_score": 0, "min_kind": None}
        ]
        assert strategy_of(result).startswith(TIER_ZERO_SCAN)
        with aggregate_pushdown_disabled():
            reference = database.execute(query)
        assert reference.rows == result.rows
        assert reference.cost.components == result.cost.components

    def test_undecidable_predicate_is_not_zero_scan(self):
        database = build_database(Store.COLUMN, make_rows(0, 50))
        result = database.execute(
            aggregate("events").count().where(between("day", 10, 20)).build()
        )
        assert result.rows == [{"count_star": 11}]
        assert strategy_of(result).startswith(TIER_CODE_DOMAIN)

    def test_all_null_column_min_is_none(self):
        rows = [{"id": i, "day": i, "kind": "k", "score": None} for i in range(8)]
        for store in Store:
            result = build_database(store, rows).execute(
                aggregate("events").min("score").max("score").count("score").build()
            )
            assert result.rows == [
                {"min_score": None, "max_score": None, "count_score": 0}
            ], store
            assert strategy_of(result).startswith(TIER_ZERO_SCAN)

    def test_nan_defeats_zero_scan_minmax_and_results_match_row_store(self):
        nan = float("nan")
        rows = [
            {"id": 0, "day": 0, "kind": "a", "score": 2.0},
            {"id": 1, "day": 1, "kind": "b", "score": nan},
            {"id": 2, "day": 2, "kind": "c", "score": 0.5},
        ]
        query = aggregate("events").min("score").max("score").build()
        results = {}
        for store in Store:
            result = build_database(store, rows).execute(query)
            assert not strategy_of(result).startswith(TIER_ZERO_SCAN)
            results[store] = result.rows
        assert repr(results[Store.ROW]) == repr(results[Store.COLUMN])

    def test_count_star_still_zero_scans_with_nan(self):
        rows = [
            {"id": 0, "day": 0, "kind": "a", "score": float("nan")},
            {"id": 1, "day": 1, "kind": "b", "score": 1.0},
        ]
        result = build_database(Store.COLUMN, rows).execute(
            aggregate("events").count().count("score").build()
        )
        # NaN is a value, not a NULL: COUNT needs no NaN-free proof.
        assert result.rows == [{"count_star": 2, "count_score": 2}]
        assert strategy_of(result).startswith(TIER_ZERO_SCAN)

    def test_empty_table(self):
        for store in Store:
            result = build_database(store, []).execute(
                aggregate("events").count().min("day").build()
            )
            assert result.rows == [{"count_star": 0, "min_day": None}]

    def test_stale_strategy_rederives_after_dml(self):
        """A cached plan's zero-scan answer must not survive DML."""
        from repro.api import connect

        session = connect()
        session.create_table(SCHEMA, Store.COLUMN)
        session.load_rows("events", make_rows(0, 50))
        query = aggregate("events").count().max("day").build()
        assert session.execute(query).rows == [{"count_star": 50, "max_day": 49}]
        plan = session.plan_for(query)
        strategy = plan.table_plans[0].aggregate_strategy
        assert strategy.tier == TIER_ZERO_SCAN
        # Plain DML does not bump the layout version: the same plan object
        # stays cached, its strategy token goes stale and must re-derive.
        session.database.table_object("events").insert_rows(
            [{"id": 777, "day": 2_000, "kind": "kz", "score": None}]
        )
        assert session.plan_for(query) is plan
        result = session.execute(query)
        assert result.rows == [{"count_star": 51, "max_day": 2_000}]

    def test_zero_scan_exact_after_update_orphans_dictionary_entry(self):
        """CS zones are exact: an orphaned dictionary max must not surface."""
        database = build_database(Store.COLUMN, make_rows(0, 50))
        database.execute(update("events", {"day": 5}, eq("day", 49)))
        result = database.execute(aggregate("events").max("day").build())
        assert result.rows == [{"max_day": 48}]


class TestDeltaDmlZoneExactness:
    """Zone synopses stay exact when DML hits values that live in the *delta*.

    Per-row inserts land in the column store's uncompressed delta; a later
    DELETE/UPDATE merges the delta into main and rebuilds the dictionary
    from the surviving codes.  These regressions pin that a zero-scan
    MIN/MAX can never surface a value that only ever existed in the delta
    and was deleted (or overwritten) before the query ran.
    """

    def _delta_database(self):
        database = build_database(Store.COLUMN, make_rows(0, 50))
        backend = database.table_object("events").backend
        # Keep the spike in the delta: no threshold-triggered merge.
        backend.merge_threshold = 1_000_000
        database.execute(insert("events", [
            {"id": 900, "day": 10_000, "kind": "zz", "score": 99_999.0},
            {"id": 901, "day": -10_000, "kind": "aa", "score": -99_999.0},
        ]))
        assert backend.delta_rows > 0  # the spikes really live in the delta
        return database

    def test_delta_delete_then_zero_scan(self):
        database = self._delta_database()
        database.execute(delete("events", InList("id", (900, 901))))
        query = (
            aggregate("events")
            .min("day").max("day").min("score").max("score").count()
            .build()
        )
        result = database.execute(query)
        assert strategy_of(result).startswith(TIER_ZERO_SCAN)
        assert result.rows == [{
            "min_day": 0, "max_day": 49,
            "min_score": 0.0, "max_score": 49.0,
            "count_star": 50,
        }]
        with aggregate_pushdown_disabled():
            reference = database.execute(query)
        assert reference.rows == result.rows
        assert reference.cost.components == result.cost.components

    def test_delta_update_then_zero_scan(self):
        database = self._delta_database()
        database.execute(update("events", {"day": 5, "score": 5.0},
                                gt("day", 5_000)))
        database.execute(update("events", {"day": 6, "score": 6.0},
                                lt("day", -5_000)))
        result = database.execute(
            aggregate("events").min("day").max("day").max("score").build()
        )
        assert strategy_of(result).startswith(TIER_ZERO_SCAN)
        assert result.rows == [{"min_day": 0, "max_day": 49, "max_score": 49.0}]

    def test_delta_delete_with_zone_decidable_predicate(self):
        """The all-false proof must hold after the delta spike is deleted."""
        database = self._delta_database()
        database.execute(delete("events", gt("day", 5_000)))
        database.execute(delete("events", lt("day", -5_000)))
        query = (
            aggregate("events").count().min("kind")
            .where(gt("day", 1_000)).build()
        )
        result = database.execute(query)
        assert strategy_of(result).startswith(TIER_ZERO_SCAN)
        assert result.rows == [{"count_star": 0, "min_kind": None}]
        with aggregate_pushdown_disabled():
            reference = database.execute(query)
        assert reference.rows == result.rows
        assert reference.cost.components == result.cost.components


# -- cost-breakdown identity over deterministic query batteries ------------------------


class TestChargesBitIdentical:
    def queries(self):
        return [
            aggregate("events").count().build(),
            aggregate("events").min("kind").max("day").count("score").build(),
            aggregate("events").sum("day").avg("score").group_by("kind").build(),
            aggregate("events").sum("score").count().group_by("kind", "day").build(),
            aggregate("events").count().where(between("day", 50, 120)).build(),
            (
                aggregate("events").sum("day").min("score")
                .where(Or((lt("day", 30), gt("day", 170)))).group_by("kind").build()
            ),
            aggregate("events").count("score").where(IsNull("score")).build(),
            aggregate("events").min("day").where(Between("day", -5, 10_000)).build(),
        ]

    def layouts(self):
        rows = make_rows(0, 200, null_every=7)
        return {
            "row": build_database(Store.ROW, rows),
            "column": build_database(Store.COLUMN, rows),
            "partitioned": build_partitioned_database(rows),
        }

    def test_pushdown_on_off_rows_and_charges_agree(self):
        for label, database in self.layouts().items():
            for query in self.queries():
                pushed = database.execute(query)
                with aggregate_pushdown_disabled():
                    reference = database.execute(query)
                context = f"[{label}] {query!r}"
                assert pushed.cost.components == reference.cost.components, context
                assert len(pushed.rows) == len(reference.rows), context
                for left, right in zip(pushed.rows, reference.rows):
                    assert set(left) == set(right), context
                    for key in left:
                        if isinstance(left[key], float):
                            assert left[key] == pytest.approx(right[key]), context
                        else:
                            assert left[key] == right[key], context


# -- partition-partial -----------------------------------------------------------------


class TestPartitionPartial:
    def test_grouped_aggregation_merges_partials(self):
        rows = make_rows(0, 200, null_every=9)
        database = build_partitioned_database(rows)
        query = (
            aggregate("events").sum("score").avg("score").count()
            .group_by("kind").build()
        )
        result = database.execute(query)
        assert strategy_of(result).startswith(TIER_PARTITION_PARTIAL)
        with aggregate_pushdown_disabled():
            reference = database.execute(query)
        assert strategy_of(reference).startswith(TIER_OPERATOR)
        assert [row["kind"] for row in result.rows] == [
            row["kind"] for row in reference.rows
        ]
        by_kind = {row["kind"]: row for row in reference.rows}
        for row in result.rows:
            reference_row = by_kind[row["kind"]]
            assert row["count_star"] == reference_row["count_star"]
            assert row["sum_score"] == pytest.approx(reference_row["sum_score"])
            assert row["avg_score"] == pytest.approx(reference_row["avg_score"])
        assert result.cost.components == reference.cost.components

    def test_pruned_partition_contributes_nothing(self):
        database = build_partitioned_database(make_rows(0, 200))
        query = (
            aggregate("events").count().sum("day").group_by("kind")
            .where(lt("day", 100)).build()
        )
        result = database.execute(query)
        # The hot partition (day >= 150) is zone-skipped outright.
        assert result.scan_stats["events"] == (1, 1)
        assert sum(row["count_star"] for row in result.rows) == 100

    def test_main_group_keys_decode_per_group_next_to_hot(self, monkeypatch):
        """No concat: the main portion's codes group without full decode."""
        rows = make_rows(0, 200)
        database = build_partitioned_database(rows, vertical=False)
        counter = DecodeCounter(monkeypatch)
        result = database.execute(
            aggregate("events").count().group_by("kind").build()
        )
        assert sum(row["count_star"] for row in result.rows) == 200
        num_groups = len({row["kind"] for row in rows if row["day"] < 150})
        # Only the main partition's per-*group* keys decode (the hot
        # partition is a row store); the pre-pushdown pipeline decoded all
        # 150 main rows to concatenate them with the hot batch.
        assert counter.decoded == num_groups

    def test_nan_group_key_defeats_partial_merge(self):
        rows = make_rows(0, 40)
        rows[3]["score"] = float("nan")
        database = build_partitioned_database(rows, split_at=20)
        result = database.execute(
            aggregate("events").count().group_by("score").build()
        )
        assert strategy_of(result).startswith(TIER_OPERATOR)
        assert sum(row["count_star"] for row in result.rows) == 40


# -- zone-pruned DML -------------------------------------------------------------------


class TestDmlPruning:
    def _paired(self, build, statement):
        """Run *statement* pruned and unpruned on identical databases."""
        pruned_database = build()
        reference_database = build()
        pruned = pruned_database.execute(statement)
        with zone_pruning_disabled():
            reference = reference_database.execute(statement)
        final = select("events").build()
        assert (
            pruned_database.execute(final).rows
            == reference_database.execute(final).rows
        )
        return pruned, reference

    @pytest.mark.parametrize("store", list(Store))
    def test_no_match_update_skips_scan_with_seed_charges(self, store):
        build = lambda: build_database(store, make_rows(0, 100))  # noqa: E731
        statement = update("events", {"kind": "zzz"}, gt("day", 10_000))
        pruned, reference = self._paired(build, statement)
        assert pruned.affected_rows == reference.affected_rows == 0
        assert pruned.cost.components == reference.cost.components

    @pytest.mark.parametrize("store", list(Store))
    def test_no_match_delete_skips_scan_with_seed_charges(self, store):
        build = lambda: build_database(store, make_rows(0, 100))  # noqa: E731
        statement = delete("events", lt("day", -50))
        pruned, reference = self._paired(build, statement)
        assert pruned.affected_rows == reference.affected_rows == 0
        assert pruned.cost.components == reference.cost.components

    def test_indexed_no_match_update_replays_index_charges(self):
        build = lambda: build_database(Store.ROW, make_rows(0, 100))  # noqa: E731
        statement = update("events", {"kind": "zzz"}, eq("id", 10_000))
        pruned, reference = self._paired(build, statement)
        assert pruned.affected_rows == reference.affected_rows == 0
        assert pruned.cost.components == reference.cost.components

    @pytest.mark.parametrize("vertical", [False, True])
    def test_partitioned_no_match_dml_charges_match_seed(self, vertical):
        build = lambda: build_partitioned_database(  # noqa: E731
            make_rows(0, 200, null_every=6), vertical=vertical
        )
        statements = [
            update("events", {"kind": "zzz"}, gt("day", 10_000)),
            delete("events", lt("day", -10)),
            # Predicate spanning both vertical parts (multi-part filter).
            update("events", {"score": 1.0},
                   And((gt("day", 10_000), eq("kind", "nope")))),
        ]
        for statement in statements:
            pruned, reference = self._paired(build, statement)
            assert pruned.affected_rows == reference.affected_rows == 0, statement
            assert pruned.cost.components == reference.cost.components, statement

    def test_partially_pruned_update_only_touches_matching_partition(self):
        database = build_partitioned_database(make_rows(0, 200), vertical=False)
        # Matches only hot rows: the main portion's scan is zone-skipped.
        result = database.execute(
            update("events", {"kind": "hotfix"}, ge("day", 180))
        )
        assert result.affected_rows == 20
        matching = database.execute(select("events").where(eq("kind", "hotfix")).build())
        assert sorted(row["day"] for row in matching.rows) == list(range(180, 200))

    def test_matching_dml_is_unaffected(self):
        for store in Store:
            database = build_database(store, make_rows(0, 100))
            assert database.execute(
                update("events", {"kind": "zz"}, between("day", 10, 19))
            ).affected_rows == 10
            assert database.execute(
                delete("events", between("day", 10, 14))
            ).affected_rows == 5
            assert database.execute(
                aggregate("events").count().build()
            ).rows == [{"count_star": 95}]

    def test_randomized_dml_pruning_differential(self):
        """Interleaved DML with pruning on vs off: identical states + charges."""
        rng = random.Random(11)
        for store in Store:
            pruned_database = build_database(store, make_rows(0, 80, null_every=8))
            reference_database = build_database(store, make_rows(0, 80, null_every=8))
            next_id = 1_000
            for step in range(25):
                roll = rng.random()
                low = rng.randrange(-100, 300)
                predicate = rng.choice([
                    between("day", low, low + rng.randrange(0, 80)),
                    gt("day", rng.randrange(-100, 400)),
                    eq("kind", rng.choice(["k1", "k3", "nope"])),
                    IsNull("score"),
                ])
                if roll < 0.4:
                    statement = update(
                        "events",
                        {"kind": rng.choice(["k0", "patched"])},
                        predicate,
                    )
                elif roll < 0.7:
                    statement = delete("events", predicate)
                else:
                    statement = insert("events", [{
                        "id": next_id, "day": rng.randrange(-50, 400),
                        "kind": f"k{rng.randrange(8)}", "score": None,
                    }])
                    next_id += 1
                pruned = pruned_database.execute(statement)
                with zone_pruning_disabled():
                    reference = reference_database.execute(statement)
                context = f"store={store} step={step} {statement!r}"
                assert pruned.affected_rows == reference.affected_rows, context
                assert pruned.cost.components == reference.cost.components, context
            final = select("events").build()
            assert (
                pruned_database.execute(final).rows
                == reference_database.execute(final).rows
            ), store


# -- EXPLAIN pinning -------------------------------------------------------------------


class TestExplainStrategyPinned:
    @pytest.fixture
    def session(self):
        from repro.api import connect

        session = connect()
        session.create_table(SCHEMA, Store.COLUMN)
        session.load_rows("events", make_rows(0, 100))
        return session

    def test_zero_scan_strategy_line_golden(self, session):
        query = aggregate("events").min("day").max("day").count().build()
        text = session.explain(query)
        assert (
            "   strategy: zero-scan (answered from 1 partition synopsis(es))"
            in text
        )

    def test_analyze_strategy_equals_plan_strategy(self, session):
        query = aggregate("events").sum("day").group_by("kind").build()
        plan = session.plan_for(query)
        planned = plan.table_plans[0].aggregate_strategy.describe()
        result = session.execute(query)
        assert result.agg_strategies["events"] == planned
        text = session.explain(query, analyze=True)
        assert f"   strategy: {planned}" in text
        assert "  aggregate pushdown:" in text
        assert f"    {'events':<22}{planned}" in text

    def test_partitioned_analyze_pins_partial_strategy(self):
        from repro.api import connect

        session = connect(database=build_partitioned_database(make_rows(0, 200)))
        query = aggregate("events").count().group_by("kind").build()
        planned = session.plan_for(query).table_plans[0].aggregate_strategy
        assert planned.tier == TIER_PARTITION_PARTIAL
        result = session.execute(query)
        assert result.agg_strategies["events"] == planned.describe()
        text = session.explain(query, analyze=True)
        assert f"    {'events':<22}{planned.describe()}" in text


# -- per-partition statistics and the estimator ----------------------------------------


class TestPartitionStatistics:
    def test_catalog_records_partition_synopses(self):
        database = build_partitioned_database(make_rows(0, 200, null_every=7))
        statistics = database.statistics("events")
        labels = [partition.label for partition in statistics.partitions]
        assert labels == ["main", "hot"]
        main, hot = statistics.partitions
        assert main.num_rows == 150 and hot.num_rows == 50
        assert main.columns["day"].min_value == 0
        assert main.columns["day"].max_value == 149
        assert hot.columns["day"].min_value == 150
        assert hot.columns["day"].null_count == 0
        assert main.columns["score"].null_count == len(
            [i for i in range(150) if i % 7 == 0]
        )

    def test_unpartitioned_tables_record_no_partitions(self):
        database = build_database(Store.COLUMN, make_rows(0, 50))
        assert database.statistics("events").partitions == ()

    def test_estimator_prices_partition_pruning_exactly(self):
        from repro.core.cost_model.estimator import (
            TableProfile,
            partition_scan_fraction,
        )

        database = build_partitioned_database(make_rows(0, 200))
        profile = TableProfile(
            schema=SCHEMA, statistics=database.statistics("events")
        )
        assert partition_scan_fraction(None, profile) == 1.0
        assert partition_scan_fraction(lt("day", 50), profile) == pytest.approx(0.75)
        assert partition_scan_fraction(ge("day", 150), profile) == pytest.approx(0.25)
        assert partition_scan_fraction(gt("day", 10_000), profile) == 0.0
        with zone_pruning_disabled():
            assert partition_scan_fraction(lt("day", 50), profile) == 1.0

    def test_statistics_fingerprint_tracks_partition_bounds(self):
        database = build_partitioned_database(make_rows(0, 200))
        before = database.statistics("events").fingerprint
        database.execute(insert("events", [
            {"id": 900, "day": 400, "kind": "kx", "score": 1.0}
        ]))
        database.refresh_statistics("events")
        assert database.statistics("events").fingerprint != before
