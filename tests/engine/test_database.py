"""Tests for the HybridDatabase façade (DDL, moves, workloads, listeners)."""

import pytest

from repro.engine import HybridDatabase, Store, TablePartitioning, VerticalPartitionSpec
from repro.errors import CatalogError
from repro.query import QueryType, Workload, aggregate, eq, select, update


class TestDdlAndMoves:
    def test_create_and_drop(self, sales_schema):
        database = HybridDatabase()
        database.create_table(sales_schema, Store.ROW)
        assert database.has_table("sales")
        database.drop_table("sales")
        assert not database.has_table("sales")
        with pytest.raises(CatalogError):
            database.table_object("sales")

    def test_move_table_updates_catalog_and_returns_cost(self, row_database):
        cost = row_database.move_table("sales", Store.COLUMN)
        assert row_database.store_of("sales") is Store.COLUMN
        assert cost.components.get("layout_conversion", 0) > 0
        # Moving to the same store costs nothing.
        cost = row_database.move_table("sales", Store.COLUMN)
        assert cost.components.get("layout_conversion", 0) == 0

    def test_apply_and_remove_partitioning(self, column_database):
        partitioning = TablePartitioning(
            vertical=VerticalPartitionSpec(
                row_store_columns=("status",),
                column_store_columns=("region", "product", "revenue", "quantity"),
            )
        )
        column_database.apply_partitioning("sales", partitioning)
        assert column_database.catalog.entry("sales").is_partitioned
        assert column_database.store_of("sales") is None
        column_database.remove_partitioning("sales", Store.ROW)
        assert column_database.store_of("sales") is Store.ROW
        rows = column_database.execute(select("sales").where(eq("id", 3)).build()).rows
        assert rows[0]["id"] == 3

    def test_statistics_refresh_after_load(self, row_database):
        statistics = row_database.statistics("sales")
        assert statistics.num_rows == 1_000
        assert statistics.column("region").num_distinct == 7


class TestWorkloadExecution:
    def test_run_workload_aggregates_runtimes(self, row_database):
        workload = Workload(
            [
                aggregate("sales").sum("revenue").build(),
                select("sales").where(eq("id", 1)).build(),
                update("sales", {"status": "x"}, eq("id", 2)),
            ],
            name="tiny",
        )
        run = row_database.run_workload(workload)
        assert run.num_queries == 3
        assert run.total_runtime_ms == pytest.approx(sum(run.query_runtimes_ms))
        assert run.queries_by_type[QueryType.AGGREGATION] == 1
        assert run.runtime_by_type_ms[QueryType.AGGREGATION] > 0
        assert run.mean_runtime_ms > 0

    def test_execution_listener_sees_every_query(self, row_database):
        seen = []
        listener = lambda query, result: seen.append((query.query_type, result.runtime_ms))
        row_database.add_execution_listener(listener)
        row_database.execute(select("sales").where(eq("id", 5)).build())
        row_database.execute(aggregate("sales").count("*").build())
        assert len(seen) == 2
        row_database.remove_execution_listener(listener)
        row_database.execute(select("sales").where(eq("id", 6)).build())
        assert len(seen) == 2

    def test_memory_accounting(self, row_database, column_database):
        # The dictionary-compressed column store uses less memory for this data.
        assert column_database.memory_bytes < row_database.memory_bytes

    def test_describe_lists_tables(self, row_database):
        assert "sales" in row_database.describe()
