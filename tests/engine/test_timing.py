"""Tests for the device model and cost accounting."""

import pytest

from repro.config import DeviceModelConfig
from repro.engine.timing import CostAccountant, CostBreakdown, DeviceModel, NS_PER_MS


class TestDeviceModel:
    def test_costs_scale_linearly_with_work(self):
        device = DeviceModel()
        assert device.sequential_read(2_000) == 2 * device.sequential_read(1_000)
        assert device.hash_probes(10) == 10 * device.hash_probes(1)

    def test_custom_config_is_used(self):
        config = DeviceModelConfig(seq_read_ns_per_byte=2.0)
        device = DeviceModel(config)
        assert device.sequential_read(100) == pytest.approx(200.0)

    def test_scaled_config_multiplies_every_constant(self):
        config = DeviceModelConfig()
        doubled = config.scaled(2.0)
        assert doubled.seq_read_ns_per_byte == 2 * config.seq_read_ns_per_byte
        assert doubled.query_overhead_ns == 2 * config.query_overhead_ns

    def test_partition_overhead_counts_extra_partitions_only(self):
        device = DeviceModel()
        assert device.partition_overhead(1) == 0.0
        assert device.partition_overhead(3) == pytest.approx(
            2 * device.config.partition_overhead_ns
        )


class TestCostBreakdown:
    def test_add_and_totals(self):
        breakdown = CostBreakdown()
        breakdown.add("scan", 1_000_000.0)
        breakdown.add("scan", 500_000.0)
        breakdown.add("probe", 250_000.0)
        assert breakdown.total_ns == pytest.approx(1_750_000.0)
        assert breakdown.total_ms == pytest.approx(1.75)
        assert breakdown.component_ms("scan") == pytest.approx(1.5)

    def test_negative_cost_rejected(self):
        breakdown = CostBreakdown()
        with pytest.raises(ValueError):
            breakdown.add("scan", -1.0)

    def test_merge(self):
        left = CostBreakdown({"a": 10.0})
        right = CostBreakdown({"a": 5.0, "b": 1.0})
        left.merge(right)
        assert left.components == {"a": 15.0, "b": 1.0}

    def test_as_dict_ms(self):
        breakdown = CostBreakdown({"a": float(NS_PER_MS)})
        assert breakdown.as_dict_ms() == {"a": 1.0}


class TestCostAccountant:
    def test_charges_accumulate_by_component(self):
        accountant = CostAccountant()
        accountant.charge_sequential_read("row_scan", 1_000)
        accountant.charge_sequential_read("row_scan", 1_000)
        accountant.charge_index_probe()
        snapshot = accountant.snapshot()
        assert snapshot["row_scan"] == pytest.approx(1_000.0)  # 2000 bytes * 0.5 ns
        assert snapshot["index_probe"] > 0

    def test_query_overhead_charge(self):
        accountant = CostAccountant()
        accountant.charge_query_overhead()
        assert accountant.total_ms == pytest.approx(
            DeviceModelConfig().query_overhead_ns / NS_PER_MS
        )

    def test_component_vocabulary_of_write_charges(self):
        accountant = CostAccountant()
        accountant.charge_row_appends(10)
        accountant.charge_row_value_updates(2)
        accountant.charge_cs_value_inserts(3)
        accountant.charge_cs_value_updates(4)
        accountant.charge_layout_conversion(5)
        snapshot = accountant.snapshot()
        for component in ("row_append", "row_update", "column_insert",
                          "column_update", "layout_conversion"):
            assert snapshot[component] > 0
