"""The row store's per-table string interning/factorization cache.

Group-by over a row-store string column used to ``np.unique``-sort the
decoded strings on every query (~20 ms at 100k rows); the cache factorizes
once per table state and serves ``(codes, dictionary)`` pairs to the
executor.  Results and cost charges must be indistinguishable from the
uncached path.
"""

import numpy as np
import pytest

from repro.engine.batch import EncodedColumn
from repro.engine.database import HybridDatabase
from repro.engine.row_store import InternedDictionary, RowStoreTable
from repro.engine.schema import Column, TableSchema
from repro.engine.types import DataType, Store
from repro.query.builder import aggregate, insert, update


SCHEMA = TableSchema(
    "t",
    (
        Column("id", DataType.INTEGER, primary_key=True),
        Column("tag", DataType.VARCHAR),
        Column("value", DataType.DOUBLE),
        Column("note", DataType.VARCHAR, nullable=True),
    ),
)


def build_table(num_rows=50):
    table = RowStoreTable(SCHEMA)
    table.bulk_load(
        {"id": i, "tag": f"tag_{i % 5}", "value": float(i), "note": None}
        for i in range(num_rows)
    )
    return table


class TestColumnInterned:
    def test_string_column_interns(self):
        table = build_table()
        interned = table.column_interned("tag")
        assert isinstance(interned, EncodedColumn)
        assert isinstance(interned.dictionary, InternedDictionary)
        assert interned.dictionary.nan_code is None
        # Sorted dictionary, round-trip identical to the raw values.
        values = interned.dictionary.values_array
        assert list(values) == sorted(values)
        assert interned.values.tolist() == [f"tag_{i % 5}" for i in range(50)]

    def test_factorization_is_cached(self):
        table = build_table()
        first = table.column_interned("tag")
        second = table.column_interned("tag")
        assert first.codes is second.codes
        assert first.dictionary is second.dictionary

    def test_nullable_column_does_not_intern(self):
        table = build_table()
        assert table.column_interned("note") is None

    def test_numeric_column_does_not_intern(self):
        table = build_table()
        assert table.column_interned("value") is None
        assert table.column_interned("id") is None

    def test_empty_table_does_not_intern(self):
        assert RowStoreTable(SCHEMA).column_interned("tag") is None


class TestInvalidation:
    def test_update_invalidates(self):
        table = build_table()
        before = table.column_interned("tag")
        table.update_rows([0], {"tag": "zzz"})
        after = table.column_interned("tag")
        assert after.dictionary is not before.dictionary
        assert after.values[0] == "zzz"

    def test_delete_invalidates(self):
        table = build_table()
        table.column_interned("tag")
        table.delete_rows([0, 1])
        after = table.column_interned("tag")
        assert len(after) == 48

    def test_append_of_known_values_extends_the_codes(self):
        table = build_table()
        before = table.column_interned("tag")
        table.insert_rows([{"id": 1000, "tag": "tag_0", "value": 1.0, "note": None}])
        after = table.column_interned("tag")
        assert after.dictionary is before.dictionary  # suffix-encoded, no rebuild
        assert len(after) == 51
        assert after.values[-1] == "tag_0"

    def test_append_of_new_value_rebuilds(self):
        table = build_table()
        before = table.column_interned("tag")
        table.insert_rows([{"id": 1000, "tag": "brand_new", "value": 1.0,
                            "note": None}])
        after = table.column_interned("tag")
        assert after.dictionary is not before.dictionary
        assert "brand_new" in after.dictionary.values_array


class TestThroughTheExecutor:
    @pytest.fixture
    def databases(self, sales_schema, sales_rows):
        pair = {}
        for store in (Store.ROW, Store.COLUMN):
            database = HybridDatabase()
            database.create_table(sales_schema, store)
            database.load_rows("sales", sales_rows)
            pair[store] = database
        return pair

    def test_group_by_results_match_column_store(self, databases):
        query = (
            aggregate("sales").sum("revenue").count().group_by("region").build()
        )
        row_result = databases[Store.ROW].execute(query)
        column_result = databases[Store.COLUMN].execute(query)
        key = lambda row: row["region"]
        assert sorted(row_result.rows, key=key) == sorted(
            column_result.rows, key=key
        )

    def test_warm_cache_charges_identical_costs(self, databases):
        query = aggregate("sales").sum("revenue").group_by("region").build()
        database = databases[Store.ROW]
        cold = database.execute(query)
        warm = database.execute(query)
        assert warm.cost.components == cold.cost.components
        # Interleaved DML invalidates and re-factorizes — still identical.
        database.execute(update("sales", {"region": "region_x"},
                                predicate=None))
        after_dml = database.execute(query)
        assert after_dml.cost.components == cold.cost.components

    def test_multi_key_group_by(self, databases):
        query = (
            aggregate("sales").count().group_by("region", "status").build()
        )
        row_rows = databases[Store.ROW].execute(query).rows
        column_rows = databases[Store.COLUMN].execute(query).rows
        key = lambda row: (row["region"], row["status"])
        assert sorted(row_rows, key=key) == sorted(column_rows, key=key)
