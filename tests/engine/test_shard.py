"""Shard-parallel scatter/gather execution: decision, charges, pool, advisor.

The tentpole contracts pinned here:

* :func:`derive_shard_decision` shards only delta-free plain column stores at
  or above the row floor, with provably merge-safe aggregations and filtered
  selections; the recorded :class:`ShardDecision` goes stale — and re-derives
  — on DML, toggle flips and ``shard_config`` changes, like ``ScanDecision``;
* every sharded execution charges the :class:`CostBreakdown` **bit-identically**
  to the serial reference behind ``shard_execution_disabled()``, and a failed
  scatter/gather falls back to serial without leaving a partial bill behind;
* ``QueryResult.shard_stats`` reports the per-shard scanned/matched rows only
  when the query really ran sharded;
* the worker pool survives repeated queries, is replaced on a start-method
  change (the spawn-vs-fork determinism smoke) and is shut down by
  ``Session.close()``;
* the advisor's ``recommend_shard_keys`` what-if picks the group-aligned
  shard key through the :class:`EstimateMemo`, and declines when dispatch
  overhead eats the projected gain;
* :func:`projected_parallel_ms` is a deterministic sub-serial projection of
  the (serially-charged) breakdown onto the crew.
"""

import numpy as np
import pytest

from repro.core import StorageAdvisor
from repro.engine import shard as shard_module
from repro.engine.database import HybridDatabase
from repro.engine.executor.rewrite import access_path_for
from repro.engine.schema import Column, TableSchema
from repro.engine.shard import (
    AGGREGATION_PARALLEL_COMPONENTS,
    SELECT_PARALLEL_COMPONENTS,
    ShardExecutionError,
    derive_shard_decision,
    get_worker_pool,
    projected_parallel_ms,
    shard_bounds,
    shard_config,
    shard_execution_disabled,
    shutdown_worker_pool,
)
from repro.engine.types import DataType, Store
from repro.query import Workload
from repro.query.builder import aggregate, insert, select
from repro.query.predicates import between, eq, ge

pytestmark = pytest.mark.shard

SCHEMA = TableSchema(
    "metrics",
    (
        Column("id", DataType.INTEGER, primary_key=True),
        Column("bucket", DataType.VARCHAR),
        Column("value", DataType.DOUBLE, nullable=True),
        Column("hits", DataType.INTEGER),
    ),
)

NUM_ROWS = 4_000


def make_rows(num_rows, offset=0):
    """NULL-bearing (never NaN) rows: NaN would defeat the merge-safety proof."""
    return [
        {
            "id": offset + i,
            "bucket": f"b{i % 5}",
            "value": None if i % 11 == 0 else round((i % 97) * 0.5, 2),
            "hits": i % 13,
        }
        for i in range(num_rows)
    ]


def build_database(num_rows=NUM_ROWS, store=Store.COLUMN):
    database = HybridDatabase()
    database.create_table(SCHEMA, store=store)
    database.load_rows("metrics", make_rows(num_rows))
    return database


def grouped_query():
    return (
        aggregate("metrics")
        .sum("value").count().min("hits")
        .group_by("bucket")
        .where(ge("hits", 3))
        .build()
    )


def rows_key(row):
    return sorted((key, repr(value)) for key, value in row.items())


def assert_same_rows(left, right):
    assert sorted(left, key=rows_key) == sorted(right, key=rows_key)


@pytest.fixture(autouse=True)
def _pool_cleanup():
    yield
    shutdown_worker_pool()


# -- bounds ----------------------------------------------------------------------------


def test_shard_bounds_cover_and_balance():
    for num_rows, fan_out in ((10, 4), (4_001, 4), (7, 7), (3, 2)):
        bounds = shard_bounds(num_rows, fan_out)
        assert len(bounds) == fan_out
        assert bounds[0][0] == 0 and bounds[-1][1] == num_rows
        sizes = [stop - start for start, stop in bounds]
        assert sum(sizes) == num_rows
        assert max(sizes) - min(sizes) <= 1
        for (_, stop), (start, _) in zip(bounds, bounds[1:]):
            assert stop == start


# -- the planner decision --------------------------------------------------------------


class TestShardDecision:
    def test_row_store_and_floor_reject(self):
        query = grouped_query()
        row_path = access_path_for(build_database(50, Store.ROW).table_object("metrics"))
        decision = derive_shard_decision(row_path, query)
        assert not decision.sharded and "column store" in decision.reason

        column_path = access_path_for(build_database(50).table_object("metrics"))
        decision = derive_shard_decision(column_path, query)
        assert not decision.sharded and "floor" in decision.reason

        with shard_config(min_rows=1):
            decision = derive_shard_decision(column_path, query)
        assert decision.sharded
        assert decision.fan_out == 4
        assert decision.bounds == shard_bounds(50, 4)
        assert "fan-out 4" in decision.describe()

    def test_delta_rows_block_until_merge(self):
        database = build_database(200)
        table = database.table_object("metrics")
        table.backend.merge_threshold = 1_000_000
        database.execute(insert("metrics", make_rows(3, offset=NUM_ROWS)))
        assert table.delta_rows > 0
        path = access_path_for(table)
        with shard_config(min_rows=1):
            decision = derive_shard_decision(path, grouped_query())
            assert not decision.sharded and "delta" in decision.reason
            database.merge_deltas("metrics")
            assert derive_shard_decision(path, grouped_query()).sharded

    def test_select_requires_predicate_and_joins_reject(self):
        path = access_path_for(build_database(100).table_object("metrics"))
        with shard_config(min_rows=1):
            unfiltered = derive_shard_decision(path, select("metrics").build())
            assert not unfiltered.sharded and "unfiltered" in unfiltered.reason
            filtered = derive_shard_decision(
                path, select("metrics").where(ge("hits", 3)).build()
            )
            assert filtered.sharded
            joined = (
                aggregate("metrics").count()
                .join("other", "id", "id").build()
            )
            assert not derive_shard_decision(path, joined).sharded

    def test_zero_scan_answers_never_shard(self):
        path = access_path_for(build_database(100).table_object("metrics"))
        query = aggregate("metrics").count().max("hits").build()
        with shard_config(min_rows=1):
            decision = derive_shard_decision(path, query)
        assert not decision.sharded and "zero-scan" in decision.reason

    def test_decision_staleness_and_reuse(self):
        database = build_database(100)
        path = access_path_for(database.table_object("metrics"))
        query = grouped_query()
        with shard_config(min_rows=1):
            decision = path.plan_shards(query)
            assert decision.sharded
            # Fresh token, same config: the recorded object is reused.
            assert path.shard_decision_for(query) is decision
            # Toggle flip: stale, re-derived as serial.
            with shard_execution_disabled():
                redecided = path.shard_decision_for(query)
                assert redecided is not decision and not redecided.sharded
            # Config change: stale, re-derived with the new fan-out.
            with shard_config(fan_out=2):
                assert path.shard_decision_for(query).fan_out == 2
            # DML moves the zone epoch: stale, re-derived (delta blocks).
            assert path.shard_decision_for(query) is path.shard_decision
            database.execute(insert("metrics", make_rows(1, offset=NUM_ROWS)))
            redecided = path.shard_decision_for(query)
            assert redecided is not decision
        # Outside the config override the decision is stale by construction.
        assert not path.shard_decision_for(query).sharded


# -- charge identity against the serial reference --------------------------------------


class TestChargeIdentity:
    def assert_identical(self, database, query, expect_sharded=True):
        with shard_config(min_rows=1):
            sharded = database.execute(query)
        with shard_execution_disabled():
            reference = database.execute(query)
        assert_same_rows(sharded.rows, reference.rows)
        assert sharded.cost.components == reference.cost.components
        assert not reference.shard_stats
        if expect_sharded:
            fan_out, shards = sharded.shard_stats["metrics"]
            assert fan_out == 4
            assert sum(scanned for scanned, _ in shards) == NUM_ROWS
        return sharded

    def test_grouped_aggregation_with_predicate(self):
        database = build_database()
        result = self.assert_identical(database, grouped_query())
        assert len(result.rows) == 5

    def test_ungrouped_aggregation_without_predicate(self):
        database = build_database()
        query = aggregate("metrics").sum("value").avg("hits").min("bucket").build()
        self.assert_identical(database, query)

    def test_grouped_aggregation_over_nullable_group_key(self):
        database = build_database()
        query = (
            aggregate("metrics").count().sum("hits")
            .group_by("value")
            .where(between("hits", 2, 9))
            .build()
        )
        self.assert_identical(database, query)

    def test_select_with_predicate_and_limit(self):
        database = build_database()
        query = (
            select("metrics").columns("id", "bucket")
            .where(eq("bucket", "b2")).limit(17).build()
        )
        with shard_config(min_rows=1):
            sharded = database.execute(query)
        with shard_execution_disabled():
            reference = database.execute(query)
        # Selection preserves row order exactly: shard order == row order.
        assert sharded.rows == reference.rows
        assert len(sharded.rows) == 17
        assert sharded.cost.components == reference.cost.components
        assert sharded.shard_stats["metrics"][0] == 4

    def test_repeated_queries_reuse_the_pool(self):
        database = build_database()
        with shard_config(min_rows=1):
            database.execute(grouped_query())
            pool = shard_module._POOL
            assert pool is not None and pool.alive()
            database.execute(grouped_query())
            assert shard_module._POOL is pool


class TestFallback:
    def test_failed_scatter_leaves_no_charges(self, monkeypatch):
        database = build_database()

        def explode(*args, **kwargs):
            raise ShardExecutionError("injected")

        with shard_execution_disabled():
            reference_agg = database.execute(grouped_query())
            reference_sel = database.execute(
                select("metrics").where(ge("hits", 5)).build()
            )
        monkeypatch.setattr(shard_module, "_scatter_gather", explode)
        with shard_config(min_rows=1):
            fallback_agg = database.execute(grouped_query())
            fallback_sel = database.execute(
                select("metrics").where(ge("hits", 5)).build()
            )
        for fallback, reference in (
            (fallback_agg, reference_agg),
            (fallback_sel, reference_sel),
        ):
            assert_same_rows(fallback.rows, reference.rows)
            assert fallback.cost.components == reference.cost.components
            assert not fallback.shard_stats


# -- pool lifecycle --------------------------------------------------------------------


def test_session_close_shuts_down_pool():
    from repro.api import connect

    session = connect()
    session.create_table(SCHEMA, Store.COLUMN)
    session.load_rows("metrics", make_rows(500))
    with shard_config(min_rows=1):
        result = session.execute(grouped_query())
        assert result.shard_stats
    assert shard_module._POOL is not None
    session.close()
    assert shard_module._POOL is None


def test_spawn_and_fork_agree():
    """Start-method determinism smoke: spawn workers == fork workers == serial."""
    database = build_database(600)
    query = grouped_query()
    with shard_execution_disabled():
        reference = database.execute(query)
    with shard_config(fan_out=2, min_rows=1):
        for method in ("fork", "spawn"):
            shutdown_worker_pool()
            pool = get_worker_pool(method)
            assert pool.start_method == method
            result = database.execute(query)
            assert result.shard_stats["metrics"][0] == 2
            assert_same_rows(result.rows, reference.rows)
            assert result.cost.components == reference.cost.components


# -- EXPLAIN surface -------------------------------------------------------------------


def test_explain_analyze_reports_shards():
    from repro.api import connect

    session = connect()
    session.create_table(SCHEMA, Store.COLUMN)
    session.load_rows("metrics", make_rows(800))
    with shard_config(min_rows=1):
        text = session.explain(grouped_query(), analyze=True)
    assert "shards: fan-out 4 (4 x ~200 rows)" in text
    assert "shard execution (scanned/matched):" in text
    assert "fan-out 4: 200/" in text
    session.close()


# -- advisor what-if -------------------------------------------------------------------


class TestShardAdvisor:
    def test_recommends_group_aligned_key_via_memo(self):
        database = build_database(60_000)
        advisor = StorageAdvisor()
        workload = Workload(
            [grouped_query()] * 10
            + [select("metrics").where(ge("hits", 10)).build()] * 5,
            name="shardable",
        )
        with shard_config(min_rows=1):
            recommendations = advisor.recommend_shard_keys(database, workload)
            assert set(recommendations) == {"metrics"}
            recommendation = recommendations["metrics"]
            assert recommendation.shard_key == "bucket"
            assert recommendation.fan_out == 4
            assert recommendation.estimated_speedup > 1.0
            assert "shard by bucket x4" in recommendation.describe()
            # The what-if plan renders through the EXPLAIN renderer.
            assert recommendation.whatif_plan is not None
            text = recommendation.explain()
            assert "AggregationQuery" in text
            assert "Scan metrics" in text
            # Re-advising is served from the EstimateMemo.
            hits_before = advisor.cost_model.cache_hits
            again = advisor.recommend_shard_keys(database, workload)
        assert advisor.cost_model.cache_hits > hits_before
        assert again["metrics"].shard_key == "bucket"
        assert again["metrics"].estimated_sharded_ms == pytest.approx(
            recommendation.estimated_sharded_ms
        )

    def test_declines_when_dispatch_eats_the_gain(self):
        database = build_database(300)
        advisor = StorageAdvisor()
        workload = Workload([grouped_query()], name="tiny")
        with shard_config(min_rows=1):
            assert advisor.recommend_shard_keys(database, workload) == {}

    def test_session_wrapper_respects_row_floor(self):
        from repro.api import connect

        session = connect()
        session.create_table(SCHEMA, Store.COLUMN)
        session.load_rows("metrics", make_rows(2_000))
        # Default 200k floor: the table is never shard-eligible.
        assert session.recommend_shard_keys(Workload([grouped_query()])) == {}
        session.close()


# -- parallel-runtime projection -------------------------------------------------------


def test_projected_parallel_ms_is_sub_serial_and_deterministic():
    # Large enough that the parallelisable scan work dwarfs the per-shard
    # dispatch overhead; tiny tables correctly project *slower* than serial.
    database = build_database(60_000)
    with shard_config(min_rows=1):
        result = database.execute(grouped_query())
    fan_out, shards = result.shard_stats["metrics"]
    projected = projected_parallel_ms(
        result.cost, shards, fan_out, database.device,
        AGGREGATION_PARALLEL_COMPONENTS,
    )
    with shard_execution_disabled():
        serial_ms = database.execute(grouped_query()).cost.total_ms
    # Balanced shards put the critical fraction near 1/fan_out; with the
    # scan dominating the bill the projection lands well under serial.
    assert projected < serial_ms
    assert projected == projected_parallel_ms(
        result.cost, shards, fan_out, database.device,
        AGGREGATION_PARALLEL_COMPONENTS,
    )
    # The select projection parallelises strictly less of the bill.
    select_projected = projected_parallel_ms(
        result.cost, shards, fan_out, database.device,
        SELECT_PARALLEL_COMPONENTS,
    )
    assert select_projected >= projected
