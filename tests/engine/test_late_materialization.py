"""Late materialization: codes travel the pipeline, values appear at the end.

Pins the tentpole contract of the dictionary-code pipeline:

* a group-by over a dictionary-encoded string column factorizes via the
  carried codes — the dictionary decodes one value per *group*, never the
  whole column (counted by instrumenting ``ColumnDictionary.decode_array``);
* the :class:`CostBreakdown` of every query is bit-identical to the
  decode-up-front pipeline (late materialization is a wall-clock
  optimisation, not a cost-model change);
* edge cases keep the scalar reference semantics: NaN/None group keys on
  dictionary columns, empty dictionaries, dictionary entries orphaned by
  updates and deletes, and joins mixing encoded and plain key columns.
"""

import random

import numpy as np
import pytest

from repro.engine.batch import ColumnBatch, EncodedColumn
from repro.engine.column_store import ColumnStoreTable
from repro.engine.compression import ColumnDictionary
from repro.engine.database import HybridDatabase
from repro.engine.partitioning import (
    HorizontalPartitionSpec,
    TablePartitioning,
    VerticalPartitionSpec,
)
from repro.engine.schema import Column, TableSchema
from repro.engine.table import StoredTable
from repro.engine.types import DataType, Store
from repro.query.builder import aggregate, select
from repro.query.predicates import Between, CompareOp, Comparison, between, eq, ge, ne

SCHEMA = TableSchema.build(
    "facts",
    [
        ("id", DataType.INTEGER),
        ("region", DataType.VARCHAR),
        ("amount", DataType.DOUBLE),
        ("quantity", DataType.INTEGER),
        ("customer", DataType.INTEGER),
    ],
    primary_key=["id"],
)

DIM_SCHEMA = TableSchema.build(
    "customers",
    [
        ("customer_id", DataType.INTEGER),
        ("segment", DataType.VARCHAR),
        ("score", DataType.DOUBLE),
    ],
    primary_key=["customer_id"],
)


def make_rows(n, rng=None):
    rng = rng or random.Random(17)
    return [
        {
            "id": i,
            "region": f"region_{rng.randrange(6)}",
            "amount": round(rng.uniform(0.0, 100.0), 2),
            "quantity": rng.randrange(0, 9),
            "customer": rng.randrange(20),
        }
        for i in range(n)
    ]


def make_dim_rows(n=15):
    return [
        {"customer_id": i, "segment": f"seg_{i % 4}", "score": float(i)}
        for i in range(n)
    ]


def build_database(store, rows, dim_rows=None):
    database = HybridDatabase()
    database.create_table(SCHEMA, store=store)
    if rows:
        database.load_rows("facts", rows)
    if dim_rows is not None:
        database.create_table(DIM_SCHEMA, store=store)
        database.load_rows("customers", dim_rows)
    return database


class DecodeCounter:
    """Counts values decoded per dictionary object."""

    def __init__(self, monkeypatch):
        self.decoded = {}
        original = ColumnDictionary.decode_array

        def counting_decode_array(dictionary, codes):
            key = id(dictionary)
            self.decoded[key] = self.decoded.get(key, 0) + len(codes)
            return original(dictionary, codes)

        monkeypatch.setattr(ColumnDictionary, "decode_array", counting_decode_array)

    def total(self):
        return sum(self.decoded.values())


class TestDecodeCounting:
    """The acceptance criterion: group keys decode per group, not per row."""

    def test_string_group_by_decodes_one_value_per_group(self, monkeypatch):
        rows = make_rows(500)
        database = build_database(Store.COLUMN, rows)
        num_groups = len({row["region"] for row in rows})

        counter = DecodeCounter(monkeypatch)
        result = database.execute(
            aggregate("facts").count().group_by("region").build()
        )
        assert len(result.rows) == num_groups
        # Only the per-group key values were decoded — not the 500-row
        # column (the old pipeline decoded all rows, then np.unique re-sorted
        # the decoded strings).
        assert counter.total() == num_groups

    def test_group_by_with_aggregate_decodes_only_per_group_values(self, monkeypatch):
        rows = make_rows(400)
        database = build_database(Store.COLUMN, rows)
        num_groups = len({row["region"] for row in rows})

        counter = DecodeCounter(monkeypatch)
        result = database.execute(
            aggregate("facts").sum("amount").group_by("region").build()
        )
        assert len(result.rows) == num_groups
        # Aggregate pushdown: amount sums in the dictionary domain (the
        # weights gather reads the dictionary's value array directly, no
        # decode call); only the per-*group* region keys decode.  Before the
        # pushdown the sum decoded all 400 amount values first.
        assert counter.total() == num_groups

    def test_group_by_with_aggregate_decodes_per_row_when_pushdown_disabled(
        self, monkeypatch
    ):
        from repro.engine.executor.agg_pushdown import aggregate_pushdown_disabled

        rows = make_rows(400)
        database = build_database(Store.COLUMN, rows)
        num_groups = len({row["region"] for row in rows})

        counter = DecodeCounter(monkeypatch)
        with aggregate_pushdown_disabled():
            result = database.execute(
                aggregate("facts").sum("amount").group_by("region").build()
            )
        assert len(result.rows) == num_groups
        # The decode-then-reduce reference: amount decodes once per row,
        # region once per group.
        assert counter.total() == len(rows) + num_groups

    def test_group_by_emission_matches_first_occurrence_order(self):
        rows = make_rows(300)
        column_result = build_database(Store.COLUMN, rows).execute(
            aggregate("facts").count().group_by("region").build()
        )
        seen = []
        for row in rows:
            if row["region"] not in seen:
                seen.append(row["region"])
        assert [row["region"] for row in column_result.rows] == seen

    def test_select_does_not_decode_unfetched_columns(self, monkeypatch):
        rows = make_rows(200)
        database = build_database(Store.COLUMN, rows)
        counter = DecodeCounter(monkeypatch)
        result = database.execute(
            select("facts").columns("id").where(eq("region", "region_1")).build()
        )
        expected = [row["id"] for row in rows if row["region"] == "region_1"]
        assert [row["id"] for row in result.rows] == expected
        # The region predicate ran on codes (dictionary translated the
        # literal); only the selected id values were decoded.
        assert counter.total() == len(expected)


def forced_decode(table, column, positions=None, accountant=None):
    return table.column_array(column, positions, accountant)


class TestCostBreakdownBitIdentical:
    """Late materialization must not perturb the simulated cost accounting."""

    def queries(self):
        return [
            aggregate("facts").count().group_by("region").build(),
            aggregate("facts").sum("amount").avg("quantity").group_by("region").build(),
            aggregate("facts").sum("amount").group_by("region", "quantity").build(),
            aggregate("facts").min("region").max("region").build(),
            (
                aggregate("facts").sum("amount")
                .where(between("amount", 10.0, 60.0)).group_by("region").build()
            ),
            (
                aggregate("facts").sum("customers.score").count()
                .join("customers", "customer", "customer_id")
                .group_by("customers.segment").build()
            ),
            select("facts").where(eq("region", "region_2")).build(),
            select("facts").columns("id", "amount").where(ge("quantity", 5)).build(),
        ]

    @pytest.mark.parametrize("store", list(Store))
    def test_costs_and_rows_match_decode_up_front_pipeline(self, store, monkeypatch):
        rows = make_rows(250)
        dim_rows = make_dim_rows()
        late = build_database(store, rows, dim_rows)
        eager = build_database(store, rows, dim_rows)
        late_results = [late.execute(query) for query in self.queries()]
        monkeypatch.setattr(StoredTable, "column_batched", forced_decode)
        eager_results = [eager.execute(query) for query in self.queries()]
        for late_result, eager_result in zip(late_results, eager_results):
            assert late_result.cost.components == eager_result.cost.components
            assert late_result.rows == eager_result.rows

    def test_partitioned_costs_match_decode_up_front_pipeline(self, monkeypatch):
        rows = make_rows(250)
        partitioning = TablePartitioning(
            horizontal=HorizontalPartitionSpec(predicate=ge("id", 200)),
            vertical=VerticalPartitionSpec(
                row_store_columns=("quantity", "customer"),
                column_store_columns=("region", "amount"),
            ),
        )
        late = build_database(Store.COLUMN, rows)
        late.apply_partitioning("facts", partitioning)
        eager = build_database(Store.COLUMN, rows)
        eager.apply_partitioning("facts", partitioning)
        queries = [
            aggregate("facts").sum("amount").group_by("region").build(),
            aggregate("facts").count().where(between("amount", 5.0, 80.0)).build(),
            select("facts").where(eq("region", "region_3")).build(),
        ]
        late_results = [late.execute(query) for query in queries]
        monkeypatch.setattr(StoredTable, "column_batched", forced_decode)
        eager_results = [eager.execute(query) for query in queries]
        for late_result, eager_result in zip(late_results, eager_results):
            assert late_result.cost.components == eager_result.cost.components
            assert late_result.rows == eager_result.rows


NULLABLE_SCHEMA = TableSchema(
    "sparse",
    (
        Column("id", DataType.INTEGER, primary_key=True),
        Column("note", DataType.VARCHAR, nullable=True),
        Column("score", DataType.DOUBLE, nullable=True),
        Column("amount", DataType.DOUBLE),
    ),
)


class TestGroupKeyEdgeCases:
    def test_nan_group_keys_match_row_store(self):
        nan = float("nan")
        rows = [
            {"id": 0, "region": "a", "amount": 1.0, "quantity": 1, "customer": 0},
            {"id": 1, "region": "a", "amount": nan, "quantity": 2, "customer": 0},
            {"id": 2, "region": "b", "amount": nan, "quantity": 3, "customer": 0},
            {"id": 3, "region": "b", "amount": 4.0, "quantity": 4, "customer": 0},
        ]
        query = aggregate("facts").count().sum("quantity").group_by("amount").build()
        results = {
            store: build_database(store, rows).execute(query).rows
            for store in Store
        }
        # The scalar reference keys groups per boxed NaN object: each NaN row
        # is its own group, in both stores.
        for rows_out in results.values():
            assert len(rows_out) == 4
        def canonical(rows_out):
            return sorted(
                (repr(row["amount"]), row["count_star"], row["sum_quantity"])
                for row in rows_out
            )
        assert canonical(results[Store.ROW]) == canonical(results[Store.COLUMN])

    def test_none_group_key_on_all_null_dictionary_column(self):
        rows = [{"id": i, "amount": float(i)} for i in range(6)]
        for store in Store:
            database = HybridDatabase()
            database.create_table(NULLABLE_SCHEMA, store=store)
            database.load_rows("sparse", rows)
            result = database.execute(
                aggregate("sparse").count().sum("amount").group_by("note").build()
            )
            assert result.rows == [
                {"note": None, "count_star": 6, "sum_amount": 15.0}
            ], store

    def test_empty_dictionary_group_by(self):
        for store in Store:
            database = build_database(store, [])
            result = database.execute(
                aggregate("facts").count().group_by("region").build()
            )
            assert result.rows == []

    def test_update_orphaned_dictionary_entry_is_not_a_group(self):
        rows = make_rows(30)
        databases = {store: build_database(store, rows) for store in Store}
        query = aggregate("facts").count().group_by("region").build()
        for database in databases.values():
            # Rewrite every region_0 row: the dictionary entry survives
            # unused (a code gap); it must not surface as an empty group.
            from repro.query.builder import update

            database.execute(update("facts", {"region": "rewritten"}, eq("region", "region_0")))
        row_rows = databases[Store.ROW].execute(query).rows
        column_rows = databases[Store.COLUMN].execute(query).rows
        assert sorted(
            (row["region"], row["count_star"]) for row in row_rows
        ) == sorted((row["region"], row["count_star"]) for row in column_rows)
        assert all(row["count_star"] > 0 for row in column_rows)

    def test_post_delete_group_by_matches_row_store(self):
        rows = make_rows(60)
        databases = {store: build_database(store, rows) for store in Store}
        from repro.query.builder import delete

        for database in databases.values():
            database.execute(delete("facts", eq("region", "region_2")))
            database.execute(delete("facts", between("amount", 0.0, 20.0)))
        query = aggregate("facts").sum("amount").count().group_by("region").build()
        row_rows = databases[Store.ROW].execute(query).rows
        column_rows = databases[Store.COLUMN].execute(query).rows
        assert sorted(row["region"] for row in row_rows) == sorted(
            row["region"] for row in column_rows
        )
        by_region_row = {row["region"]: row for row in row_rows}
        by_region_column = {row["region"]: row for row in column_rows}
        for region, row in by_region_row.items():
            assert row["count_star"] == by_region_column[region]["count_star"]
            assert row["sum_amount"] == pytest.approx(
                by_region_column[region]["sum_amount"]
            )


class TestJoinSides:
    """Joins over every combination of encoded and plain key columns."""

    @pytest.mark.parametrize("base_store", list(Store))
    @pytest.mark.parametrize("dim_store", list(Store))
    def test_mixed_store_joins_agree(self, base_store, dim_store):
        rows = make_rows(120)
        dim_rows = make_dim_rows(12)  # customers 12..19 have no partner
        database = HybridDatabase()
        database.create_table(SCHEMA, store=base_store)
        database.load_rows("facts", rows)
        database.create_table(DIM_SCHEMA, store=dim_store)
        database.load_rows("customers", dim_rows)
        result = database.execute(
            aggregate("facts").sum("amount").count()
            .join("customers", "customer", "customer_id")
            .group_by("customers.segment").build()
        )
        # Scalar reference: per-row accumulation over the matching rows.
        reference = {}
        segment_of = {row["customer_id"]: row["segment"] for row in dim_rows}
        for row in rows:
            segment = segment_of.get(row["customer"])
            if segment is None:
                continue
            entry = reference.setdefault(segment, [0.0, 0])
            entry[0] += row["amount"]
            entry[1] += 1
        assert {row["customers.segment"] for row in result.rows} == set(reference)
        for row in result.rows:
            expected_sum, expected_count = reference[row["customers.segment"]]
            assert row["sum_amount"] == pytest.approx(expected_sum)
            assert row["count_star"] == expected_count

    def test_shared_dictionary_probe_matches_value_probe(self):
        from repro.engine.executor.join import _keyed_positions, _probe_positions

        dictionary = ColumnDictionary(DataType.VARCHAR)
        values = ["a", "b", "b", "c", "a", "d", "c"]
        codes = dictionary.bulk_build(values)
        build = EncodedColumn(codes[:4], dictionary)
        probe = EncodedColumn(codes[2:], dictionary)
        positions = _keyed_positions(build, probe)
        reference = _probe_positions(build.values, probe.values)
        assert positions.tolist() == reference.tolist()

    def test_translated_dictionary_probe_matches_value_probe(self):
        from repro.engine.executor.join import _keyed_positions, _probe_positions

        build_dictionary = ColumnDictionary(DataType.VARCHAR)
        build = EncodedColumn(
            build_dictionary.bulk_build(["x", "y", "y", "z"]), build_dictionary
        )
        probe_dictionary = ColumnDictionary(DataType.VARCHAR)
        probe = EncodedColumn(
            probe_dictionary.bulk_build(["y", "q", "z", "z", "x", "q"]),
            probe_dictionary,
        )
        positions = _keyed_positions(build, probe)
        reference = _probe_positions(build.values, probe.values)
        assert positions.tolist() == reference.tolist()
        assert (positions >= 0).tolist() == [True, False, True, True, True, False]

    def test_nan_keys_never_match_on_shared_dictionary_self_join(self):
        # A self-join carries the same dictionary object on both sides, so
        # the probe runs on raw codes — where the NaN code would match
        # itself although NaN != NaN by value.  The row store (native float
        # probe) never matches NaN; the code path must agree.
        nan = float("nan")
        schema = TableSchema.build(
            "t",
            [("id", DataType.INTEGER), ("k", DataType.DOUBLE)],
            primary_key=["id"],
        )
        rows = [
            {"id": 0, "k": nan},
            {"id": 1, "k": 1.0},
            {"id": 2, "k": nan},
        ]
        query = aggregate("t").count().join("t", "k", "k").build()
        counts = {}
        for store in Store:
            database = HybridDatabase()
            database.create_table(schema, store=store)
            database.load_rows("t", rows)
            counts[store] = database.execute(query).rows[0]["count_star"]
        assert counts[Store.ROW] == counts[Store.COLUMN] == 1

    def test_empty_probe_dictionary(self):
        from repro.engine.executor.join import _keyed_positions

        build_dictionary = ColumnDictionary(DataType.VARCHAR)
        build = EncodedColumn(
            build_dictionary.bulk_build(["x", "y"]), build_dictionary
        )
        probe_dictionary = ColumnDictionary(DataType.VARCHAR)
        probe = EncodedColumn(np.empty(0, dtype=np.int64), probe_dictionary)
        assert _keyed_positions(build, probe).tolist() == []


class TestBatchRepresentation:
    def test_collect_batch_carries_codes_for_column_store(self):
        from repro.engine.executor.access import SimpleAccessPath
        from repro.engine.timing import CostAccountant

        table = StoredTable(SCHEMA, Store.COLUMN)
        table.bulk_load(make_rows(50))
        batch = SimpleAccessPath(table).collect_batch(
            ["region", "amount"], None, CostAccountant()
        )
        assert isinstance(batch.encoded("region"), EncodedColumn)
        assert batch.column("region").tolist() == [
            row["region"] for row in table.all_rows()
        ]

    def test_take_keeps_codes(self):
        dictionary = ColumnDictionary(DataType.VARCHAR)
        encoded = EncodedColumn(
            dictionary.bulk_build(["a", "b", "a", "c"]), dictionary
        )
        batch = ColumnBatch({"k": encoded})
        taken = batch.take(np.array([True, False, True, True]))
        assert isinstance(taken.raw("k"), EncodedColumn)
        assert taken.column_list("k") == ["a", "a", "c"]

    def test_concat_shares_dictionary_or_decodes(self):
        dictionary = ColumnDictionary(DataType.VARCHAR)
        encoded = EncodedColumn(
            dictionary.bulk_build(["a", "b", "a"]), dictionary
        )
        shared = ColumnBatch.concat(
            [ColumnBatch({"k": encoded}), ColumnBatch({"k": encoded.take(np.array([0, 1]))})]
        )
        assert isinstance(shared.raw("k"), EncodedColumn)
        assert shared.column_list("k") == ["a", "b", "a", "a", "b"]

        other_dictionary = ColumnDictionary(DataType.VARCHAR)
        other = EncodedColumn(
            other_dictionary.bulk_build(["z", "a"]), other_dictionary
        )
        mixed = ColumnBatch.concat(
            [ColumnBatch({"k": encoded}), ColumnBatch({"k": other})]
        )
        assert isinstance(mixed.raw("k"), np.ndarray)
        assert mixed.column_list("k") == ["a", "b", "a", "z", "a"]

    def test_factorize_handles_code_gaps(self):
        dictionary = ColumnDictionary(DataType.VARCHAR)
        codes = dictionary.bulk_build(["a", "b", "c", "d"])
        # Use only a strict subset of the dictionary (as after an update that
        # orphaned entries): factorization compacts the used codes.
        encoded = EncodedColumn(codes[np.array([3, 1, 3, 1, 1])], dictionary)
        distinct_codes, inverse = encoded.factorize()
        assert distinct_codes.tolist() == [1, 3]
        assert inverse.tolist() == [1, 0, 1, 0, 0]


class TestCrossStorePredicateFixes:
    """Divergences the differential fuzzer flushed out, pinned individually."""

    def _pair(self, rows, schema=NULLABLE_SCHEMA, name="sparse"):
        databases = {}
        for store in Store:
            database = HybridDatabase()
            database.create_table(schema, store=store)
            database.load_rows(name, rows)
            databases[store] = database
        return databases

    def test_between_on_all_null_column_matches_row_store(self):
        rows = [{"id": i, "amount": float(i)} for i in range(5)]
        query = select("sparse").where(Between("note", "a", "b")).build()
        results = {
            store: database.execute(query).rows
            for store, database in self._pair(rows).items()
        }
        assert results[Store.ROW] == results[Store.COLUMN] == []

    def test_ne_on_all_null_column_matches_row_store(self):
        rows = [{"id": i, "amount": float(i)} for i in range(5)]
        query = select("sparse").where(ne("note", "x")).build()
        results = {
            store: database.execute(query).rows
            for store, database in self._pair(rows).items()
        }
        assert results[Store.ROW] == results[Store.COLUMN] == []

    def test_eq_null_literal_matches_row_store(self):
        rows = [{"id": i, "amount": float(i)} for i in range(4)]
        query = select("sparse").where(Comparison("note", CompareOp.EQ, None)).build()
        results = {
            store: database.execute(query).rows
            for store, database in self._pair(rows).items()
        }
        assert results[Store.ROW] == results[Store.COLUMN] == []

    def test_ordered_comparison_with_nan_literal_matches_row_store(self):
        nan = float("nan")
        rows = [
            {"id": 0, "amount": 1.0, "score": 2.0},
            {"id": 1, "amount": 2.0, "score": nan},
            {"id": 2, "amount": 3.0, "score": 0.5},
        ]
        for op in CompareOp:
            query = select("sparse").where(Comparison("score", op, nan)).build()
            results = {
                store: [row["id"] for row in database.execute(query).rows]
                for store, database in self._pair(rows).items()
            }
            assert results[Store.ROW] == results[Store.COLUMN], op
