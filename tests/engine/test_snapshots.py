"""Snapshot reads: a consistent view that survives every later write.

``database.snapshot(name)`` (or ``table.snapshot()``) returns a read view
pinned to the table's state at that instant.  The column store implements it
copy-on-write: the snapshot shares the immutable main columns and copies
only the (small) delta, and any later in-place write first clones the shared
columns (``_unseal_for_write``) — so snapshots are cheap exactly when the
write-optimised path is hot.  The row store materialises (its rows are
mutable lists); partitioned tables snapshot every part.

Pinned here: snapshots are stable under inserts, updates, deletes, *and*
delta merges in all three layouts, and reflect delta rows that existed at
snapshot time.
"""

from repro.engine.database import HybridDatabase
from repro.engine.partitioning import (
    HorizontalPartitionSpec,
    TablePartitioning,
    VerticalPartitionSpec,
)
from repro.engine.schema import Column, TableSchema
from repro.engine.types import DataType, Store
from repro.query.builder import delete, insert, update
from repro.query.predicates import CompareOp, Comparison, eq, ge

SCHEMA = TableSchema(
    "s",
    (
        Column("id", DataType.INTEGER, primary_key=True),
        Column("category", DataType.VARCHAR),
        Column("amount", DataType.DOUBLE, nullable=True),
    ),
)


def make_rows(start, count):
    return [
        {
            "id": i,
            "category": f"cat_{i % 3}",
            "amount": None if i % 5 == 4 else i * 1.5,
        }
        for i in range(start, start + count)
    ]


def build(store):
    database = HybridDatabase()
    database.create_table(SCHEMA, store)
    database.load_rows("s", make_rows(0, 10))
    return database


def mutate(database):
    database.execute(insert("s", make_rows(20, 3)))
    database.execute(update("s", {"category": "rewritten"}, ge("id", 5)))
    database.execute(delete("s", eq("id", 2)))


class TestStoredTables:
    def test_column_store_snapshot_is_stable_under_writes(self):
        database = build(Store.COLUMN)
        before = database.table_object("s").all_rows()
        snapshot = database.snapshot("s")
        mutate(database)
        assert snapshot.rows() == before
        assert database.table_object("s").all_rows() != before

    def test_row_store_snapshot_is_stable_under_writes(self):
        database = build(Store.ROW)
        before = database.table_object("s").all_rows()
        snapshot = database.snapshot("s")
        mutate(database)
        assert snapshot.rows() == before

    def test_snapshot_sees_unmerged_delta_rows(self):
        database = build(Store.COLUMN)
        database.execute(insert("s", make_rows(30, 2)))  # sits in the delta
        backend = database.table_object("s").backend
        assert backend.delta_rows == 2
        snapshot = database.snapshot("s")
        ids = [row["id"] for row in snapshot.rows()]
        assert 30 in ids and 31 in ids

    def test_snapshot_survives_a_merge(self):
        database = build(Store.COLUMN)
        database.execute(insert("s", make_rows(30, 2)))
        before = database.table_object("s").all_rows()
        snapshot = database.snapshot("s")
        assert database.merge_deltas("s") == 2
        database.execute(update("s", {"amount": 0.0}, ge("id", 0)))
        assert snapshot.rows() == before

    def test_two_snapshots_pin_two_points_in_time(self):
        database = build(Store.COLUMN)
        first = database.snapshot("s")
        state_one = database.table_object("s").all_rows()
        database.execute(insert("s", make_rows(40, 1)))
        second = database.snapshot("s")
        state_two = database.table_object("s").all_rows()
        database.execute(delete("s", ge("id", 0)))
        assert first.rows() == state_one
        assert second.rows() == state_two
        assert database.table_object("s").num_rows == 0

    def test_snapshot_column_values(self):
        database = build(Store.COLUMN)
        snapshot = database.snapshot("s")
        expected = database.table_object("s").column_values("category")
        database.execute(update("s", {"category": "gone"}, ge("id", 0)))
        assert list(snapshot.column_values("category")) == list(expected)


class TestPartitionedTables:
    def _partitioned(self):
        database = build(Store.COLUMN)
        database.apply_partitioning(
            "s",
            TablePartitioning(
                horizontal=HorizontalPartitionSpec(
                    predicate=Comparison("id", CompareOp.GE, 5)
                ),
                vertical=VerticalPartitionSpec(
                    row_store_columns=("category",),
                    column_store_columns=("amount",),
                ),
            ),
        )
        return database

    def test_partitioned_snapshot_is_stable_under_writes(self):
        database = self._partitioned()
        before = database.table_object("s").all_rows()
        snapshot = database.snapshot("s")
        mutate(database)
        assert snapshot.rows() == before
        assert database.table_object("s").all_rows() != before

    def test_partitioned_snapshot_matches_all_rows_ordering(self):
        database = self._partitioned()
        snapshot = database.snapshot("s")
        assert snapshot.rows() == database.table_object("s").all_rows()
