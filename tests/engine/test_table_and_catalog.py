"""Tests for StoredTable (store conversion), statistics and the catalog."""

import pytest

from repro.engine.catalog import Catalog
from repro.engine.partitioning import TablePartitioning, VerticalPartitionSpec
from repro.engine.schema import TableSchema
from repro.engine.statistics import (
    compute_table_statistics,
    statistics_from_schema,
)
from repro.engine.table import StoredTable
from repro.engine.timing import CostAccountant
from repro.engine.types import DataType, Store
from repro.errors import CatalogError


@pytest.fixture
def schema() -> TableSchema:
    return TableSchema.build(
        "inventory",
        [
            ("id", DataType.INTEGER),
            ("warehouse", DataType.VARCHAR),
            ("amount", DataType.INTEGER),
        ],
        primary_key=["id"],
    )


@pytest.fixture
def rows():
    return [
        {"id": i, "warehouse": f"w{i % 3}", "amount": i * 2} for i in range(50)
    ]


class TestStoredTable:
    def test_conversion_round_trip_preserves_rows(self, schema, rows):
        table = StoredTable(schema, Store.ROW)
        table.bulk_load(rows)
        original = table.all_rows()
        table.convert_to(Store.COLUMN)
        assert table.store is Store.COLUMN
        assert table.all_rows() == original
        table.convert_to(Store.ROW)
        assert table.store is Store.ROW
        assert table.all_rows() == original

    def test_conversion_charges_layout_conversion(self, schema, rows):
        table = StoredTable(schema, Store.ROW)
        table.bulk_load(rows)
        accountant = CostAccountant()
        table.convert_to(Store.COLUMN, accountant)
        assert accountant.snapshot()["layout_conversion"] == pytest.approx(
            50 * schema.num_columns * 70.0
        )

    def test_conversion_to_same_store_is_noop(self, schema, rows):
        table = StoredTable(schema, Store.ROW)
        table.bulk_load(rows)
        accountant = CostAccountant()
        table.convert_to(Store.ROW, accountant)
        assert accountant.snapshot() == {}


class TestStatistics:
    def test_compute_statistics_from_table(self, schema, rows):
        table = StoredTable(schema, Store.COLUMN)
        table.bulk_load(rows)
        statistics = compute_table_statistics(table)
        assert statistics.num_rows == 50
        assert statistics.column("warehouse").num_distinct == 3
        assert statistics.column("id").min_value == 0
        assert statistics.column("id").max_value == 49
        assert 0 < statistics.compression_rate <= 1.0

    def test_statistics_from_schema_defaults(self, schema):
        statistics = statistics_from_schema(schema, num_rows=10_000)
        assert statistics.num_rows == 10_000
        assert statistics.column("id").num_distinct == 10_000  # primary key
        assert statistics.column("warehouse").num_distinct == 1_000  # default cap

    def test_scaled_statistics(self, schema, rows):
        table = StoredTable(schema, Store.ROW)
        table.bulk_load(rows)
        statistics = compute_table_statistics(table)
        scaled = statistics.scaled(10)
        assert scaled.num_rows == 10
        assert scaled.column("id").num_distinct == 10

    def test_code_bytes_estimate_positive(self, schema, rows):
        table = StoredTable(schema, Store.COLUMN)
        table.bulk_load(rows)
        statistics = compute_table_statistics(table)
        assert statistics.column_code_bytes("warehouse") == 50  # one byte per code


class TestCatalog:
    def test_register_and_lookup(self, schema):
        catalog = Catalog()
        catalog.register_table(schema, Store.ROW)
        assert catalog.has_table("inventory")
        assert catalog.store_of("inventory") is Store.ROW
        assert catalog.table_names() == ["inventory"]

    def test_duplicate_registration_rejected(self, schema):
        catalog = Catalog()
        catalog.register_table(schema)
        with pytest.raises(CatalogError):
            catalog.register_table(schema)

    def test_unknown_table_rejected(self):
        catalog = Catalog()
        with pytest.raises(CatalogError):
            catalog.entry("missing")
        with pytest.raises(CatalogError):
            catalog.drop_table("missing")

    def test_set_store_clears_partitioning(self, schema):
        catalog = Catalog()
        catalog.register_table(schema, Store.ROW)
        partitioning = TablePartitioning(
            vertical=VerticalPartitionSpec(("warehouse",), ("amount",))
        )
        catalog.set_partitioning("inventory", partitioning)
        assert catalog.entry("inventory").is_partitioned
        catalog.set_store("inventory", Store.COLUMN)
        assert not catalog.entry("inventory").is_partitioned
        assert catalog.store_of("inventory") is Store.COLUMN

    def test_describe_mentions_layout(self, schema):
        catalog = Catalog()
        catalog.register_table(schema, Store.COLUMN)
        assert "column store" in catalog.describe()

    def test_statistics_default_when_absent(self, schema):
        catalog = Catalog()
        catalog.register_table(schema)
        statistics = catalog.statistics_of("inventory")
        assert statistics.num_rows == 0
