"""Property-based tests: both stores must return identical query results.

The storage advisor only makes sense if moving a table between stores never
changes query semantics — only costs.  These tests generate random data and
random queries and assert that the row store and the column store agree.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.column_store import ColumnStoreTable
from repro.engine.row_store import RowStoreTable
from repro.engine.schema import TableSchema
from repro.engine.types import DataType
from repro.query.predicates import Between, CompareOp, Comparison

SCHEMA = TableSchema.build(
    "events",
    [
        ("id", DataType.INTEGER),
        ("category", DataType.VARCHAR),
        ("amount", DataType.DOUBLE),
        ("priority", DataType.INTEGER),
    ],
    primary_key=["id"],
)


rows_strategy = st.lists(
    st.tuples(
        st.sampled_from(["a", "b", "c", "d"]),
        st.integers(min_value=0, max_value=1_000),
        st.integers(min_value=0, max_value=5),
    ),
    min_size=1,
    max_size=120,
).map(
    lambda triples: [
        {"id": i, "category": c, "amount": float(a), "priority": p}
        for i, (c, a, p) in enumerate(triples)
    ]
)


def build_both(rows):
    row_store = RowStoreTable(SCHEMA)
    row_store.bulk_load(rows)
    column_store = ColumnStoreTable(SCHEMA)
    column_store.bulk_load(rows)
    return row_store, column_store


class TestStoreEquivalence:
    @given(rows=rows_strategy, value=st.integers(min_value=0, max_value=1_000))
    @settings(max_examples=40, deadline=None)
    def test_equality_filter_agrees(self, rows, value):
        row_store, column_store = build_both(rows)
        predicate = Comparison("amount", CompareOp.EQ, float(value))
        row_positions = set(int(p) for p in row_store.filter_positions(predicate))
        column_positions = set(int(p) for p in column_store.filter_positions(predicate))
        assert row_positions == column_positions

    @given(
        rows=rows_strategy,
        low=st.integers(min_value=0, max_value=500),
        width=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=40, deadline=None)
    def test_range_filter_agrees(self, rows, low, width):
        row_store, column_store = build_both(rows)
        predicate = Between("amount", float(low), float(low + width))
        row_positions = set(int(p) for p in row_store.filter_positions(predicate))
        column_positions = set(int(p) for p in column_store.filter_positions(predicate))
        assert row_positions == column_positions

    @given(rows=rows_strategy, op=st.sampled_from(list(CompareOp)),
           threshold=st.integers(min_value=0, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_comparison_operators_agree(self, rows, op, threshold):
        row_store, column_store = build_both(rows)
        predicate = Comparison("priority", op, threshold)
        row_positions = set(int(p) for p in row_store.filter_positions(predicate))
        column_positions = set(int(p) for p in column_store.filter_positions(predicate))
        assert row_positions == column_positions

    @given(rows=rows_strategy)
    @settings(max_examples=30, deadline=None)
    def test_full_materialisation_agrees(self, rows):
        row_store, column_store = build_both(rows)
        assert row_store.all_rows() == column_store.all_rows()

    @given(rows=rows_strategy, category=st.sampled_from(["a", "b", "c", "d"]))
    @settings(max_examples=30, deadline=None)
    def test_column_values_after_filter_agree(self, rows, category):
        row_store, column_store = build_both(rows)
        predicate = Comparison("category", CompareOp.EQ, category)
        row_positions = row_store.filter_positions(predicate)
        column_positions = column_store.filter_positions(predicate)
        assert row_store.column_values("amount", row_positions) == (
            column_store.column_values("amount", column_positions)
        )

    @given(rows=rows_strategy, new_priority=st.integers(min_value=10, max_value=20))
    @settings(max_examples=30, deadline=None)
    def test_updates_agree(self, rows, new_priority):
        row_store, column_store = build_both(rows)
        predicate = Comparison("category", CompareOp.EQ, "a")
        row_store.update_rows(
            row_store.filter_positions(predicate) if rows else [], {"priority": new_priority}
        )
        column_store.update_rows(
            column_store.filter_positions(predicate) if rows else [], {"priority": new_priority}
        )
        assert row_store.all_rows() == column_store.all_rows()

    @given(rows=rows_strategy)
    @settings(max_examples=30, deadline=None)
    def test_integer_sum_stays_integral_on_every_path(self, rows):
        """SUM over an int column is an int everywhere — including the
        scalar reference (whose accumulator historically started at the
        float 0.0 and drifted to float where the vectorized paths kept
        ints) and the code-domain reduction, with identical values."""
        from repro.engine.database import HybridDatabase
        from repro.engine.executor.agg_pushdown import aggregate_pushdown_disabled
        from repro.engine.executor.aggregates import aggregate_values
        from repro.engine.types import Store
        from repro.query.ast import AggregateFunction
        from repro.query.builder import aggregate

        expected = sum(row["priority"] for row in rows)
        scalar = aggregate_values(
            AggregateFunction.SUM, [row["priority"] for row in rows]
        )
        assert scalar == expected and type(scalar) is int
        query = aggregate("events").sum("priority").build()
        for store in Store:
            database = HybridDatabase()
            database.create_table(SCHEMA, store=store)
            database.load_rows("events", rows)
            for context in (aggregate_pushdown_disabled, None):
                if context is None:
                    value = database.execute(query).rows[0]["sum_priority"]
                else:
                    with context():
                        value = database.execute(query).rows[0]["sum_priority"]
                assert value == expected, store
                assert type(value) is int, (store, context)
