"""Tests for the column store backend."""

import pytest

from repro.engine.column_store import SCAN_MATERIALIZATION_THRESHOLD, ColumnStoreTable
from repro.engine.schema import TableSchema
from repro.engine.timing import CostAccountant
from repro.engine.types import DataType, Store
from repro.errors import ExecutionError
from repro.query.predicates import And, Or, between, eq, ge, in_list, lt, ne


@pytest.fixture
def schema() -> TableSchema:
    return TableSchema.build(
        "items",
        [
            ("id", DataType.INTEGER),
            ("name", DataType.VARCHAR),
            ("price", DataType.DOUBLE),
            ("stock", DataType.INTEGER),
        ],
        primary_key=["id"],
    )


@pytest.fixture
def table(schema) -> ColumnStoreTable:
    store = ColumnStoreTable(schema)
    store.bulk_load([
        {"id": i, "name": f"item_{i % 5}", "price": i * 1.5, "stock": i % 10}
        for i in range(100)
    ])
    return store


class TestBasics:
    def test_store_identity(self, table):
        assert table.store is Store.COLUMN

    def test_compression_rate_bounds(self, table):
        assert 0.0 < table.compression_rate() <= 1.0
        assert table.compression_rate("name") < 1.0  # only 5 distinct values

    def test_code_bytes_smaller_than_raw_for_low_cardinality(self, table):
        assert table.column_code_bytes("name") < 100 * DataType.VARCHAR.width_bytes

    def test_implicit_index_everywhere(self, table):
        assert table.has_index("price")
        assert table.has_index("name")


class TestInsertsUpdates:
    def test_insert_appends(self, table):
        table.insert_rows([{"id": 200, "name": "new", "price": 0.5, "stock": 3}])
        assert table.num_rows == 101
        assert table.column_values("name", [100]) == ["new"]

    def test_duplicate_primary_key_rejected(self, table):
        with pytest.raises(ExecutionError):
            table.insert_rows([{"id": 0, "name": "dup", "price": 0.0, "stock": 0}])

    def test_insert_charges_per_cell(self, schema):
        table = ColumnStoreTable(schema)
        accountant = CostAccountant()
        table.insert_rows([{"id": 1, "name": "a", "price": 1.0, "stock": 1}], accountant)
        assert accountant.snapshot()["column_insert"] == pytest.approx(
            schema.num_columns * 550.0
        )

    def test_duplicate_pk_mid_batch_keeps_earlier_rows(self, schema):
        """Partial-state contract of the columnar multi-row insert.

        A duplicate primary key aborts the batch at the offending row: the
        earlier rows of the batch are inserted (and charged per row), the
        offending and later rows are not — exactly like the per-row append
        loop behaved.
        """
        table = ColumnStoreTable(schema)
        table.insert_rows([{"id": 0, "name": "seed", "price": 0.0, "stock": 0}])
        accountant = CostAccountant()
        batch = [
            {"id": 1, "name": "a", "price": 1.0, "stock": 1},
            {"id": 2, "name": "b", "price": 2.0, "stock": 2},
            {"id": 0, "name": "dup", "price": 9.0, "stock": 9},  # duplicate
            {"id": 3, "name": "c", "price": 3.0, "stock": 3},  # never reached
        ]
        with pytest.raises(ExecutionError, match="duplicate primary key"):
            table.insert_rows(batch, accountant)
        assert table.num_rows == 3
        assert table.column_values("id") == [0, 1, 2]
        assert table.column_values("name") == ["seed", "a", "b"]
        # The two inserted rows are charged per row; the duplicate row pays
        # its uniqueness probe but no insert, the row after it nothing.
        snapshot = accountant.snapshot()
        assert snapshot["column_insert"] == pytest.approx(
            2 * schema.num_columns * 550.0
        )
        assert snapshot["index_probe"] == pytest.approx(
            accountant.device.hash_probes(3)
        )
        # The failed batch leaves the table fully usable: re-inserting the
        # remaining rows (with a fresh id for the duplicate) succeeds and the
        # duplicate key is still taken.
        with pytest.raises(ExecutionError):
            table.insert_rows([{"id": 0, "name": "x", "price": 0.0, "stock": 0}])
        table.insert_rows([{"id": 3, "name": "c", "price": 3.0, "stock": 3}])
        assert table.column_values("id") == [0, 1, 2, 3]

    def test_intra_batch_duplicate_pk_keeps_first_occurrence(self, schema):
        table = ColumnStoreTable(schema)
        with pytest.raises(ExecutionError, match="duplicate primary key"):
            table.insert_rows([
                {"id": 7, "name": "first", "price": 1.0, "stock": 1},
                {"id": 7, "name": "second", "price": 2.0, "stock": 2},
            ])
        assert table.num_rows == 1
        assert table.column_values("name") == ["first"]

    def test_validation_error_mid_batch_keeps_earlier_rows(self, schema):
        table = ColumnStoreTable(schema)
        with pytest.raises(Exception):
            table.insert_rows([
                {"id": 1, "name": "ok", "price": 1.0, "stock": 1},
                {"id": 2, "name": "bad", "price": "not-a-price", "stock": 2},
            ])
        assert table.num_rows == 1
        assert table.column_values("name") == ["ok"]

    def _nullable_schema(self):
        from repro.engine.schema import Column
        from repro.engine.types import DataType as DT

        return TableSchema(
            "n",
            (
                Column("id", DT.INTEGER, primary_key=True),
                Column("v", DT.DOUBLE, nullable=True),
            ),
        )

    def test_null_mixes_with_values_via_reserved_code_zero(self):
        """NULL lives alongside real values: the dictionary reserves code 0.

        Adding the first NULL shifts every stored value code up by one, and
        the value codes keep mirroring the value sort order — the property
        the code-range predicate translation relies on.
        """
        table = ColumnStoreTable(self._nullable_schema())
        table.insert_rows([{"id": 0, "v": 1.0}])
        table.insert_rows([{"id": 1, "v": None}, {"id": 2, "v": 2.0}])
        assert table.all_rows() == [
            {"id": 0, "v": 1.0}, {"id": 1, "v": None}, {"id": 2, "v": 2.0}
        ]
        table.merge_delta()  # inserts buffer in the delta; codes live in main
        compressed = table._columns["v"]
        assert compressed.dictionary.has_null
        assert compressed.dictionary.encode_existing(None) == 0
        assert compressed.dictionary.encode_existing(1.0) == 1
        assert compressed.dictionary.encode_existing(2.0) == 2
        assert compressed.null_count == 1

    def test_values_into_all_null_column(self):
        table = ColumnStoreTable(self._nullable_schema())
        table.insert_rows([{"id": 0}])
        table.insert_rows([{"id": 1, "v": 2.0}])
        table.insert_rows([{"id": 2, "v": float("nan")}])
        values = table.column_values("v")
        assert values[0] is None and values[1] == 2.0
        assert values[2] != values[2]  # NaN survives, sorted last
        table.merge_delta()
        dictionary = table._columns["v"].dictionary
        assert dictionary.nan_code == len(dictionary) - 1

    def test_mixed_null_predicates_run_in_the_code_domain(self):
        from repro.query.predicates import IsNull, ge, lt

        table = ColumnStoreTable(self._nullable_schema())
        table.insert_rows(
            [{"id": i, "v": None if i % 3 == 0 else float(i)} for i in range(12)]
        )
        assert table.filter_positions(IsNull("v")).tolist() == [0, 3, 6, 9]
        # NULL rows never match comparisons, in either direction.
        matches = set(table.filter_positions(ge("v", 5.0)).tolist())
        assert matches == {5, 7, 8, 10, 11}
        matches = set(table.filter_positions(lt("v", 5.0)).tolist())
        assert matches == {1, 2, 4}

    def test_update_charges_full_row_reinsert(self, table):
        accountant = CostAccountant()
        table.update_rows([3], {"stock": 42}, accountant)
        assert table.column_values("stock", [3]) == [42]
        assert accountant.snapshot()["column_update"] == pytest.approx(
            table.schema.num_columns * 800.0
        )

    def test_update_primary_key_checks_uniqueness(self, table):
        with pytest.raises(ExecutionError):
            table.update_rows([3], {"id": 4})
        table.update_rows([3], {"id": 1000})
        assert table.column_values("id", [3]) == [1000]

    def test_delete_rows(self, table):
        table.delete_rows([0, 1])
        assert table.num_rows == 98
        assert table.column_values("id", [0]) == [2]


class TestFilterPositions:
    def test_equality_vectorised(self, table):
        accountant = CostAccountant()
        positions = table.filter_positions(eq("name", "item_2"), accountant)
        assert len(positions) == 20
        snapshot = accountant.snapshot()
        assert snapshot.get("column_scan", 0) > 0
        assert snapshot.get("vector_compare", 0) > 0
        assert "predicate_eval" not in snapshot

    def test_between_uses_dictionary_ranges(self, table):
        positions = table.filter_positions(between("id", 10, 19))
        assert sorted(int(p) for p in positions) == list(range(10, 20))

    def test_open_comparisons(self, table):
        assert len(table.filter_positions(ge("id", 90))) == 10
        assert len(table.filter_positions(lt("id", 10))) == 10
        assert len(table.filter_positions(ne("name", "item_0"))) == 80

    def test_in_list(self, table):
        positions = table.filter_positions(in_list("stock", [0, 1]))
        assert len(positions) == 20

    def test_equality_with_unknown_literal(self, table):
        assert len(table.filter_positions(eq("name", "missing"))) == 0

    def test_and_of_simple_predicates_vectorised(self, table):
        positions = table.filter_positions(
            And((eq("name", "item_2"), ge("id", 50)))
        )
        assert all(int(p) >= 50 for p in positions)
        assert len(positions) == 10

    def test_or_compiles_to_code_domain(self, table):
        accountant = CostAccountant()
        positions = table.filter_positions(
            Or((eq("name", "item_0"), eq("name", "item_1"))), accountant
        )
        assert len(positions) == 40
        snapshot = accountant.snapshot()
        assert snapshot.get("vector_compare", 0) > 0
        assert "predicate_eval" not in snapshot
        assert "dictionary_decode" not in snapshot

    def test_nan_in_list_matches_nothing_in_code_domain(self):
        """IN is chained equality: a NaN member contributes no member code.

        The code-domain mask, the decode fallback and the scalar reference
        all agree — NaN rows are reachable only through non-NaN members.
        """
        from repro.engine.schema import Column
        from repro.engine.types import DataType as DT

        schema = TableSchema(
            "n",
            (Column("id", DT.INTEGER, primary_key=True),
             Column("v", DT.DOUBLE, nullable=True)),
        )
        table = ColumnStoreTable(schema)
        nan = float("nan")
        table.insert_rows(
            [{"id": i, "v": nan if i % 3 == 0 else float(i)} for i in range(9)]
        )
        predicate = in_list("v", [nan, 4.0])
        positions = table.filter_positions(predicate)
        assert positions.tolist() == [4]
        values = table.column_values("v")
        expected = [i for i, v in enumerate(values) if predicate.evaluate({"v": v})]
        assert positions.tolist() == expected
        from repro.engine.column_store import code_domain_disabled

        with code_domain_disabled():
            assert table.filter_positions(predicate).tolist() == expected

    def test_code_domain_disabled_matches_code_path_results(self, table):
        from repro.engine.column_store import code_domain_disabled

        predicate = And((eq("name", "item_2"), ge("id", 50)))
        fast = table.filter_positions(predicate).tolist()
        accountant = CostAccountant()
        with code_domain_disabled():
            slow = table.filter_positions(predicate, accountant).tolist()
        assert fast == slow
        assert accountant.snapshot().get("dictionary_decode", 0) > 0


class TestMaterialisation:
    def test_sparse_positions_pay_reconstruction(self, table):
        accountant = CostAccountant()
        table.fetch_rows([1, 2, 3], columns=["name", "price"], accountant=accountant)
        snapshot = accountant.snapshot()
        assert snapshot.get("tuple_reconstruction", 0) > 0

    def test_dense_positions_use_scan_path(self, table):
        accountant = CostAccountant()
        dense = list(range(int(100 * SCAN_MATERIALIZATION_THRESHOLD) + 5))
        table.fetch_rows(dense, columns=["name"], accountant=accountant)
        snapshot = accountant.snapshot()
        assert snapshot.get("column_scan", 0) > 0
        assert "tuple_reconstruction" not in snapshot

    def test_full_column_read_is_sequential(self, table):
        accountant = CostAccountant()
        values = table.column_values("price", None, accountant)
        assert len(values) == 100
        snapshot = accountant.snapshot()
        assert snapshot.get("column_scan", 0) > 0
        assert snapshot.get("dictionary_decode", 0) > 0

    def test_all_rows_round_trip(self, table):
        rows = table.all_rows()
        assert rows[7] == {"id": 7, "name": "item_2", "price": 10.5, "stock": 7}

    def test_statistics_helpers(self, table):
        assert table.column_distinct_count("name") == 5
        assert table.column_min_max("id") == (0, 99)
