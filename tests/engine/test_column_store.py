"""Tests for the column store backend."""

import pytest

from repro.engine.column_store import SCAN_MATERIALIZATION_THRESHOLD, ColumnStoreTable
from repro.engine.schema import TableSchema
from repro.engine.timing import CostAccountant
from repro.engine.types import DataType, Store
from repro.errors import ExecutionError
from repro.query.predicates import And, Or, between, eq, ge, in_list, lt, ne


@pytest.fixture
def schema() -> TableSchema:
    return TableSchema.build(
        "items",
        [
            ("id", DataType.INTEGER),
            ("name", DataType.VARCHAR),
            ("price", DataType.DOUBLE),
            ("stock", DataType.INTEGER),
        ],
        primary_key=["id"],
    )


@pytest.fixture
def table(schema) -> ColumnStoreTable:
    store = ColumnStoreTable(schema)
    store.bulk_load([
        {"id": i, "name": f"item_{i % 5}", "price": i * 1.5, "stock": i % 10}
        for i in range(100)
    ])
    return store


class TestBasics:
    def test_store_identity(self, table):
        assert table.store is Store.COLUMN

    def test_compression_rate_bounds(self, table):
        assert 0.0 < table.compression_rate() <= 1.0
        assert table.compression_rate("name") < 1.0  # only 5 distinct values

    def test_code_bytes_smaller_than_raw_for_low_cardinality(self, table):
        assert table.column_code_bytes("name") < 100 * DataType.VARCHAR.width_bytes

    def test_implicit_index_everywhere(self, table):
        assert table.has_index("price")
        assert table.has_index("name")


class TestInsertsUpdates:
    def test_insert_appends(self, table):
        table.insert_rows([{"id": 200, "name": "new", "price": 0.5, "stock": 3}])
        assert table.num_rows == 101
        assert table.column_values("name", [100]) == ["new"]

    def test_duplicate_primary_key_rejected(self, table):
        with pytest.raises(ExecutionError):
            table.insert_rows([{"id": 0, "name": "dup", "price": 0.0, "stock": 0}])

    def test_insert_charges_per_cell(self, schema):
        table = ColumnStoreTable(schema)
        accountant = CostAccountant()
        table.insert_rows([{"id": 1, "name": "a", "price": 1.0, "stock": 1}], accountant)
        assert accountant.snapshot()["column_insert"] == pytest.approx(
            schema.num_columns * 550.0
        )

    def test_duplicate_pk_mid_batch_keeps_earlier_rows(self, schema):
        """Partial-state contract of the columnar multi-row insert.

        A duplicate primary key aborts the batch at the offending row: the
        earlier rows of the batch are inserted (and charged per row), the
        offending and later rows are not — exactly like the per-row append
        loop behaved.
        """
        table = ColumnStoreTable(schema)
        table.insert_rows([{"id": 0, "name": "seed", "price": 0.0, "stock": 0}])
        accountant = CostAccountant()
        batch = [
            {"id": 1, "name": "a", "price": 1.0, "stock": 1},
            {"id": 2, "name": "b", "price": 2.0, "stock": 2},
            {"id": 0, "name": "dup", "price": 9.0, "stock": 9},  # duplicate
            {"id": 3, "name": "c", "price": 3.0, "stock": 3},  # never reached
        ]
        with pytest.raises(ExecutionError, match="duplicate primary key"):
            table.insert_rows(batch, accountant)
        assert table.num_rows == 3
        assert table.column_values("id") == [0, 1, 2]
        assert table.column_values("name") == ["seed", "a", "b"]
        # The two inserted rows are charged per row; the duplicate row pays
        # its uniqueness probe but no insert, the row after it nothing.
        snapshot = accountant.snapshot()
        assert snapshot["column_insert"] == pytest.approx(
            2 * schema.num_columns * 550.0
        )
        assert snapshot["index_probe"] == pytest.approx(
            accountant.device.hash_probes(3)
        )
        # The failed batch leaves the table fully usable: re-inserting the
        # remaining rows (with a fresh id for the duplicate) succeeds and the
        # duplicate key is still taken.
        with pytest.raises(ExecutionError):
            table.insert_rows([{"id": 0, "name": "x", "price": 0.0, "stock": 0}])
        table.insert_rows([{"id": 3, "name": "c", "price": 3.0, "stock": 3}])
        assert table.column_values("id") == [0, 1, 2, 3]

    def test_intra_batch_duplicate_pk_keeps_first_occurrence(self, schema):
        table = ColumnStoreTable(schema)
        with pytest.raises(ExecutionError, match="duplicate primary key"):
            table.insert_rows([
                {"id": 7, "name": "first", "price": 1.0, "stock": 1},
                {"id": 7, "name": "second", "price": 2.0, "stock": 2},
            ])
        assert table.num_rows == 1
        assert table.column_values("name") == ["first"]

    def test_validation_error_mid_batch_keeps_earlier_rows(self, schema):
        table = ColumnStoreTable(schema)
        with pytest.raises(Exception):
            table.insert_rows([
                {"id": 1, "name": "ok", "price": 1.0, "stock": 1},
                {"id": 2, "name": "bad", "price": "not-a-price", "stock": 2},
            ])
        assert table.num_rows == 1
        assert table.column_values("name") == ["ok"]

    def test_unencodable_batch_aborts_cleanly(self):
        """NULL into a valued column rejects the whole batch, changing nothing.

        The sorted dictionary cannot mix NULL with values; the batch insert
        must fail before any column is extended — no misaligned column
        lengths, no primary keys left registered for rows that never landed.
        """
        from repro.engine.schema import Column
        from repro.engine.types import DataType as DT

        nullable = TableSchema(
            "n",
            (
                Column("id", DT.INTEGER, primary_key=True),
                Column("v", DT.DOUBLE, nullable=True),
            ),
        )
        table = ColumnStoreTable(nullable)
        table.insert_rows([{"id": 0, "v": 1.0}])
        with pytest.raises(TypeError, match="cannot mix NULL"):
            table.insert_rows([{"id": 1, "v": None}, {"id": 2, "v": 2.0}])
        assert table.num_rows == 1
        assert table.all_rows() == [{"id": 0, "v": 1.0}]
        # The aborted rows' keys are free again; the columns stay aligned.
        table.insert_rows([{"id": 1, "v": 3.0}, {"id": 2, "v": 4.0}])
        assert table.all_rows() == [
            {"id": 0, "v": 1.0}, {"id": 1, "v": 3.0}, {"id": 2, "v": 4.0}
        ]

    def test_value_into_all_null_column_aborts_cleanly(self):
        from repro.engine.schema import Column
        from repro.engine.types import DataType as DT

        nullable = TableSchema(
            "n",
            (
                Column("id", DT.INTEGER, primary_key=True),
                Column("v", DT.DOUBLE, nullable=True),
            ),
        )
        table = ColumnStoreTable(nullable)
        table.insert_rows([{"id": 0}])
        for bad in (2.0, float("nan")):
            with pytest.raises(TypeError, match="cannot mix NULL"):
                table.insert_rows([{"id": 1, "v": bad}])
        assert table.num_rows == 1
        table.insert_rows([{"id": 1}])
        assert table.column_values("v") == [None, None]

    def test_update_charges_full_row_reinsert(self, table):
        accountant = CostAccountant()
        table.update_rows([3], {"stock": 42}, accountant)
        assert table.column_values("stock", [3]) == [42]
        assert accountant.snapshot()["column_update"] == pytest.approx(
            table.schema.num_columns * 800.0
        )

    def test_update_primary_key_checks_uniqueness(self, table):
        with pytest.raises(ExecutionError):
            table.update_rows([3], {"id": 4})
        table.update_rows([3], {"id": 1000})
        assert table.column_values("id", [3]) == [1000]

    def test_delete_rows(self, table):
        table.delete_rows([0, 1])
        assert table.num_rows == 98
        assert table.column_values("id", [0]) == [2]


class TestFilterPositions:
    def test_equality_vectorised(self, table):
        accountant = CostAccountant()
        positions = table.filter_positions(eq("name", "item_2"), accountant)
        assert len(positions) == 20
        snapshot = accountant.snapshot()
        assert snapshot.get("column_scan", 0) > 0
        assert snapshot.get("vector_compare", 0) > 0
        assert "predicate_eval" not in snapshot

    def test_between_uses_dictionary_ranges(self, table):
        positions = table.filter_positions(between("id", 10, 19))
        assert sorted(int(p) for p in positions) == list(range(10, 20))

    def test_open_comparisons(self, table):
        assert len(table.filter_positions(ge("id", 90))) == 10
        assert len(table.filter_positions(lt("id", 10))) == 10
        assert len(table.filter_positions(ne("name", "item_0"))) == 80

    def test_in_list(self, table):
        positions = table.filter_positions(in_list("stock", [0, 1]))
        assert len(positions) == 20

    def test_equality_with_unknown_literal(self, table):
        assert len(table.filter_positions(eq("name", "missing"))) == 0

    def test_and_of_simple_predicates_vectorised(self, table):
        positions = table.filter_positions(
            And((eq("name", "item_2"), ge("id", 50)))
        )
        assert all(int(p) >= 50 for p in positions)
        assert len(positions) == 10

    def test_or_falls_back_to_row_wise_evaluation(self, table):
        accountant = CostAccountant()
        positions = table.filter_positions(
            Or((eq("name", "item_0"), eq("name", "item_1"))), accountant
        )
        assert len(positions) == 40
        assert accountant.snapshot().get("predicate_eval", 0) > 0


class TestMaterialisation:
    def test_sparse_positions_pay_reconstruction(self, table):
        accountant = CostAccountant()
        table.fetch_rows([1, 2, 3], columns=["name", "price"], accountant=accountant)
        snapshot = accountant.snapshot()
        assert snapshot.get("tuple_reconstruction", 0) > 0

    def test_dense_positions_use_scan_path(self, table):
        accountant = CostAccountant()
        dense = list(range(int(100 * SCAN_MATERIALIZATION_THRESHOLD) + 5))
        table.fetch_rows(dense, columns=["name"], accountant=accountant)
        snapshot = accountant.snapshot()
        assert snapshot.get("column_scan", 0) > 0
        assert "tuple_reconstruction" not in snapshot

    def test_full_column_read_is_sequential(self, table):
        accountant = CostAccountant()
        values = table.column_values("price", None, accountant)
        assert len(values) == 100
        snapshot = accountant.snapshot()
        assert snapshot.get("column_scan", 0) > 0
        assert snapshot.get("dictionary_decode", 0) > 0

    def test_all_rows_round_trip(self, table):
        rows = table.all_rows()
        assert rows[7] == {"id": 7, "name": "item_2", "price": 10.5, "stock": 7}

    def test_statistics_helpers(self, table):
        assert table.column_distinct_count("name") == 5
        assert table.column_min_max("id") == (0, 99)
