"""Tests for the hash and sorted secondary indexes."""

from repro.engine.indexes import HashIndex, SortedIndex


class TestHashIndex:
    def test_insert_and_lookup(self):
        index = HashIndex("key")
        index.insert("a", 0)
        index.insert("a", 3)
        index.insert("b", 1)
        assert sorted(index.lookup("a")) == [0, 3]
        assert index.lookup("b") == [1]
        assert index.lookup("missing") == []

    def test_contains_and_counts(self):
        index = HashIndex("key")
        index.insert(1, 0)
        index.insert(2, 1)
        assert index.contains(1)
        assert not index.contains(3)
        assert len(index) == 2
        assert index.num_keys == 2

    def test_remove_and_update(self):
        index = HashIndex("key")
        index.insert("x", 5)
        index.update_key("x", "y", 5)
        assert index.lookup("x") == []
        assert index.lookup("y") == [5]
        index.remove("y", 5)
        assert index.lookup("y") == []
        # Removing a missing entry is a no-op.
        index.remove("y", 5)
        index.remove("z", 1)

    def test_rebuild(self):
        index = HashIndex("key")
        index.insert("old", 0)
        index.rebuild([("a", 1), ("b", 2), ("a", 3)])
        assert index.lookup("old") == []
        assert sorted(index.lookup("a")) == [1, 3]


class TestSortedIndex:
    def test_lookup_and_range(self):
        index = SortedIndex("key")
        for key, position in [(5, 0), (1, 1), (3, 2), (3, 3), (9, 4)]:
            index.insert(key, position)
        assert sorted(index.lookup(3)) == [2, 3]
        assert index.lookup(4) == []
        assert sorted(index.range_lookup(2, 6)) == [0, 2, 3]
        assert sorted(index.range_lookup(None, 3)) == [1, 2, 3]
        assert sorted(index.range_lookup(5, None)) == [0, 4]

    def test_exclusive_bounds(self):
        index = SortedIndex("key")
        index.rebuild([(1, 0), (2, 1), (3, 2)])
        assert index.range_lookup(1, 3, include_low=False, include_high=False) == [1]

    def test_remove(self):
        index = SortedIndex("key")
        index.rebuild([(1, 0), (1, 1), (2, 2)])
        index.remove(1, 0)
        assert sorted(index.lookup(1)) == [1]
        index.remove(1, 999)  # not present: no-op
        assert len(index) == 2
