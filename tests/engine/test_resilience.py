"""Resilient execution layer: process-fault matrix, supervision, deadlines.

The resilience fuzzer and its satellites.  The contracts pinned here:

* **Process-fault matrix** — for every fault in
  :data:`repro.testing.faults.PROCESS_FAULTS` (worker killed mid-shard,
  wedged worker, poisoned/unpicklable result, shared-memory unlink race,
  shared-memory bit flip caught by the integrity checksums), a
  one-shot fault is healed by the retry rung (the query still executes
  sharded) and an ``every_hit`` fault exhausts the budget and degrades to
  serial — in both cases with rows and charges **bit-identical** to the
  ``shard_execution_disabled()`` reference, a visible degradation record,
  and a self-healed pool.
* **Supervision** — a dead worker is replaced individually (the pool object
  survives), replacements are counted, and a mid-query worker kill leaks no
  shared-memory segment (the close/atexit ledger audit stays clean).
* **Deadlines** — ``Session.execute(timeout=...)`` cancels even a wedged
  sharded query within ~2x the deadline, raises ``QueryTimeoutError``,
  records no execution and leaves the pool healthy.
* **Matview refresh atomicity** — a crash at any declared
  ``matview.refresh.*`` point never installs a partial merge: the next
  serve returns rows identical to the ``matview_disabled()`` reference.
* **Registration** — the declared crash-point/process-fault counts are
  pinned so new faults cannot land without landing here too.
"""

import time

import pytest

from repro.config import ResilienceConfig
from repro.engine import shard as shard_module
from repro.engine.database import HybridDatabase
from repro.engine.matview import matview_disabled
from repro.engine.schema import Column, TableSchema
from repro.engine.shard import (
    audit_shared_segments,
    gather_timeout_for,
    get_worker_pool,
    resilience_counters,
    shard_config,
    shard_execution_disabled,
    shutdown_worker_pool,
)
from repro.errors import QueryTimeoutError
from repro.testing.faults import (
    CRASH_POINTS,
    MATVIEW_CRASH_POINTS,
    PROCESS_FAULTS,
    CrashError,
    FaultPlan,
    inject,
)
from repro.engine.types import DataType, Store
from repro.query.builder import aggregate, insert, select
from repro.query.predicates import ge

pytestmark = pytest.mark.resilience

SCHEMA = TableSchema(
    "metrics",
    (
        Column("id", DataType.INTEGER, primary_key=True),
        Column("bucket", DataType.VARCHAR),
        Column("value", DataType.DOUBLE, nullable=True),
        Column("hits", DataType.INTEGER),
    ),
)

NUM_ROWS = 2_000

#: Fast-failure knobs for the fault matrix: wedges time out in fractions of
#: a second and retries back off in milliseconds, so the whole matrix runs
#: in seconds while exercising exactly the production code paths.
FAST = dict(min_rows=1, gather_timeout_s=0.8, backoff_s=0.005)


def make_rows(num_rows, offset=0):
    """NULL-bearing (never NaN) rows, so partial merges stay provably safe."""
    return [
        {
            "id": offset + i,
            "bucket": f"b{i % 5}",
            "value": None if i % 11 == 0 else round((i % 97) * 0.5, 2),
            "hits": i % 13,
        }
        for i in range(num_rows)
    ]


def build_database(num_rows=NUM_ROWS):
    database = HybridDatabase()
    database.create_table(SCHEMA, store=Store.COLUMN)
    database.load_rows("metrics", make_rows(num_rows))
    return database


def grouped_query():
    return (
        aggregate("metrics")
        .sum("value").count().min("hits")
        .group_by("bucket")
        .where(ge("hits", 3))
        .build()
    )


def filtered_select():
    return select("metrics").columns("id", "bucket").where(ge("hits", 5)).build()


def rows_key(row):
    return sorted((key, repr(value)) for key, value in row.items())


def assert_same_rows(left, right):
    assert sorted(left, key=rows_key) == sorted(right, key=rows_key)


@pytest.fixture(autouse=True)
def _pool_cleanup():
    yield
    shutdown_worker_pool()
    audit_shared_segments()


# -- the process-fault matrix ----------------------------------------------------------


@pytest.mark.parametrize("fault", PROCESS_FAULTS)
@pytest.mark.parametrize("query_factory", [grouped_query, filtered_select],
                         ids=["aggregate", "select"])
def test_one_shot_fault_heals_by_retry(fault, query_factory):
    """A single fault is absorbed by the retry rung: still sharded, identical."""
    database = build_database()
    query = query_factory()
    with shard_execution_disabled():
        reference = database.execute(query)
    counters = resilience_counters().snapshot()
    with shard_config(**FAST):
        with inject(FaultPlan(crash_at=fault)):
            result = database.execute(query)
    assert_same_rows(result.rows, reference.rows)
    assert result.cost.components == reference.cost.components
    # The retry re-ran the scatter — the query really executed sharded.
    assert result.shard_stats["metrics"][0] == 4
    assert not result.degradations
    live = resilience_counters()
    assert live.shard_retries == counters.shard_retries + 1
    assert live.shard_degradations == counters.shard_degradations
    # The pool healed in place: alive, and the next query runs sharded too.
    pool = shard_module._POOL
    assert pool is not None and pool.alive()
    with shard_config(**FAST):
        again = database.execute(query)
    assert again.shard_stats and shard_module._POOL is pool


@pytest.mark.parametrize("fault", PROCESS_FAULTS)
def test_persistent_fault_degrades_to_serial(fault):
    """An every-hit fault exhausts the budget: serial rows, serial charges."""
    database = build_database()
    query = grouped_query()
    with shard_execution_disabled():
        reference = database.execute(query)
    counters = resilience_counters().snapshot()
    with shard_config(**FAST):
        with inject(FaultPlan(crash_at=fault, every_hit=True)):
            result = database.execute(query)
    assert_same_rows(result.rows, reference.rows)
    # The serial fallback bills exactly the serial reference — the failed
    # sharded attempts left no partial charges behind.
    assert result.cost.components == reference.cost.components
    assert not result.shard_stats
    ladder = result.degradations["metrics"]
    assert ladder.startswith("shard-parallel -> retry x1 -> serial")
    live = resilience_counters()
    assert live.shard_degradations == counters.shard_degradations + 1
    assert live.shard_retries == counters.shard_retries + 1
    # Self-healed: with the fault gone the same pool shards again.
    pool = shard_module._POOL
    assert pool is not None and pool.alive()
    with shard_config(**FAST):
        healthy = database.execute(query)
    assert healthy.shard_stats["metrics"][0] == 4
    assert healthy.cost.components == reference.cost.components


def test_fault_matrix_points_are_all_consulted():
    """One sharded query consults every declared process fault."""
    database = build_database()
    plan = FaultPlan(crash_at=None)  # record hits, never fire
    with shard_config(min_rows=1):
        with inject(plan):
            database.execute(grouped_query())
    assert set(PROCESS_FAULTS) <= set(plan.hits)


# -- supervision and the segment ledger ------------------------------------------------


@pytest.mark.parametrize("start_method", ["fork", "spawn"])
def test_worker_replacement_is_individual(start_method):
    """A killed worker is replaced in place; the pool object survives."""
    database = build_database()
    # A generous gather timeout: killed workers are detected by the liveness
    # poll (not the timeout), and spawn replacements can take a while to boot.
    with shard_config(min_rows=1, gather_timeout_s=15.0, backoff_s=0.005):
        shutdown_worker_pool()
        pool = get_worker_pool(start_method)
        before = resilience_counters().worker_replacements
        pids = pool.worker_pids()
        with inject(FaultPlan(crash_at="shard.worker.kill")):
            result = database.execute(grouped_query())
    assert result.shard_stats
    assert shard_module._POOL is pool  # never torn down wholesale
    assert pool.alive()
    assert resilience_counters().worker_replacements == before + 1
    # Exactly one crew member changed.
    replaced = sum(1 for old, new in zip(pids, pool.worker_pids()) if old != new)
    assert replaced == 1


def test_mid_query_worker_kill_leaks_no_segments():
    """The segment ledger audits clean after a kill + pool shutdown."""
    database = build_database()
    with shard_config(**FAST):
        with inject(FaultPlan(crash_at="shard.worker.kill")):
            database.execute(grouped_query())
    shutdown_worker_pool()
    leaked, doubled = audit_shared_segments()
    assert leaked == [] and doubled == []
    assert shard_module._SEGMENT_LEDGER == {}


def test_audit_reports_and_reclaims():
    """The audit flags ledger anomalies (and never raises)."""
    shard_module._SEGMENT_LEDGER["repro-bogus-leak"] = 0
    shard_module._SEGMENT_LEDGER["repro-bogus-double"] = 2
    leaked, doubled = audit_shared_segments()
    assert leaked == ["repro-bogus-leak"]
    assert doubled == ["repro-bogus-double"]
    assert shard_module._SEGMENT_LEDGER == {}


def test_teardown_distinguishes_races_from_real_errors():
    """Expected shutdown races stay silent; real errors are counted."""
    before = resilience_counters().teardown_errors
    shard_module._teardown("race", lambda: (_ for _ in ()).throw(ValueError()))
    assert resilience_counters().teardown_errors == before
    shard_module._teardown("real", lambda: (_ for _ in ()).throw(RuntimeError()))
    assert resilience_counters().teardown_errors == before + 1


def test_backoff_is_bounded_and_positive():
    for attempt in range(1, 12):
        delay = shard_module._backoff_delay(attempt)
        assert 0.0 < delay <= shard_module._RETRY_BACKOFF_CAP_S


def test_gather_timeout_scales_with_rows():
    assert gather_timeout_for(0) == shard_module._GATHER_TIMEOUT_S
    assert gather_timeout_for(500_000) == shard_module._GATHER_TIMEOUT_S
    assert gather_timeout_for(2_000_000) == pytest.approx(
        2.0 * shard_module._GATHER_TIMEOUT_S
    )
    with shard_config(gather_timeout_s=10.0):
        assert gather_timeout_for(3_000_000) == pytest.approx(30.0)


def test_resilience_config_applies_and_restores():
    from repro.api import connect

    defaults = ResilienceConfig()
    try:
        session = connect(resilience=ResilienceConfig(
            max_attempts=3, gather_timeout_s=5.0, backoff_s=0.01,
        ))
        assert shard_module._SHARD_MAX_ATTEMPTS == 3
        assert shard_module._GATHER_TIMEOUT_S == 5.0
        session.close()
    finally:
        shard_module.apply_resilience_config(defaults)
    assert shard_module._SHARD_MAX_ATTEMPTS == defaults.max_attempts


# -- deadlines and cancellation --------------------------------------------------------


def _session_with_data(num_rows=NUM_ROWS):
    from repro.api import connect

    session = connect()
    session.create_table(SCHEMA, Store.COLUMN)
    session.load_rows("metrics", make_rows(num_rows))
    return session


def test_timeout_cancels_wedged_shard_query():
    """A wedged worker is abandoned within ~2x the deadline; nothing billed."""
    session = _session_with_data()
    query = grouped_query()
    with shard_config(min_rows=1, gather_timeout_s=30.0):
        session.execute(query)  # warm plan + pool outside the deadline
        executed_before = session.stats().queries_executed
        started = time.monotonic()
        with inject(FaultPlan(crash_at="shard.worker.hang", every_hit=True)):
            with pytest.raises(QueryTimeoutError) as excinfo:
                session.execute(query, timeout=0.5)
        elapsed = time.monotonic() - started
    assert elapsed < 1.0  # within ~2x the 0.5s deadline
    assert excinfo.value.timeout_s == 0.5
    stats = session.stats()
    assert stats.query_timeouts == 1
    # Nothing billed, nothing recorded: the cancelled execution never
    # produced a QueryResult.
    assert stats.queries_executed == executed_before
    assert stats.shard_worker_replacements >= 1
    # The pool is healthy: the same query (no fault) shards bit-identically.
    with shard_execution_disabled():
        reference = session.execute(query)
    with shard_config(min_rows=1):
        healthy = session.execute(query)
    assert_same_rows(healthy.rows, reference.rows)
    assert healthy.cost.components == reference.cost.components
    assert healthy.shard_stats
    session.close()


def test_zero_timeout_cancels_serial_queries_too():
    session = _session_with_data(200)
    session.execute(grouped_query())  # plan once
    with pytest.raises(QueryTimeoutError):
        session.execute(grouped_query(), timeout=0.0)
    assert session.stats().query_timeouts == 1
    session.close()


def test_prepared_statement_timeout_passthrough():
    session = _session_with_data(200)
    prepared = session.prepare("SELECT count(*) FROM metrics")
    assert prepared.execute().rows
    with pytest.raises(QueryTimeoutError):
        prepared.execute(timeout=0.0)
    session.close()


# -- matview refresh atomicity ---------------------------------------------------------


def _stale_view_session():
    session = _session_with_data(600)
    session.create_view("metrics_by_bucket", grouped_query())
    # New rows leave the view stale; the next serve must refresh first.
    session.execute(insert("metrics", make_rows(200, offset=NUM_ROWS)))
    return session


@pytest.mark.parametrize("crash_at", MATVIEW_CRASH_POINTS)
def test_matview_refresh_crash_never_installs_partial_state(crash_at):
    session = _stale_view_session()
    query = grouped_query()
    with inject(FaultPlan(crash_at=crash_at)):
        with pytest.raises(CrashError):
            session.execute(query)
    # The interrupted refresh installed nothing: the next serve (which
    # refreshes again) matches the base-table reference bit-for-bit.
    with matview_disabled():
        reference = session.execute(query)
    served = session.execute(query)
    assert_same_rows(served.rows, reference.rows)
    assert served.view_hits
    session.close()


def test_matview_refresh_deadline_cancellation():
    session = _stale_view_session()
    query = grouped_query()
    with pytest.raises(QueryTimeoutError):
        session.execute(query, timeout=0.0)
    # The cancelled refresh installed nothing; the view still serves fresh.
    with matview_disabled():
        reference = session.execute(query)
    served = session.execute(query)
    assert_same_rows(served.rows, reference.rows)
    session.close()


def test_matview_workload_reaches_every_declared_crash_point():
    session = _stale_view_session()
    plan = FaultPlan(crash_at=None)  # record hits, never fire
    with inject(plan):
        session.execute(grouped_query())
    assert set(MATVIEW_CRASH_POINTS) <= set(plan.hits)
    session.close()


# -- EXPLAIN surface and registration --------------------------------------------------


def test_explain_analyze_renders_ladder_and_degradation():
    session = _session_with_data(800)
    with shard_config(**FAST):
        healthy = session.explain(grouped_query(), analyze=True)
        assert "ladder: shard-parallel -> retry x1 -> serial -> error" in healthy
        assert "degraded:" not in healthy
        with inject(FaultPlan(crash_at="shard.result.poison", every_hit=True)):
            degraded = session.explain(grouped_query(), analyze=True)
    assert "degraded:" in degraded
    assert "shard-parallel -> retry x1 -> serial" in degraded
    assert "shard execution (scanned/matched):" not in degraded
    session.close()


def test_session_stats_report_resilience_deltas():
    session = _session_with_data()
    with shard_config(**FAST):
        with inject(FaultPlan(crash_at="shard.worker.kill", every_hit=True)):
            session.execute(grouped_query())
    stats = session.stats()
    assert stats.shard_retries >= 1
    assert stats.shard_worker_replacements >= 1
    assert stats.shard_degradations == 1
    # A later session starts its deltas from zero.
    from repro.api import connect

    fresh = connect()
    assert fresh.stats().shard_degradations == 0
    fresh.close()
    session.close()


def test_declared_fault_registrations_are_pinned():
    """New crash points / process faults must land with their coverage."""
    assert len(CRASH_POINTS) == 13
    assert len(MATVIEW_CRASH_POINTS) == 3
    assert len(PROCESS_FAULTS) == 5
    everything = CRASH_POINTS + MATVIEW_CRASH_POINTS + PROCESS_FAULTS
    assert len(set(everything)) == len(everything)
    assert all(point.startswith("matview.") for point in MATVIEW_CRASH_POINTS)
    assert all(fault.startswith("shard.") for fault in PROCESS_FAULTS)
