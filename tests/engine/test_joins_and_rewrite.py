"""Tests for join queries and the transparent rewriting over partitioned tables."""

import pytest

from repro.engine import (
    DataType,
    HorizontalPartitionSpec,
    HybridDatabase,
    Store,
    TablePartitioning,
    TableSchema,
    VerticalPartitionSpec,
)
from repro.query import aggregate, between, delete, eq, ge, insert, select, update


@pytest.fixture
def star_database():
    """A small fact/dimension pair loaded into a hybrid database."""
    fact_schema = TableSchema.build(
        "fact",
        [
            ("id", DataType.INTEGER),
            ("dim_id", DataType.INTEGER),
            ("value", DataType.DOUBLE),
            ("flag", DataType.VARCHAR),
        ],
        primary_key=["id"],
    )
    dim_schema = TableSchema.build(
        "dim",
        [("id", DataType.INTEGER), ("label", DataType.VARCHAR)],
        primary_key=["id"],
    )
    database = HybridDatabase()
    database.create_table(fact_schema, Store.COLUMN)
    database.create_table(dim_schema, Store.ROW)
    database.load_rows("fact", [
        {"id": i, "dim_id": i % 4, "value": float(i), "flag": "x"} for i in range(200)
    ])
    database.load_rows("dim", [
        {"id": i, "label": f"group_{i}"} for i in range(4)
    ])
    return database


class TestJoins:
    def test_join_grouped_by_dimension_attribute(self, star_database):
        query = (
            aggregate("fact")
            .sum("value")
            .group_by("dim.label")
            .join("dim", "dim_id", "id")
            .build()
        )
        result = star_database.execute(query)
        assert len(result.rows) == 4
        totals = {row["dim.label"]: row["sum_value"] for row in result.rows}
        expected = {f"group_{g}": sum(float(i) for i in range(200) if i % 4 == g)
                    for g in range(4)}
        assert totals == pytest.approx(expected)

    def test_join_with_predicate_on_fact(self, star_database):
        query = (
            aggregate("fact")
            .count("*")
            .group_by("dim.label")
            .join("dim", "dim_id", "id")
            .where(between("id", 0, 99))
            .build()
        )
        result = star_database.execute(query)
        assert sum(row["count_star"] for row in result.rows) == 100

    def test_unmatched_fact_rows_are_dropped(self, star_database):
        star_database.execute(insert("fact", [
            {"id": 10_000, "dim_id": 999, "value": 5.0, "flag": "x"}
        ]))
        query = (
            aggregate("fact").count("*").join("dim", "dim_id", "id").build()
        )
        result = star_database.execute(query)
        assert result.rows[0]["count_star"] == 200  # the orphan row does not join

    def test_cross_store_join_charges_conversion(self, star_database):
        query = (
            aggregate("fact")
            .sum("value")
            .group_by("dim.label")
            .join("dim", "dim_id", "id")
            .build()
        )
        result = star_database.execute(query)
        # fact is columnar, dim is row-oriented: the build side is converted.
        assert result.cost.components.get("layout_conversion", 0) > 0
        assert result.cost.components.get("join_build", 0) > 0
        assert result.cost.components.get("join_probe", 0) > 0

    def test_same_store_join_has_no_conversion(self, star_database):
        star_database.move_table("dim", Store.COLUMN)
        query = (
            aggregate("fact")
            .sum("value")
            .group_by("dim.label")
            .join("dim", "dim_id", "id")
            .build()
        )
        result = star_database.execute(query)
        assert result.cost.components.get("layout_conversion", 0) == 0


@pytest.fixture
def partitioned_database(sales_schema, sales_rows):
    database = HybridDatabase()
    database.create_table(sales_schema, Store.COLUMN)
    database.load_rows("sales", sales_rows)
    partitioning = TablePartitioning(
        horizontal=HorizontalPartitionSpec(predicate=ge("id", 900)),
        vertical=VerticalPartitionSpec(
            row_store_columns=("status",),
            column_store_columns=("region", "product", "revenue", "quantity"),
        ),
    )
    database.apply_partitioning("sales", partitioning)
    return database


class TestPartitionedRewrite:
    """Queries against a partitioned table must behave as against a plain one."""

    def test_aggregation_covers_all_partitions(self, partitioned_database, sales_rows):
        result = partitioned_database.execute(
            aggregate("sales").sum("revenue").count("*").build()
        )
        assert result.rows[0]["count_star"] == len(sales_rows)
        assert result.rows[0]["sum_revenue"] == pytest.approx(
            sum(row["revenue"] for row in sales_rows)
        )
        assert result.cost.components.get("partition_overhead", 0) > 0

    def test_grouped_aggregation_matches_unpartitioned(self, partitioned_database,
                                                       database_factory):
        query = aggregate("sales").sum("revenue").group_by("region").build()
        partitioned = {
            row["region"]: row["sum_revenue"]
            for row in partitioned_database.execute(query).rows
        }
        plain = {
            row["region"]: row["sum_revenue"]
            for row in database_factory(Store.COLUMN).execute(query).rows
        }
        assert partitioned == pytest.approx(plain)

    def test_point_select_spanning_vertical_parts(self, partitioned_database, sales_rows):
        result = partitioned_database.execute(
            select("sales").where(eq("id", 123)).build()
        )
        assert len(result.rows) == 1
        assert result.rows[0] == sales_rows[123]

    def test_point_select_in_hot_partition(self, partitioned_database, sales_rows):
        result = partitioned_database.execute(
            select("sales").where(eq("id", 950)).build()
        )
        assert len(result.rows) == 1
        assert result.rows[0] == sales_rows[950]

    def test_update_routes_to_the_right_parts(self, partitioned_database):
        affected = partitioned_database.execute(
            update("sales", {"status": "archived"}, eq("id", 10))
        ).affected_rows
        assert affected == 1
        read_back = partitioned_database.execute(
            select("sales").columns("id", "status").where(eq("id", 10)).build()
        )
        assert read_back.rows[0]["status"] == "archived"

    def test_update_in_hot_partition(self, partitioned_database):
        partitioned_database.execute(update("sales", {"status": "hot"}, eq("id", 990)))
        read_back = partitioned_database.execute(
            select("sales").columns("status").where(eq("id", 990)).build()
        )
        assert read_back.rows[0]["status"] == "hot"

    def test_insert_goes_to_hot_partition(self, partitioned_database):
        new_row = {"id": 5_000, "region": "region_1", "product": 3,
                   "revenue": 9.0, "quantity": 4, "status": "new"}
        partitioned_database.execute(insert("sales", [new_row]))
        table = partitioned_database.table_object("sales")
        assert table.hot.num_rows == 101  # 100 original hot rows + the new one
        read_back = partitioned_database.execute(
            select("sales").where(eq("id", 5_000)).build()
        )
        assert read_back.rows[0]["revenue"] == 9.0

    def test_delete_spans_partitions(self, partitioned_database, sales_rows):
        result = partitioned_database.execute(delete("sales", ge("id", 890)))
        assert result.affected_rows == len([r for r in sales_rows if r["id"] >= 890])
        count = partitioned_database.execute(aggregate("sales").count("*").build())
        assert count.rows[0]["count_star"] == len(sales_rows) - result.affected_rows

    def test_vertical_join_charged_when_parts_combined(self, partitioned_database):
        # Selecting the full tuple touches both vertical parts -> PK join cost.
        result = partitioned_database.execute(
            select("sales").where(between("id", 0, 500)).build()
        )
        assert result.cost.components.get("partition_join", 0) > 0

    def test_update_predicate_spanning_both_vertical_parts(self, partitioned_database,
                                                           sales_rows):
        from repro.query.predicates import And
        predicate = And((eq("status", "open"), eq("region", "region_1")))
        affected = partitioned_database.execute(
            update("sales", {"quantity": 0}, predicate)
        ).affected_rows
        expected = sum(
            1 for row in sales_rows
            if row["status"] == "open" and row["region"] == "region_1"
        )
        assert affected == expected
