"""Tests for the data type and store enums."""

import datetime

import pytest

from repro.engine.types import DataType, Store
from repro.errors import SchemaError


class TestStore:
    def test_other_flips_between_stores(self):
        assert Store.ROW.other is Store.COLUMN
        assert Store.COLUMN.other is Store.ROW

    def test_string_value(self):
        assert Store.ROW.value == "row"
        assert Store.COLUMN.value == "column"


class TestDataTypeWidths:
    def test_every_type_has_a_positive_width(self):
        for dtype in DataType:
            assert dtype.width_bytes > 0

    def test_every_type_has_a_positive_cost_factor(self):
        for dtype in DataType:
            assert dtype.cost_factor > 0

    def test_integer_is_narrower_than_varchar(self):
        assert DataType.INTEGER.width_bytes < DataType.VARCHAR.width_bytes

    def test_numeric_classification(self):
        assert DataType.DOUBLE.is_numeric
        assert DataType.DECIMAL.is_numeric
        assert DataType.INTEGER.is_numeric
        assert not DataType.VARCHAR.is_numeric
        assert not DataType.BOOLEAN.is_numeric


class TestCoercion:
    def test_integer_coercion(self):
        assert DataType.INTEGER.coerce("42") == 42
        assert DataType.INTEGER.coerce(7.0) == 7

    def test_double_coercion(self):
        assert DataType.DOUBLE.coerce("3.5") == 3.5

    def test_varchar_coercion(self):
        assert DataType.VARCHAR.coerce(123) == "123"

    def test_boolean_coercion(self):
        assert DataType.BOOLEAN.coerce("true") is True
        assert DataType.BOOLEAN.coerce(0) is False
        with pytest.raises(SchemaError):
            DataType.BOOLEAN.coerce("maybe")

    def test_date_coercion_from_string_and_offset(self):
        assert DataType.DATE.coerce("2012-08-27") == datetime.date(2012, 8, 27)
        assert DataType.DATE.coerce(0) == datetime.date(1970, 1, 1)
        assert DataType.DATE.coerce(1) == datetime.date(1970, 1, 2)

    def test_none_passes_through(self):
        assert DataType.INTEGER.coerce(None) is None

    def test_invalid_value_raises_schema_error(self):
        with pytest.raises(SchemaError):
            DataType.INTEGER.coerce("not a number")
