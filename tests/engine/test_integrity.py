"""End-to-end data integrity: the corruption-fault matrix.

The contracts pinned here:

* **Snapshot corruption** — a bit flip in any region of a framed checkpoint
  snapshot (magic, length/crc header, pickled payload) and a truncated
  snapshot are all detected by recovery: ``RecoveryReport.snapshot_corrupt``
  is set, ``clean`` folds it in, the snapshot is **never** restored from,
  and — when the log was not yet truncated (the ``checkpoint.after_replace``
  crash window) — full-log replay reconstructs every committed row.  The
  read path raises the typed :class:`SnapshotCorruptError`, never a raw
  pickle/struct error.
* **In-memory corruption** — a bit flipped in a live code array (without an
  epoch bump, the signature of silent corruption) is detected by the next
  verified read or by ``Session.verify_integrity()``, quarantined with a
  :class:`DataCorruptionError` naming the exact table/partition/column, and
  never un-quarantined by disabling verification.
* **Repair** — with WAL durability on, ``Session.repair()`` rebuilds the
  quarantined units from the log (snapshot + replay) and restores rows
  *and* :class:`CostBreakdown` charges bit-identical to the uncorrupted
  reference.  Without a WAL, repair refuses with a typed error.
* **Shared-memory corruption** — a bit flipped in a published shard segment
  is caught by the worker-side checksum before execution and absorbed by
  the resilience ladder: a one-shot flip heals on retry (still sharded), a
  persistent flip degrades to serial — both bit-identical to the serial
  reference, with zero stray charges.  (The full one-shot/persistent matrix
  also runs for ``shard.shm.bit_flip`` via the parametrized resilience
  suite.)
* **Telemetry** — verification shows up in ``EXPLAIN ANALYZE`` and
  ``SessionStats`` but charges zero simulated cost.
"""

import numpy as np
import pytest

from repro.api import connect
from repro.api.session import recover
from repro.config import IntegrityConfig
from repro.engine.integrity import (
    apply_integrity_config,
    codes_checksum,
    integrity_counters,
    integrity_disabled,
)
from repro.engine.database import HybridDatabase
from repro.engine.partitioning import (
    HorizontalPartitionSpec,
    TablePartitioning,
    VerticalPartitionSpec,
)
from repro.engine.schema import Column, TableSchema
from repro.engine.shard import (
    audit_shared_segments,
    resilience_counters,
    shard_config,
    shard_execution_disabled,
    shutdown_worker_pool,
)
from repro.engine.types import DataType, Store
from repro.engine.wal import _read_snapshot
from repro.errors import DataCorruptionError, SnapshotCorruptError, WalError
from repro.query.builder import aggregate, select
from repro.query.predicates import ge
from repro.testing.faults import (
    SNAPSHOT_REGIONS,
    CrashError,
    FaultPlan,
    flip_code_bit,
    flip_snapshot_bit,
    inject,
    truncate_file,
)

pytestmark = pytest.mark.integrity

SCHEMA = TableSchema(
    "ledger",
    (
        Column("id", DataType.INTEGER, primary_key=True),
        Column("account", DataType.VARCHAR),
        Column("amount", DataType.INTEGER),
    ),
)

NUM_ROWS = 300


def make_rows(num_rows, offset=0):
    return [
        {"id": offset + i, "account": f"a{i % 9}", "amount": (i * 7) % 101}
        for i in range(num_rows)
    ]


def open_session(tmp_path=None, **kwargs):
    session = connect(
        wal_path=str(tmp_path / "ledger.wal") if tmp_path is not None else None,
        **kwargs,
    )
    session.create_table(SCHEMA, Store.COLUMN)
    session.load_rows("ledger", make_rows(NUM_ROWS))
    return session


@pytest.fixture(autouse=True)
def _default_integrity_config():
    """Sessions may install a process-wide policy; always restore defaults."""
    yield
    apply_integrity_config(IntegrityConfig())


# -- checksum primitives ---------------------------------------------------------------


def test_codes_checksum_is_content_addressed():
    codes = np.arange(64, dtype=np.int64)
    reference = codes_checksum(codes)
    assert codes_checksum(codes.copy()) == reference
    flipped = codes.copy()
    flipped[13] ^= 1
    assert codes_checksum(flipped) != reference
    # Layout-independent: a non-contiguous view with equal contents agrees.
    strided = np.arange(128, dtype=np.int64)[::2] * 2
    assert codes_checksum(strided) == codes_checksum(
        np.ascontiguousarray(strided)
    )


# -- snapshot corruption ---------------------------------------------------------------


def build_wal_with_snapshot(tmp_path, truncate_log=False):
    """A WAL whose checkpoint snapshot exists; the log optionally survives.

    ``truncate_log=False`` models the ``checkpoint.after_replace`` crash
    window: the snapshot was atomically installed but the log was not yet
    truncated, so recovery can fall back to full-log replay if the snapshot
    turns out corrupt.
    """
    session = open_session(tmp_path)
    if truncate_log:
        session.checkpoint()
    else:
        try:
            with inject(FaultPlan(crash_at="checkpoint.after_replace")):
                session.checkpoint()
        except CrashError:
            pass
    session.close()
    path = str(tmp_path / "ledger.wal")
    return path, path + ".snapshot"


@pytest.mark.parametrize("region", SNAPSHOT_REGIONS)
def test_corrupt_snapshot_detected_and_full_log_replayed(tmp_path, region):
    path, snapshot = build_wal_with_snapshot(tmp_path)
    flip_snapshot_bit(snapshot, region)
    session, report = recover(path)
    assert report.snapshot_corrupt
    assert not report.snapshot_restored
    assert not report.clean
    result = session.sql("SELECT count(id) FROM ledger")
    assert result.rows == [{"count_id": NUM_ROWS}]
    session.close()


@pytest.mark.parametrize("region", SNAPSHOT_REGIONS)
def test_snapshot_read_raises_typed_error(tmp_path, region):
    """The read path surfaces corruption as SnapshotCorruptError, never a
    raw pickle/struct error swallowed (or crashing) somewhere else."""
    path, snapshot = build_wal_with_snapshot(tmp_path)
    flip_snapshot_bit(snapshot, region)
    with pytest.raises(SnapshotCorruptError):
        _read_snapshot(path)


def test_truncated_snapshot_detected(tmp_path):
    path, snapshot = build_wal_with_snapshot(tmp_path)
    truncate_file(snapshot, 4)
    with pytest.raises(SnapshotCorruptError):
        _read_snapshot(path)
    session, report = recover(path)
    assert report.snapshot_corrupt
    result = session.sql("SELECT count(id) FROM ledger")
    assert result.rows == [{"count_id": NUM_ROWS}]
    session.close()


def test_healthy_snapshot_still_restores(tmp_path):
    path, _snapshot = build_wal_with_snapshot(tmp_path, truncate_log=True)
    session, report = recover(path)
    assert report.snapshot_restored
    assert not report.snapshot_corrupt
    assert report.clean
    result = session.sql("SELECT count(id) FROM ledger")
    assert result.rows == [{"count_id": NUM_ROWS}]
    session.close()


def test_reopen_for_append_survives_corrupt_snapshot(tmp_path):
    """Re-opening the log (not recovery) must not crash on a bad snapshot."""
    path, snapshot = build_wal_with_snapshot(tmp_path)
    flip_snapshot_bit(snapshot, "payload")
    session, report = recover(path)  # recover() re-opens the WAL for append
    assert report.snapshot_corrupt
    session.sql("INSERT INTO ledger (id, account, amount) VALUES (9999, 'z', 1)")
    session.close()
    session2, report2 = recover(path)
    assert session2.sql("SELECT count(id) FROM ledger").rows == [
        {"count_id": NUM_ROWS + 1}
    ]
    session2.close()


# -- in-memory corruption --------------------------------------------------------------


def test_flip_detected_on_read_and_quarantined():
    session = open_session()
    # Record baselines point-in-time (the scrub), then corrupt.
    assert session.verify_integrity().clean
    backend = session.database.table_object("ledger").backend
    flip_code_bit(backend, "amount", index=17, bit=3)
    with pytest.raises(DataCorruptionError) as excinfo:
        session.sql("SELECT sum(amount) FROM ledger")
    assert excinfo.value.table == "ledger"
    assert excinfo.value.column == "amount"
    assert "checksum mismatch" in str(excinfo.value)
    # Quarantine is sticky: every later access raises too.
    with pytest.raises(DataCorruptionError):
        session.sql("SELECT * FROM ledger WHERE amount >= 0")
    stats = session.stats()
    assert stats.integrity_corruption_detected == 1
    assert stats.integrity_units_quarantined == 1
    session.close()


def test_scrub_detects_reports_and_rereports():
    session = open_session()
    first = session.verify_integrity()
    assert first.clean
    assert first.baselines_recorded == len(SCHEMA.column_names)
    backend = session.database.table_object("ledger").backend
    flip_code_bit(backend, "account", index=5)
    report = session.verify_integrity()
    assert [unit.column for unit in report.corrupt] == ["account"]
    unit = report.corrupt[0]
    assert unit.table == "ledger" and unit.partition is None
    assert "checksum mismatch" in unit.reason
    # A second scrub re-reports the quarantined unit without double counting.
    counters = integrity_counters().snapshot()
    again = session.verify_integrity()
    assert [unit.column for unit in again.corrupt] == ["account"]
    assert integrity_counters().units_quarantined == counters.units_quarantined
    session.close()


def test_quarantine_survives_integrity_disabled():
    session = open_session()
    session.verify_integrity()
    backend = session.database.table_object("ledger").backend
    flip_code_bit(backend, "amount")
    assert not session.verify_integrity().clean
    with integrity_disabled():
        # Verification is off, but quarantined data must never serve.
        with pytest.raises(DataCorruptionError):
            session.sql("SELECT sum(amount) FROM ledger")
        report = session.verify_integrity()
        assert not report.clean
        assert report.units_verified == 0  # nothing verified, only reported
    session.close()


def test_legitimate_mutation_is_not_corruption():
    session = open_session()
    session.verify_integrity()
    # A real mutation bumps the zone epoch; the next scrub re-baselines
    # instead of crying corruption.
    session.sql("INSERT INTO ledger (id, account, amount) VALUES (9000, 'q', 5)")
    session.merge_deltas("ledger")
    session.sql("UPDATE ledger SET amount = 0 WHERE id = 3")
    assert session.verify_integrity().clean
    assert session.sql("SELECT count(id) FROM ledger").rows == [
        {"count_id": NUM_ROWS + 1}
    ]
    session.close()


def test_scan_verification_can_be_configured_off():
    session = open_session(
        integrity=IntegrityConfig(verify_on_scan=False)
    )
    session.verify_integrity()
    backend = session.database.table_object("ledger").backend
    flip_code_bit(backend, "amount")
    # Scans no longer verify (no detection on read)...
    session.sql("SELECT sum(amount) FROM ledger")
    # ...but the explicit scrub still catches the flip.
    assert not session.verify_integrity().clean
    session.close()


# -- partitioned tables ----------------------------------------------------------------


def test_corruption_error_names_horizontal_partition():
    session = open_session()
    session.apply_partitioning(
        "ledger",
        TablePartitioning(
            horizontal=HorizontalPartitionSpec(predicate=ge("id", NUM_ROWS - 50)),
        ),
    )
    table = session.database.table_object("ledger")
    session.verify_integrity()
    flip_code_bit(table.main_parts[0].backend, "amount")
    report = session.verify_integrity()
    assert [(unit.partition, unit.column) for unit in report.corrupt] == [
        ("main", "amount")
    ]
    with pytest.raises(DataCorruptionError) as excinfo:
        session.sql("SELECT sum(amount) FROM ledger")
    assert excinfo.value.partition == "main"
    assert "partition 'main'" in str(excinfo.value)
    session.close()


def test_corruption_error_names_vertical_partition():
    session = open_session()
    session.apply_partitioning(
        "ledger",
        TablePartitioning(
            vertical=VerticalPartitionSpec(
                row_store_columns=("account",),
                column_store_columns=("amount",),
            ),
        ),
    )
    table = session.database.table_object("ledger")
    session.verify_integrity()
    flip_code_bit(table._vertical_col_part.backend, "amount")
    report = session.verify_integrity()
    assert [(unit.partition, unit.column) for unit in report.corrupt] == [
        ("main.column", "amount")
    ]
    session.close()


# -- repair ----------------------------------------------------------------------------


def test_repair_restores_rows_and_charges_bit_identical(tmp_path):
    reference_session = open_session()
    query = "SELECT sum(amount) FROM ledger WHERE id >= 100"
    reference = reference_session.sql(query)
    reference_session.close()

    session = open_session(tmp_path)
    session.verify_integrity()
    backend = session.database.table_object("ledger").backend
    flip_code_bit(backend, "amount", index=123)
    with pytest.raises(DataCorruptionError):
        session.sql(query)
    repaired = session.repair()
    assert repaired == 1
    assert session.verify_integrity().clean
    healed = session.sql(query)
    assert healed.rows == reference.rows
    assert healed.cost.components == reference.cost.components
    assert session.stats().integrity_units_repaired == 1
    session.close()


def test_repair_covers_checkpoint_plus_tail(tmp_path):
    """Repair recovers through the snapshot + replay path, not the log alone."""
    session = open_session(tmp_path)
    session.checkpoint()  # log truncated; snapshot is the only base copy
    session.sql("INSERT INTO ledger (id, account, amount) VALUES (9001, 'x', 8)")
    expected = session.sql("SELECT count(id), sum(amount) FROM ledger").rows
    session.verify_integrity()
    backend = session.database.table_object("ledger").backend
    flip_code_bit(backend, "id", index=42)
    assert not session.verify_integrity().clean
    assert session.repair() == 1
    assert session.sql("SELECT count(id), sum(amount) FROM ledger").rows == expected
    session.close()


def test_repair_without_wal_refuses():
    session = open_session()
    session.verify_integrity()
    flip_code_bit(session.database.table_object("ledger").backend, "amount")
    session.verify_integrity()
    with pytest.raises(WalError):
        session.repair()
    session.close()


def test_repair_with_nothing_quarantined_is_a_noop(tmp_path):
    session = open_session(tmp_path)
    assert session.repair() == 0
    session.close()


# -- shared-memory corruption (shard workers) ------------------------------------------

SHARD_FAST = dict(min_rows=1, gather_timeout_s=0.8, backoff_s=0.005)


@pytest.fixture
def _pool_cleanup():
    yield
    shutdown_worker_pool()
    audit_shared_segments()


def build_shard_database():
    database = HybridDatabase()
    database.create_table(SCHEMA, store=Store.COLUMN)
    database.load_rows("ledger", make_rows(2_000))
    return database


def test_shm_flip_caught_by_checksum_and_healed_by_retry(_pool_cleanup):
    database = build_shard_database()
    query = (
        aggregate("ledger").sum("amount").count()
        .group_by("account").where(ge("amount", 10)).build()
    )
    with shard_execution_disabled():
        reference = database.execute(query)
    counters = resilience_counters().snapshot()
    with shard_config(**SHARD_FAST):
        with inject(FaultPlan(crash_at="shard.shm.bit_flip")):
            result = database.execute(query)
    assert sorted(map(repr, result.rows)) == sorted(map(repr, reference.rows))
    assert result.cost.components == reference.cost.components
    assert result.shard_stats["ledger"][0] == 4  # healed, still sharded
    assert not result.degradations
    assert resilience_counters().shard_retries == counters.shard_retries + 1


def test_persistent_shm_flip_degrades_via_checksum_mismatch(_pool_cleanup):
    database = build_shard_database()
    query = select("ledger").columns("id", "account").where(ge("amount", 50)).build()
    with shard_execution_disabled():
        reference = database.execute(query)
    with shard_config(**SHARD_FAST):
        with inject(FaultPlan(crash_at="shard.shm.bit_flip", every_hit=True)):
            result = database.execute(query)
    assert sorted(map(repr, result.rows)) == sorted(map(repr, reference.rows))
    # Zero stray charges: the failed sharded attempts bill nothing.
    assert result.cost.components == reference.cost.components
    ladder = result.degradations["ledger"]
    assert ladder.startswith("shard-parallel -> retry x1 -> serial")
    assert "checksum mismatch" in ladder


# -- telemetry -------------------------------------------------------------------------


def test_explain_analyze_reports_integrity_lines():
    session = open_session()
    text = session.explain(
        "SELECT sum(amount) FROM ledger WHERE amount >= 10", analyze=True
    )
    assert "integrity:" in text
    assert "units_verified" in text
    # Once verified at this epoch, the next run owes nothing — the block
    # disappears instead of printing zeros.
    again = session.explain(
        "SELECT sum(amount) FROM ledger WHERE amount >= 10", analyze=True
    )
    assert "integrity:" not in again
    session.close()


def test_verification_charges_zero_cost():
    """Integrity on/off never moves a query's CostBreakdown (fuzzer contract)."""
    with integrity_disabled():
        reference_session = open_session()
        reference = reference_session.sql("SELECT sum(amount) FROM ledger")
        reference_session.close()
    session = open_session()
    result = session.sql("SELECT sum(amount) FROM ledger")
    assert result.integrity  # it really did verify...
    assert result.cost.components == reference.cost.components  # ...for free
    session.close()


def test_session_stats_report_verification_deltas():
    session = open_session()
    before = session.stats().integrity_units_verified
    session.sql("SELECT sum(amount) FROM ledger")
    assert session.stats().integrity_units_verified > before
    session.close()
