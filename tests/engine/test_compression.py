"""Tests for dictionary compression, including property-based round trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.compression import (
    ColumnDictionary,
    CompressedColumn,
    code_width_bytes,
)
from repro.engine.types import DataType


class TestCodeWidth:
    def test_small_dictionaries_use_one_byte(self):
        assert code_width_bytes(0) == 1
        assert code_width_bytes(1) == 1
        assert code_width_bytes(2) == 1
        assert code_width_bytes(256) == 1

    def test_width_grows_with_distinct_count(self):
        assert code_width_bytes(257) == 2
        assert code_width_bytes(70_000) == 3

    def test_width_is_monotonic(self):
        widths = [code_width_bytes(n) for n in (1, 10, 300, 70_000, 20_000_000)]
        assert widths == sorted(widths)


class TestColumnDictionary:
    def test_encode_decode_round_trip_at_call_time(self):
        dictionary = ColumnDictionary(DataType.VARCHAR)
        for value in ["b", "a", "c", "a"]:
            assert dictionary.decode(dictionary.encode(value)) == value

    def test_encode_with_insert_reports_shift_position(self):
        dictionary = ColumnDictionary(DataType.VARCHAR)
        code, shifted = dictionary.encode_with_insert("b")
        assert (code, shifted) == (0, 0)
        code, shifted = dictionary.encode_with_insert("a")
        assert (code, shifted) == (0, 0)  # 'b' shifted to code 1
        code, shifted = dictionary.encode_with_insert("b")
        assert (code, shifted) == (1, None)

    def test_dictionary_is_sorted(self):
        dictionary = ColumnDictionary(DataType.VARCHAR)
        for value in ["delta", "alpha", "charlie", "bravo"]:
            dictionary.encode(value)
        assert list(dictionary.values) == ["alpha", "bravo", "charlie", "delta"]

    def test_encode_existing_returns_none_for_unknown(self):
        dictionary = ColumnDictionary(DataType.INTEGER)
        dictionary.encode(5)
        assert dictionary.encode_existing(5) == 0
        assert dictionary.encode_existing(7) is None

    def test_range_codes_cover_value_range(self):
        dictionary = ColumnDictionary(DataType.INTEGER)
        dictionary.bulk_build([10, 20, 30, 40, 50])
        lo, hi = dictionary.range_codes(20, 40)
        assert [dictionary.decode(c) for c in range(lo, hi)] == [20, 30, 40]

    def test_range_codes_open_bounds(self):
        dictionary = ColumnDictionary(DataType.INTEGER)
        dictionary.bulk_build([1, 2, 3, 4])
        lo, hi = dictionary.range_codes(None, 2)
        assert (lo, hi) == (0, 2)
        lo, hi = dictionary.range_codes(3, None)
        assert (lo, hi) == (2, 4)


class TestCompressedColumn:
    def test_append_and_value_at(self):
        column = CompressedColumn("status", DataType.VARCHAR)
        for value in ["open", "closed", "open"]:
            column.append(value)
        assert len(column) == 3
        assert column.value_at(0) == "open"
        assert column.value_at(1) == "closed"
        assert column.all_values() == ["open", "closed", "open"]

    def test_bulk_load_matches_appends(self):
        values = [i % 10 for i in range(500)]
        bulk = CompressedColumn("v", DataType.INTEGER)
        bulk.bulk_load(values)
        appended = CompressedColumn("v", DataType.INTEGER)
        appended.extend(values)
        assert bulk.all_values() == appended.all_values()
        assert bulk.num_distinct == appended.num_distinct == 10

    def test_set_value_updates_in_place(self):
        column = CompressedColumn("v", DataType.INTEGER)
        column.bulk_load([1, 2, 3])
        column.set_value(1, 99)
        assert column.all_values() == [1, 99, 3]

    def test_compression_rate_improves_with_repetition(self):
        repetitive = CompressedColumn("v", DataType.VARCHAR)
        repetitive.bulk_load(["x"] * 1_000)
        diverse = CompressedColumn("v", DataType.VARCHAR)
        diverse.bulk_load([f"value_{i}" for i in range(1_000)])
        assert repetitive.compression_rate < diverse.compression_rate
        assert 0.0 < repetitive.compression_rate <= 1.0
        assert diverse.compression_rate <= 1.0

    def test_empty_column_reports_no_compression(self):
        column = CompressedColumn("v", DataType.INTEGER)
        assert column.compression_rate == 1.0
        assert len(column) == 0


class TestCompressionProperties:
    @given(st.lists(st.integers(min_value=-1_000, max_value=1_000), max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_round_trip_preserves_values(self, values):
        column = CompressedColumn("v", DataType.INTEGER)
        column.bulk_load(values)
        assert column.all_values() == values

    @given(st.lists(st.text(min_size=0, max_size=8), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_distinct_count_matches_set(self, values):
        column = CompressedColumn("v", DataType.VARCHAR)
        column.bulk_load(values)
        assert column.num_distinct == len(set(values))

    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=200),
           st.integers(min_value=0, max_value=50))
    @settings(max_examples=50, deadline=None)
    def test_appending_after_bulk_load_keeps_order(self, values, extra):
        column = CompressedColumn("v", DataType.INTEGER)
        column.bulk_load(values)
        column.append(extra)
        assert column.all_values() == values + [extra]


class TestNaNDictionaryMaintenance:
    """NaN sorts last by convention; no maintenance path may break that.

    Regression guards for two corruptions the differential fuzzer surfaced:
    ``merge_values`` ran ``sorted()`` over a NaN-containing list (poisoning
    the sort and mis-encoding the batch), and a per-row ``append(nan)``
    bisected NaN to position 0.
    """

    def test_extend_into_nan_dictionary_keeps_sort_and_values(self):
        nan = float("nan")
        column = CompressedColumn("v", DataType.DOUBLE)
        column.bulk_load([5.0, nan, 1.0])
        column.extend([2.0, 7.0])
        assert repr(column.all_values()) == repr([5.0, nan, 1.0, 2.0, 7.0])
        assert list(column.dictionary.values)[:-1] == [1.0, 2.0, 5.0, 7.0]
        assert column.dictionary.nan_code == 4

    def test_append_nan_lands_last(self):
        nan = float("nan")
        column = CompressedColumn("v", DataType.DOUBLE)
        column.bulk_load([5.0, 1.0])
        column.append(nan)
        column.append(3.0)
        assert repr(column.all_values()) == repr([5.0, 1.0, nan, 3.0])
        assert column.dictionary.nan_code == len(column.dictionary) - 1

    def test_extend_with_only_new_nan(self):
        nan = float("nan")
        column = CompressedColumn("v", DataType.DOUBLE)
        column.bulk_load([2.0, 1.0])
        column.extend([nan, nan, 1.0])
        assert repr(column.all_values()) == repr([2.0, 1.0, nan, nan, 1.0])
        assert column.dictionary.nan_code == 2
        # A second NaN batch reuses the entry instead of growing the dictionary.
        column.extend([nan, 0.0])
        assert column.num_distinct == 4


class TestNaNBisectBounds:
    """Bisect must never probe the trailing NaN entry.

    Every comparison against NaN is false, so an unbounded binary search
    whose probe lands on the NaN entry jumps *past* it — ``range_codes``
    could place a bound between the two largest real values after them both
    (e.g. 129.3 "after" 143.32), silently dropping rows from range scans.
    """

    def _nan_dictionary(self):
        column = CompressedColumn("v", DataType.DOUBLE)
        # 24 values with NaN last: the bisect probe sequence for bounds
        # between values[-2] and values[-1] hits the NaN slot.
        values = [float(i * 6) for i in range(22)] + [143.32, float("nan")]
        column.bulk_load(values)
        return column.dictionary

    def test_range_codes_bound_between_top_values(self):
        dictionary = self._nan_dictionary()
        lo, hi = dictionary.range_codes(129.3, None, include_low=False)
        # 143.32 (code 22) must be inside the open interval.
        assert lo <= 22 < hi

    def test_encode_existing_finds_top_value(self):
        dictionary = self._nan_dictionary()
        assert dictionary.encode_existing(143.32) == 22

    def test_insert_near_top_keeps_nan_last(self):
        column = CompressedColumn("v", DataType.DOUBLE)
        column.bulk_load([float(i * 6) for i in range(22)] + [143.32, float("nan")])
        column.append(140.0)
        assert column.dictionary.nan_code == len(column.dictionary) - 1
        values = list(column.dictionary.values)
        reals = [v for v in values if v == v]
        assert reals == sorted(reals)


class TestMixedNullDictionary:
    """NULL alongside values: the reserved code 0 (mixed-NULL columns)."""

    def test_first_null_reserves_code_zero_and_shifts(self):
        column = CompressedColumn("v", DataType.INTEGER)
        column.bulk_load([30, 10, 20])
        assert column.codes.tolist() == [2, 0, 1]
        column.append(None)
        assert column.dictionary.has_null
        assert column.codes.tolist() == [3, 1, 2, 0]
        assert column.all_values() == [30, 10, 20, None]

    def test_bulk_build_with_mixed_nulls(self):
        column = CompressedColumn("v", DataType.VARCHAR)
        column.bulk_load(["b", None, "a", None, "c"])
        assert column.all_values() == ["b", None, "a", None, "c"]
        assert column.dictionary.encode_existing(None) == 0
        assert column.dictionary.encode_existing("a") == 1
        assert column.null_count == 2
        assert len(column.dictionary) == 4  # NULL + three values

    def test_extend_merges_values_into_null_dictionary(self):
        column = CompressedColumn("v", DataType.VARCHAR)
        column.bulk_load([None, "m"])
        column.extend(["a", None, "z"])
        assert column.all_values() == [None, "m", "a", None, "z"]
        # Code order mirrors value order, NULL first.
        assert list(column.dictionary.values) == [None, "a", "m", "z"]

    def test_range_codes_skip_the_null_code(self):
        column = CompressedColumn("v", DataType.INTEGER)
        column.bulk_load([None, 10, 20, 30])
        lo, hi = column.dictionary.range_codes(None, None)
        assert lo == 1  # the interval never includes the reserved NULL code

    def test_delete_rebuild_drops_or_keeps_null(self):
        import numpy as np

        column = CompressedColumn("v", DataType.INTEGER)
        column.bulk_load([None, 10, 20, None])
        # Keep only the value rows: NULL leaves the dictionary.
        kept = column.codes[np.asarray([1, 2])]
        remap = column.dictionary.rebuild_from_codes(kept)
        column.load_codes(remap)
        assert not column.dictionary.has_null
        assert column.all_values() == [10, 20]

    def test_null_and_nan_can_coexist(self):
        nan = float("nan")
        column = CompressedColumn("v", DataType.DOUBLE)
        column.bulk_load([1.0, None, nan])
        assert repr(column.all_values()) == repr([1.0, None, nan])
        assert column.dictionary.encode_existing(None) == 0
        assert column.dictionary.nan_code == len(column.dictionary) - 1
        column.extend([2.0, None, nan])
        assert repr(column.all_values()) == repr([1.0, None, nan, 2.0, None, nan])
