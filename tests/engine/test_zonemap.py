"""Zone-map synopses: correctness of pruning and maintenance under DML.

Two invariants matter:

* **safety** — a zone may be wider than the live data (updates leave
  orphaned dictionary entries) but never narrower: ``zone_can_match`` must
  never return ``False`` for a predicate that actually matches a row;
* **maintenance** — every mutator (insert, update, delete, bulk load, store
  conversion, repartitioning) bumps the zone epoch, so a stale synopsis is
  rebuilt on the next consult — including the delete case where a
  partition's range shrinks and the rebuilt zone re-tightens.

The suite also pins the plan-vs-execution contract: a cached plan whose
pruning decision went stale (DML after planning) re-derives it at execution
time instead of skipping rows that became visible.
"""

import random

import pytest

from repro.engine import DataType, HybridDatabase, Store, TableSchema
from repro.engine.column_store import ColumnStoreTable
from repro.engine.partitioning import (
    HorizontalPartitionSpec,
    TablePartitioning,
    VerticalPartitionSpec,
)
from repro.engine.row_store import RowStoreTable
from repro.engine.schema import Column
from repro.engine.table import StoredTable
from repro.engine.zonemap import ColumnZone, zone_can_match
from repro.query.builder import select
from repro.query.predicates import (
    And,
    Between,
    InList,
    IsNull,
    Not,
    Or,
    between,
    eq,
    ge,
    gt,
    le,
    lt,
    ne,
)

SCHEMA = TableSchema(
    "events",
    (
        Column("id", DataType.INTEGER, primary_key=True),
        Column("day", DataType.INTEGER),
        Column("kind", DataType.VARCHAR),
        Column("score", DataType.DOUBLE, nullable=True),
    ),
)


def make_rows(start, stop, null_every=0):
    return [
        {
            "id": i,
            "day": i,
            "kind": f"k{i % 5}",
            "score": None if null_every and i % null_every == 0 else float(i),
        }
        for i in range(start, stop)
    ]


@pytest.fixture(params=[Store.ROW, Store.COLUMN], ids=["row", "column"])
def table(request):
    stored = StoredTable(SCHEMA, request.param)
    stored.bulk_load(make_rows(0, 100, null_every=10))
    return stored


class TestZoneCanMatch:
    def test_disjoint_ranges_prune(self):
        zone = ColumnZone(10, 20, null_count=0, num_rows=5)
        zones = {"x": zone}
        assert not zone_can_match(lt("x", 10), zones, 5)
        assert not zone_can_match(gt("x", 20), zones, 5)
        assert not zone_can_match(between("x", 30, 40), zones, 5)
        assert not zone_can_match(eq("x", 25), zones, 5)
        assert not zone_can_match(InList("x", (1, 2, 30)), zones, 5)
        assert not zone_can_match(IsNull("x"), zones, 5)

    def test_overlapping_ranges_scan(self):
        zone = ColumnZone(10, 20, null_count=1, num_rows=5)
        zones = {"x": zone}
        assert zone_can_match(le("x", 10), zones, 5)
        assert zone_can_match(ge("x", 20), zones, 5)
        assert zone_can_match(between("x", 15, 40), zones, 5)
        assert zone_can_match(eq("x", 10), zones, 5)
        assert zone_can_match(IsNull("x"), zones, 5)
        assert zone_can_match(InList("x", (None,)), zones, 5)

    def test_all_null_zone_fails_comparisons_matches_is_null(self):
        zone = ColumnZone(None, None, null_count=5, num_rows=5)
        zones = {"x": zone}
        assert not zone_can_match(eq("x", 1), zones, 5)
        assert not zone_can_match(between("x", 0, 9), zones, 5)
        assert not zone_can_match(InList("x", (1,)), zones, 5)
        assert zone_can_match(InList("x", (1, None)), zones, 5)
        assert zone_can_match(IsNull("x"), zones, 5)

    def test_nan_zone_is_conservative(self):
        zone = ColumnZone(1.0, 2.0, null_count=0, num_rows=5, has_nan=True)
        zones = {"x": zone}
        # NaN passes BETWEEN (exclusion test) and matches !=.
        assert zone_can_match(between("x", 100.0, 200.0), zones, 5)
        assert zone_can_match(ne("x", 1.0), zones, 5)
        # Ordered comparisons never match NaN; the real range still decides.
        assert not zone_can_match(gt("x", 50.0), zones, 5)

    def test_boolean_combinators(self):
        zones = {"x": ColumnZone(10, 20, null_count=0, num_rows=5)}
        assert not zone_can_match(And((ge("x", 0), gt("x", 30))), zones, 5)
        assert zone_can_match(Or((gt("x", 30), lt("x", 15))), zones, 5)
        assert not zone_can_match(Or((gt("x", 30), lt("x", 5))), zones, 5)
        # NOT is conservative: never prunes.
        assert zone_can_match(Not(gt("x", 30)), zones, 5)

    def test_unknown_columns_and_incomparable_literals_scan(self):
        zones = {"x": ColumnZone(10, 20, null_count=0, num_rows=5)}
        assert zone_can_match(eq("y", 99), zones, 5)
        assert zone_can_match(gt("x", "a-string"), zones, 5)

    def test_unknown_null_count_disables_null_proofs(self):
        zone = ColumnZone(10, 20, null_count=None, num_rows=5)
        assert zone_can_match(IsNull("x"), {"x": zone}, 5)
        assert not zone_can_match(eq("x", 25), {"x": zone}, 5)


class TestZoneMaintenance:
    def test_zone_reflects_data(self, table):
        zone = table.column_zone("day")
        assert (zone.min_value, zone.max_value) == (0, 99)
        score = table.column_zone("score")
        assert score.null_count == 10
        assert (score.min_value, score.max_value) == (1.0, 99.0)

    def test_insert_widens_zone(self, table):
        epoch = table.zone_epoch
        table.insert_rows([{"id": 100, "day": 500, "kind": "k9", "score": -3.5}])
        assert table.zone_epoch != epoch
        zone = table.column_zone("day")
        assert (zone.min_value, zone.max_value) == (0, 500)
        assert table.column_zone("score").min_value == -3.5

    def test_delete_shrinks_stale_zone(self, table):
        """The stale-synopsis case: deletes shrink the range, the zone follows."""
        zone = table.column_zone("day")
        assert zone.max_value == 99
        doomed = table.filter_positions(ge("day", 50))
        table.delete_rows(doomed)
        rebuilt = table.column_zone("day")
        assert rebuilt.max_value == 49
        assert rebuilt.num_rows == 50
        assert not zone_can_match(ge("day", 50), {"day": rebuilt}, 50)

    def test_update_keeps_zone_safe(self, table):
        """A zone may be wider than the live data but never narrower.

        (Both backends now compute exact post-update bounds — the column
        store reduces its live codes instead of trusting the dictionary,
        whose ``column_min_max`` may retain the orphaned old value — so the
        live data range is computed from the rows themselves here.)
        """
        positions = table.filter_positions(eq("day", 99))
        table.update_rows(positions, {"day": 10})
        zone = table.column_zone("day")
        days = [row["day"] for row in table.all_rows()]
        assert zone.min_value <= min(days) and zone.max_value >= max(days)

    def test_null_count_tracks_updates(self, table):
        positions = table.filter_positions(IsNull("score"))
        table.update_rows(positions, {"score": 1.25})
        assert table.column_zone("score").null_count == 0
        table.update_rows([0, 1, 2], {"score": None})
        assert table.column_zone("score").null_count == 3

    def test_store_conversion_rebuilds_zones(self, table):
        target = Store.COLUMN if table.store is Store.ROW else Store.ROW
        before = table.column_zone("day")
        table.convert_to(target)
        after = table.column_zone("day")
        assert (after.min_value, after.max_value) == (
            before.min_value, before.max_value
        )
        assert table.column_zone("score").null_count == 10

    def test_randomized_dml_never_prunes_matching_rows(self, table):
        """Safety invariant under interleaved DML, on both stores."""
        rng = random.Random(7)
        next_id = 1000
        for _ in range(30):
            action = rng.randrange(3)
            if action == 0:
                table.insert_rows([{
                    "id": next_id,
                    "day": rng.randrange(-50, 400),
                    "kind": f"k{rng.randrange(8)}",
                    "score": None if rng.random() < 0.3 else rng.uniform(-5, 5),
                }])
                next_id += 1
            elif action == 1 and table.num_rows:
                positions = table.filter_positions(
                    between("day", rng.randrange(0, 200), rng.randrange(200, 400))
                )
                if len(positions):
                    table.update_rows(positions[:3], {"day": rng.randrange(-20, 420)})
            elif table.num_rows:
                positions = table.filter_positions(ge("day", rng.randrange(0, 400)))
                table.delete_rows(positions[:5])
            # Every value actually present must survive its own point lookup.
            probe = rng.randrange(-60, 430)
            predicate = eq("day", probe)
            zones = {"day": table.column_zone("day")}
            matches = len(table.filter_positions(predicate))
            if matches and zones["day"] is not None:
                assert zone_can_match(predicate, zones, table.num_rows), (
                    f"zone pruned a predicate with {matches} matching rows"
                )


def build_partitioned_database():
    database = HybridDatabase()
    database.create_table(SCHEMA, store=Store.ROW)
    database.load_rows("events", make_rows(0, 200, null_every=7))
    database.apply_partitioning(
        "events",
        TablePartitioning(
            horizontal=HorizontalPartitionSpec(predicate=ge("day", 150)),
            vertical=VerticalPartitionSpec(
                row_store_columns=("kind",),
                column_store_columns=("day", "score"),
            ),
        ),
    )
    return database


class TestPartitionedPruning:
    def test_hot_partition_skipped_for_cold_range(self):
        database = build_partitioned_database()
        query = select("events").where(between("day", 10, 20)).build()
        result = database.execute(query)
        assert sorted(row["day"] for row in result.rows) == list(range(10, 21))
        assert result.scan_stats["events"] == (1, 1)  # main scanned, hot skipped

    def test_main_partition_skipped_for_hot_range(self):
        database = build_partitioned_database()
        query = select("events").where(ge("day", 180)).build()
        result = database.execute(query)
        assert sorted(row["day"] for row in result.rows) == list(range(180, 200))
        assert result.scan_stats["events"] == (1, 1)  # hot scanned, main skipped

    def test_fully_disjoint_predicate_skips_everything(self):
        database = build_partitioned_database()
        query = select("events").where(gt("day", 10_000)).build()
        result = database.execute(query)
        assert result.rows == []
        assert result.scan_stats["events"] == (0, 2)

    def test_repartitioning_refreshes_zones(self):
        database = build_partitioned_database()
        database.apply_partitioning(
            "events",
            TablePartitioning(
                horizontal=HorizontalPartitionSpec(predicate=ge("day", 100)),
            ),
        )
        query = select("events").where(lt("day", 50)).build()
        result = database.execute(query)
        assert len(result.rows) == 50
        assert result.scan_stats["events"] == (1, 1)

    def test_inserts_route_to_hot_and_unprune_it(self):
        database = build_partitioned_database()
        cold_query = select("events").where(between("day", 10, 20)).build()
        assert database.execute(cold_query).scan_stats["events"] == (1, 1)
        # Inserts land in the hot partition regardless of the predicate; a
        # cold-range row there must widen the hot zone and stop the skip.
        from repro.query.builder import insert

        database.execute(insert("events", [
            {"id": 9_000, "day": 15, "kind": "kx", "score": 1.0}
        ]))
        result = database.execute(cold_query)
        assert 9_000 in {row["id"] for row in result.rows}
        assert result.scan_stats["events"] == (2, 0)


class TestPruningToggle:
    def test_disabling_pruning_invalidates_cached_decisions(self):
        """The reference path must be reachable through session-cached plans.

        A recorded skip decision carries the toggle state it was derived
        under; entering ``zone_pruning_disabled()`` re-derives it, so the
        decode-path differential really compares two different scan paths.
        """
        from repro.api import connect
        from repro.engine.zonemap import zone_pruning_disabled

        session = connect()
        session.create_table(SCHEMA, Store.COLUMN)
        session.load_rows("events", make_rows(0, 50))
        sql = "SELECT id FROM events WHERE day > 1000"
        pruned = session.execute(sql)
        assert pruned.scan_stats["events"] == (0, 1)
        with zone_pruning_disabled():
            unpruned = session.execute(sql)
            assert unpruned.scan_stats["events"] == (1, 0)
        assert pruned.rows == unpruned.rows == []
        # Leaving the context restores the pruned decision.
        assert session.execute(sql).scan_stats["events"] == (0, 1)


class TestStaleDecisionRecovery:
    def test_cached_plan_rederives_after_dml(self):
        """A plan's recorded skip must not survive DML that adds matching rows."""
        from repro.api import connect

        session = connect()
        session.create_table(SCHEMA, Store.COLUMN)
        session.load_rows("events", make_rows(0, 50))
        sql = "SELECT id FROM events WHERE day > 1000"
        assert session.execute(sql).rows == []
        plan = session.plan_for(sql)
        decision = plan.scan_decisions["events"]
        assert decision.skipped == 1
        # DML does not bump the layout version -> the same plan object stays
        # cached; its decision token goes stale and must be re-derived.
        session.database.table_object("events").insert_rows(
            [{"id": 777, "day": 2000, "kind": "kz", "score": None}]
        )
        assert session.plan_for(sql) is plan
        result = session.execute(sql)
        assert [row["id"] for row in result.rows] == [777]
        assert result.scan_stats["events"] == (1, 0)
