"""Scalar/vectorized equivalence of the columnar batch pipeline.

The batch pipeline (see ``repro.engine.executor`` docstring) must be a pure
wall-clock optimisation: identical query results, identical
:class:`CostBreakdown` charges.  These tests pin that down with

* property-style randomized workloads executed against both stores
  (results must agree, costs must be deterministic),
* direct scalar-vs-vectorized comparisons for predicate evaluation and
  grouped aggregation, and
* edge cases: empty tables, all-NULL columns, single-row batches.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.batch import ColumnBatch, values_to_array, vectorized_value_mask
from repro.engine.column_store import ColumnStoreTable
from repro.engine.compression import ColumnDictionary, CompressedColumn
from repro.engine.database import HybridDatabase
from repro.engine.executor.aggregates import GroupedAggregation, aggregate_values
from repro.engine.row_store import RowStoreTable
from repro.engine.schema import Column, TableSchema
from repro.engine.types import DataType, Store
from repro.query.ast import AggregateFunction, AggregateSpec
from repro.query.builder import aggregate, select
from repro.query.predicates import (
    And,
    Between,
    CompareOp,
    Comparison,
    InList,
    IsNull,
    Not,
    Or,
)

SCHEMA = TableSchema.build(
    "facts",
    [
        ("id", DataType.INTEGER),
        ("region", DataType.VARCHAR),
        ("amount", DataType.DOUBLE),
        ("quantity", DataType.INTEGER),
    ],
    primary_key=["id"],
)


def make_rows(rng, n):
    return [
        {
            "id": i,
            "region": f"region_{rng.randrange(5)}",
            "amount": round(rng.uniform(0.0, 100.0), 2),
            "quantity": rng.randrange(0, 10),
        }
        for i in range(n)
    ]


def build_databases(rows):
    databases = {}
    for store in Store:
        database = HybridDatabase()
        database.create_table(SCHEMA, store=store)
        if rows:
            database.load_rows("facts", rows)
        databases[store] = database
    return databases


def random_queries(rng):
    predicates = [
        None,
        Comparison("amount", CompareOp.GE, round(rng.uniform(0, 100), 1)),
        Between("quantity", 2, 7),
        Or((Comparison("region", CompareOp.EQ, "region_1"),
            Comparison("quantity", CompareOp.LT, 3))),
        And((Comparison("amount", CompareOp.LT, 80.0),
             Not(Comparison("region", CompareOp.EQ, "region_0")))),
        InList("region", ("region_2", "region_3")),
    ]
    queries = []
    for predicate in predicates:
        builder = aggregate("facts").sum("amount").avg("quantity").count()
        if rng.random() < 0.5:
            builder = builder.group_by("region")
        if predicate is not None:
            builder = builder.where(predicate)
        queries.append(builder.build())
        sel = select("facts")
        if predicate is not None:
            sel = sel.where(predicate)
        queries.append(sel.build())
    queries.append(aggregate("facts").min("amount").max("amount").build())
    queries.append(aggregate("facts").min("region").max("region").build())
    return queries


def assert_rows_equal(left, right):
    assert len(left) == len(right)
    for row_left, row_right in zip(left, right):
        assert set(row_left) == set(row_right)
        for key in row_left:
            value_left, value_right = row_left[key], row_right[key]
            if isinstance(value_left, float) or isinstance(value_right, float):
                assert value_left == pytest.approx(value_right)
            else:
                assert value_left == value_right


class TestRandomizedWorkloadEquivalence:
    """Both stores agree on results; cost accounting is deterministic."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_stores_agree_and_costs_are_deterministic(self, seed):
        rng = random.Random(seed)
        rows = make_rows(rng, rng.randrange(1, 200))
        databases = build_databases(rows)
        twin = build_databases(rows)  # independently built duplicate
        for query in random_queries(rng):
            results = {
                store: database.execute(query)
                for store, database in databases.items()
            }
            assert_rows_equal(results[Store.ROW].rows, results[Store.COLUMN].rows)
            # Re-executing the same query on an identically built database
            # must charge the bit-identical CostBreakdown: the vectorized
            # pipeline may not perturb accounting.
            for store, result in results.items():
                twin_result = twin[store].execute(query)
                assert twin_result.cost.components == result.cost.components
                assert_rows_equal(result.rows, twin_result.rows)

    def test_empty_table(self):
        databases = build_databases([])
        query = aggregate("facts").sum("amount").group_by("region").build()
        for database in databases.values():
            result = database.execute(query)
            assert result.rows == []
        ungrouped = aggregate("facts").sum("amount").count().build()
        for database in databases.values():
            result = database.execute(ungrouped)
            assert result.rows == [{"sum_amount": None, "count_star": 0}]

    def test_nan_rows_agree_across_stores_and_scalar(self):
        rows = [
            {"id": 0, "region": "a", "amount": 0.0, "quantity": 1},
            {"id": 1, "region": "a", "amount": float("nan"), "quantity": 2},
            {"id": 2, "region": "b", "amount": 5.0, "quantity": 3},
            {"id": 3, "region": "b", "amount": 20.0, "quantity": 4},
        ]
        databases = build_databases(rows)
        predicates = [
            Between("amount", -1.0, 10.0),
            Comparison("amount", CompareOp.GE, 1.0),
            Comparison("amount", CompareOp.LT, 30.0),
            Comparison("amount", CompareOp.NE, 5.0),
        ]
        for predicate in predicates:
            expected = [row["id"] for row in rows if predicate.evaluate(row)]
            for store, database in databases.items():
                result = database.execute(select("facts").where(predicate).build())
                assert [row["id"] for row in result.rows] == expected, (
                    f"{predicate!r} on {store}"
                )

    def test_single_row_batch(self):
        rows = make_rows(random.Random(9), 1)
        databases = build_databases(rows)
        query = (
            aggregate("facts").sum("amount").group_by("region")
            .where(Comparison("quantity", CompareOp.GE, 0)).build()
        )
        results = [db.execute(query).rows for db in databases.values()]
        assert_rows_equal(results[0], results[1])
        assert len(results[0]) == 1


NULLABLE_SCHEMA = TableSchema(
    "sparse",
    (
        Column("id", DataType.INTEGER, primary_key=True),
        Column("note", DataType.VARCHAR, nullable=True),
        Column("score", DataType.DOUBLE, nullable=True),
    ),
)


class TestAllNullColumns:
    def test_all_null_column_aggregates_and_filters(self):
        rows = [{"id": i} for i in range(10)]
        for store_cls in (RowStoreTable, ColumnStoreTable):
            table = store_cls(NULLABLE_SCHEMA)
            table.bulk_load(rows)
            assert table.column_values("score") == [None] * 10
            null_positions = table.filter_positions(IsNull("score"))
            assert list(null_positions) == list(range(10))
            eq_positions = table.filter_positions(
                Comparison("score", CompareOp.EQ, 1.0)
            )
            assert len(eq_positions) == 0

    def test_null_inserts_into_all_null_dictionary(self):
        # Per-row inserts of NULL must keep working once the dictionary holds
        # NULL (regression guard for the bisect-based dictionary lookup).
        table = ColumnStoreTable(NULLABLE_SCHEMA)
        table.insert_rows([{"id": 1}])
        table.insert_rows([{"id": 2}, {"id": 3, "score": None}])
        assert table.column_values("score") == [None, None, None]
        table.update_rows([0], {"note": None})
        assert table.column_values("note") == [None, None, None]

    def test_all_null_aggregation_through_executor(self):
        rows = [{"id": i} for i in range(5)]
        database = HybridDatabase()
        database.create_table(NULLABLE_SCHEMA, store=Store.COLUMN)
        database.load_rows("sparse", rows)
        result = database.execute(
            aggregate("sparse").sum("score").count("score").count().build()
        )
        assert result.rows == [
            {"sum_score": None, "count_score": 0, "count_star": 5}
        ]


class TestVectorizedPredicateMask:
    """vectorized_value_mask must match Predicate.evaluate row-at-a-time."""

    values_strategy = st.lists(
        st.one_of(st.none(), st.integers(min_value=-5, max_value=5)),
        min_size=0,
        max_size=40,
    )

    @given(values=values_strategy, threshold=st.integers(min_value=-5, max_value=5),
           op=st.sampled_from(list(CompareOp)))
    @settings(max_examples=60, deadline=None)
    def test_comparison_with_nulls(self, values, threshold, op):
        arrays = {"x": values_to_array(values)}
        predicate = Comparison("x", op, threshold)
        mask = vectorized_value_mask(predicate, arrays, len(values))
        assert mask is not None
        expected = [predicate.evaluate({"x": value}) for value in values]
        assert mask.tolist() == expected

    @given(values=values_strategy)
    @settings(max_examples=40, deadline=None)
    def test_composite_predicates(self, values):
        arrays = {"x": values_to_array(values)}
        predicate = Or((
            And((Comparison("x", CompareOp.GE, -1), Comparison("x", CompareOp.LE, 2))),
            Not(Comparison("x", CompareOp.NE, 4)),
            IsNull("x"),
            Between("x", -4, -3),
            InList("x", (5, None)),
        ))
        mask = vectorized_value_mask(predicate, arrays, len(values))
        assert mask is not None
        expected = [predicate.evaluate({"x": value}) for value in values]
        assert mask.tolist() == expected

    def test_null_literal_never_matches(self):
        arrays = {"x": values_to_array([1, 2, None])}
        for op in CompareOp:
            mask = vectorized_value_mask(Comparison("x", op, None), arrays, 3)
            assert mask.tolist() == [False, False, False]

    def test_nan_passes_between_like_scalar(self):
        values = [0.0, float("nan"), 5.0, 20.0]
        arrays = {"x": values_to_array(values)}
        predicate = Between("x", -1.0, 10.0)
        mask = vectorized_value_mask(predicate, arrays, 4)
        expected = [predicate.evaluate({"x": value}) for value in values]
        assert expected == [True, True, True, False]  # scalar keeps NaN
        assert mask.tolist() == expected

    def test_nul_string_literal_falls_back_to_scalar(self):
        values = ["b", "0\x00", "a", "0"]
        arrays = {"x": values_to_array(values)}
        for predicate in (
            Comparison("x", CompareOp.EQ, "0\x00"),
            InList("x", ("0\x00",)),
            Between("x", "0\x00", "a"),
        ):
            mask = vectorized_value_mask(predicate, arrays, 4)
            expected = [predicate.evaluate({"x": value}) for value in values]
            assert mask is None or mask.tolist() == expected
        # And the end-to-end path still answers correctly via the fallback.
        from repro.engine.batch import evaluate_predicate_mask

        mask = evaluate_predicate_mask(Comparison("x", CompareOp.EQ, "0\x00"), arrays, 4)
        assert mask.tolist() == [False, True, False, False]

    def test_nan_in_list_literal_matches_nothing(self):
        # IN is chained equality: a NaN member matches no row (NaN == NaN is
        # false), in the scalar reference and vectorially alike — identity
        # matching would depend on how a store boxes its floats.
        from repro.engine.batch import evaluate_predicate_mask

        nan = float("nan")
        values = [1.0, nan, -2.0, None]
        arrays = {"x": values_to_array(values)}
        predicate = InList("x", (nan, -2.0))
        mask = vectorized_value_mask(predicate, arrays, 4)
        expected = [predicate.evaluate({"x": value}) for value in values]
        assert mask is not None
        assert mask.tolist() == expected == [False, False, True, False]
        assert evaluate_predicate_mask(predicate, arrays, 4).tolist() == expected


class TestGroupedAggregationEquivalence:
    """The np.unique group-by must match the scalar accumulator loop exactly."""

    @pytest.mark.parametrize("seed", range(5))
    def test_vectorized_matches_scalar(self, seed):
        rng = random.Random(seed)
        n = rng.randrange(1, 120)
        keys = values_to_array([f"k{rng.randrange(6)}" for _ in range(n)])
        second = values_to_array([rng.randrange(3) for _ in range(n)])
        amounts = values_to_array([round(rng.uniform(-5, 5), 3) for _ in range(n)])
        aggregation = GroupedAggregation(
            aggregates=(
                AggregateSpec(AggregateFunction.SUM, "a"),
                AggregateSpec(AggregateFunction.AVG, "a", alias="avg_a"),
                AggregateSpec(AggregateFunction.MIN, "a", alias="min_a"),
                AggregateSpec(AggregateFunction.MAX, "a", alias="max_a"),
                AggregateSpec(AggregateFunction.COUNT, "*"),
            ),
            group_by_names=["k", "s"],
        )
        inputs = [amounts, amounts, amounts, amounts, None]
        vectorized = aggregation._run_grouped_vectorized(inputs, [keys, second], n)
        scalar = aggregation._run_grouped_scalar(inputs, [keys, second], n)
        assert vectorized is not None
        assert_rows_equal(vectorized, scalar)

    def test_nan_minmax_matches_scalar_fold(self):
        # Python's min/max fold is order-dependent around NaN; the vectorized
        # path must defer to the scalar reference instead of propagating NaN.
        values = values_to_array([5.0, float("nan"), 1.0])
        aggregation = GroupedAggregation(
            aggregates=(
                AggregateSpec(AggregateFunction.MIN, "v"),
                AggregateSpec(AggregateFunction.MAX, "v"),
            ),
            group_by_names=[],
        )
        row = aggregation.run([values, values], [], 3)[0]
        reference_min = aggregate_values(AggregateFunction.MIN, values.tolist())
        reference_max = aggregate_values(AggregateFunction.MAX, values.tolist())
        assert repr(row["min_v"]) == repr(reference_min)
        assert repr(row["max_v"]) == repr(reference_max)
        keys = values_to_array(["g", "g", "g"])
        grouped = GroupedAggregation(
            aggregates=(AggregateSpec(AggregateFunction.MIN, "v"),),
            group_by_names=["k"],
        ).run([values], [keys], 3)
        assert repr(grouped[0]["min_v"]) == repr(reference_min)

    def test_null_group_keys_fall_back(self):
        keys = values_to_array(["a", None, "a", None])
        amounts = values_to_array([1.0, 2.0, 3.0, 4.0])
        aggregation = GroupedAggregation(
            aggregates=(AggregateSpec(AggregateFunction.SUM, "a"),),
            group_by_names=["k"],
        )
        rows = aggregation.run([amounts], [keys], 4)
        assert rows == [{"k": "a", "sum_a": 4.0}, {"k": None, "sum_a": 6.0}]


class TestColumnarMaintenance:
    """Satellite fixes: dictionary insert shift, bulk extend, columnar delete."""

    def test_mid_dictionary_insert_shifts_codes(self):
        column = CompressedColumn("v", DataType.VARCHAR)
        for value in ["b", "d", "b"]:
            column.append(value)
        column.append("c")  # inserts mid-dictionary, shifting "d"
        assert column.all_values() == ["b", "d", "b", "c"]
        assert list(column.dictionary.values) == ["b", "c", "d"]
        assert column.dictionary.encode_existing("d") == 2

    def test_extend_matches_per_value_append(self):
        rng = random.Random(3)
        values = [rng.randrange(20) for _ in range(200)]
        bulk = CompressedColumn("v", DataType.INTEGER)
        bulk.extend(values[:50])
        bulk.extend(values[50:])
        reference = CompressedColumn("v", DataType.INTEGER)
        for value in values:
            reference.append(value)
        assert bulk.all_values() == reference.all_values()
        assert list(bulk.dictionary.values) == list(reference.dictionary.values)
        assert bulk.codes.tolist() == reference.codes.tolist()

    @pytest.mark.parametrize("seed", range(3))
    def test_columnar_delete_matches_row_store(self, seed):
        rng = random.Random(seed)
        rows = make_rows(rng, 60)
        row_store = RowStoreTable(SCHEMA)
        row_store.bulk_load(rows)
        column_store = ColumnStoreTable(SCHEMA)
        column_store.bulk_load(rows)
        doomed = rng.sample(range(60), 25)
        assert row_store.delete_rows(doomed) == column_store.delete_rows(doomed)
        assert row_store.all_rows() == column_store.all_rows()
        # The dictionaries shrink to the surviving values: rebuilding from
        # scratch yields the identical column state.
        rebuilt = ColumnStoreTable(SCHEMA)
        rebuilt.bulk_load(column_store.all_rows())
        for name in SCHEMA.column_names:
            assert (
                column_store.column_distinct_count(name)
                == rebuilt.column_distinct_count(name)
            )
            assert column_store.column_values(name) == rebuilt.column_values(name)

    def test_delete_all_rows(self):
        column_store = ColumnStoreTable(SCHEMA)
        column_store.bulk_load(make_rows(random.Random(1), 10))
        assert column_store.delete_rows(list(range(10))) == 10
        assert column_store.num_rows == 0
        assert column_store.all_rows() == []
        # The emptied table accepts fresh rows.
        column_store.bulk_load(make_rows(random.Random(2), 3))
        assert column_store.num_rows == 3


class TestColumnBatch:
    def test_take_concat_to_rows(self):
        batch = ColumnBatch.from_lists(
            {"a": [1, 2, 3], "b": ["x", "y", "z"]}
        )
        taken = batch.take(np.array([True, False, True]))
        assert taken.num_rows == 2
        assert taken.to_rows() == [{"a": 1, "b": "x"}, {"a": 3, "b": "z"}]
        merged = ColumnBatch.concat([taken, batch])
        assert merged.num_rows == 5
        assert merged.column_list("a") == [1, 3, 1, 2, 3]

    def test_null_mask(self):
        batch = ColumnBatch.from_lists({"a": [1, None, 3]})
        assert batch.null_mask("a").tolist() == [False, True, False]
        assert ColumnBatch.from_lists({"a": [1, 2]}).null_mask("a") is None
