"""Shared fixtures for the test suite.

Most tests use a small deterministic ``sales`` table that exists in both
stores, so that row-store and column-store behaviour can be compared
directly.  Heavier fixtures (synthetic wide tables, TPC-H data) are module
scoped to keep the suite fast.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List

import pytest

from repro.engine import DataType, HybridDatabase, Store, TableSchema

SALES_NUM_ROWS = 1_000


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "fuzz: seeded cross-store differential fuzz suite (runs in tier-1; "
        "select standalone with -m fuzz)",
    )
    config.addinivalue_line(
        "markers",
        "faultinject: crash-point recovery differential suite (runs in "
        "tier-1; select standalone with -m faultinject)",
    )
    config.addinivalue_line(
        "markers",
        "shard: shard-parallel scatter/gather execution suite (runs in "
        "tier-1; select standalone with -m shard)",
    )
    config.addinivalue_line(
        "markers",
        "matview: materialized-view subsystem suite (runs in tier-1; "
        "select standalone with -m matview)",
    )
    config.addinivalue_line(
        "markers",
        "resilience: process-fault matrix / supervised-pool / deadline "
        "suite (runs in tier-1; select standalone with -m resilience)",
    )
    config.addinivalue_line(
        "markers",
        "integrity: checksum / quarantine / scrub-and-repair corruption "
        "matrix (runs in tier-1; select standalone with -m integrity)",
    )


@pytest.fixture(scope="session")
def sales_schema() -> TableSchema:
    return TableSchema.build(
        "sales",
        [
            ("id", DataType.INTEGER),
            ("region", DataType.VARCHAR),
            ("product", DataType.INTEGER),
            ("revenue", DataType.DOUBLE),
            ("quantity", DataType.INTEGER),
            ("status", DataType.VARCHAR),
        ],
        primary_key=["id"],
    )


@pytest.fixture(scope="session")
def sales_rows() -> List[Dict]:
    rng = random.Random(42)
    return [
        {
            "id": i,
            "region": f"region_{i % 7}",
            "product": rng.randrange(50),
            "revenue": round(rng.random() * 500.0, 3),
            "quantity": rng.randint(1, 20),
            "status": ("open", "shipped", "cancelled")[i % 3],
        }
        for i in range(SALES_NUM_ROWS)
    ]


@pytest.fixture
def database_factory(sales_schema, sales_rows) -> Callable[[Store], HybridDatabase]:
    """Factory building a fresh database with the sales table in the given store."""

    def build(store: Store = Store.ROW) -> HybridDatabase:
        database = HybridDatabase()
        database.create_table(sales_schema, store)
        database.load_rows("sales", sales_rows)
        return database

    return build


@pytest.fixture
def row_database(database_factory) -> HybridDatabase:
    return database_factory(Store.ROW)


@pytest.fixture
def column_database(database_factory) -> HybridDatabase:
    return database_factory(Store.COLUMN)
