"""Tour of the session API: the explicit parse → bind → plan → execute pipeline.

Shows what the session layer adds over ``HybridDatabase.execute``:

* placeholders and prepared statements (positional ``?`` and named ``:name``),
* the plan cache — hits on repetition, invalidation on layout changes,
* ``EXPLAIN`` / ``EXPLAIN ANALYZE`` with estimated vs. actual costs, and
* ``session.stats()`` counters.

Run with::

    python examples/session_api.py
"""

from repro import DataType, Store, TableSchema, connect


def main() -> None:
    session = connect()
    schema = TableSchema.build(
        "orders",
        [
            ("id", DataType.INTEGER),
            ("customer", DataType.VARCHAR),
            ("amount", DataType.DOUBLE),
            ("priority", DataType.INTEGER),
        ],
        primary_key=["id"],
    )
    session.create_table(schema, Store.ROW)
    session.load_rows(
        "orders",
        [
            {"id": i, "customer": f"c{i % 100:03d}", "amount": (i * 13 % 500) / 2.0,
             "priority": i % 5}
            for i in range(20_000)
        ],
    )

    # -- 1. plain SQL -------------------------------------------------------------
    result = session.sql(
        "SELECT sum(amount), count(*) FROM orders WHERE priority >= 3 "
        "GROUP BY customer"
    )
    print(f"grouped rows: {len(result.rows)}, "
          f"simulated runtime {result.runtime_ms:.3f} ms")

    # -- 2. prepared statements ----------------------------------------------------
    lookup = session.prepare("SELECT amount FROM orders WHERE id = ?")
    for order_id in (1, 2, 3, 4, 5):
        lookup.execute([order_id])
    ranged = session.prepare(
        "SELECT count(*) FROM orders WHERE amount BETWEEN :low AND :high"
    )
    count = ranged.execute({"low": 10.0, "high": 50.0}).rows[0]["count_star"]
    print(f"orders with amount in [10, 50]: {count}")

    # -- 3. EXPLAIN ----------------------------------------------------------------
    print("\nEXPLAIN of the prepared lookup (placeholder unbound):")
    print(lookup.explain())
    print("\nEXPLAIN ANALYZE (estimated vs. actual):")
    print(session.explain(
        "SELECT sum(amount) FROM orders GROUP BY priority", analyze=True
    ))

    # -- 4. the plan cache ---------------------------------------------------------
    stats = session.stats()
    print(
        f"\nplan cache: {stats.plan_cache_hits} hits, "
        f"{stats.plan_cache_misses} misses ({stats.plan_cache_hit_rate:.0%} "
        f"hit rate) over {stats.queries_executed} queries"
    )

    # A store move bumps the table's layout version: cached plans for the
    # table become unreachable and the next execution re-plans.
    session.move_table("orders", Store.COLUMN)
    session.sql("SELECT sum(amount), count(*) FROM orders WHERE priority >= 3 "
                "GROUP BY customer")
    plan = session.plan_for("SELECT amount FROM orders WHERE id = ?")
    print(f"\nafter move_table: lookup now plans as "
          f"'{plan.table_plans[0].access}' on the "
          f"{plan.table_plans[0].store.value} store")

    final = session.stats()
    print(
        f"final counters: {final.queries_executed} executed, "
        f"{final.statements_parsed} parsed "
        f"({final.parse_cache_hits} parse-cache hits), "
        f"{final.prepared_statements} prepared, "
        f"estimate memo {final.estimate_memo_hits}/{final.estimate_memo_misses} "
        "hits/misses"
    )


if __name__ == "__main__":
    main()
