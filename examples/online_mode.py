"""Online mode: the advisor watches the running workload and adapts the layout.

The session starts with its table in the row store and an OLTP-style
workload.  Over time the workload drifts towards analytics; the online
monitor — attached to the *session*, so it consumes the same plan objects
the executor runs — records every executed query, re-evaluates the layout
every ``online_reevaluation_interval`` queries and recommends moving the
table to the column store once that pays off (Section 4 of the paper,
"Online Mode").  Because the monitor sees the plans, it also tracks how far
the cost model's estimates drift from the actual (simulated) runtimes.

Run with::

    python examples/online_mode.py
"""

from repro import AdvisorConfig, Store, connect
from repro.core import CostModelCalibrator, OnlineAdvisorMonitor
from repro.workloads import (
    MixedWorkloadConfig,
    SyntheticTableConfig,
    build_mixed_workload,
    build_table,
)

NUM_ROWS = 10_000
PHASES = (
    ("transactional", 0.0),
    ("slightly mixed", 0.01),
    ("reporting-heavy", 0.10),
)


def main() -> None:
    table = build_table(SyntheticTableConfig(num_rows=NUM_ROWS))
    session = connect(
        advisor_config=AdvisorConfig(online_reevaluation_interval=150)
    )
    table.load_into(session.database, Store.ROW)

    advisor = session.advisor()
    advisor.initialize_cost_model(CostModelCalibrator(sizes=(1_000, 3_000)))

    adaptations = []

    def on_adaptation(recommendation):
        adaptations.append(recommendation)
        print("  -> adaptation recommended:")
        for statement in recommendation.ddl_statements:
            print(f"       {statement}")
        session.apply(recommendation)
        print("     applied automatically (cached plans invalidated).")

    monitor = OnlineAdvisorMonitor.for_session(
        session, include_partitioning=False, on_adaptation=on_adaptation
    )

    with monitor:
        for phase_name, olap_fraction in PHASES:
            workload = build_mixed_workload(
                table.roles,
                MixedWorkloadConfig(num_queries=300, olap_fraction=olap_fraction),
            )
            print(f"\nPhase '{phase_name}' (OLAP fraction {olap_fraction:.0%}):")
            run = session.run_workload(workload)
            print(
                f"  executed {run.num_queries} queries in {run.total_runtime_ms:.1f} ms "
                f"(simulated); current layout: "
                f"{session.database.catalog.entry('facts').describe_layout()}"
            )

    print(f"\nThe monitor evaluated the layout {monitor.state.evaluations} times and "
          f"found {len(adaptations)} beneficial adaptation(s).")
    print(f"Estimate drift over the monitored stream: "
          f"{monitor.state.estimation_drift:.2f}x "
          "(plans' estimated / actual runtime)")
    stats = session.stats()
    print(f"Plan cache: {stats.plan_cache_hits} hits / "
          f"{stats.plan_cache_misses} misses "
          f"({stats.plan_cache_hit_rate:.0%} hit rate)")


if __name__ == "__main__":
    main()
