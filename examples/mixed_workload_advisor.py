"""Table-level recommendations under shifting OLAP/OLTP mixes (Fig. 7(a) style).

The example sweeps the OLAP fraction of a mixed workload over a wide table
and shows, for every mix, the simulated runtime with the table pinned to the
row store, pinned to the column store, and placed in the store the advisor
recommends.  It is a small-scale version of the paper's Figure 7(a).

Run with::

    python examples/mixed_workload_advisor.py
"""

from repro import Session, StorageAdvisor, Store, connect
from repro.core import CostModelCalibrator
from repro.workloads import (
    MixedWorkloadConfig,
    SyntheticTableConfig,
    build_mixed_workload,
    build_table,
)

NUM_ROWS = 15_000
NUM_QUERIES = 200
FRACTIONS = (0.0, 0.01, 0.02, 0.03, 0.05)


def fresh_session(store: Store) -> Session:
    session = connect()
    build_table(SyntheticTableConfig(num_rows=NUM_ROWS)).load_into(
        session.database, store
    )
    return session


def main() -> None:
    table = build_table(SyntheticTableConfig(num_rows=NUM_ROWS))
    advisor = StorageAdvisor()
    advisor.initialize_cost_model(CostModelCalibrator(sizes=(1_000, 3_000)))

    header = f"{'OLAP %':>8} {'row only':>10} {'col only':>10} {'advisor':>10}  choice"
    print(header)
    print("-" * len(header))
    for fraction in FRACTIONS:
        workload = build_mixed_workload(
            table.roles,
            MixedWorkloadConfig(num_queries=NUM_QUERIES, olap_fraction=fraction),
        )
        runtimes = {}
        for store in Store:
            runtimes[store] = fresh_session(store).run_workload(workload).total_runtime_s

        session = fresh_session(Store.ROW)
        recommendation = advisor.recommend(session.database, workload,
                                           include_partitioning=False)
        advisor.apply(session.database, recommendation)
        advised = session.run_workload(workload).total_runtime_s
        choice = recommendation.choice_for("facts")
        print(
            f"{fraction:>8.2%} {runtimes[Store.ROW]:>9.3f}s {runtimes[Store.COLUMN]:>9.3f}s "
            f"{advised:>9.3f}s  {getattr(choice, 'value', choice)}"
        )

    print(
        "\nThe advisor follows the lower envelope of the two pure layouts: the "
        "row store for (almost) pure OLTP mixes, the column store as soon as a "
        "small share of analytical queries appears."
    )


if __name__ == "__main__":
    main()
