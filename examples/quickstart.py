"""Quickstart: ask the storage advisor where to keep a table.

This example walks through the complete offline workflow of the paper:

1. build a hybrid-store database and load a table,
2. describe the (expected) workload,
3. calibrate the cost model against the running system,
4. ask the advisor for a recommendation, and
5. apply it and verify that the workload indeed got faster.

Run with::

    python examples/quickstart.py
"""

from repro import HybridDatabase, StorageAdvisor, Store, DataType, TableSchema
from repro.core import CostModelCalibrator
from repro.query import Workload, aggregate, eq, insert, select, update


def build_database() -> HybridDatabase:
    """A small sales table, initially kept in the row store."""
    schema = TableSchema.build(
        "sales",
        [
            ("id", DataType.INTEGER),
            ("region", DataType.VARCHAR),
            ("product", DataType.INTEGER),
            ("revenue", DataType.DOUBLE),
            ("quantity", DataType.INTEGER),
            ("status", DataType.VARCHAR),
        ],
        primary_key=["id"],
    )
    database = HybridDatabase()
    database.create_table(schema, Store.ROW)
    rows = [
        {
            "id": i,
            "region": f"region_{i % 8}",
            "product": i % 200,
            "revenue": (i * 37 % 1000) / 10.0,
            "quantity": 1 + i % 10,
            "status": "open" if i % 3 else "shipped",
        }
        for i in range(30_000)
    ]
    database.load_rows("sales", rows)
    return database


def build_workload() -> Workload:
    """A mixed workload: mostly analytics with a few transactional queries."""
    queries = []
    for region_filter in range(20):
        queries.append(
            aggregate("sales")
            .sum("revenue")
            .avg("quantity")
            .group_by("region")
            .build()
        )
    for i in range(30):
        queries.append(select("sales").where(eq("id", i * 7)).build())
        queries.append(update("sales", {"status": "shipped"}, eq("id", i * 11)))
    queries.append(
        insert("sales", [{"id": 100_000, "region": "region_0", "product": 1,
                          "revenue": 10.0, "quantity": 2, "status": "open"}])
    )
    return Workload(queries, name="quickstart")


def main() -> None:
    database = build_database()
    workload = build_workload()

    print("Current layout:")
    print(database.describe())
    before = database.run_workload(workload)
    print(f"Workload runtime before: {before.total_runtime_ms:.1f} ms (simulated)")

    advisor = StorageAdvisor()
    print("\nCalibrating the cost model (offline initialisation)...")
    report = advisor.initialize_cost_model(CostModelCalibrator(sizes=(1_000, 3_000)))
    print(f"  fitted from {report.num_samples} calibration samples")

    recommendation = advisor.recommend(database, workload)
    print("\n" + recommendation.describe())

    advisor.apply(database, recommendation)
    print("\nLayout after applying the recommendation:")
    print(database.describe())

    after = database.run_workload(workload)
    print(f"\nWorkload runtime after: {after.total_runtime_ms:.1f} ms (simulated)")
    improvement = 1.0 - after.total_runtime_ms / before.total_runtime_ms
    print(f"Improvement: {improvement:.1%}")


if __name__ == "__main__":
    main()
