"""Quickstart: connect a session, run SQL, and ask the advisor for a layout.

This example walks through the complete offline workflow of the paper using
the session API (``parse → bind → plan → execute``):

1. ``connect()`` a session and load a table,
2. run SQL — including a prepared statement and ``EXPLAIN``,
3. describe the (expected) workload,
4. calibrate the cost model against the running system,
5. ask the advisor for a recommendation, apply it, and verify that the
   workload indeed got faster (the plan cache invalidates automatically on
   the store move).

Run with::

    python examples/quickstart.py
"""

from repro import DataType, Store, TableSchema, connect
from repro.core import CostModelCalibrator
from repro.query import Workload, aggregate, eq, insert, select, update


def build_session():
    """A small sales table, initially kept in the row store."""
    schema = TableSchema.build(
        "sales",
        [
            ("id", DataType.INTEGER),
            ("region", DataType.VARCHAR),
            ("product", DataType.INTEGER),
            ("revenue", DataType.DOUBLE),
            ("quantity", DataType.INTEGER),
            ("status", DataType.VARCHAR),
        ],
        primary_key=["id"],
    )
    session = connect()
    session.create_table(schema, Store.ROW)
    rows = [
        {
            "id": i,
            "region": f"region_{i % 8}",
            "product": i % 200,
            "revenue": (i * 37 % 1000) / 10.0,
            "quantity": 1 + i % 10,
            "status": "open" if i % 3 else "shipped",
        }
        for i in range(30_000)
    ]
    session.load_rows("sales", rows)
    return session


def build_workload() -> Workload:
    """A mixed workload: mostly analytics with a few transactional queries."""
    queries = []
    for region_filter in range(20):
        queries.append(
            aggregate("sales")
            .sum("revenue")
            .avg("quantity")
            .group_by("region")
            .build()
        )
    for i in range(30):
        queries.append(select("sales").where(eq("id", i * 7)).build())
        queries.append(update("sales", {"status": "shipped"}, eq("id", i * 11)))
    queries.append(
        insert("sales", [{"id": 100_000, "region": "region_0", "product": 1,
                          "revenue": 10.0, "quantity": 2, "status": "open"}])
    )
    return Workload(queries, name="quickstart")


def main() -> None:
    session = build_session()

    # Plain SQL through the session pipeline.
    top = session.sql(
        "SELECT sum(revenue) AS total, count(*) FROM sales GROUP BY region"
    )
    print(f"{len(top.rows)} regions, first: {top.rows[0]}")

    # Prepared statement: parsed, bound and planned once.
    lookup = session.prepare("SELECT status FROM sales WHERE id = ?")
    print("status of #42:", lookup.execute([42]).rows[0]["status"])

    # EXPLAIN shows the physical plan with the cost model's estimate.
    print("\n" + session.explain("SELECT sum(revenue) FROM sales GROUP BY region"))

    workload = build_workload()
    print("\nCurrent layout:")
    print(session.describe())
    before = session.run_workload(workload)
    print(f"Workload runtime before: {before.total_runtime_ms:.1f} ms (simulated)")

    advisor = session.advisor()
    print("\nCalibrating the cost model (offline initialisation)...")
    report = advisor.initialize_cost_model(CostModelCalibrator(sizes=(1_000, 3_000)))
    print(f"  fitted from {report.num_samples} calibration samples")

    recommendation = session.recommend(workload)
    print("\n" + recommendation.describe())

    session.apply(recommendation)
    print("\nLayout after applying the recommendation:")
    print(session.describe())

    after = session.run_workload(workload)
    print(f"\nWorkload runtime after: {after.total_runtime_ms:.1f} ms (simulated)")
    improvement = 1.0 - after.total_runtime_ms / before.total_runtime_ms
    print(f"Improvement: {improvement:.1%}")

    stats = session.stats()
    print(
        f"\nSession stats: {stats.queries_executed} queries, plan cache "
        f"{stats.plan_cache_hits} hits / {stats.plan_cache_misses} misses "
        f"({stats.plan_cache_hit_rate:.0%}), estimate memo "
        f"{stats.estimate_memo_hits} hits"
    )


if __name__ == "__main__":
    main()
