"""Store-aware partitioning: hot rows and OLTP attributes move to the row store.

This example builds a wide table whose most recent 10 % of rows receive a
steady stream of status updates while older rows are only analysed.  The
partition advisor recommends

* a **horizontal** split that keeps the hot rows in the row store, and
* a **vertical** split that moves the frequently updated status attributes to
  the row store while keyfigures and group-by attributes stay columnar.

The example applies the recommendation and compares the workload runtime
against the unpartitioned row-store and column-store layouts (Fig. 8/9 style).

Run with::

    python examples/partitioning_advisor.py
"""

from repro import Session, Store, connect
from repro.core import CostModelCalibrator
from repro.workloads import (
    HotRegion,
    MixedWorkloadConfig,
    OltpMix,
    SyntheticTableConfig,
    build_mixed_workload,
    build_table,
)

NUM_ROWS = 15_000
NUM_QUERIES = 300
OLAP_FRACTION = 0.05
HOT_FRACTION = 0.10


def fresh_session(store: Store) -> Session:
    session = connect()
    build_table(SyntheticTableConfig(num_rows=NUM_ROWS)).load_into(
        session.database, store
    )
    return session


def main() -> None:
    table = build_table(SyntheticTableConfig(num_rows=NUM_ROWS))
    hot_low = int(NUM_ROWS * (1 - HOT_FRACTION))
    workload = build_mixed_workload(
        table.roles,
        MixedWorkloadConfig(
            num_queries=NUM_QUERIES,
            olap_fraction=OLAP_FRACTION,
            oltp_mix=OltpMix(point_select_fraction=0.2, update_fraction=0.6,
                             insert_fraction=0.2),
            hot_region=HotRegion(column="id", low=hot_low, high=NUM_ROWS - 1,
                                 span=NUM_ROWS // 200),
        ),
    )
    print(f"Workload: {workload.summary()}")

    baselines = {}
    for store in Store:
        baselines[store] = fresh_session(store).run_workload(workload).total_runtime_s
        print(f"  {store.value}-store only: {baselines[store]:.3f} s (simulated)")

    session = fresh_session(Store.COLUMN)
    advisor = session.advisor()
    advisor.initialize_cost_model(CostModelCalibrator(sizes=(1_000, 3_000)))
    recommendation = session.recommend(workload, include_partitioning=True)
    print("\n" + recommendation.describe())

    session.apply(recommendation)
    partitioned = session.run_workload(workload).total_runtime_s
    print(f"\n  partitioned layout: {partitioned:.3f} s (simulated)")
    best_baseline = min(baselines.values())
    print(f"  improvement over the best unpartitioned layout: "
          f"{1 - partitioned / best_baseline:.1%}")


if __name__ == "__main__":
    main()
