"""TPC-H scenario: compare storage layouts on a mixed enterprise workload.

A scaled-down version of the paper's final experiment (Figure 10): load the
TPC-H schema, run a mixed workload of ~1 % analytical queries and ~99 %
transactional queries, and compare four storage layouts:

* every table in the row store,
* every table in the column store,
* the advisor's table-level recommendation, and
* the advisor's recommendation including horizontal/vertical partitioning.

Run with::

    python examples/tpch_scenario.py
"""

import time

from repro import Session, StorageAdvisor, Store, connect
from repro.core import CostModelCalibrator
from repro.workloads.tpch import TpchGenerator, build_tpch_workload

SCALE_FACTOR = 0.003
NUM_QUERIES = 1_000
OLAP_FRACTION = 0.01


def fresh_session(data, store: Store) -> Session:
    session = connect()
    data.load_into(session.database, default_store=store)
    return session


def main() -> None:
    print(f"Generating TPC-H data at scale factor {SCALE_FACTOR} ...")
    data = TpchGenerator(scale_factor=SCALE_FACTOR).generate_all()
    for table in ("lineitem", "orders", "customer"):
        print(f"  {table}: {data.num_rows(table)} rows")
    workload = build_tpch_workload(
        data, num_queries=NUM_QUERIES, olap_fraction=OLAP_FRACTION
    )
    print(f"Workload: {workload.summary()}")

    advisor = StorageAdvisor()
    advisor.initialize_cost_model(CostModelCalibrator(sizes=(1_000, 3_000)))

    results = {}

    results["RS only"] = fresh_session(data, Store.ROW).run_workload(workload).total_runtime_s
    results["CS only"] = fresh_session(data, Store.COLUMN).run_workload(workload).total_runtime_s

    session = fresh_session(data, Store.ROW)
    table_level = advisor.recommend(session.database, workload,
                                    include_partitioning=False)
    advisor.apply(session.database, table_level)
    results["Table"] = session.run_workload(workload).total_runtime_s
    column_tables = [
        table for table, choice in table_level.layout.choices.items()
        if choice is Store.COLUMN
    ]
    print(f"\nTable-level recommendation: column store for {sorted(column_tables)}")

    session = fresh_session(data, Store.ROW)
    partitioned = advisor.recommend(session.database, workload,
                                    include_partitioning=True)
    advisor.apply(session.database, partitioned)
    results["Partitioned"] = session.run_workload(workload).total_runtime_s
    print(f"Partitioned tables: {sorted(partitioned.layout.partitioned_tables())}")

    print("\nSimulated workload runtimes:")
    for layout, runtime in results.items():
        print(f"  {layout:<12} {runtime:.3f} s")
    print(
        f"\nPartitioned vs Table: {1 - results['Partitioned'] / results['Table']:.1%} faster; "
        f"Partitioned vs CS only: {1 - results['Partitioned'] / results['CS only']:.1%} faster"
    )
    print(
        f"Cost-model estimate cache: {advisor.cost_model.cache_hit_rate:.0%} hit rate "
        f"({advisor.cost_model.cache_hits} hits / {advisor.cost_model.cache_misses} misses)"
    )


if __name__ == "__main__":
    started = time.perf_counter()
    main()
    # The simulated runtimes above are the cost model's output; this is the
    # actual wall-clock of the whole scenario on the vectorized batch pipeline.
    print(f"\nScenario wall-clock: {time.perf_counter() - started:.2f} s")
