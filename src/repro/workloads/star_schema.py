"""Star-schema scenario for the join experiments (Fig. 7(b)).

The paper uses "a typical star schema" with a 10-attribute fact table of 20 m
tuples and a 6-attribute dimension table of 1000 tuples; the OLAP queries
aggregate keyfigures of the fact table grouped by dimension attributes, while
the OLTP queries update and insert fact tuples.  This module builds a scaled
version of that scenario.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.config import DEFAULT_SEED
from repro.engine.database import HybridDatabase
from repro.engine.schema import TableSchema
from repro.engine.types import DataType, Store
from repro.query.ast import AggregationQuery, JoinClause, Query
from repro.query.workload import Workload
from repro.workloads.datagen import SyntheticTableConfig, TableRoles, build_table
from repro.workloads.mixed import MixedWorkloadConfig, _spread
from repro.workloads.olap import OlapGeneratorConfig, OlapQueryGenerator
from repro.workloads.oltp import OltpMix, OltpQueryGenerator


@dataclass
class StarSchemaConfig:
    """Shape of the star-schema scenario."""

    fact_rows: int = 50_000
    dimension_rows: int = 1_000
    fact_name: str = "fact"
    dimension_name: str = "dim"
    seed: int = DEFAULT_SEED


@dataclass
class StarSchema:
    """Generated fact and dimension tables plus their column roles."""

    config: StarSchemaConfig
    fact_schema: TableSchema
    dimension_schema: TableSchema
    fact_rows: List[Dict] = field(default_factory=list)
    dimension_rows: List[Dict] = field(default_factory=list)
    fact_roles: TableRoles = None  # type: ignore[assignment]
    dimension_group_attrs: Tuple[str, ...] = ()

    @property
    def join_clause(self) -> JoinClause:
        return JoinClause(
            table=self.config.dimension_name,
            left_column="dim_id",
            right_column="id",
        )

    def load_into(
        self,
        database: HybridDatabase,
        fact_store: Store = Store.COLUMN,
        dimension_store: Store = Store.ROW,
    ) -> None:
        """Create and load both tables (dimension in the row store by default,
        as the paper does based on its preceding measurements)."""
        database.create_table(self.fact_schema, fact_store)
        database.load_rows(self.config.fact_name, self.fact_rows)
        database.create_table(self.dimension_schema, dimension_store)
        database.load_rows(self.config.dimension_name, self.dimension_rows)


def build_star_schema(config: Optional[StarSchemaConfig] = None) -> StarSchema:
    """Generate the star schema: a 10-attribute fact and a 6-attribute dimension."""
    config = config or StarSchemaConfig()
    rng = random.Random(config.seed)

    # Fact table: id, foreign key, 4 keyfigures, 2 filters, 2 status attributes.
    fact_config = SyntheticTableConfig(
        name=config.fact_name,
        num_rows=0,  # rows are generated below so we can add the foreign key
        num_keyfigures=4,
        num_group_attrs=0,
        num_filter_attrs=2,
        num_oltp_attrs=2,
        seed=config.seed,
    )
    base = build_table(fact_config)
    fact_columns = [("id", DataType.INTEGER), ("dim_id", DataType.INTEGER)]
    fact_columns += [(name, DataType.DOUBLE) for name in base.roles.keyfigures]
    fact_columns += [(name, DataType.INTEGER) for name in base.roles.filter_attrs]
    fact_columns += [(name, DataType.VARCHAR) for name in base.roles.oltp_attrs]
    fact_schema = TableSchema.build(config.fact_name, fact_columns, primary_key=["id"])

    fact_rows = []
    for i in range(config.fact_rows):
        row: Dict = {"id": i, "dim_id": rng.randrange(config.dimension_rows)}
        for name in base.roles.keyfigures:
            row[name] = round(rng.random() * 1_000.0, 4)
        for name in base.roles.filter_attrs:
            row[name] = rng.randrange(fact_config.filter_cardinality)
        for name in base.roles.oltp_attrs:
            row[name] = f"s{rng.randrange(fact_config.oltp_cardinality)}"
        fact_rows.append(row)

    # The foreign key participates in range predicates and in newly inserted
    # rows, so it is treated as a filter attribute by the generators.
    fact_roles = TableRoles(
        table=config.fact_name,
        primary_key="id",
        keyfigures=base.roles.keyfigures,
        group_attrs=(),
        filter_attrs=("dim_id",) + base.roles.filter_attrs,
        oltp_attrs=base.roles.oltp_attrs,
        filter_cardinality=min(fact_config.filter_cardinality, config.dimension_rows),
        oltp_cardinality=fact_config.oltp_cardinality,
        num_rows=config.fact_rows,
        next_id=config.fact_rows,
    )

    # Dimension table: id plus 5 descriptive attributes (6 attributes total).
    dimension_group_attrs = ("region", "country", "category", "segment", "channel")
    dimension_schema = TableSchema.build(
        config.dimension_name,
        [("id", DataType.INTEGER)]
        + [(name, DataType.VARCHAR) for name in dimension_group_attrs],
        primary_key=["id"],
    )
    cardinalities = {"region": 8, "country": 40, "category": 15, "segment": 5, "channel": 3}
    dimension_rows = []
    for i in range(config.dimension_rows):
        row = {"id": i}
        for name in dimension_group_attrs:
            row[name] = f"{name}_{rng.randrange(cardinalities[name])}"
        dimension_rows.append(row)

    return StarSchema(
        config=config,
        fact_schema=fact_schema,
        dimension_schema=dimension_schema,
        fact_rows=fact_rows,
        dimension_rows=dimension_rows,
        fact_roles=fact_roles,
        dimension_group_attrs=dimension_group_attrs,
    )


def build_star_workload(
    star: StarSchema,
    num_queries: int = 500,
    olap_fraction: float = 0.05,
    seed: int = DEFAULT_SEED,
) -> Workload:
    """A mixed workload of join-OLAP queries and OLTP queries on the fact table.

    The OLAP queries aggregate fact keyfigures, join the dimension table and
    group by a dimension attribute; the OLTP queries insert into and update
    the fact table (as in the paper's join experiment).
    """
    dimension = star.config.dimension_name
    olap_generator = OlapQueryGenerator(
        star.fact_roles,
        OlapGeneratorConfig(group_by_probability=1.0, predicate_probability=0.2),
        seed=seed,
    )
    # The paper's join workload: "the OLTP part of the workload updated tuples
    # of the fact table and inserted new tuples into the fact table".
    oltp_generator = OltpQueryGenerator(
        star.fact_roles,
        mix=OltpMix(point_select_fraction=0.1, update_fraction=0.5, insert_fraction=0.4),
        seed=seed + 1,
    )
    num_olap = round(num_queries * olap_fraction)
    num_oltp = num_queries - num_olap
    olap_queries: List[Query] = olap_generator.generate(
        num_olap,
        joins=(star.join_clause,),
        dimension_group_by=[f"{dimension}.{name}" for name in star.dimension_group_attrs],
    )
    oltp_queries = oltp_generator.generate(num_oltp)
    queries = _spread(olap_queries, oltp_queries, seed=seed + 2)
    return Workload(
        queries, name=f"star(olap={olap_fraction:.4f}, n={num_queries})"
    )
