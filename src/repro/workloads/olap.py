"""OLAP query generation.

The paper's OLAP queries "aggregated different keyfigures using different
aggregation functions" and optionally grouped the data; for the join
experiments they additionally grouped by dimension attributes.  The generator
below produces exactly that family of queries from a table's column roles.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.config import DEFAULT_SEED
from repro.query.ast import (
    AggregateFunction,
    AggregateSpec,
    AggregationQuery,
    JoinClause,
)
from repro.query.predicates import Between, Predicate
from repro.query.workload import Workload
from repro.workloads.datagen import TableRoles

#: Aggregation functions used round-robin by the generator.
AGGREGATION_FUNCTIONS = (
    AggregateFunction.SUM,
    AggregateFunction.AVG,
    AggregateFunction.MIN,
    AggregateFunction.MAX,
)


@dataclass
class OlapGeneratorConfig:
    """Knobs of the OLAP query generator."""

    #: Number of aggregates per query (inclusive range, sampled uniformly).
    min_aggregates: int = 1
    max_aggregates: int = 3
    #: Probability that a query has a GROUP BY clause.
    group_by_probability: float = 0.7
    #: Probability that a query has a range predicate on a filter attribute.
    predicate_probability: float = 0.3
    #: Fraction of a filter attribute's domain covered by a range predicate.
    predicate_coverage: float = 0.2


class OlapQueryGenerator:
    """Generates aggregation queries over a synthetic table."""

    def __init__(
        self,
        roles: TableRoles,
        config: Optional[OlapGeneratorConfig] = None,
        seed: int = DEFAULT_SEED,
    ) -> None:
        self.roles = roles
        self.config = config or OlapGeneratorConfig()
        self.rng = random.Random(seed)

    # -- single queries ------------------------------------------------------------------

    def aggregation_query(
        self,
        num_aggregates: Optional[int] = None,
        group_by: Optional[bool] = None,
        with_predicate: Optional[bool] = None,
        joins: Sequence[JoinClause] = (),
        dimension_group_by: Sequence[str] = (),
    ) -> AggregationQuery:
        """Generate one aggregation query."""
        config = self.config
        if num_aggregates is None:
            num_aggregates = self.rng.randint(config.min_aggregates, config.max_aggregates)
        num_aggregates = max(1, min(num_aggregates, len(self.roles.keyfigures)))
        keyfigures = self.rng.sample(list(self.roles.keyfigures), num_aggregates)
        aggregates = tuple(
            AggregateSpec(AGGREGATION_FUNCTIONS[i % len(AGGREGATION_FUNCTIONS)], column)
            for i, column in enumerate(keyfigures)
        )

        group_columns: Tuple[str, ...] = ()
        use_group_by = (
            group_by
            if group_by is not None
            else (self.rng.random() < config.group_by_probability)
        )
        if use_group_by:
            candidates = list(dimension_group_by) or list(self.roles.group_attrs)
            if candidates:
                group_columns = (self.rng.choice(candidates),)

        predicate: Optional[Predicate] = None
        use_predicate = (
            with_predicate
            if with_predicate is not None
            else (self.rng.random() < config.predicate_probability)
        )
        if use_predicate and self.roles.filter_attrs:
            predicate = self._range_predicate()

        return AggregationQuery(
            table=self.roles.table,
            aggregates=aggregates,
            group_by=group_columns,
            predicate=predicate,
            joins=tuple(joins),
        )

    def _range_predicate(self) -> Predicate:
        column = self.rng.choice(list(self.roles.filter_attrs))
        domain = self.roles.filter_cardinality
        width = max(1, int(domain * self.config.predicate_coverage))
        low = self.rng.randrange(max(1, domain - width))
        return Between(column, low, low + width)

    # -- batches -------------------------------------------------------------------------------

    def generate(self, num_queries: int, **kwargs) -> List[AggregationQuery]:
        """Generate a list of aggregation queries."""
        return [self.aggregation_query(**kwargs) for _ in range(num_queries)]

    def workload(self, num_queries: int, name: str = "olap", **kwargs) -> Workload:
        """Generate a pure-OLAP workload."""
        return Workload(self.generate(num_queries, **kwargs), name=name)

    def recurring_report_workload(
        self,
        num_shapes: int = 3,
        repetitions: int = 5,
        name: str = "recurring-reports",
        **kwargs,
    ) -> Workload:
        """A dashboard-style workload: *num_shapes* distinct grouped
        aggregations, each recurring *repetitions* times round-robin.

        Every shape is join-free and literal (no placeholders), so each one
        is a materialized-view candidate: feed the workload to
        ``Session.recommend_views`` / the online monitor to exercise the
        advisor's recurring-shape detection.
        """
        kwargs.setdefault("group_by", True)
        kwargs.setdefault("with_predicate", False)
        shapes = self.generate(num_shapes, **kwargs)
        queries = [shapes[i % num_shapes] for i in range(num_shapes * repetitions)]
        return Workload(queries, name=name)
