"""OLTP query generation.

The paper's OLTP workloads are "a mix of insert and update queries" plus
transactional point queries.  The generator produces:

* point selects by primary key,
* updates of the OLTP (status-like) attributes, addressed either by primary
  key or — for the horizontal-partitioning scenarios — by a range predicate
  confined to a *hot region* of the table, and
* inserts of new tuples.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.config import DEFAULT_SEED
from repro.errors import WorkloadError
from repro.query.ast import InsertQuery, Query, SelectQuery, UpdateQuery
from repro.query.predicates import Between, eq
from repro.query.workload import Workload
from repro.workloads.datagen import TableRoles, new_row


@dataclass
class OltpMix:
    """Composition of an OLTP workload (fractions must sum to 1)."""

    point_select_fraction: float = 0.4
    update_fraction: float = 0.4
    insert_fraction: float = 0.2

    def __post_init__(self) -> None:
        total = (
            self.point_select_fraction + self.update_fraction + self.insert_fraction
        )
        if abs(total - 1.0) > 1e-9:
            raise WorkloadError(f"OLTP mix fractions must sum to 1 (got {total})")


@dataclass
class HotRegion:
    """A contiguous, frequently updated region of the table (by a column range)."""

    column: str
    low: float
    high: float
    #: Width of the per-query update range inside the region.
    span: float = 0.0


class OltpQueryGenerator:
    """Generates point selects, updates and inserts over a synthetic table."""

    def __init__(
        self,
        roles: TableRoles,
        mix: Optional[OltpMix] = None,
        hot_region: Optional[HotRegion] = None,
        seed: int = DEFAULT_SEED,
    ) -> None:
        self.roles = roles
        self.mix = mix or OltpMix()
        self.hot_region = hot_region
        self.rng = random.Random(seed)

    # -- single queries -------------------------------------------------------------------

    def point_select(self) -> SelectQuery:
        """A point query fetching a single tuple by primary key."""
        row_id = self.rng.randrange(max(1, self.roles.num_rows))
        columns: Tuple[str, ...] = ()
        if self.roles.oltp_attrs and self.rng.random() < 0.5:
            columns = (self.roles.primary_key,) + self.roles.oltp_attrs[:1]
        return SelectQuery(
            table=self.roles.table,
            columns=columns,
            predicate=eq(self.roles.primary_key, row_id),
        )

    def update(self) -> UpdateQuery:
        """An update of (one of) the OLTP attributes."""
        target_attrs = self.roles.oltp_attrs or self.roles.filter_attrs
        if not target_attrs:
            raise WorkloadError(
                f"table {self.roles.table!r} has no updatable OLTP attribute"
            )
        column = self.rng.choice(list(target_attrs))
        if column.startswith("status"):
            value = f"s{self.rng.randrange(self.roles.oltp_cardinality)}"
        else:
            value = self.rng.randrange(self.roles.filter_cardinality)
        if self.hot_region is not None:
            predicate = self._hot_region_predicate()
        else:
            row_id = self.rng.randrange(max(1, self.roles.num_rows))
            predicate = eq(self.roles.primary_key, row_id)
        return UpdateQuery(
            table=self.roles.table, assignments={column: value}, predicate=predicate
        )

    def _hot_region_predicate(self) -> Between:
        region = self.hot_region
        assert region is not None
        if region.span and region.span < (region.high - region.low):
            start = self.rng.uniform(region.low, region.high - region.span)
            return Between(region.column, int(start), int(start + region.span))
        return Between(region.column, region.low, region.high)

    def insert(self, rows_per_insert: int = 1) -> InsertQuery:
        """An insert of one (or a few) new tuples."""
        rows = [new_row(self.roles, self.rng) for _ in range(rows_per_insert)]
        return InsertQuery(table=self.roles.table, rows=tuple(rows))

    # -- batches -----------------------------------------------------------------------------

    def generate(self, num_queries: int) -> List[Query]:
        """Generate an OLTP query mix according to the configured fractions."""
        queries: List[Query] = []
        for _ in range(num_queries):
            dice = self.rng.random()
            if dice < self.mix.point_select_fraction:
                queries.append(self.point_select())
            elif dice < self.mix.point_select_fraction + self.mix.update_fraction:
                queries.append(self.update())
            else:
                queries.append(self.insert())
        return queries

    def workload(self, num_queries: int, name: str = "oltp") -> Workload:
        """Generate a pure-OLTP workload."""
        return Workload(self.generate(num_queries), name=name)
