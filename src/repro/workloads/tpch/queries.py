"""TPC-H-style query templates for the mixed workload of Fig. 10.

The paper's final experiment runs "a mixed workload of OLTP queries (inserts
and updates for all tables but nation and region) and OLAP queries
(aggregates with and without joins and groupings mainly on lineitem and
orders)".  The generators below produce exactly those query families against
the scaled TPC-H data.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.config import DEFAULT_SEED
from repro.query.ast import (
    AggregateFunction,
    AggregateSpec,
    AggregationQuery,
    InsertQuery,
    JoinClause,
    Query,
    SelectQuery,
    UpdateQuery,
)
from repro.query.predicates import Between, eq
from repro.workloads.tpch.datagen import (
    LINE_STATUSES,
    MARKET_SEGMENTS,
    MAX_ORDER_DATE_OFFSET,
    ORDER_PRIORITIES,
    ORDER_STATUSES,
    RETURN_FLAGS,
    SHIP_INSTRUCTIONS,
    SHIP_MODES,
    TpchData,
)

#: OLTP-updatable tables (all but nation and region, as the paper states).
OLTP_TABLES = ("supplier", "customer", "part", "partsupp", "orders", "lineitem")


class TpchOlapQueryGenerator:
    """Aggregation queries (with and without joins) mainly on lineitem and orders."""

    def __init__(self, data: TpchData, seed: int = DEFAULT_SEED) -> None:
        self.data = data
        self.rng = random.Random(seed)

    def pricing_summary(self) -> AggregationQuery:
        """Q1-like: aggregate lineitem measures grouped by return flag / status."""
        return AggregationQuery(
            table="lineitem",
            aggregates=(
                AggregateSpec(AggregateFunction.SUM, "l_quantity"),
                AggregateSpec(AggregateFunction.SUM, "l_extendedprice"),
                AggregateSpec(AggregateFunction.AVG, "l_discount"),
                AggregateSpec(AggregateFunction.COUNT, "*"),
            ),
            group_by=("l_returnflag", "l_linestatus"),
            predicate=Between("l_shipdate", 0, self.rng.randrange(
                MAX_ORDER_DATE_OFFSET // 2, MAX_ORDER_DATE_OFFSET)),
        )

    def revenue_forecast(self) -> AggregationQuery:
        """Q6-like: revenue over a shipping-date window, no grouping."""
        start = self.rng.randrange(MAX_ORDER_DATE_OFFSET - 400)
        return AggregationQuery(
            table="lineitem",
            aggregates=(
                AggregateSpec(AggregateFunction.SUM, "l_extendedprice"),
                AggregateSpec(AggregateFunction.AVG, "l_quantity"),
            ),
            predicate=Between("l_shipdate", start, start + 365),
        )

    def order_priority_overview(self) -> AggregationQuery:
        """Orders aggregate grouped by priority (no join)."""
        return AggregationQuery(
            table="orders",
            aggregates=(
                AggregateSpec(AggregateFunction.SUM, "o_totalprice"),
                AggregateSpec(AggregateFunction.COUNT, "*"),
            ),
            group_by=("o_orderpriority",),
        )

    def lineitem_order_join(self) -> AggregationQuery:
        """Join lineitem with orders, grouped by order priority."""
        return AggregationQuery(
            table="lineitem",
            aggregates=(
                AggregateSpec(AggregateFunction.SUM, "l_extendedprice"),
                AggregateSpec(AggregateFunction.AVG, "l_discount"),
            ),
            group_by=("orders.o_orderpriority",),
            joins=(JoinClause("orders", "l_orderkey", "o_orderkey"),),
            predicate=Between("l_shipdate", 0, MAX_ORDER_DATE_OFFSET // 2),
        )

    def orders_customer_join(self) -> AggregationQuery:
        """Join orders with customer, grouped by market segment."""
        return AggregationQuery(
            table="orders",
            aggregates=(
                AggregateSpec(AggregateFunction.SUM, "o_totalprice"),
                AggregateSpec(AggregateFunction.COUNT, "*"),
            ),
            group_by=("customer.c_mktsegment",),
            joins=(JoinClause("customer", "o_custkey", "c_custkey"),),
        )

    def part_inventory(self) -> AggregationQuery:
        """Partsupp availability aggregate (touches a mid-size table)."""
        return AggregationQuery(
            table="partsupp",
            aggregates=(
                AggregateSpec(AggregateFunction.SUM, "ps_availqty"),
                AggregateSpec(AggregateFunction.AVG, "ps_supplycost"),
            ),
        )

    def random_query(self) -> AggregationQuery:
        """Draw one OLAP query; lineitem/orders queries dominate, as in the paper."""
        choices = (
            (self.pricing_summary, 0.30),
            (self.revenue_forecast, 0.25),
            (self.lineitem_order_join, 0.20),
            (self.order_priority_overview, 0.10),
            (self.orders_customer_join, 0.10),
            (self.part_inventory, 0.05),
        )
        dice = self.rng.random()
        cumulative = 0.0
        for generator, weight in choices:
            cumulative += weight
            if dice <= cumulative:
                return generator()
        return self.pricing_summary()

    def generate(self, num_queries: int) -> List[AggregationQuery]:
        return [self.random_query() for _ in range(num_queries)]


class TpchOltpQueryGenerator:
    """Inserts and updates for all tables but nation and region, plus point reads."""

    def __init__(self, data: TpchData, seed: int = DEFAULT_SEED) -> None:
        self.data = data
        self.rng = random.Random(seed)
        self._next_keys: Dict[str, int] = {
            table: data.num_rows(table) for table in OLTP_TABLES
        }

    #: Update/insert traffic concentrates on the large transactional tables,
    #: mirroring the volume ratios of the TPC-H schema.
    UPDATE_TABLE_WEIGHTS = (
        ("lineitem", 0.35),
        ("orders", 0.25),
        ("customer", 0.12),
        ("partsupp", 0.12),
        ("part", 0.08),
        ("supplier", 0.08),
    )

    # -- updates ---------------------------------------------------------------------

    def update_query(self, table: Optional[str] = None) -> UpdateQuery:
        table = table or self._weighted_table()
        builder = getattr(self, f"_update_{table}")
        return builder()

    def _weighted_table(self) -> str:
        dice = self.rng.random()
        cumulative = 0.0
        for table, weight in self.UPDATE_TABLE_WEIGHTS:
            cumulative += weight
            if dice <= cumulative:
                return table
        return "lineitem"

    def _random_key(self, table: str) -> int:
        return self.rng.randrange(max(1, self.data.num_rows(table)))

    def _update_supplier(self) -> UpdateQuery:
        return UpdateQuery(
            "supplier",
            {"s_acctbal": round(self.rng.uniform(-999.99, 9999.99), 2)},
            eq("s_suppkey", self._random_key("supplier")),
        )

    def _update_customer(self) -> UpdateQuery:
        return UpdateQuery(
            "customer",
            {"c_acctbal": round(self.rng.uniform(-999.99, 9999.99), 2)},
            eq("c_custkey", self._random_key("customer")),
        )

    def _update_part(self) -> UpdateQuery:
        return UpdateQuery(
            "part",
            {"p_retailprice": round(self.rng.uniform(900.0, 2000.0), 2)},
            eq("p_partkey", self._random_key("part")),
        )

    def _update_partsupp(self) -> UpdateQuery:
        return UpdateQuery(
            "partsupp",
            {"ps_availqty": self.rng.randrange(1, 10_000)},
            eq("ps_id", self._random_key("partsupp")),
        )

    def _update_orders(self) -> UpdateQuery:
        return UpdateQuery(
            "orders",
            {"o_orderstatus": self.rng.choice(ORDER_STATUSES)},
            eq("o_orderkey", self._random_key("orders")),
        )

    def _update_lineitem(self) -> UpdateQuery:
        # Shipping-related attributes are the transactional ones; the
        # analytical attributes (return flag, line status, quantities) are
        # what the OLAP queries aggregate and group by.
        return UpdateQuery(
            "lineitem",
            {"l_shipmode": self.rng.choice(SHIP_MODES),
             "l_shipinstruct": self.rng.choice(SHIP_INSTRUCTIONS)},
            eq("l_id", self._random_key("lineitem")),
        )

    # -- point reads -----------------------------------------------------------------------

    def point_select(self) -> SelectQuery:
        table = self.rng.choice(("orders", "lineitem", "customer"))
        key_column = {"orders": "o_orderkey", "lineitem": "l_id", "customer": "c_custkey"}[table]
        return SelectQuery(
            table=table, predicate=eq(key_column, self._random_key(table))
        )

    # -- inserts ----------------------------------------------------------------------------

    def insert_query(self, table: Optional[str] = None) -> InsertQuery:
        if table is None:
            dice = self.rng.random()
            if dice < 0.45:
                table = "lineitem"
            elif dice < 0.75:
                table = "orders"
            elif dice < 0.90:
                table = "customer"
            else:
                table = "partsupp"
        builder = getattr(self, f"_insert_{table}", None)
        if builder is None:
            table = "orders"
            builder = self._insert_orders
        return builder()

    def _next_key(self, table: str) -> int:
        key = self._next_keys[table]
        self._next_keys[table] = key + 1
        return key

    def _insert_orders(self) -> InsertQuery:
        key = self._next_key("orders")
        return InsertQuery("orders", ({
            "o_orderkey": 10_000_000 + key,
            "o_custkey": self._random_key("customer"),
            "o_orderstatus": "O",
            "o_totalprice": round(self.rng.uniform(900.0, 450_000.0), 2),
            "o_orderdate": MAX_ORDER_DATE_OFFSET,
            "o_orderpriority": self.rng.choice(ORDER_PRIORITIES),
            "o_clerk": f"Clerk#{self.rng.randrange(1000):09d}",
            "o_shippriority": 0,
            "o_comment": "new order",
        },))

    def _insert_lineitem(self) -> InsertQuery:
        key = self._next_key("lineitem")
        return InsertQuery("lineitem", ({
            "l_id": 10_000_000 + key,
            "l_orderkey": self._random_key("orders"),
            "l_partkey": self._random_key("part"),
            "l_suppkey": self._random_key("supplier"),
            "l_linenumber": 1,
            "l_quantity": float(self.rng.randrange(1, 51)),
            "l_extendedprice": round(self.rng.uniform(900.0, 105_000.0), 2),
            "l_discount": 0.05,
            "l_tax": 0.02,
            "l_returnflag": "N",
            "l_linestatus": "O",
            "l_shipdate": MAX_ORDER_DATE_OFFSET,
            "l_commitdate": MAX_ORDER_DATE_OFFSET + 14,
            "l_receiptdate": MAX_ORDER_DATE_OFFSET + 21,
            "l_shipinstruct": self.rng.choice(SHIP_INSTRUCTIONS),
            "l_shipmode": self.rng.choice(SHIP_MODES),
        },))

    def _insert_customer(self) -> InsertQuery:
        key = self._next_key("customer")
        return InsertQuery("customer", ({
            "c_custkey": 10_000_000 + key,
            "c_name": f"Customer#{key:09d}",
            "c_address": "new address",
            "c_nationkey": self.rng.randrange(25),
            "c_phone": "00-000-0000",
            "c_acctbal": 0.0,
            "c_mktsegment": self.rng.choice(MARKET_SEGMENTS),
            "c_comment": "new customer",
        },))

    def _insert_partsupp(self) -> InsertQuery:
        key = self._next_key("partsupp")
        return InsertQuery("partsupp", ({
            "ps_id": 10_000_000 + key,
            "ps_partkey": self._random_key("part"),
            "ps_suppkey": self._random_key("supplier"),
            "ps_availqty": self.rng.randrange(1, 10_000),
            "ps_supplycost": round(self.rng.uniform(1.0, 1000.0), 2),
            "ps_comment": "new partsupp",
        },))

    # -- mix ---------------------------------------------------------------------------------

    def random_query(self) -> Query:
        """OLTP mix: ~40 % updates, ~35 % inserts, ~25 % point reads."""
        dice = self.rng.random()
        if dice < 0.40:
            return self.update_query()
        if dice < 0.75:
            return self.insert_query()
        return self.point_select()

    def generate(self, num_queries: int) -> List[Query]:
        return [self.random_query() for _ in range(num_queries)]
