"""TPC-H table schemas.

The final experiment of the paper (Fig. 10) uses the TPC-H schema with a
mixed workload.  The eight tables are reproduced here with their standard
columns; decimals are represented by the engine's ``DECIMAL`` type and
variable-length strings by ``VARCHAR``.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.engine.schema import TableSchema
from repro.engine.types import DataType

#: Order in which tables must be generated/loaded (respects foreign keys).
TPCH_TABLE_ORDER: Tuple[str, ...] = (
    "region",
    "nation",
    "supplier",
    "customer",
    "part",
    "partsupp",
    "orders",
    "lineitem",
)


def tpch_schemas() -> Dict[str, TableSchema]:
    """Return the eight TPC-H table schemas keyed by table name."""
    return {
        "region": TableSchema.build(
            "region",
            [
                ("r_regionkey", DataType.INTEGER),
                ("r_name", DataType.VARCHAR),
                ("r_comment", DataType.VARCHAR),
            ],
            primary_key=["r_regionkey"],
        ),
        "nation": TableSchema.build(
            "nation",
            [
                ("n_nationkey", DataType.INTEGER),
                ("n_name", DataType.VARCHAR),
                ("n_regionkey", DataType.INTEGER),
                ("n_comment", DataType.VARCHAR),
            ],
            primary_key=["n_nationkey"],
        ),
        "supplier": TableSchema.build(
            "supplier",
            [
                ("s_suppkey", DataType.INTEGER),
                ("s_name", DataType.VARCHAR),
                ("s_address", DataType.VARCHAR),
                ("s_nationkey", DataType.INTEGER),
                ("s_phone", DataType.VARCHAR),
                ("s_acctbal", DataType.DECIMAL),
                ("s_comment", DataType.VARCHAR),
            ],
            primary_key=["s_suppkey"],
        ),
        "customer": TableSchema.build(
            "customer",
            [
                ("c_custkey", DataType.INTEGER),
                ("c_name", DataType.VARCHAR),
                ("c_address", DataType.VARCHAR),
                ("c_nationkey", DataType.INTEGER),
                ("c_phone", DataType.VARCHAR),
                ("c_acctbal", DataType.DECIMAL),
                ("c_mktsegment", DataType.VARCHAR),
                ("c_comment", DataType.VARCHAR),
            ],
            primary_key=["c_custkey"],
        ),
        "part": TableSchema.build(
            "part",
            [
                ("p_partkey", DataType.INTEGER),
                ("p_name", DataType.VARCHAR),
                ("p_mfgr", DataType.VARCHAR),
                ("p_brand", DataType.VARCHAR),
                ("p_type", DataType.VARCHAR),
                ("p_size", DataType.INTEGER),
                ("p_container", DataType.VARCHAR),
                ("p_retailprice", DataType.DECIMAL),
                ("p_comment", DataType.VARCHAR),
            ],
            primary_key=["p_partkey"],
        ),
        "partsupp": TableSchema.build(
            "partsupp",
            [
                ("ps_id", DataType.INTEGER),
                ("ps_partkey", DataType.INTEGER),
                ("ps_suppkey", DataType.INTEGER),
                ("ps_availqty", DataType.INTEGER),
                ("ps_supplycost", DataType.DECIMAL),
                ("ps_comment", DataType.VARCHAR),
            ],
            primary_key=["ps_id"],
        ),
        "orders": TableSchema.build(
            "orders",
            [
                ("o_orderkey", DataType.INTEGER),
                ("o_custkey", DataType.INTEGER),
                ("o_orderstatus", DataType.VARCHAR),
                ("o_totalprice", DataType.DECIMAL),
                ("o_orderdate", DataType.INTEGER),
                ("o_orderpriority", DataType.VARCHAR),
                ("o_clerk", DataType.VARCHAR),
                ("o_shippriority", DataType.INTEGER),
                ("o_comment", DataType.VARCHAR),
            ],
            primary_key=["o_orderkey"],
        ),
        "lineitem": TableSchema.build(
            "lineitem",
            [
                ("l_id", DataType.INTEGER),
                ("l_orderkey", DataType.INTEGER),
                ("l_partkey", DataType.INTEGER),
                ("l_suppkey", DataType.INTEGER),
                ("l_linenumber", DataType.INTEGER),
                ("l_quantity", DataType.DECIMAL),
                ("l_extendedprice", DataType.DECIMAL),
                ("l_discount", DataType.DECIMAL),
                ("l_tax", DataType.DECIMAL),
                ("l_returnflag", DataType.VARCHAR),
                ("l_linestatus", DataType.VARCHAR),
                ("l_shipdate", DataType.INTEGER),
                ("l_commitdate", DataType.INTEGER),
                ("l_receiptdate", DataType.INTEGER),
                ("l_shipinstruct", DataType.VARCHAR),
                ("l_shipmode", DataType.VARCHAR),
            ],
            primary_key=["l_id"],
        ),
    }


#: Cardinalities at scale factor 1.0, per the TPC-H specification.
BASE_CARDINALITIES: Dict[str, int] = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
    "lineitem": 6_000_000,
}

#: Tables whose cardinality does not scale with the scale factor.
FIXED_SIZE_TABLES = frozenset({"region", "nation"})


def scaled_cardinality(table: str, scale_factor: float) -> int:
    """Row count of *table* at the given scale factor."""
    base = BASE_CARDINALITIES[table]
    if table in FIXED_SIZE_TABLES:
        return base
    return max(1, int(round(base * scale_factor)))
