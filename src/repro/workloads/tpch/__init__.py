"""Scaled-down TPC-H substrate: schemas, data generator and mixed workload."""

from repro.workloads.tpch.datagen import TpchData, TpchGenerator
from repro.workloads.tpch.queries import (
    OLTP_TABLES,
    TpchOlapQueryGenerator,
    TpchOltpQueryGenerator,
)
from repro.workloads.tpch.schema import (
    BASE_CARDINALITIES,
    TPCH_TABLE_ORDER,
    scaled_cardinality,
    tpch_schemas,
)
from repro.workloads.tpch.workload import build_tpch_workload

__all__ = [
    "BASE_CARDINALITIES",
    "OLTP_TABLES",
    "TPCH_TABLE_ORDER",
    "TpchData",
    "TpchGenerator",
    "TpchOlapQueryGenerator",
    "TpchOltpQueryGenerator",
    "build_tpch_workload",
    "scaled_cardinality",
    "tpch_schemas",
]
