"""Mixed TPC-H workload assembly (the workload of Fig. 10)."""

from __future__ import annotations

from typing import Optional

from repro.config import DEFAULT_SEED
from repro.query.workload import Workload
from repro.workloads.mixed import _spread
from repro.workloads.tpch.datagen import TpchData
from repro.workloads.tpch.queries import TpchOlapQueryGenerator, TpchOltpQueryGenerator


def build_tpch_workload(
    data: TpchData,
    num_queries: int = 5_000,
    olap_fraction: float = 0.01,
    seed: int = DEFAULT_SEED,
) -> Workload:
    """Build the paper's mixed TPC-H workload.

    ``num_queries`` and ``olap_fraction`` default to the values of the final
    experiment (5000 queries, about 1 % OLAP queries).
    """
    olap_generator = TpchOlapQueryGenerator(data, seed=seed)
    oltp_generator = TpchOltpQueryGenerator(data, seed=seed + 1)
    num_olap = round(num_queries * olap_fraction)
    num_oltp = num_queries - num_olap
    olap_queries = olap_generator.generate(num_olap)
    oltp_queries = oltp_generator.generate(num_oltp)
    queries = _spread(olap_queries, oltp_queries, seed=seed + 2)
    return Workload(
        queries, name=f"tpch(olap={olap_fraction:.4f}, n={num_queries})"
    )
