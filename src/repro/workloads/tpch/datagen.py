"""Deterministic, scaled-down TPC-H data generator.

The paper loads TPC-H at scale factor 1 (≈ 6 m lineitem rows).  Running a
pure-Python engine at that volume would be needlessly slow, so the generator
takes a configurable scale factor and produces proportionally smaller tables
while keeping the schema, the key relationships and the value distributions
that matter for the experiment (dates, flags, segments, prices).  The default
scale factor used by the benchmarks is 0.01.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.config import DEFAULT_SEED
from repro.engine.database import HybridDatabase
from repro.engine.types import Store
from repro.workloads.tpch.schema import (
    TPCH_TABLE_ORDER,
    scaled_cardinality,
    tpch_schemas,
)

REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")
NATIONS = (
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
    "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
    "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA",
    "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
)
MARKET_SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY")
ORDER_PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW")
ORDER_STATUSES = ("F", "O", "P")
RETURN_FLAGS = ("A", "N", "R")
LINE_STATUSES = ("F", "O")
SHIP_MODES = ("AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK")
SHIP_INSTRUCTIONS = ("COLLECT COD", "DELIVER IN PERSON", "NONE", "TAKE BACK RETURN")
CONTAINERS = ("JUMBO BOX", "LG CASE", "MED BAG", "SM PKG", "WRAP JAR")
PART_TYPES = ("ANODIZED BRASS", "BURNISHED COPPER", "ECONOMY STEEL", "PLATED TIN",
              "POLISHED NICKEL", "PROMO BRUSHED STEEL", "STANDARD COPPER")
#: Order dates span 1992-01-01 .. 1998-08-02 in the specification; we use day
#: offsets from 1992-01-01 (stored as integers for cheap range predicates).
MAX_ORDER_DATE_OFFSET = 2_400


@dataclass
class TpchData:
    """Generated TPC-H tables (row dicts per table)."""

    scale_factor: float
    tables: Dict[str, List[Dict]] = field(default_factory=dict)

    def num_rows(self, table: str) -> int:
        return len(self.tables.get(table, []))

    def load_into(
        self,
        database: HybridDatabase,
        stores: Optional[Mapping[str, Store]] = None,
        default_store: Store = Store.ROW,
    ) -> None:
        """Create and bulk load every table into *database*."""
        schemas = tpch_schemas()
        stores = stores or {}
        for name in TPCH_TABLE_ORDER:
            database.create_table(schemas[name], stores.get(name, default_store))
            database.load_rows(name, self.tables[name])


class TpchGenerator:
    """Deterministic generator of scaled-down TPC-H data."""

    def __init__(self, scale_factor: float = 0.01, seed: int = DEFAULT_SEED) -> None:
        self.scale_factor = scale_factor
        self.seed = seed

    def cardinality(self, table: str) -> int:
        return scaled_cardinality(table, self.scale_factor)

    # -- per-table generators --------------------------------------------------------

    def generate_region(self) -> List[Dict]:
        return [
            {"r_regionkey": i, "r_name": name, "r_comment": f"region {name.lower()}"}
            for i, name in enumerate(REGIONS)
        ]

    def generate_nation(self) -> List[Dict]:
        rng = random.Random(self.seed + 1)
        return [
            {
                "n_nationkey": i,
                "n_name": name,
                "n_regionkey": rng.randrange(len(REGIONS)),
                "n_comment": f"nation {name.lower()}",
            }
            for i, name in enumerate(NATIONS)
        ]

    def generate_supplier(self) -> List[Dict]:
        rng = random.Random(self.seed + 2)
        count = self.cardinality("supplier")
        return [
            {
                "s_suppkey": i,
                "s_name": f"Supplier#{i:09d}",
                "s_address": f"address {i}",
                "s_nationkey": rng.randrange(len(NATIONS)),
                "s_phone": f"{rng.randrange(10, 35)}-{rng.randrange(100, 999)}-{rng.randrange(1000, 9999)}",
                "s_acctbal": round(rng.uniform(-999.99, 9999.99), 2),
                "s_comment": f"supplier comment {i % 50}",
            }
            for i in range(count)
        ]

    def generate_customer(self) -> List[Dict]:
        rng = random.Random(self.seed + 3)
        count = self.cardinality("customer")
        return [
            {
                "c_custkey": i,
                "c_name": f"Customer#{i:09d}",
                "c_address": f"address {i}",
                "c_nationkey": rng.randrange(len(NATIONS)),
                "c_phone": f"{rng.randrange(10, 35)}-{rng.randrange(100, 999)}-{rng.randrange(1000, 9999)}",
                "c_acctbal": round(rng.uniform(-999.99, 9999.99), 2),
                "c_mktsegment": rng.choice(MARKET_SEGMENTS),
                "c_comment": f"customer comment {i % 50}",
            }
            for i in range(count)
        ]

    def generate_part(self) -> List[Dict]:
        rng = random.Random(self.seed + 4)
        count = self.cardinality("part")
        return [
            {
                "p_partkey": i,
                "p_name": f"part {i % 500}",
                "p_mfgr": f"Manufacturer#{1 + i % 5}",
                "p_brand": f"Brand#{1 + i % 25}",
                "p_type": rng.choice(PART_TYPES),
                "p_size": rng.randrange(1, 51),
                "p_container": rng.choice(CONTAINERS),
                "p_retailprice": round(900.0 + (i % 1000) + rng.random(), 2),
                "p_comment": f"part comment {i % 40}",
            }
            for i in range(count)
        ]

    def generate_partsupp(self) -> List[Dict]:
        rng = random.Random(self.seed + 5)
        count = self.cardinality("partsupp")
        num_parts = max(1, self.cardinality("part"))
        num_suppliers = max(1, self.cardinality("supplier"))
        return [
            {
                "ps_id": i,
                "ps_partkey": i % num_parts,
                "ps_suppkey": (i * 7) % num_suppliers,
                "ps_availqty": rng.randrange(1, 10_000),
                "ps_supplycost": round(rng.uniform(1.0, 1000.0), 2),
                "ps_comment": f"partsupp comment {i % 30}",
            }
            for i in range(count)
        ]

    def generate_orders(self) -> List[Dict]:
        rng = random.Random(self.seed + 6)
        count = self.cardinality("orders")
        num_customers = max(1, self.cardinality("customer"))
        return [
            {
                "o_orderkey": i,
                "o_custkey": rng.randrange(num_customers),
                "o_orderstatus": rng.choice(ORDER_STATUSES),
                "o_totalprice": round(rng.uniform(900.0, 450_000.0), 2),
                "o_orderdate": rng.randrange(MAX_ORDER_DATE_OFFSET),
                "o_orderpriority": rng.choice(ORDER_PRIORITIES),
                "o_clerk": f"Clerk#{rng.randrange(1000):09d}",
                "o_shippriority": 0,
                "o_comment": f"order comment {i % 60}",
            }
            for i in range(count)
        ]

    def generate_lineitem(self) -> List[Dict]:
        rng = random.Random(self.seed + 7)
        count = self.cardinality("lineitem")
        num_orders = max(1, self.cardinality("orders"))
        num_parts = max(1, self.cardinality("part"))
        num_suppliers = max(1, self.cardinality("supplier"))
        rows = []
        for i in range(count):
            orderkey = rng.randrange(num_orders)
            ship_offset = rng.randrange(1, 122)
            shipdate = min(MAX_ORDER_DATE_OFFSET + 60, rng.randrange(MAX_ORDER_DATE_OFFSET) + ship_offset)
            rows.append(
                {
                    "l_id": i,
                    "l_orderkey": orderkey,
                    "l_partkey": rng.randrange(num_parts),
                    "l_suppkey": rng.randrange(num_suppliers),
                    "l_linenumber": 1 + i % 7,
                    "l_quantity": float(rng.randrange(1, 51)),
                    "l_extendedprice": round(rng.uniform(900.0, 105_000.0), 2),
                    "l_discount": round(rng.randrange(0, 11) / 100.0, 2),
                    "l_tax": round(rng.randrange(0, 9) / 100.0, 2),
                    "l_returnflag": rng.choice(RETURN_FLAGS),
                    "l_linestatus": rng.choice(LINE_STATUSES),
                    "l_shipdate": shipdate,
                    "l_commitdate": shipdate + rng.randrange(1, 31),
                    "l_receiptdate": shipdate + rng.randrange(1, 31),
                    "l_shipinstruct": rng.choice(SHIP_INSTRUCTIONS),
                    "l_shipmode": rng.choice(SHIP_MODES),
                }
            )
        return rows

    # -- whole database -------------------------------------------------------------------

    def generate_all(self) -> TpchData:
        """Generate every table."""
        generators = {
            "region": self.generate_region,
            "nation": self.generate_nation,
            "supplier": self.generate_supplier,
            "customer": self.generate_customer,
            "part": self.generate_part,
            "partsupp": self.generate_partsupp,
            "orders": self.generate_orders,
            "lineitem": self.generate_lineitem,
        }
        data = TpchData(scale_factor=self.scale_factor)
        for name in TPCH_TABLE_ORDER:
            data.tables[name] = generators[name]()
        return data
