"""Deterministic, scaled-down TPC-H data generator.

The paper loads TPC-H at scale factor 1 (≈ 6 m lineitem rows).  Running a
pure-Python engine at that volume would be needlessly slow, so the generator
takes a configurable scale factor and produces proportionally smaller tables
while keeping the schema, the key relationships and the value distributions
that matter for the experiment (dates, flags, segments, prices).  The default
scale factor used by the benchmarks is 0.01.

Columns are generated as whole numpy arrays (one ``numpy.random.Generator``
draw per column) and only zipped into row dicts at the end — the per-row
``random.Random`` loops this replaces dominated experiment start-up.  Output
stays deterministic per seed, but the sample stream differs from the old
per-row generator, so figure baselines sensitive to the exact data were
re-validated against the new stream (see ``benchmarks/test_fig10_tpch.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.config import DEFAULT_SEED
from repro.engine.database import HybridDatabase
from repro.engine.types import Store
from repro.workloads.tpch.schema import (
    TPCH_TABLE_ORDER,
    scaled_cardinality,
    tpch_schemas,
)

REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")
NATIONS = (
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
    "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
    "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA",
    "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
)
MARKET_SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY")
ORDER_PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW")
ORDER_STATUSES = ("F", "O", "P")
RETURN_FLAGS = ("A", "N", "R")
LINE_STATUSES = ("F", "O")
SHIP_MODES = ("AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK")
SHIP_INSTRUCTIONS = ("COLLECT COD", "DELIVER IN PERSON", "NONE", "TAKE BACK RETURN")
CONTAINERS = ("JUMBO BOX", "LG CASE", "MED BAG", "SM PKG", "WRAP JAR")
PART_TYPES = ("ANODIZED BRASS", "BURNISHED COPPER", "ECONOMY STEEL", "PLATED TIN",
              "POLISHED NICKEL", "PROMO BRUSHED STEEL", "STANDARD COPPER")
#: Order dates span 1992-01-01 .. 1998-08-02 in the specification; we use day
#: offsets from 1992-01-01 (stored as integers for cheap range predicates).
MAX_ORDER_DATE_OFFSET = 2_400


@dataclass
class TpchData:
    """Generated TPC-H tables (row dicts per table)."""

    scale_factor: float
    tables: Dict[str, List[Dict]] = field(default_factory=dict)

    def num_rows(self, table: str) -> int:
        return len(self.tables.get(table, []))

    def load_into(
        self,
        database: HybridDatabase,
        stores: Optional[Mapping[str, Store]] = None,
        default_store: Store = Store.ROW,
    ) -> None:
        """Create and bulk load every table into *database*."""
        schemas = tpch_schemas()
        stores = stores or {}
        for name in TPCH_TABLE_ORDER:
            database.create_table(schemas[name], stores.get(name, default_store))
            database.load_rows(name, self.tables[name])


def _rows_from_columns(names: Sequence[str], columns: Sequence[list]) -> List[Dict]:
    """Zip aligned column lists into row dicts (the generator's output shape)."""
    return [dict(zip(names, values)) for values in zip(*columns)]


def _choices(rng: np.random.Generator, options: Sequence[str], count: int) -> List[str]:
    """*count* uniform picks from *options* as a Python string list."""
    return [options[i] for i in rng.integers(0, len(options), count).tolist()]


def _money(rng: np.random.Generator, low: float, high: float, count: int) -> List[float]:
    """*count* uniform amounts in ``[low, high)``, rounded to cents."""
    return np.round(rng.uniform(low, high, count), 2).tolist()


class TpchGenerator:
    """Deterministic generator of scaled-down TPC-H data.

    Each table draws from its own seeded ``numpy.random.Generator`` stream
    (seed + table offset, as the per-row generator did), so tables stay
    independently reproducible; every random column is one vectorized draw.
    """

    def __init__(self, scale_factor: float = 0.01, seed: int = DEFAULT_SEED) -> None:
        self.scale_factor = scale_factor
        self.seed = seed

    def cardinality(self, table: str) -> int:
        return scaled_cardinality(table, self.scale_factor)

    def _rng(self, stream: int) -> np.random.Generator:
        return np.random.default_rng(self.seed + stream)

    # -- per-table generators --------------------------------------------------------

    def generate_region(self) -> List[Dict]:
        return [
            {"r_regionkey": i, "r_name": name, "r_comment": f"region {name.lower()}"}
            for i, name in enumerate(REGIONS)
        ]

    def generate_nation(self) -> List[Dict]:
        rng = self._rng(1)
        region_keys = rng.integers(0, len(REGIONS), len(NATIONS)).tolist()
        return [
            {
                "n_nationkey": i,
                "n_name": name,
                "n_regionkey": region_keys[i],
                "n_comment": f"nation {name.lower()}",
            }
            for i, name in enumerate(NATIONS)
        ]

    def _phones(self, rng: np.random.Generator, count: int) -> List[str]:
        area = rng.integers(10, 35, count).tolist()
        prefix = rng.integers(100, 999, count).tolist()
        line = rng.integers(1000, 9999, count).tolist()
        return [f"{a}-{p}-{l}" for a, p, l in zip(area, prefix, line)]

    def generate_supplier(self) -> List[Dict]:
        rng = self._rng(2)
        count = self.cardinality("supplier")
        keys = range(count)
        return _rows_from_columns(
            ("s_suppkey", "s_name", "s_address", "s_nationkey", "s_phone",
             "s_acctbal", "s_comment"),
            [
                list(keys),
                [f"Supplier#{i:09d}" for i in keys],
                [f"address {i}" for i in keys],
                rng.integers(0, len(NATIONS), count).tolist(),
                self._phones(rng, count),
                _money(rng, -999.99, 9999.99, count),
                [f"supplier comment {i % 50}" for i in keys],
            ],
        )

    def generate_customer(self) -> List[Dict]:
        rng = self._rng(3)
        count = self.cardinality("customer")
        keys = range(count)
        return _rows_from_columns(
            ("c_custkey", "c_name", "c_address", "c_nationkey", "c_phone",
             "c_acctbal", "c_mktsegment", "c_comment"),
            [
                list(keys),
                [f"Customer#{i:09d}" for i in keys],
                [f"address {i}" for i in keys],
                rng.integers(0, len(NATIONS), count).tolist(),
                self._phones(rng, count),
                _money(rng, -999.99, 9999.99, count),
                _choices(rng, MARKET_SEGMENTS, count),
                [f"customer comment {i % 50}" for i in keys],
            ],
        )

    def generate_part(self) -> List[Dict]:
        rng = self._rng(4)
        count = self.cardinality("part")
        keys = range(count)
        fraction = rng.random(count)
        prices = np.round(
            900.0 + np.arange(count, dtype=np.float64) % 1000 + fraction, 2
        ).tolist()
        return _rows_from_columns(
            ("p_partkey", "p_name", "p_mfgr", "p_brand", "p_type", "p_size",
             "p_container", "p_retailprice", "p_comment"),
            [
                list(keys),
                [f"part {i % 500}" for i in keys],
                [f"Manufacturer#{1 + i % 5}" for i in keys],
                [f"Brand#{1 + i % 25}" for i in keys],
                _choices(rng, PART_TYPES, count),
                rng.integers(1, 51, count).tolist(),
                _choices(rng, CONTAINERS, count),
                prices,
                [f"part comment {i % 40}" for i in keys],
            ],
        )

    def generate_partsupp(self) -> List[Dict]:
        rng = self._rng(5)
        count = self.cardinality("partsupp")
        num_parts = max(1, self.cardinality("part"))
        num_suppliers = max(1, self.cardinality("supplier"))
        keys = range(count)
        return _rows_from_columns(
            ("ps_id", "ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost",
             "ps_comment"),
            [
                list(keys),
                [i % num_parts for i in keys],
                [(i * 7) % num_suppliers for i in keys],
                rng.integers(1, 10_000, count).tolist(),
                _money(rng, 1.0, 1000.0, count),
                [f"partsupp comment {i % 30}" for i in keys],
            ],
        )

    def generate_orders(self) -> List[Dict]:
        rng = self._rng(6)
        count = self.cardinality("orders")
        num_customers = max(1, self.cardinality("customer"))
        keys = range(count)
        clerks = rng.integers(0, 1000, count).tolist()
        return _rows_from_columns(
            ("o_orderkey", "o_custkey", "o_orderstatus", "o_totalprice",
             "o_orderdate", "o_orderpriority", "o_clerk", "o_shippriority",
             "o_comment"),
            [
                list(keys),
                rng.integers(0, num_customers, count).tolist(),
                _choices(rng, ORDER_STATUSES, count),
                _money(rng, 900.0, 450_000.0, count),
                rng.integers(0, MAX_ORDER_DATE_OFFSET, count).tolist(),
                _choices(rng, ORDER_PRIORITIES, count),
                [f"Clerk#{clerk:09d}" for clerk in clerks],
                [0] * count,
                [f"order comment {i % 60}" for i in keys],
            ],
        )

    def generate_lineitem(self) -> List[Dict]:
        rng = self._rng(7)
        count = self.cardinality("lineitem")
        num_orders = max(1, self.cardinality("orders"))
        num_parts = max(1, self.cardinality("part"))
        num_suppliers = max(1, self.cardinality("supplier"))
        keys = range(count)
        ship_offsets = rng.integers(1, 122, count)
        ship_dates = np.minimum(
            MAX_ORDER_DATE_OFFSET + 60,
            rng.integers(0, MAX_ORDER_DATE_OFFSET, count) + ship_offsets,
        )
        commit_dates = (ship_dates + rng.integers(1, 31, count)).tolist()
        receipt_dates = (ship_dates + rng.integers(1, 31, count)).tolist()
        return _rows_from_columns(
            ("l_id", "l_orderkey", "l_partkey", "l_suppkey", "l_linenumber",
             "l_quantity", "l_extendedprice", "l_discount", "l_tax",
             "l_returnflag", "l_linestatus", "l_shipdate", "l_commitdate",
             "l_receiptdate", "l_shipinstruct", "l_shipmode"),
            [
                list(keys),
                rng.integers(0, num_orders, count).tolist(),
                rng.integers(0, num_parts, count).tolist(),
                rng.integers(0, num_suppliers, count).tolist(),
                [1 + i % 7 for i in keys],
                rng.integers(1, 51, count).astype(np.float64).tolist(),
                _money(rng, 900.0, 105_000.0, count),
                np.round(rng.integers(0, 11, count) / 100.0, 2).tolist(),
                np.round(rng.integers(0, 9, count) / 100.0, 2).tolist(),
                _choices(rng, RETURN_FLAGS, count),
                _choices(rng, LINE_STATUSES, count),
                ship_dates.tolist(),
                commit_dates,
                receipt_dates,
                _choices(rng, SHIP_INSTRUCTIONS, count),
                _choices(rng, SHIP_MODES, count),
            ],
        )

    # -- whole database -------------------------------------------------------------------

    def generate_all(self) -> TpchData:
        """Generate every table."""
        generators = {
            "region": self.generate_region,
            "nation": self.generate_nation,
            "supplier": self.generate_supplier,
            "customer": self.generate_customer,
            "part": self.generate_part,
            "partsupp": self.generate_partsupp,
            "orders": self.generate_orders,
            "lineitem": self.generate_lineitem,
        }
        data = TpchData(scale_factor=self.scale_factor)
        for name in TPCH_TABLE_ORDER:
            data.tables[name] = generators[name]()
        return data
