"""Mixed OLAP/OLTP workload assembly.

The paper's recommendation experiments vary "the ratio of OLAP and OLTP
queries in the workload" (Figures 7-9).  :func:`build_mixed_workload`
assembles such a workload from the OLAP and OLTP generators, spreading the
OLAP queries evenly over the run so that the mix is stationary.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.config import DEFAULT_SEED
from repro.errors import WorkloadError
from repro.query.ast import Query
from repro.query.workload import Workload
from repro.workloads.datagen import TableRoles
from repro.workloads.olap import OlapGeneratorConfig, OlapQueryGenerator
from repro.workloads.oltp import HotRegion, OltpMix, OltpQueryGenerator


@dataclass
class MixedWorkloadConfig:
    """Description of a mixed workload."""

    num_queries: int = 500
    olap_fraction: float = 0.05
    oltp_mix: OltpMix = None  # type: ignore[assignment]
    olap_config: OlapGeneratorConfig = None  # type: ignore[assignment]
    hot_region: Optional[HotRegion] = None
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        if not 0.0 <= self.olap_fraction <= 1.0:
            raise WorkloadError("olap_fraction must be within [0, 1]")
        if self.num_queries < 0:
            raise WorkloadError("num_queries must be non-negative")
        if self.oltp_mix is None:
            self.oltp_mix = OltpMix()
        if self.olap_config is None:
            self.olap_config = OlapGeneratorConfig()


def build_mixed_workload(
    roles: TableRoles, config: Optional[MixedWorkloadConfig] = None
) -> Workload:
    """Build a mixed workload over a single synthetic table."""
    config = config or MixedWorkloadConfig()
    olap_generator = OlapQueryGenerator(roles, config.olap_config, seed=config.seed)
    oltp_generator = OltpQueryGenerator(
        roles, mix=config.oltp_mix, hot_region=config.hot_region, seed=config.seed + 1
    )

    num_olap = round(config.num_queries * config.olap_fraction)
    num_oltp = config.num_queries - num_olap
    olap_queries = olap_generator.generate(num_olap)
    oltp_queries = oltp_generator.generate(num_oltp)
    queries = _spread(olap_queries, oltp_queries, seed=config.seed + 2)
    name = f"mixed(olap={config.olap_fraction:.4f}, n={config.num_queries})"
    return Workload(queries, name=name)


def _spread(olap_queries: List[Query], oltp_queries: List[Query], seed: int) -> List[Query]:
    """Spread the OLAP queries evenly across the OLTP stream."""
    if not olap_queries:
        return list(oltp_queries)
    if not oltp_queries:
        return list(olap_queries)
    rng = random.Random(seed)
    result: List[Query] = list(oltp_queries)
    positions = sorted(
        rng.sample(range(len(result) + len(olap_queries)), len(olap_queries))
    )
    for offset, (position, query) in enumerate(zip(positions, olap_queries)):
        result.insert(min(position, len(result)), query)
    return result


def olap_fraction_sweep(
    roles: TableRoles,
    fractions,
    num_queries: int = 500,
    seed: int = DEFAULT_SEED,
    hot_region: Optional[HotRegion] = None,
    olap_config: Optional[OlapGeneratorConfig] = None,
) -> List[Workload]:
    """Build one mixed workload per OLAP fraction (the Fig. 7/9 sweeps)."""
    workloads = []
    for index, fraction in enumerate(fractions):
        config = MixedWorkloadConfig(
            num_queries=num_queries,
            olap_fraction=fraction,
            seed=seed + index,
            hot_region=hot_region,
            olap_config=olap_config or OlapGeneratorConfig(),
        )
        workloads.append(build_mixed_workload(roles, config))
    return workloads
