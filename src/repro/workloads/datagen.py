"""Synthetic data generation for the paper's evaluation scenarios.

The paper's micro-benchmarks use "carefully generated" tables consisting of an
ID column plus keyfigures (aggregated measures), group-by attributes, filter
attributes and a few frequently modified OLTP attributes (Section 5.1/5.2:
"the table consisted of 30 attributes (ID and several keyfigures, filter
attributes, and group-by attributes)").  :class:`SyntheticTableConfig`
describes such a table; :class:`SyntheticTable` carries the generated rows
together with the *roles* of the columns, which the workload generators use to
build realistic OLAP and OLTP queries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import DEFAULT_SEED
from repro.engine.database import HybridDatabase
from repro.engine.schema import TableSchema
from repro.engine.types import DataType, Store
from repro.errors import WorkloadError


@dataclass(frozen=True)
class SyntheticTableConfig:
    """Shape of a synthetic evaluation table."""

    name: str = "facts"
    num_rows: int = 100_000
    num_keyfigures: int = 10
    num_group_attrs: int = 9
    num_filter_attrs: int = 8
    num_oltp_attrs: int = 2
    #: Distinct values per group-by attribute (small, as typical for dimensions).
    group_cardinality: int = 25
    #: Distinct values per filter attribute.
    filter_cardinality: int = 1_000
    #: Distinct values per OLTP (status-like) attribute.
    oltp_cardinality: int = 6
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        if self.num_rows < 0:
            raise WorkloadError("num_rows must be non-negative")
        if self.num_keyfigures < 1:
            raise WorkloadError("a synthetic table needs at least one keyfigure")

    @property
    def num_attributes(self) -> int:
        """Total number of attributes including the ID column."""
        return (
            1
            + self.num_keyfigures
            + self.num_group_attrs
            + self.num_filter_attrs
            + self.num_oltp_attrs
        )


@dataclass
class TableRoles:
    """Column roles of a synthetic table, used by the query generators."""

    table: str
    primary_key: str
    keyfigures: Tuple[str, ...]
    group_attrs: Tuple[str, ...]
    filter_attrs: Tuple[str, ...]
    oltp_attrs: Tuple[str, ...]
    filter_cardinality: int
    oltp_cardinality: int
    num_rows: int
    next_id: int


@dataclass
class SyntheticTable:
    """A generated table: schema, rows and column roles."""

    config: SyntheticTableConfig
    schema: TableSchema
    rows: List[Dict] = field(default_factory=list)
    roles: TableRoles = None  # type: ignore[assignment]

    def load_into(self, database: HybridDatabase, store: Store = Store.COLUMN) -> None:
        """Create the table in *database* (in *store*) and bulk load the rows."""
        database.create_table(self.schema, store)
        database.load_rows(self.schema.name, self.rows)


def build_schema(config: SyntheticTableConfig) -> Tuple[TableSchema, TableRoles]:
    """Build the schema and the column-role description for *config*."""
    columns: List[Tuple[str, DataType]] = [("id", DataType.INTEGER)]
    keyfigures = tuple(f"kf_{i}" for i in range(config.num_keyfigures))
    group_attrs = tuple(f"grp_{i}" for i in range(config.num_group_attrs))
    filter_attrs = tuple(f"flt_{i}" for i in range(config.num_filter_attrs))
    oltp_attrs = tuple(f"status_{i}" for i in range(config.num_oltp_attrs))
    columns.extend((name, DataType.DOUBLE) for name in keyfigures)
    columns.extend((name, DataType.VARCHAR) for name in group_attrs)
    columns.extend((name, DataType.INTEGER) for name in filter_attrs)
    columns.extend((name, DataType.VARCHAR) for name in oltp_attrs)
    schema = TableSchema.build(config.name, columns, primary_key=["id"])
    roles = TableRoles(
        table=config.name,
        primary_key="id",
        keyfigures=keyfigures,
        group_attrs=group_attrs,
        filter_attrs=filter_attrs,
        oltp_attrs=oltp_attrs,
        filter_cardinality=config.filter_cardinality,
        oltp_cardinality=config.oltp_cardinality,
        num_rows=config.num_rows,
        next_id=config.num_rows,
    )
    return schema, roles


def generate_rows(config: SyntheticTableConfig) -> List[Dict]:
    """Deterministically generate the rows of a synthetic table."""
    rng = random.Random(config.seed)
    schema, roles = build_schema(config)
    rows: List[Dict] = []
    for i in range(config.num_rows):
        row: Dict = {"id": i}
        for name in roles.keyfigures:
            row[name] = round(rng.random() * 10_000.0, 4)
        for position, name in enumerate(roles.group_attrs):
            cardinality = max(2, config.group_cardinality - position)
            row[name] = f"{name}_v{rng.randrange(cardinality)}"
        for name in roles.filter_attrs:
            row[name] = rng.randrange(config.filter_cardinality)
        for name in roles.oltp_attrs:
            row[name] = f"s{rng.randrange(config.oltp_cardinality)}"
        rows.append(row)
    return rows


def build_table(config: Optional[SyntheticTableConfig] = None) -> SyntheticTable:
    """Build a complete synthetic table (schema, roles and rows)."""
    config = config or SyntheticTableConfig()
    schema, roles = build_schema(config)
    rows = generate_rows(config)
    return SyntheticTable(config=config, schema=schema, rows=rows, roles=roles)


def new_row(roles: TableRoles, rng: random.Random, row_id: Optional[int] = None) -> Dict:
    """Generate a new (insertable) row consistent with the table's roles."""
    if row_id is None:
        row_id = roles.next_id
        roles.next_id += 1
    row: Dict = {"id": row_id}
    for name in roles.keyfigures:
        row[name] = round(rng.random() * 10_000.0, 4)
    for name in roles.group_attrs:
        row[name] = f"{name}_v{rng.randrange(8)}"
    for name in roles.filter_attrs:
        row[name] = rng.randrange(roles.filter_cardinality)
    for name in roles.oltp_attrs:
        row[name] = f"s{rng.randrange(roles.oltp_cardinality)}"
    return row


def paper_accuracy_table(num_rows: int, seed: int = DEFAULT_SEED) -> SyntheticTable:
    """The 30-attribute table of the estimation-accuracy experiments (Fig. 6)."""
    config = SyntheticTableConfig(
        name="facts",
        num_rows=num_rows,
        num_keyfigures=10,
        num_group_attrs=9,
        num_filter_attrs=8,
        num_oltp_attrs=2,
        seed=seed,
    )
    return build_table(config)


def olap_setting_table(num_rows: int, seed: int = DEFAULT_SEED) -> SyntheticTable:
    """The OLAP-shaped table of Fig. 9(a): 10 keyfigures, 8 group-bys, 2 OLTP attributes."""
    config = SyntheticTableConfig(
        name="olap_setting",
        num_rows=num_rows,
        num_keyfigures=10,
        num_group_attrs=8,
        num_filter_attrs=0,
        num_oltp_attrs=2,
        seed=seed,
    )
    return build_table(config)


def oltp_setting_table(num_rows: int, seed: int = DEFAULT_SEED) -> SyntheticTable:
    """The OLTP-shaped table of Fig. 9(b): 18 OLTP attributes, 1 keyfigure, 1 group-by."""
    config = SyntheticTableConfig(
        name="oltp_setting",
        num_rows=num_rows,
        num_keyfigures=1,
        num_group_attrs=1,
        num_filter_attrs=0,
        num_oltp_attrs=18,
        seed=seed,
    )
    return build_table(config)
