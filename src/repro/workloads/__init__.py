"""Workload and data generators for the paper's evaluation scenarios."""

from repro.workloads.datagen import (
    SyntheticTable,
    SyntheticTableConfig,
    TableRoles,
    build_table,
    olap_setting_table,
    oltp_setting_table,
    paper_accuracy_table,
)
from repro.workloads.mixed import MixedWorkloadConfig, build_mixed_workload, olap_fraction_sweep
from repro.workloads.olap import OlapGeneratorConfig, OlapQueryGenerator
from repro.workloads.oltp import HotRegion, OltpMix, OltpQueryGenerator
from repro.workloads.star_schema import (
    StarSchema,
    StarSchemaConfig,
    build_star_schema,
    build_star_workload,
)

__all__ = [
    "HotRegion",
    "MixedWorkloadConfig",
    "OlapGeneratorConfig",
    "OlapQueryGenerator",
    "OltpMix",
    "OltpQueryGenerator",
    "StarSchema",
    "StarSchemaConfig",
    "SyntheticTable",
    "SyntheticTableConfig",
    "TableRoles",
    "build_mixed_workload",
    "build_star_schema",
    "build_star_workload",
    "build_table",
    "olap_fraction_sweep",
    "olap_setting_table",
    "oltp_setting_table",
    "paper_accuracy_table",
]
