"""Content fingerprints of queries (and their building blocks).

The session layer's plan cache and the cost model's estimate memo are keyed
by *content*, not object identity: two structurally identical queries — e.g.
the same SQL text parsed twice, or a prepared statement re-bound with new
parameters — must share cache entries, while any semantic difference (another
literal, another operator, another column) must produce a different key.

:func:`query_fingerprint` serialises a query into a canonical token string
and hashes it (BLAKE2b, 64-bit hex digest).  The digest is cached on the
query object itself (queries are frozen dataclasses, so their content cannot
change after construction), making repeated fingerprinting O(1) — important
for the advisor's enumeration loops, which estimate the same query object
under thousands of store assignments.
"""

from __future__ import annotations

import hashlib
from typing import Any, List

from repro.query.ast import (
    AggregationQuery,
    DeleteQuery,
    InsertQuery,
    Parameter,
    Query,
    SelectQuery,
    UpdateQuery,
)
from repro.query.predicates import (
    And,
    Between,
    Comparison,
    InList,
    IsNull,
    Not,
    Or,
    Predicate,
    TruePredicate,
)

__all__ = ["query_fingerprint", "fingerprint_tokens"]

_CACHE_ATTR = "_content_fingerprint"


def query_fingerprint(query: Query) -> str:
    """Stable content fingerprint of *query* (16 hex characters).

    Structurally equal queries — including separately parsed copies of the
    same statement — get equal fingerprints; any difference in tables,
    columns, operators, literals or placeholders changes the digest.
    """
    cached = getattr(query, _CACHE_ATTR, None)
    if cached is not None:
        return cached
    tokens: List[str] = []
    _serialize(query, tokens)
    digest = hashlib.blake2b("\x1f".join(tokens).encode("utf-8"),
                             digest_size=8).hexdigest()
    try:
        object.__setattr__(query, _CACHE_ATTR, digest)
    except (AttributeError, TypeError):  # pragma: no cover - slotted objects
        pass
    return digest


def fingerprint_tokens(value: Any) -> str:
    """Canonical token string of any fingerprintable value (for debugging)."""
    tokens: List[str] = []
    _serialize(value, tokens)
    return "\x1f".join(tokens)


def _serialize(value: Any, out: List[str]) -> None:
    if isinstance(value, AggregationQuery):
        out.append("agg")
        out.append(value.table)
        for spec in value.aggregates:
            out.append(f"f:{spec.function.value}:{spec.column}:{spec.alias or ''}")
        out.append("g:" + ",".join(value.group_by))
        for join in value.joins:
            out.append(f"j:{join.table}:{join.left_column}:{join.right_column}")
        _serialize(value.predicate, out)
        return
    if isinstance(value, SelectQuery):
        out.append("sel")
        out.append(value.table)
        out.append("c:" + ",".join(value.columns))
        out.append(f"l:{value.limit}")
        _serialize(value.predicate, out)
        return
    if isinstance(value, InsertQuery):
        out.append("ins")
        out.append(value.table)
        for row in value.rows:
            out.append("r{")
            for name in sorted(row):
                out.append(name)
                _literal(row[name], out)
            out.append("}")
        return
    if isinstance(value, UpdateQuery):
        out.append("upd")
        out.append(value.table)
        for name in sorted(value.assignments):
            out.append(name)
            _literal(value.assignments[name], out)
        _serialize(value.predicate, out)
        return
    if isinstance(value, DeleteQuery):
        out.append("del")
        out.append(value.table)
        _serialize(value.predicate, out)
        return
    _predicate(value, out)


def _predicate(predicate: Any, out: List[str]) -> None:
    if predicate is None:
        out.append("p:none")
        return
    if isinstance(predicate, TruePredicate):
        out.append("p:true")
        return
    if isinstance(predicate, Comparison):
        out.append(f"p:cmp:{predicate.column}:{predicate.op.value}")
        _literal(predicate.value, out)
        return
    if isinstance(predicate, Between):
        out.append(
            f"p:btw:{predicate.column}:{int(predicate.include_low)}"
            f"{int(predicate.include_high)}"
        )
        _literal(predicate.low, out)
        _literal(predicate.high, out)
        return
    if isinstance(predicate, InList):
        out.append(f"p:in:{predicate.column}")
        for item in predicate.values:
            _literal(item, out)
        return
    if isinstance(predicate, IsNull):
        out.append(f"p:null:{predicate.column}")
        return
    if isinstance(predicate, And):
        out.append(f"p:and:{len(predicate.predicates)}")
        for child in predicate.predicates:
            _predicate(child, out)
        return
    if isinstance(predicate, Or):
        out.append(f"p:or:{len(predicate.predicates)}")
        for child in predicate.predicates:
            _predicate(child, out)
        return
    if isinstance(predicate, Not):
        out.append("p:not")
        _predicate(predicate.predicate, out)
        return
    if isinstance(predicate, Predicate):  # pragma: no cover - future predicates
        out.append(f"p:other:{predicate!r}")
        return
    _literal(predicate, out)


def _literal(value: Any, out: List[str]) -> None:
    if isinstance(value, Parameter):
        out.append(f"v:param:{value.label}:{value.index}")
        return
    # Type name + repr keeps 1, 1.0, True and "1" distinct.
    out.append(f"v:{type(value).__name__}:{value!r}")
