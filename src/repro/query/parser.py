"""A small SQL-ish parser for the examples and interactive use.

The parser covers the statement shapes the storage advisor reasons about —
aggregation queries (with GROUP BY and equi-joins), point/range selects,
INSERT, UPDATE and DELETE — and produces the same query objects as the
builders in :mod:`repro.query.builder`.  It is intentionally small: quoted
strings, numbers, ``AND``-connected comparisons and ``BETWEEN`` are supported;
anything fancier should be built with the builder API directly.
"""

from __future__ import annotations

import re
from typing import Any, List, Optional, Tuple

from repro.errors import ParseError
from repro.query.ast import (
    AggregateFunction,
    AggregateSpec,
    AggregationQuery,
    DeleteQuery,
    InsertQuery,
    JoinClause,
    Query,
    SelectQuery,
    UpdateQuery,
)
from repro.query.predicates import And, Between, CompareOp, Comparison, Predicate

_AGG_FUNCTIONS = {f.value: f for f in AggregateFunction}

_SELECT_RE = re.compile(
    r"^select\s+(?P<projection>.+?)\s+from\s+(?P<table>\w+)"
    r"(?P<joins>(\s+join\s+\w+\s+on\s+[\w.]+\s*=\s*[\w.]+)*)"
    r"(?:\s+where\s+(?P<where>.+?))?"
    r"(?:\s+group\s+by\s+(?P<group>.+?))?"
    r"(?:\s+limit\s+(?P<limit>\d+))?\s*;?\s*$",
    re.IGNORECASE | re.DOTALL,
)
_JOIN_RE = re.compile(
    r"join\s+(?P<table>\w+)\s+on\s+(?P<left>[\w.]+)\s*=\s*(?P<right>[\w.]+)",
    re.IGNORECASE,
)
_INSERT_RE = re.compile(
    r"^insert\s+into\s+(?P<table>\w+)\s*\((?P<columns>[^)]*)\)\s*"
    r"values\s*\((?P<values>.*)\)\s*;?\s*$",
    re.IGNORECASE | re.DOTALL,
)
_UPDATE_RE = re.compile(
    r"^update\s+(?P<table>\w+)\s+set\s+(?P<assignments>.+?)"
    r"(?:\s+where\s+(?P<where>.+?))?\s*;?\s*$",
    re.IGNORECASE | re.DOTALL,
)
_DELETE_RE = re.compile(
    r"^delete\s+from\s+(?P<table>\w+)(?:\s+where\s+(?P<where>.+?))?\s*;?\s*$",
    re.IGNORECASE | re.DOTALL,
)
_AGGREGATE_ITEM_RE = re.compile(
    r"^(?P<function>\w+)\s*\(\s*(?P<column>[\w.*]+)\s*\)(?:\s+as\s+(?P<alias>\w+))?$",
    re.IGNORECASE,
)
_COMPARISON_RE = re.compile(
    r"^(?P<column>[\w.]+)\s*(?P<op>>=|<=|!=|<>|=|<|>)\s*(?P<value>.+)$",
    re.DOTALL,
)
_BETWEEN_RE = re.compile(
    r"^(?P<column>[\w.]+)\s+between\s+(?P<low>.+?)\s+and\s+(?P<high>.+)$",
    re.IGNORECASE | re.DOTALL,
)

_OPS = {
    "=": CompareOp.EQ,
    "!=": CompareOp.NE,
    "<>": CompareOp.NE,
    "<": CompareOp.LT,
    "<=": CompareOp.LE,
    ">": CompareOp.GT,
    ">=": CompareOp.GE,
}


def parse(statement: str) -> Query:
    """Parse a single SQL-ish statement into a query object."""
    text = statement.strip()
    if not text:
        raise ParseError("empty statement")
    keyword = text.split(None, 1)[0].lower()
    if keyword == "select":
        return _parse_select(text)
    if keyword == "insert":
        return _parse_insert(text)
    if keyword == "update":
        return _parse_update(text)
    if keyword == "delete":
        return _parse_delete(text)
    raise ParseError(f"unsupported statement: {statement!r}")


# -- helpers --------------------------------------------------------------------------


def _parse_select(text: str) -> Query:
    match = _SELECT_RE.match(text)
    if not match:
        raise ParseError(f"could not parse SELECT statement: {text!r}")
    table = match.group("table")
    projection = match.group("projection").strip()
    predicate = _parse_predicate(match.group("where"))
    joins = tuple(
        JoinClause(m.group("table"), _strip_qualifier(m.group("left"), table),
                   _strip_qualifier(m.group("right"), m.group("table")))
        for m in _JOIN_RE.finditer(match.group("joins") or "")
    )
    group_by = tuple(
        part.strip() for part in (match.group("group") or "").split(",") if part.strip()
    )
    limit = int(match.group("limit")) if match.group("limit") else None

    items = [item.strip() for item in projection.split(",") if item.strip()]
    aggregates = []
    plain_columns = []
    for item in items:
        aggregate_match = _AGGREGATE_ITEM_RE.match(item)
        if aggregate_match and aggregate_match.group("function").lower() in _AGG_FUNCTIONS:
            aggregates.append(
                AggregateSpec(
                    _AGG_FUNCTIONS[aggregate_match.group("function").lower()],
                    aggregate_match.group("column"),
                    aggregate_match.group("alias"),
                )
            )
        elif item == "*":
            plain_columns = []
        else:
            plain_columns.append(item)
    if aggregates:
        return AggregationQuery(
            table=table,
            aggregates=tuple(aggregates),
            group_by=group_by,
            predicate=predicate,
            joins=joins,
        )
    if joins or group_by:
        raise ParseError("JOIN/GROUP BY is only supported for aggregation queries")
    return SelectQuery(table=table, columns=tuple(plain_columns), predicate=predicate,
                       limit=limit)


def _parse_insert(text: str) -> InsertQuery:
    match = _INSERT_RE.match(text)
    if not match:
        raise ParseError(f"could not parse INSERT statement: {text!r}")
    columns = [name.strip() for name in match.group("columns").split(",") if name.strip()]
    values = _split_values(match.group("values"))
    if len(columns) != len(values):
        raise ParseError("INSERT column list and VALUES list differ in length")
    row = {name: _parse_literal(value) for name, value in zip(columns, values)}
    return InsertQuery(table=match.group("table"), rows=(row,))


def _parse_update(text: str) -> UpdateQuery:
    match = _UPDATE_RE.match(text)
    if not match:
        raise ParseError(f"could not parse UPDATE statement: {text!r}")
    assignments = {}
    for part in _split_values(match.group("assignments")):
        if "=" not in part:
            raise ParseError(f"bad assignment in UPDATE: {part!r}")
        column, value = part.split("=", 1)
        assignments[column.strip()] = _parse_literal(value.strip())
    return UpdateQuery(
        table=match.group("table"),
        assignments=assignments,
        predicate=_parse_predicate(match.group("where")),
    )


def _parse_delete(text: str) -> DeleteQuery:
    match = _DELETE_RE.match(text)
    if not match:
        raise ParseError(f"could not parse DELETE statement: {text!r}")
    return DeleteQuery(table=match.group("table"),
                       predicate=_parse_predicate(match.group("where")))


def _parse_predicate(text: Optional[str]) -> Optional[Predicate]:
    if text is None or not text.strip():
        return None
    raw_parts = re.split(r"\s+and\s+", text.strip(), flags=re.IGNORECASE)
    # Re-join the AND that belongs to a BETWEEN ... AND ... expression.
    parts: List[str] = []
    index = 0
    while index < len(raw_parts):
        part = raw_parts[index]
        if re.search(r"\bbetween\b", part, re.IGNORECASE) and index + 1 < len(raw_parts):
            part = f"{part} AND {raw_parts[index + 1]}"
            index += 1
        parts.append(part)
        index += 1
    predicates = [_parse_single_predicate(part.strip()) for part in parts]
    if len(predicates) == 1:
        return predicates[0]
    return And(tuple(predicates))


def _parse_single_predicate(text: str) -> Predicate:
    between_match = _BETWEEN_RE.match(text)
    if between_match:
        return Between(
            between_match.group("column"),
            _parse_literal(between_match.group("low").strip()),
            _parse_literal(between_match.group("high").strip()),
        )
    comparison_match = _COMPARISON_RE.match(text)
    if comparison_match:
        return Comparison(
            comparison_match.group("column"),
            _OPS[comparison_match.group("op")],
            _parse_literal(comparison_match.group("value").strip()),
        )
    raise ParseError(f"could not parse predicate: {text!r}")


def _parse_literal(token: str) -> Any:
    token = token.strip()
    if not token:
        raise ParseError("empty literal")
    if (token[0] == token[-1]) and token[0] in ("'", '"') and len(token) >= 2:
        return token[1:-1]
    lowered = token.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered == "null":
        return None
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    return token


def _split_values(text: str) -> List[str]:
    """Split a comma-separated list, respecting single/double quotes."""
    parts: List[str] = []
    current = []
    quote: Optional[str] = None
    for char in text:
        if quote:
            current.append(char)
            if char == quote:
                quote = None
        elif char in ("'", '"'):
            quote = char
            current.append(char)
        elif char == ",":
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    if current:
        parts.append("".join(current).strip())
    return [part for part in parts if part]


def _strip_qualifier(name: str, table: str) -> str:
    if "." in name:
        qualifier, column = name.split(".", 1)
        if qualifier == table:
            return column
    return name
