"""A small SQL-ish parser for the examples and interactive use.

The parser covers the statement shapes the storage advisor reasons about —
aggregation queries (with GROUP BY and equi-joins), point/range selects,
INSERT, UPDATE and DELETE — and produces the same query objects as the
builders in :mod:`repro.query.builder`.  It is intentionally small: quoted
strings, numbers, ``AND``-connected comparisons and ``BETWEEN`` are supported;
anything fancier should be built with the builder API directly.

Two session-layer features surface here:

* **placeholders** — ``?`` (positional, numbered left to right) and ``:name``
  (named) parse into :class:`~repro.query.ast.Parameter` markers wherever a
  literal may appear; the session's bind step substitutes the actual values
  (see :mod:`repro.api.binder`), and
* **positioned errors** — :class:`~repro.errors.ParseError` carries the
  1-based line/column of the offending token whenever the parser can locate
  it (malformed predicates, dangling ``AND``, bad literals).
"""

from __future__ import annotations

import re
from typing import Any, List, Optional, Tuple

from repro.errors import ParseError
from repro.query.ast import (
    AggregateFunction,
    AggregateSpec,
    AggregationQuery,
    DeleteQuery,
    InsertQuery,
    JoinClause,
    Parameter,
    Query,
    SelectQuery,
    UpdateQuery,
)
from repro.query.predicates import And, Between, CompareOp, Comparison, Predicate

_AGG_FUNCTIONS = {f.value: f for f in AggregateFunction}

_SELECT_RE = re.compile(
    r"^select\s+(?P<projection>.+?)\s+from\s+(?P<table>\w+)"
    r"(?P<joins>(\s+join\s+\w+\s+on\s+[\w.]+\s*=\s*[\w.]+)*)"
    r"(?:\s+where\s+(?P<where>.+?))?"
    r"(?:\s+group\s+by\s+(?P<group>.+?))?"
    r"(?:\s+limit\s+(?P<limit>\d+))?\s*;?\s*$",
    re.IGNORECASE | re.DOTALL,
)
_JOIN_RE = re.compile(
    r"join\s+(?P<table>\w+)\s+on\s+(?P<left>[\w.]+)\s*=\s*(?P<right>[\w.]+)",
    re.IGNORECASE,
)
_INSERT_RE = re.compile(
    r"^insert\s+into\s+(?P<table>\w+)\s*\((?P<columns>[^)]*)\)\s*"
    r"values\s*\((?P<values>.*)\)\s*;?\s*$",
    re.IGNORECASE | re.DOTALL,
)
_UPDATE_RE = re.compile(
    r"^update\s+(?P<table>\w+)\s+set\s+(?P<assignments>.+?)"
    r"(?:\s+where\s+(?P<where>.+?))?\s*;?\s*$",
    re.IGNORECASE | re.DOTALL,
)
_DELETE_RE = re.compile(
    r"^delete\s+from\s+(?P<table>\w+)(?:\s+where\s+(?P<where>.+?))?\s*;?\s*$",
    re.IGNORECASE | re.DOTALL,
)
_AGGREGATE_ITEM_RE = re.compile(
    r"^(?P<function>\w+)\s*\(\s*(?P<column>[\w.*]+)\s*\)(?:\s+as\s+(?P<alias>\w+))?$",
    re.IGNORECASE,
)
_COMPARISON_RE = re.compile(
    r"^(?P<column>[\w.]+)\s*(?P<op>>=|<=|!=|<>|=|<|>)\s*(?P<value>.+)$",
    re.DOTALL,
)
_BETWEEN_RE = re.compile(
    r"^(?P<column>[\w.]+)\s+between\s+(?P<low>.+?)\s+and\s+(?P<high>.+)$",
    re.IGNORECASE | re.DOTALL,
)
_NAMED_PARAM_RE = re.compile(r"^:(?P<name>[A-Za-z_]\w*)$")
_DANGLING_AND_RE = re.compile(r"(?:^|\s)(and)\s*$", re.IGNORECASE)
_LEADING_AND_RE = re.compile(r"^(and)(?:\s|$)", re.IGNORECASE)

_OPS = {
    "=": CompareOp.EQ,
    "!=": CompareOp.NE,
    "<>": CompareOp.NE,
    "<": CompareOp.LT,
    "<=": CompareOp.LE,
    ">": CompareOp.GT,
    ">=": CompareOp.GE,
}


class _ParseContext:
    """Per-statement parsing state: source text for positions, ``?`` numbering."""

    def __init__(self, statement: str) -> None:
        self.statement = statement
        self._next_positional = 0

    def next_parameter(self) -> Parameter:
        parameter = Parameter(index=self._next_positional)
        self._next_positional += 1
        return parameter

    def locate(self, fragment: str) -> Tuple[Optional[int], Optional[int]]:
        """Best-effort 1-based (line, column) of *fragment* in the statement."""
        if not fragment:
            return None, None
        offset = self.statement.find(fragment)
        if offset < 0:
            return None, None
        return self.locate_offset(offset)

    def locate_offset(self, offset: int) -> Tuple[Optional[int], Optional[int]]:
        """1-based (line, column) of a character *offset* into the statement."""
        if offset < 0 or offset > len(self.statement):
            return None, None
        prefix = self.statement[:offset]
        line = prefix.count("\n") + 1
        column = offset - (prefix.rfind("\n") + 1) + 1
        return line, column

    def error(self, message: str, fragment: Optional[str] = None) -> ParseError:
        line, column = self.locate(fragment) if fragment else (None, None)
        return ParseError(message, line=line, column=column)

    def error_at(self, message: str, offset: int) -> ParseError:
        line, column = self.locate_offset(offset)
        return ParseError(message, line=line, column=column)


def parse(statement: str) -> Query:
    """Parse a single SQL-ish statement into a query object.

    Placeholders (``?`` / ``:name``) are preserved as
    :class:`~repro.query.ast.Parameter` markers in the produced query.
    """
    text = statement.strip()
    if not text:
        raise ParseError("empty statement")
    context = _ParseContext(statement)
    keyword = text.split(None, 1)[0].lower()
    if keyword == "select":
        return _parse_select(text, context)
    if keyword == "insert":
        return _parse_insert(text, context)
    if keyword == "update":
        return _parse_update(text, context)
    if keyword == "delete":
        return _parse_delete(text, context)
    raise context.error(f"unsupported statement: {statement!r}", text.split(None, 1)[0])


# -- helpers --------------------------------------------------------------------------


def _parse_select(text: str, context: _ParseContext) -> Query:
    match = _SELECT_RE.match(text)
    if not match:
        raise context.error(f"could not parse SELECT statement: {text!r}")
    table = match.group("table")
    projection = match.group("projection").strip()
    predicate = _parse_predicate(match.group("where"), context)
    joins = tuple(
        JoinClause(m.group("table"), _strip_qualifier(m.group("left"), table),
                   _strip_qualifier(m.group("right"), m.group("table")))
        for m in _JOIN_RE.finditer(match.group("joins") or "")
    )
    group_by = tuple(
        part.strip() for part in (match.group("group") or "").split(",") if part.strip()
    )
    limit = int(match.group("limit")) if match.group("limit") else None

    items = [item.strip() for item in projection.split(",") if item.strip()]
    aggregates = []
    plain_columns = []
    for item in items:
        aggregate_match = _AGGREGATE_ITEM_RE.match(item)
        if aggregate_match and aggregate_match.group("function").lower() in _AGG_FUNCTIONS:
            aggregates.append(
                AggregateSpec(
                    _AGG_FUNCTIONS[aggregate_match.group("function").lower()],
                    aggregate_match.group("column"),
                    aggregate_match.group("alias"),
                )
            )
        elif item == "*":
            plain_columns = []
        else:
            plain_columns.append(item)
    if aggregates:
        return AggregationQuery(
            table=table,
            aggregates=tuple(aggregates),
            group_by=group_by,
            predicate=predicate,
            joins=joins,
        )
    if joins or group_by:
        raise context.error("JOIN/GROUP BY is only supported for aggregation queries")
    return SelectQuery(table=table, columns=tuple(plain_columns), predicate=predicate,
                       limit=limit)


def _parse_insert(text: str, context: _ParseContext) -> InsertQuery:
    match = _INSERT_RE.match(text)
    if not match:
        raise context.error(f"could not parse INSERT statement: {text!r}")
    columns = [name.strip() for name in match.group("columns").split(",") if name.strip()]
    values = _split_values(match.group("values"))
    if len(columns) != len(values):
        raise context.error("INSERT column list and VALUES list differ in length")
    row = {name: _parse_literal(value, context) for name, value in zip(columns, values)}
    return InsertQuery(table=match.group("table"), rows=(row,))


def _parse_update(text: str, context: _ParseContext) -> UpdateQuery:
    match = _UPDATE_RE.match(text)
    if not match:
        raise context.error(f"could not parse UPDATE statement: {text!r}")
    assignments = {}
    for part in _split_values(match.group("assignments")):
        if "=" not in part:
            raise context.error(f"bad assignment in UPDATE: {part!r}", part)
        column, value = part.split("=", 1)
        assignments[column.strip()] = _parse_literal(value.strip(), context)
    return UpdateQuery(
        table=match.group("table"),
        assignments=assignments,
        predicate=_parse_predicate(match.group("where"), context),
    )


def _parse_delete(text: str, context: _ParseContext) -> DeleteQuery:
    match = _DELETE_RE.match(text)
    if not match:
        raise context.error(f"could not parse DELETE statement: {text!r}")
    return DeleteQuery(table=match.group("table"),
                       predicate=_parse_predicate(match.group("where"), context))


def _parse_predicate(text: Optional[str], context: _ParseContext) -> Optional[Predicate]:
    if text is None or not text.strip():
        return None
    stripped = text.strip()
    # The predicate text is a verbatim substring of the statement; anchoring
    # positions on its offset (not on a token search, which could hit an
    # identifier containing the same characters) keeps line/column exact.
    predicate_offset = context.statement.find(stripped)
    dangling = _DANGLING_AND_RE.search(stripped)
    # A trailing AND inside a BETWEEN is legitimate only when a bound follows,
    # which the strip already ruled out — so any match here is dangling.
    if dangling:
        raise context.error_at(
            "dangling AND at end of predicate",
            predicate_offset + dangling.start(1) if predicate_offset >= 0 else -1,
        )
    if _LEADING_AND_RE.match(stripped):
        raise context.error_at("predicate must not start with AND",
                               predicate_offset)
    raw_parts = re.split(r"\s+and\s+", stripped, flags=re.IGNORECASE)
    # Re-join the AND that belongs to a BETWEEN ... AND ... expression.
    parts: List[str] = []
    index = 0
    while index < len(raw_parts):
        part = raw_parts[index]
        if re.search(r"\bbetween\b", part, re.IGNORECASE) and index + 1 < len(raw_parts):
            part = f"{part} AND {raw_parts[index + 1]}"
            index += 1
        parts.append(part)
        index += 1
    for part in parts:
        part_text = part.strip()
        if not part_text or _LEADING_AND_RE.match(part_text):
            offset = context.statement.find(part_text) if part_text else predicate_offset
            raise context.error_at("dangling AND in predicate", offset)
    predicates = [_parse_single_predicate(part.strip(), context) for part in parts]
    if len(predicates) == 1:
        return predicates[0]
    return And(tuple(predicates))


def _parse_single_predicate(text: str, context: _ParseContext) -> Predicate:
    between_match = _BETWEEN_RE.match(text)
    if between_match:
        return Between(
            between_match.group("column"),
            _parse_literal(between_match.group("low").strip(), context),
            _parse_literal(between_match.group("high").strip(), context),
        )
    comparison_match = _COMPARISON_RE.match(text)
    if comparison_match:
        return Comparison(
            comparison_match.group("column"),
            _OPS[comparison_match.group("op")],
            _parse_literal(comparison_match.group("value").strip(), context),
        )
    raise context.error(f"could not parse predicate: {text!r}", text)


def _parse_literal(token: str, context: Optional[_ParseContext] = None) -> Any:
    token = token.strip()
    if not token:
        raise (context.error("empty literal") if context else ParseError("empty literal"))
    if context is not None:
        if token == "?":
            return context.next_parameter()
        named = _NAMED_PARAM_RE.match(token)
        if named:
            return Parameter(name=named.group("name"))
    if (token[0] == token[-1]) and token[0] in ("'", '"') and len(token) >= 2:
        return token[1:-1]
    lowered = token.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered == "null":
        return None
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    return token


def _split_values(text: str) -> List[str]:
    """Split a comma-separated list, respecting single/double quotes."""
    parts: List[str] = []
    current = []
    quote: Optional[str] = None
    for char in text:
        if quote:
            current.append(char)
            if char == quote:
                quote = None
        elif char in ("'", '"'):
            quote = char
            current.append(char)
        elif char == ",":
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    if current:
        parts.append("".join(current).strip())
    return [part for part in parts if part]


def _strip_qualifier(name: str, table: str) -> str:
    if "." in name:
        qualifier, column = name.split(".", 1)
        if qualifier == table:
            return column
    return name
