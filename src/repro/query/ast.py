"""Query model (a small, typed abstract syntax of the supported queries).

The storage advisor reasons about five query classes, exactly those of the
paper's cost model (Section 3.1):

* :class:`AggregationQuery` — OLAP: aggregates, optional grouping, optional
  joins against other tables.
* :class:`SelectQuery` — point and range queries (OLTP reads).
* :class:`InsertQuery`, :class:`UpdateQuery`, :class:`DeleteQuery` — OLTP
  writes.

Queries are immutable dataclasses.  Columns of joined tables are referenced
with a ``"table.column"`` qualified name (used by group-by lists and join
predicates in the star-schema and TPC-H workloads).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, FrozenSet, Mapping, Optional, Tuple, Union

from repro.errors import QueryError
from repro.query.predicates import Predicate


class QueryType(enum.Enum):
    """The query classes distinguished by the cost model."""

    AGGREGATION = "aggregation"
    SELECT = "select"
    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"


class AggregateFunction(enum.Enum):
    """Supported aggregation functions."""

    SUM = "sum"
    AVG = "avg"
    MIN = "min"
    MAX = "max"
    COUNT = "count"


@dataclass(frozen=True)
class Parameter:
    """A placeholder for a literal, bound at execute time.

    The parser produces one per ``?`` (positional, numbered left to right
    from 0) or ``:name`` (named) placeholder; the session layer's bind step
    (:mod:`repro.api.binder`) substitutes the actual value — type-checked and
    coerced against the catalog schema — before execution.  A query carrying
    unbound parameters can be *planned* (placeholders contribute default
    selectivities) but never executed.
    """

    index: Optional[int] = None
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if (self.index is None) == (self.name is None):
            raise QueryError("a parameter is either positional or named")

    @property
    def label(self) -> str:
        return "?" if self.name is None else f":{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Parameter({self.label})"


def split_qualified(name: str) -> Tuple[Optional[str], str]:
    """Split ``"table.column"`` into ``(table, column)``; plain names get ``None``."""
    if "." in name:
        table, column = name.split(".", 1)
        return table, column
    return None, name


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate expression, e.g. ``SUM(revenue)``."""

    function: AggregateFunction
    column: str
    alias: Optional[str] = None

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        column = "star" if self.column == "*" else self.column.replace(".", "_")
        return f"{self.function.value}_{column}"


@dataclass(frozen=True)
class JoinClause:
    """Equi-join of the query's base table with another table.

    ``left_column`` belongs to the base table, ``right_column`` to *table*.
    """

    table: str
    left_column: str
    right_column: str


@dataclass(frozen=True)
class AggregationQuery:
    """An OLAP aggregation query, optionally grouped and joined."""

    table: str
    aggregates: Tuple[AggregateSpec, ...]
    group_by: Tuple[str, ...] = ()
    predicate: Optional[Predicate] = None
    joins: Tuple[JoinClause, ...] = ()

    def __post_init__(self) -> None:
        if not self.aggregates:
            raise QueryError("an aggregation query needs at least one aggregate")
        object.__setattr__(self, "aggregates", tuple(self.aggregates))
        object.__setattr__(self, "group_by", tuple(self.group_by))
        object.__setattr__(self, "joins", tuple(self.joins))

    @property
    def query_type(self) -> QueryType:
        return QueryType.AGGREGATION

    @property
    def is_olap(self) -> bool:
        return True

    @property
    def tables(self) -> Tuple[str, ...]:
        return (self.table,) + tuple(join.table for join in self.joins)

    @property
    def has_group_by(self) -> bool:
        return bool(self.group_by)

    def columns_of(self, table: str) -> FrozenSet[str]:
        """Columns of *table* referenced anywhere in the query."""
        columns = set()
        for aggregate in self.aggregates:
            agg_table, column = split_qualified(aggregate.column)
            if (agg_table or self.table) == table:
                columns.add(column)
        for name in self.group_by:
            group_table, column = split_qualified(name)
            if (group_table or self.table) == table:
                columns.add(column)
        if self.predicate is not None:
            for name in self.predicate.columns():
                pred_table, column = split_qualified(name)
                if (pred_table or self.table) == table:
                    columns.add(column)
        for join in self.joins:
            if table == self.table:
                columns.add(join.left_column)
            if table == join.table:
                columns.add(join.right_column)
        return frozenset(columns)

    def aggregated_columns(self, table: Optional[str] = None) -> FrozenSet[str]:
        """Columns used inside aggregate functions (optionally for one table)."""
        columns = set()
        for aggregate in self.aggregates:
            agg_table, column = split_qualified(aggregate.column)
            owner = agg_table or self.table
            if table is None or owner == table:
                columns.add(column)
        return frozenset(columns)


@dataclass(frozen=True)
class SelectQuery:
    """A point or range query returning (a projection of) matching tuples."""

    table: str
    columns: Tuple[str, ...] = ()
    predicate: Optional[Predicate] = None
    limit: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "columns", tuple(self.columns))

    @property
    def query_type(self) -> QueryType:
        return QueryType.SELECT

    @property
    def is_olap(self) -> bool:
        return False

    @property
    def tables(self) -> Tuple[str, ...]:
        return (self.table,)

    @property
    def selects_all_columns(self) -> bool:
        return not self.columns

    def columns_of(self, table: str) -> FrozenSet[str]:
        if table != self.table:
            return frozenset()
        columns = set(self.columns)
        if self.predicate is not None:
            columns |= self.predicate.columns()
        return frozenset(columns)


@dataclass(frozen=True)
class InsertQuery:
    """Insertion of one or more new tuples."""

    table: str
    rows: Tuple[Mapping[str, Any], ...]

    def __post_init__(self) -> None:
        if not self.rows:
            raise QueryError("an insert query needs at least one row")
        object.__setattr__(self, "rows", tuple(dict(row) for row in self.rows))

    @property
    def query_type(self) -> QueryType:
        return QueryType.INSERT

    @property
    def is_olap(self) -> bool:
        return False

    @property
    def tables(self) -> Tuple[str, ...]:
        return (self.table,)

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    def columns_of(self, table: str) -> FrozenSet[str]:
        if table != self.table:
            return frozenset()
        columns: set = set()
        for row in self.rows:
            columns |= set(row)
        return frozenset(columns)


@dataclass(frozen=True)
class UpdateQuery:
    """Update of the tuples matching a predicate."""

    table: str
    assignments: Mapping[str, Any]
    predicate: Optional[Predicate] = None

    def __post_init__(self) -> None:
        if not self.assignments:
            raise QueryError("an update query needs at least one assignment")
        object.__setattr__(self, "assignments", dict(self.assignments))

    @property
    def query_type(self) -> QueryType:
        return QueryType.UPDATE

    @property
    def is_olap(self) -> bool:
        return False

    @property
    def tables(self) -> Tuple[str, ...]:
        return (self.table,)

    @property
    def updated_columns(self) -> FrozenSet[str]:
        return frozenset(self.assignments)

    def columns_of(self, table: str) -> FrozenSet[str]:
        if table != self.table:
            return frozenset()
        columns = set(self.assignments)
        if self.predicate is not None:
            columns |= self.predicate.columns()
        return frozenset(columns)


@dataclass(frozen=True)
class DeleteQuery:
    """Deletion of the tuples matching a predicate."""

    table: str
    predicate: Optional[Predicate] = None

    @property
    def query_type(self) -> QueryType:
        return QueryType.DELETE

    @property
    def is_olap(self) -> bool:
        return False

    @property
    def tables(self) -> Tuple[str, ...]:
        return (self.table,)

    def columns_of(self, table: str) -> FrozenSet[str]:
        if table != self.table or self.predicate is None:
            return frozenset()
        return self.predicate.columns()


Query = Union[AggregationQuery, SelectQuery, InsertQuery, UpdateQuery, DeleteQuery]

WRITE_QUERY_TYPES = frozenset({QueryType.INSERT, QueryType.UPDATE, QueryType.DELETE})
