"""Workloads: ordered collections of queries with summary statistics.

A :class:`Workload` is what the storage advisor analyses — either a recorded
or expected workload in offline mode, or the stream captured by the online
monitor.  Besides holding the queries it provides the aggregate measures the
paper's heuristics use (OLAP fraction, insert fraction, per-table and
per-attribute access profiles).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import WorkloadError
from repro.query.ast import (
    AggregationQuery,
    DeleteQuery,
    InsertQuery,
    Query,
    QueryType,
    SelectQuery,
    UpdateQuery,
    split_qualified,
)


@dataclass
class Workload:
    """An ordered collection of queries."""

    queries: List[Query] = field(default_factory=list)
    name: str = "workload"

    def __post_init__(self) -> None:
        self.queries = list(self.queries)

    # -- container behaviour ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[Query]:
        return iter(self.queries)

    def __getitem__(self, index):
        return self.queries[index]

    def add(self, query: Query) -> None:
        self.queries.append(query)

    def extend(self, queries: Iterable[Query]) -> None:
        self.queries.extend(queries)

    def merged_with(self, other: "Workload", name: Optional[str] = None) -> "Workload":
        return Workload(self.queries + other.queries, name or f"{self.name}+{other.name}")

    # -- classification -------------------------------------------------------------

    @property
    def num_queries(self) -> int:
        return len(self.queries)

    def count_by_type(self) -> Dict[QueryType, int]:
        counts: Counter = Counter(query.query_type for query in self.queries)
        return dict(counts)

    @property
    def olap_queries(self) -> List[Query]:
        return [query for query in self.queries if query.is_olap]

    @property
    def oltp_queries(self) -> List[Query]:
        return [query for query in self.queries if not query.is_olap]

    @property
    def olap_fraction(self) -> float:
        if not self.queries:
            return 0.0
        return len(self.olap_queries) / len(self.queries)

    @property
    def insert_fraction(self) -> float:
        if not self.queries:
            return 0.0
        inserts = sum(1 for query in self.queries if query.query_type is QueryType.INSERT)
        return inserts / len(self.queries)

    @property
    def update_fraction(self) -> float:
        if not self.queries:
            return 0.0
        updates = sum(1 for query in self.queries if query.query_type is QueryType.UPDATE)
        return updates / len(self.queries)

    # -- per-table views ----------------------------------------------------------------

    def tables(self) -> Tuple[str, ...]:
        names = []
        seen = set()
        for query in self.queries:
            for table in query.tables:
                if table not in seen:
                    seen.add(table)
                    names.append(table)
        return tuple(names)

    def queries_for_table(self, table: str) -> List[Query]:
        return [query for query in self.queries if table in query.tables]

    def restricted_to(self, table: str, name: Optional[str] = None) -> "Workload":
        return Workload(self.queries_for_table(table), name or f"{self.name}[{table}]")

    # -- per-attribute access profile (used by the vertical-partitioning heuristic) -------

    def attribute_access_profile(self, table: str) -> Dict[str, "AttributeAccessCounts"]:
        """Count, per attribute of *table*, how it is used across the workload."""
        profile: Dict[str, AttributeAccessCounts] = defaultdict(AttributeAccessCounts)
        for query in self.queries_for_table(table):
            if isinstance(query, AggregationQuery):
                for column in query.aggregated_columns(table):
                    profile[column].aggregations += 1
                for name in query.group_by:
                    owner, column = split_qualified(name)
                    if (owner or query.table) == table:
                        profile[column].group_bys += 1
                if query.predicate is not None:
                    for name in query.predicate.columns():
                        owner, column = split_qualified(name)
                        if (owner or query.table) == table:
                            profile[column].olap_selections += 1
            elif isinstance(query, SelectQuery):
                if query.predicate is not None:
                    for column in query.predicate.columns():
                        profile[column].point_selections += 1
                for column in query.columns:
                    profile[column].projections += 1
            elif isinstance(query, UpdateQuery):
                for column in query.updated_columns:
                    profile[column].updates += 1
                if query.predicate is not None:
                    for column in query.predicate.columns():
                        profile[column].point_selections += 1
            elif isinstance(query, (InsertQuery, DeleteQuery)):
                # Inserts/deletes touch whole tuples; they do not contribute to
                # the per-attribute OLTP/OLAP classification.
                continue
        return dict(profile)

    def summary(self) -> str:
        counts = self.count_by_type()
        parts = [f"{len(self.queries)} queries"]
        for query_type in QueryType:
            if counts.get(query_type):
                parts.append(f"{query_type.value}={counts[query_type]}")
        parts.append(f"olap_fraction={self.olap_fraction:.4f}")
        return ", ".join(parts)


@dataclass
class AttributeAccessCounts:
    """How one attribute is accessed across a workload."""

    aggregations: int = 0
    group_bys: int = 0
    olap_selections: int = 0
    point_selections: int = 0
    projections: int = 0
    updates: int = 0

    @property
    def olap_accesses(self) -> int:
        return self.aggregations + self.group_bys + self.olap_selections

    @property
    def oltp_accesses(self) -> int:
        return self.point_selections + self.projections + self.updates

    @property
    def total_accesses(self) -> int:
        return self.olap_accesses + self.oltp_accesses

    @property
    def oltp_ratio(self) -> float:
        if self.total_accesses == 0:
            return 0.0
        return self.oltp_accesses / self.total_accesses


def interleave(workloads: Sequence[Workload], name: str = "interleaved") -> Workload:
    """Round-robin interleave several workloads into one.

    Useful for building mixed workloads whose OLAP queries are spread across
    the run rather than clustered at the end.
    """
    if not workloads:
        raise WorkloadError("interleave needs at least one workload")
    iterators = [iter(workload.queries) for workload in workloads]
    merged: List[Query] = []
    exhausted = [False] * len(iterators)
    while not all(exhausted):
        for position, iterator in enumerate(iterators):
            if exhausted[position]:
                continue
            try:
                merged.append(next(iterator))
            except StopIteration:
                exhausted[position] = True
    return Workload(merged, name)
