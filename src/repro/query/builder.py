"""Fluent builders for the query model.

The builders keep examples and workload generators readable::

    query = (
        aggregate("sales")
        .sum("revenue")
        .avg("quantity")
        .group_by("region")
        .where(eq("year", 2012))
        .build()
    )
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence

from repro.errors import QueryError
from repro.query.ast import (
    AggregateFunction,
    AggregateSpec,
    AggregationQuery,
    DeleteQuery,
    InsertQuery,
    JoinClause,
    SelectQuery,
    UpdateQuery,
)
from repro.query.predicates import Predicate


class AggregationBuilder:
    """Builds :class:`~repro.query.ast.AggregationQuery` objects."""

    def __init__(self, table: str) -> None:
        self._table = table
        self._aggregates: list = []
        self._group_by: list = []
        self._predicate: Optional[Predicate] = None
        self._joins: list = []

    def aggregate(self, function: AggregateFunction, column: str,
                  alias: Optional[str] = None) -> "AggregationBuilder":
        self._aggregates.append(AggregateSpec(function, column, alias))
        return self

    def sum(self, column: str, alias: Optional[str] = None) -> "AggregationBuilder":
        return self.aggregate(AggregateFunction.SUM, column, alias)

    def avg(self, column: str, alias: Optional[str] = None) -> "AggregationBuilder":
        return self.aggregate(AggregateFunction.AVG, column, alias)

    def min(self, column: str, alias: Optional[str] = None) -> "AggregationBuilder":
        return self.aggregate(AggregateFunction.MIN, column, alias)

    def max(self, column: str, alias: Optional[str] = None) -> "AggregationBuilder":
        return self.aggregate(AggregateFunction.MAX, column, alias)

    def count(self, column: str = "*", alias: Optional[str] = None) -> "AggregationBuilder":
        return self.aggregate(AggregateFunction.COUNT, column, alias)

    def group_by(self, *columns: str) -> "AggregationBuilder":
        self._group_by.extend(columns)
        return self

    def where(self, predicate: Predicate) -> "AggregationBuilder":
        self._predicate = predicate
        return self

    def join(self, table: str, left_column: str, right_column: str) -> "AggregationBuilder":
        self._joins.append(JoinClause(table, left_column, right_column))
        return self

    def build(self) -> AggregationQuery:
        if not self._aggregates:
            raise QueryError("aggregation builder needs at least one aggregate")
        return AggregationQuery(
            table=self._table,
            aggregates=tuple(self._aggregates),
            group_by=tuple(self._group_by),
            predicate=self._predicate,
            joins=tuple(self._joins),
        )


class SelectBuilder:
    """Builds :class:`~repro.query.ast.SelectQuery` objects."""

    def __init__(self, table: str) -> None:
        self._table = table
        self._columns: list = []
        self._predicate: Optional[Predicate] = None
        self._limit: Optional[int] = None

    def columns(self, *names: str) -> "SelectBuilder":
        self._columns.extend(names)
        return self

    def where(self, predicate: Predicate) -> "SelectBuilder":
        self._predicate = predicate
        return self

    def limit(self, limit: int) -> "SelectBuilder":
        self._limit = limit
        return self

    def build(self) -> SelectQuery:
        return SelectQuery(
            table=self._table,
            columns=tuple(self._columns),
            predicate=self._predicate,
            limit=self._limit,
        )


def aggregate(table: str) -> AggregationBuilder:
    """Start building an aggregation query over *table*."""
    return AggregationBuilder(table)


def select(table: str) -> SelectBuilder:
    """Start building a point/range select query over *table*."""
    return SelectBuilder(table)


def insert(table: str, rows: Sequence[Mapping[str, Any]]) -> InsertQuery:
    """Build an insert query for *rows*."""
    return InsertQuery(table=table, rows=tuple(rows))


def update(table: str, assignments: Mapping[str, Any],
           predicate: Optional[Predicate] = None) -> UpdateQuery:
    """Build an update query."""
    return UpdateQuery(table=table, assignments=dict(assignments), predicate=predicate)


def delete(table: str, predicate: Optional[Predicate] = None) -> DeleteQuery:
    """Build a delete query."""
    return DeleteQuery(table=table, predicate=predicate)
