"""Predicate (WHERE-clause) model shared by queries and storage backends.

Predicates are small immutable trees.  They support three operations:

* ``columns()`` — the set of referenced columns (used by the advisor's
  workload statistics and by the vertical-partitioning heuristic),
* ``evaluate(row)`` — row-at-a-time evaluation used by the row store and as
  the fallback path of the column store, and
* ``estimate_selectivity(stats)`` — a cheap selectivity estimate from column
  statistics, used by the cost model's ``f_selectivity`` adjustment.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, FrozenSet, Mapping, Optional, Sequence, Tuple

from repro.errors import QueryError

#: Default selectivity used when no statistics are available.
DEFAULT_EQUALITY_SELECTIVITY = 0.01
DEFAULT_RANGE_SELECTIVITY = 0.25


class CompareOp(enum.Enum):
    """Comparison operators supported in predicates."""

    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def apply(self, left: Any, right: Any) -> bool:
        if left is None or right is None:
            return False
        if self is CompareOp.EQ:
            return left == right
        if self is CompareOp.NE:
            return left != right
        if self is CompareOp.LT:
            return left < right
        if self is CompareOp.LE:
            return left <= right
        if self is CompareOp.GT:
            return left > right
        return left >= right


class Predicate:
    """Base class of all predicates."""

    def columns(self) -> FrozenSet[str]:
        raise NotImplementedError

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        raise NotImplementedError

    def estimate_selectivity(self, stats: Optional[Mapping[str, "ColumnStatsLike"]] = None) -> float:
        raise NotImplementedError

    # Convenience combinators -------------------------------------------------

    def __and__(self, other: "Predicate") -> "Predicate":
        return And((self, other))

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or((self, other))

    def __invert__(self) -> "Predicate":
        return Not(self)


class ColumnStatsLike:
    """Protocol-ish description of the statistics a predicate can use.

    Anything with ``num_distinct``, ``min_value`` and ``max_value`` attributes
    works (see :class:`repro.engine.statistics.ColumnStatistics`).
    """

    num_distinct: int
    min_value: Any
    max_value: Any


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """A predicate that accepts every row (used for unconditional updates)."""

    def columns(self) -> FrozenSet[str]:
        return frozenset()

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return True

    def estimate_selectivity(self, stats=None) -> float:
        return 1.0


@dataclass(frozen=True)
class Comparison(Predicate):
    """``column <op> literal`` comparison."""

    column: str
    op: CompareOp
    value: Any

    def columns(self) -> FrozenSet[str]:
        return frozenset({self.column})

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return self.op.apply(row.get(self.column), self.value)

    def estimate_selectivity(self, stats=None) -> float:
        column_stats = (stats or {}).get(self.column)
        if self.op is CompareOp.EQ:
            if column_stats and getattr(column_stats, "num_distinct", 0) > 0:
                return 1.0 / column_stats.num_distinct
            return DEFAULT_EQUALITY_SELECTIVITY
        if self.op is CompareOp.NE:
            return 1.0 - self.estimate_selectivity_eq(column_stats)
        # Range comparison: interpolate within [min, max] if numeric stats exist.
        if column_stats is not None:
            low = getattr(column_stats, "min_value", None)
            high = getattr(column_stats, "max_value", None)
            if _is_number(low) and _is_number(high) and _is_number(self.value) and high > low:
                fraction = (float(self.value) - float(low)) / (float(high) - float(low))
                fraction = min(1.0, max(0.0, fraction))
                if self.op in (CompareOp.LT, CompareOp.LE):
                    return max(fraction, 1e-6)
                return max(1.0 - fraction, 1e-6)
        return DEFAULT_RANGE_SELECTIVITY

    def estimate_selectivity_eq(self, column_stats) -> float:
        if column_stats and getattr(column_stats, "num_distinct", 0) > 0:
            return 1.0 / column_stats.num_distinct
        return DEFAULT_EQUALITY_SELECTIVITY


@dataclass(frozen=True)
class Between(Predicate):
    """``low <= column <= high`` (bounds optionally exclusive or open)."""

    column: str
    low: Any = None
    high: Any = None
    include_low: bool = True
    include_high: bool = True

    def __post_init__(self) -> None:
        if self.low is None and self.high is None:
            raise QueryError("BETWEEN predicate needs at least one bound")

    def columns(self) -> FrozenSet[str]:
        return frozenset({self.column})

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        value = row.get(self.column)
        if value is None:
            return False
        if self.low is not None:
            if self.include_low:
                if value < self.low:
                    return False
            elif value <= self.low:
                return False
        if self.high is not None:
            if self.include_high:
                if value > self.high:
                    return False
            elif value >= self.high:
                return False
        return True

    def estimate_selectivity(self, stats=None) -> float:
        column_stats = (stats or {}).get(self.column)
        if column_stats is not None:
            low = getattr(column_stats, "min_value", None)
            high = getattr(column_stats, "max_value", None)
            if _is_number(low) and _is_number(high) and high > low:
                lo = float(self.low) if _is_number(self.low) else float(low)
                hi = float(self.high) if _is_number(self.high) else float(high)
                lo = max(lo, float(low))
                hi = min(hi, float(high))
                if hi <= lo:
                    return 1e-6
                return min(1.0, (hi - lo) / (float(high) - float(low)))
        return DEFAULT_RANGE_SELECTIVITY

    @property
    def is_point(self) -> bool:
        return self.low is not None and self.low == self.high


@dataclass(frozen=True)
class InList(Predicate):
    """``column IN (v1, v2, ...)``.

    Membership is SQL-style chained *equality*: a ``NULL`` member matches
    exactly the NULL rows, and a NaN member matches nothing (``NaN = NaN``
    is false).  Python's ``in`` would additionally match NaN by object
    identity, which depends on how a store boxes its floats — dictionary
    encoding dedups NaN objects while the row store may preserve them — so
    identity semantics cannot be store-independent and are deliberately not
    offered.
    """

    column: str
    values: Tuple[Any, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise QueryError("IN predicate needs at least one value")
        object.__setattr__(self, "values", tuple(self.values))

    def columns(self) -> FrozenSet[str]:
        return frozenset({self.column})

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        value = row.get(self.column)
        if value is None:
            return any(member is None for member in self.values)
        return any(
            member is not None and value == member for member in self.values
        )

    def estimate_selectivity(self, stats=None) -> float:
        column_stats = (stats or {}).get(self.column)
        if column_stats and getattr(column_stats, "num_distinct", 0) > 0:
            return min(1.0, len(self.values) / column_stats.num_distinct)
        return min(1.0, len(self.values) * DEFAULT_EQUALITY_SELECTIVITY)


@dataclass(frozen=True)
class IsNull(Predicate):
    """``column IS NULL``."""

    column: str

    def columns(self) -> FrozenSet[str]:
        return frozenset({self.column})

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return row.get(self.column) is None

    def estimate_selectivity(self, stats=None) -> float:
        return DEFAULT_EQUALITY_SELECTIVITY


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of predicates."""

    predicates: Tuple[Predicate, ...]

    def __post_init__(self) -> None:
        if not self.predicates:
            raise QueryError("AND needs at least one operand")
        object.__setattr__(self, "predicates", tuple(self.predicates))

    def columns(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for predicate in self.predicates:
            result |= predicate.columns()
        return result

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return all(predicate.evaluate(row) for predicate in self.predicates)

    def estimate_selectivity(self, stats=None) -> float:
        selectivity = 1.0
        for predicate in self.predicates:
            selectivity *= predicate.estimate_selectivity(stats)
        return selectivity


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction of predicates."""

    predicates: Tuple[Predicate, ...]

    def __post_init__(self) -> None:
        if not self.predicates:
            raise QueryError("OR needs at least one operand")
        object.__setattr__(self, "predicates", tuple(self.predicates))

    def columns(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for predicate in self.predicates:
            result |= predicate.columns()
        return result

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return any(predicate.evaluate(row) for predicate in self.predicates)

    def estimate_selectivity(self, stats=None) -> float:
        miss_probability = 1.0
        for predicate in self.predicates:
            miss_probability *= 1.0 - predicate.estimate_selectivity(stats)
        return 1.0 - miss_probability


@dataclass(frozen=True)
class Not(Predicate):
    """Negation of a predicate."""

    predicate: Predicate

    def columns(self) -> FrozenSet[str]:
        return self.predicate.columns()

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return not self.predicate.evaluate(row)

    def estimate_selectivity(self, stats=None) -> float:
        return max(0.0, 1.0 - self.predicate.estimate_selectivity(stats))


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


# -- convenience constructors -------------------------------------------------

def eq(column: str, value: Any) -> Comparison:
    """``column = value``."""
    return Comparison(column, CompareOp.EQ, value)


def ne(column: str, value: Any) -> Comparison:
    """``column != value``."""
    return Comparison(column, CompareOp.NE, value)


def lt(column: str, value: Any) -> Comparison:
    """``column < value``."""
    return Comparison(column, CompareOp.LT, value)


def le(column: str, value: Any) -> Comparison:
    """``column <= value``."""
    return Comparison(column, CompareOp.LE, value)


def gt(column: str, value: Any) -> Comparison:
    """``column > value``."""
    return Comparison(column, CompareOp.GT, value)


def ge(column: str, value: Any) -> Comparison:
    """``column >= value``."""
    return Comparison(column, CompareOp.GE, value)


def between(column: str, low: Any, high: Any) -> Between:
    """``low <= column <= high``."""
    return Between(column, low, high)


def in_list(column: str, values: Sequence[Any]) -> InList:
    """``column IN values``."""
    return InList(column, tuple(values))
