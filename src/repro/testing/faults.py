"""Fault-injection harness: crash points, torn writes and process faults.

Two families of fault live here.

**Crash points** — the WAL, the delta merge, the checkpoint and the
materialized-view refresh call :func:`fault_point` at every step that a
crash could separate from its neighbours, naming the point (see
:data:`CRASH_POINTS` and :data:`MATVIEW_CRASH_POINTS`).  Tests arm a
:class:`FaultPlan` with :func:`inject`; an armed plan can

* **crash** at a named point (``CrashError`` propagates out of the engine,
  standing in for the process dying at exactly that instruction), optionally
  only at the *n*-th hit — or at *every* hit (``every_hit=True``), which the
  resilience suite uses to exhaust the shard retry budget,
* **tear a write**: the WAL routes every buffer flush through
  :func:`filter_write`, and a plan with ``torn_bytes`` set lets only that
  many bytes of the flush reach the file before crashing — the classic
  torn-page failure a recovery log must tolerate.

**Process faults** — the shard-parallel executor asks :func:`process_fault`
whether to sabotage the current scatter/gather (see :data:`PROCESS_FAULTS`).
Unlike a crash point, triggering one does not raise in the parent: the
parent *arranges* the fault — a worker killed mid-shard, a wedged worker, a
poisoned (unpicklable) result, a shared-memory segment unlinked under the
workers — and the resilience layer must absorb it: retry, fall back serial,
and leave the pool healthy, with rows and charges bit-identical to the
serial reference (pinned by ``pytest -m resilience``).

Post-hoc corruption of a log file (for checksum-skip coverage) does not need
an armed plan: :func:`flip_bit` and :func:`truncate_file` edit the file
directly.

With no plan armed every hook is a cheap no-op, so the engine code can call
them unconditionally.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

#: Every durability crash point the engine declares, in rough execution
#: order.  The recovery fuzzer iterates this list and a test asserts each
#: name is actually reached by the workload that claims to cover it.
CRASH_POINTS: Tuple[str, ...] = (
    "wal.append.before",
    "wal.append.buffered",
    "wal.flush.before_write",
    "wal.flush.after_write",
    "wal.flush.after_fsync",
    "merge.before",
    "merge.after_build",
    "merge.after_swap",
    "checkpoint.before_snapshot",
    "checkpoint.after_snapshot",
    "checkpoint.after_replace",
    "checkpoint.after_truncate",
    "checkpoint.after_reset",
)

#: Crash points inside :meth:`MaterializedView.refresh`.  Kept separate from
#: :data:`CRASH_POINTS` because the recovery fuzzer's WAL workload does not
#: reach them; the resilience suite covers them instead and pins that a
#: crash anywhere in a refresh never installs a partial merge — the view
#: serves its pre-refresh state (or recomputes) on the next query.
MATVIEW_CRASH_POINTS: Tuple[str, ...] = (
    "matview.refresh.before",
    "matview.refresh.after_unit",
    "matview.refresh.before_install",
)

#: The process-fault matrix of the shard-parallel executor, checked via
#: :func:`process_fault` at the point in the scatter/gather where each fault
#: would bite.  The resilience suite iterates this list; a registration test
#: pins the count so new faults cannot land untested.
PROCESS_FAULTS: Tuple[str, ...] = (
    "shard.worker.kill",
    "shard.worker.hang",
    "shard.result.poison",
    "shard.shm.unlink_race",
    "shard.shm.bit_flip",
)


class CrashError(RuntimeError):
    """Raised by an armed fault plan; models the process dying at the point."""


@dataclass
class FaultPlan:
    """One armed failure: crash at *crash_at* (on its *at_hit*-th hit).

    ``torn_bytes`` only applies when ``crash_at`` names a flush point routed
    through :func:`filter_write` (``wal.flush.after_write``): the flush
    writes just ``torn_bytes`` bytes of its buffer and then crashes.

    By default a plan fires exactly once (its *at_hit*-th hit) — a retried
    shard attempt therefore succeeds, exercising the retry rung of the
    degradation ladder.  ``every_hit=True`` makes the plan fire on every hit
    of *crash_at*, exhausting the retry budget and forcing the serial rung.
    """

    crash_at: Optional[str] = None
    at_hit: int = 1
    torn_bytes: Optional[int] = None
    every_hit: bool = False
    #: Every point name hit while this plan was armed (coverage telemetry).
    hits: List[str] = field(default_factory=list)

    _countdown: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        self._countdown = self.at_hit

    def should_crash(self, name: str) -> bool:
        self.hits.append(name)
        if name != self.crash_at:
            return False
        if self.every_hit:
            return True
        self._countdown -= 1
        return self._countdown == 0


_PLAN: Optional[FaultPlan] = None


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Arm *plan* for the duration of the block (plans do not nest)."""
    global _PLAN
    previous = _PLAN
    _PLAN = plan
    try:
        yield plan
    finally:
        _PLAN = previous


def active_plan() -> Optional[FaultPlan]:
    return _PLAN


def fault_point(name: str) -> None:
    """Declare a crash point; raises :class:`CrashError` when a plan says so."""
    if _PLAN is not None and _PLAN.should_crash(name):
        raise CrashError(name)


def process_fault(name: str) -> bool:
    """Whether the armed plan wants process fault *name* arranged here.

    Same arming, hit-counting and coverage telemetry as :func:`fault_point`,
    but the caller — the shard-parallel parent — performs the sabotage
    itself (kill/wedge a worker, poison a result, unlink a segment) instead
    of raising.  Returns ``False`` with no plan armed.
    """
    return _PLAN is not None and _PLAN.should_crash(name)


def filter_write(name: str, data: bytes) -> bytes:
    """Route a buffer flush through the armed plan.

    Returns the bytes that should actually reach the file.  A plan crashing
    at *name* with ``torn_bytes`` set truncates the flush; the caller writes
    the returned prefix and then :func:`fault_point` (called by the caller
    *after* the write) raises.  Without an armed plan the data passes
    through untouched.
    """
    plan = _PLAN
    if (
        plan is not None
        and plan.crash_at == name
        and plan.torn_bytes is not None
        and plan._countdown == 1
    ):
        return data[: plan.torn_bytes]
    return data


# -- post-hoc file corruption helpers ------------------------------------------------


def flip_bit(path: str, offset: int, bit: int = 0) -> None:
    """Flip one bit of the file at *path* (checksum-corruption injector)."""
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        if not byte:
            raise ValueError(f"offset {offset} is past the end of {path!r}")
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ (1 << bit)]))
        handle.flush()
        os.fsync(handle.fileno())


def truncate_file(path: str, num_bytes: int) -> None:
    """Cut the file at *path* down to *num_bytes* (torn-tail injector)."""
    with open(path, "r+b") as handle:
        handle.truncate(num_bytes)
        handle.flush()
        os.fsync(handle.fileno())


#: Regions of a framed checkpoint snapshot :func:`flip_snapshot_bit` can
#: target.  Offsets are computed from the WAL module's frame layout, so the
#: injector cannot drift from the writer.
SNAPSHOT_REGIONS = ("magic", "header", "payload")


def flip_snapshot_bit(path: str, region: str = "payload", bit: int = 0) -> None:
    """Flip one bit in a chosen *region* of a checkpoint snapshot file.

    ``"magic"`` corrupts the file identification, ``"header"`` the
    length/crc frame, ``"payload"`` the pickled state itself — recovery must
    report every one of them as ``snapshot_corrupt``, never restore from the
    file, and never crash with a raw pickle error.  (Imported lazily:
    :mod:`repro.engine.wal` imports this module.)
    """
    from repro.engine.wal import _HEADER, SNAPSHOT_MAGIC

    if region == "magic":
        offset = 0
    elif region == "header":
        offset = len(SNAPSHOT_MAGIC)
    elif region == "payload":
        offset = len(SNAPSHOT_MAGIC) + _HEADER.size
    else:
        raise ValueError(
            f"unknown snapshot region {region!r}; expected one of "
            f"{SNAPSHOT_REGIONS}"
        )
    flip_bit(path, offset, bit)


def flip_code_bit(backend, column: str, index: int = 0, bit: int = 0) -> None:
    """Flip one bit of a live in-memory code array (silent-corruption injector).

    Mutates ``backend``'s main code array for *column* directly — crucially
    *without* bumping the zone epoch, which is exactly what distinguishes
    corruption from a legitimate mutation.  The integrity layer must detect
    the flip on the next verified read (or scrub) and quarantine the unit.
    """
    codes = backend.compressed_column(column).codes  # live view of main
    if index >= len(codes):
        raise ValueError(
            f"index {index} is past the end of column {column!r}"
        )
    codes[index] = int(codes[index]) ^ (1 << bit)
