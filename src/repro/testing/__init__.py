"""Testing support: fault injection for the durability subsystem.

:mod:`repro.testing.faults` hosts the crash-point registry and the
injectors the recovery differential fuzzer drives.  It lives inside the
package (not under ``tests/``) because the engine itself calls
:func:`~repro.testing.faults.fault_point` at every WAL/merge/checkpoint
step — with no plan armed the calls are near-free no-ops.
"""

from repro.testing.faults import (
    CrashError,
    FaultPlan,
    fault_point,
    filter_write,
    flip_bit,
    inject,
    truncate_file,
)

__all__ = [
    "CrashError",
    "FaultPlan",
    "fault_point",
    "filter_write",
    "flip_bit",
    "inject",
    "truncate_file",
]
