"""Experiment registry and command-line entry point of the benchmark harness.

Each experiment module under :mod:`repro.bench.experiments` registers a
callable that reproduces one figure of the paper and returns an
:class:`~repro.bench.results.ExperimentResult`.  ``python -m repro.bench.runner``
runs one or all of them and prints the paper-style series.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional

from repro.bench.results import ExperimentResult

ExperimentFn = Callable[..., ExperimentResult]

_REGISTRY: Dict[str, ExperimentFn] = {}


def register(experiment_id: str) -> Callable[[ExperimentFn], ExperimentFn]:
    """Decorator registering an experiment under its figure/table id."""

    def decorator(fn: ExperimentFn) -> ExperimentFn:
        _REGISTRY[experiment_id] = fn
        return fn

    return decorator


def available_experiments() -> List[str]:
    _load_experiment_modules()
    return sorted(_REGISTRY)


def get_experiment(experiment_id: str) -> ExperimentFn:
    _load_experiment_modules()
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {sorted(_REGISTRY)}"
        ) from None


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one registered experiment."""
    return get_experiment(experiment_id)(**kwargs)


def run_all(fast: bool = True) -> List[ExperimentResult]:
    """Run every registered experiment (``fast`` keeps the default small scales)."""
    results = []
    for experiment_id in available_experiments():
        results.append(run_experiment(experiment_id))
    return results


def _load_experiment_modules() -> None:
    """Import the experiment modules so that their ``register`` calls run."""
    from repro.bench.experiments import (  # noqa: F401  (imported for side effects)
        fig6_accuracy,
        fig7_table_level,
        fig8_horizontal,
        fig9_vertical,
        fig10_tpch,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="Run the reproduction experiments")
    parser.add_argument(
        "experiment",
        nargs="?",
        default="all",
        help="experiment id (e.g. fig6a, fig7a, fig10) or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments")
    args = parser.parse_args(argv)

    if args.list:
        for experiment_id in available_experiments():
            print(experiment_id)
        return 0

    started = time.time()
    if args.experiment == "all":
        results = run_all()
    else:
        results = [run_experiment(args.experiment)]
    for result in results:
        print(result.render())
        print()
    print(f"(completed in {time.time() - started:.1f} s)")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    sys.exit(main())
