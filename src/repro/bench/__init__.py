"""Benchmark harness: reproduces every figure of the paper's evaluation."""

from repro.bench.results import ExperimentResult, ExperimentSeries, SeriesPoint
from repro.bench.runner import (
    available_experiments,
    get_experiment,
    register,
    run_all,
    run_experiment,
)

__all__ = [
    "ExperimentResult",
    "ExperimentSeries",
    "SeriesPoint",
    "available_experiments",
    "get_experiment",
    "register",
    "run_all",
    "run_experiment",
]
