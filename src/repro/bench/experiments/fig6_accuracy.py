"""Figure 6: accuracy of the cost model's runtime estimation.

The paper runs a constant aggregation query against a 30-attribute table,
varying (a) the data volume and (b) the number of aggregates, and compares the
storage advisor's estimates with the measured runtimes for both stores.  Both
sub-experiments should show a linear runtime trend per store with estimates
close to the measured curves.

Paper scale: 2 m – 20 m tuples.  Default reproduction scale: 5 k – 40 k tuples
(the engine is a pure-Python simulator; the trends are scale-free).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.bench.results import ExperimentResult, ExperimentSeries
from repro.bench.runner import register
from repro.config import DEFAULT_SEED, DeviceModelConfig
from repro.core.cost_model.calibration import CostModelCalibrator
from repro.core.cost_model.model import CostModel
from repro.engine.database import HybridDatabase
from repro.engine.types import Store
from repro.query.ast import AggregateFunction, AggregateSpec, AggregationQuery
from repro.workloads.datagen import paper_accuracy_table

DEFAULT_SIZES: Tuple[int, ...] = (5_000, 10_000, 20_000, 40_000)
DEFAULT_AGGREGATE_COUNTS: Tuple[int, ...] = (1, 2, 3, 4, 5)


def _calibrated_cost_model(
    device_config: Optional[DeviceModelConfig], calibrate: bool
) -> CostModel:
    if not calibrate:
        return CostModel(device_config=device_config)
    report = CostModelCalibrator(device_config, sizes=(1_000, 3_000, 8_000)).calibrate()
    return CostModel(parameters=report.parameters, device_config=device_config)


def _accuracy_query(num_aggregates: int) -> AggregationQuery:
    """The constant aggregation query of the accuracy experiments."""
    functions = (
        AggregateFunction.SUM,
        AggregateFunction.AVG,
        AggregateFunction.SUM,
        AggregateFunction.MAX,
        AggregateFunction.AVG,
    )
    aggregates = tuple(
        AggregateSpec(functions[i], f"kf_{i}") for i in range(num_aggregates)
    )
    return AggregationQuery(table="facts", aggregates=aggregates, group_by=("grp_0",))


def _measure_point(
    cost_model: CostModel,
    num_rows: int,
    num_aggregates: int,
    device_config: Optional[DeviceModelConfig],
    seed: int,
) -> dict:
    """Measured and estimated runtime of the accuracy query for both stores."""
    table = paper_accuracy_table(num_rows, seed=seed)
    query = _accuracy_query(num_aggregates)
    values = {}
    for store in Store:
        database = HybridDatabase(device_config)
        table.load_into(database, store)
        actual_ms = database.execute(query).runtime_ms
        profiles = cost_model.profiles_from_catalog(database.catalog)
        estimate_ms = cost_model.estimate_query_ms(query, {"facts": store}, profiles)
        values[f"{store.value}_actual_ms"] = actual_ms
        values[f"{store.value}_estimate_ms"] = estimate_ms
        values[f"{store.value}_error"] = (
            abs(estimate_ms - actual_ms) / actual_ms if actual_ms else 0.0
        )
    return values


COLUMNS = [
    "row_actual_ms",
    "row_estimate_ms",
    "row_error",
    "column_actual_ms",
    "column_estimate_ms",
    "column_error",
]


@register("fig6a")
def run_fig6a(
    sizes: Sequence[int] = DEFAULT_SIZES,
    num_aggregates: int = 2,
    device_config: Optional[DeviceModelConfig] = None,
    calibrate: bool = True,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    """Fig. 6(a): estimation accuracy for different data scales."""
    cost_model = _calibrated_cost_model(device_config, calibrate)
    result = ExperimentResult(
        experiment_id="fig6a",
        title="Accuracy of the runtime estimation - scale of data set",
        metadata={"sizes": list(sizes), "num_aggregates": num_aggregates},
    )
    series = result.add_series(
        ExperimentSeries(
            name="runtime vs. number of tuples",
            x_label="num_tuples",
            columns=list(COLUMNS),
            y_label="ms",
        )
    )
    for num_rows in sizes:
        series.add_point(num_rows, _measure_point(
            cost_model, num_rows, num_aggregates, device_config, seed))
    result.add_note(
        "Paper shape: both stores grow linearly with the data volume and the "
        "estimates track the measured runtimes closely."
    )
    return result


@register("fig6b")
def run_fig6b(
    aggregate_counts: Sequence[int] = DEFAULT_AGGREGATE_COUNTS,
    num_rows: int = 20_000,
    device_config: Optional[DeviceModelConfig] = None,
    calibrate: bool = True,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    """Fig. 6(b): estimation accuracy for different numbers of aggregates."""
    cost_model = _calibrated_cost_model(device_config, calibrate)
    result = ExperimentResult(
        experiment_id="fig6b",
        title="Accuracy of the runtime estimation - number of aggregates",
        metadata={"num_rows": num_rows, "aggregate_counts": list(aggregate_counts)},
    )
    series = result.add_series(
        ExperimentSeries(
            name="runtime vs. number of aggregates",
            x_label="num_aggregates",
            columns=list(COLUMNS),
            y_label="ms",
        )
    )
    for count in aggregate_counts:
        series.add_point(count, _measure_point(
            cost_model, num_rows, count, device_config, seed))
    result.add_note(
        "Paper shape: runtimes grow roughly linearly with the number of "
        "aggregates; the column store stays well below the row store."
    )
    return result
