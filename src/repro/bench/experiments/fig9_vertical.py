"""Figure 9: benefit of vertical partitioning on the workload runtime.

Two table shapes are evaluated:

* the **OLAP setting** — 10 keyfigures, 8 group-by attributes and only 2
  attributes used for selections/updates, and
* the **OLTP setting** — 18 attributes used for selections and updates, one
  keyfigure and one group-by attribute.

For each OLAP fraction the workload runs on a row-store table, a column-store
table and a vertically partitioned table (OLAP attributes in the column
store, OLTP attributes in the row store), as recommended by the advisor.

Paper shape: the vertical partitioning tracks the column-store curve but
below it, beating both unpartitioned layouts except for the pure OLTP
workload (0 % OLAP), where the plain row store wins.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.bench.results import ExperimentResult, ExperimentSeries
from repro.bench.runner import register
from repro.config import DEFAULT_SEED, DeviceModelConfig
from repro.engine.database import HybridDatabase
from repro.engine.partitioning import TablePartitioning, VerticalPartitionSpec
from repro.engine.types import Store
from repro.workloads.datagen import (
    SyntheticTable,
    olap_setting_table,
    oltp_setting_table,
)
from repro.workloads.mixed import MixedWorkloadConfig, build_mixed_workload
from repro.workloads.oltp import OltpMix

DEFAULT_FRACTIONS: Tuple[float, ...] = (0.0, 0.00625, 0.0125, 0.01875, 0.025)


def _vertical_partitioning(table: SyntheticTable) -> TablePartitioning:
    """The advisor's vertical split: OLTP attributes row-wise, the rest columnar."""
    roles = table.roles
    olap_columns = tuple(roles.keyfigures) + tuple(roles.group_attrs) + tuple(roles.filter_attrs)
    return TablePartitioning(
        vertical=VerticalPartitionSpec(
            row_store_columns=tuple(roles.oltp_attrs),
            column_store_columns=olap_columns,
        )
    )


def _run_setting(
    setting: str,
    fractions: Sequence[float],
    num_rows: int,
    num_queries: int,
    device_config: Optional[DeviceModelConfig],
    seed: int,
) -> ExperimentSeries:
    build = olap_setting_table if setting == "olap" else oltp_setting_table
    table = build(num_rows, seed=seed)
    series = ExperimentSeries(
        name=f"{setting} setting: workload runtime vs. OLAP fraction",
        x_label="olap_fraction",
        columns=["row_only_s", "column_only_s", "vertical_partitioned_s"],
        y_label="seconds",
    )
    oltp_mix = OltpMix(point_select_fraction=0.3, update_fraction=0.55, insert_fraction=0.15)
    for index, fraction in enumerate(fractions):
        workload = build_mixed_workload(
            table.roles,
            MixedWorkloadConfig(
                num_queries=num_queries,
                olap_fraction=fraction,
                oltp_mix=oltp_mix,
                seed=seed + index,
            ),
        )
        values = {}
        for store in Store:
            database = HybridDatabase(device_config)
            build(num_rows, seed=seed).load_into(database, store)
            values[f"{store.value}_only_s"] = database.run_workload(workload).total_runtime_s

        database = HybridDatabase(device_config)
        fresh = build(num_rows, seed=seed)
        fresh.load_into(database, Store.COLUMN)
        database.apply_partitioning(fresh.schema.name, _vertical_partitioning(fresh))
        values["vertical_partitioned_s"] = database.run_workload(workload).total_runtime_s
        series.add_point(fraction, values)
    return series


@register("fig9a")
def run_fig9a(
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    num_rows: int = 20_000,
    num_queries: int = 300,
    device_config: Optional[DeviceModelConfig] = None,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    """Fig. 9(a): benefit of vertical partitioning in the OLAP setting."""
    result = ExperimentResult(
        experiment_id="fig9a",
        title="Benefit of vertical partitioning - OLAP setting",
        metadata={"num_rows": num_rows, "num_queries": num_queries},
    )
    result.add_series(
        _run_setting("olap", fractions, num_rows, num_queries, device_config, seed)
    )
    result.add_note(
        "Paper shape: the vertically partitioned table is fastest for every "
        "mixed workload; only the pure OLTP workload favours the plain row store."
    )
    return result


@register("fig9b")
def run_fig9b(
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    num_rows: int = 20_000,
    num_queries: int = 300,
    device_config: Optional[DeviceModelConfig] = None,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    """Fig. 9(b): benefit of vertical partitioning in the OLTP setting."""
    result = ExperimentResult(
        experiment_id="fig9b",
        title="Benefit of vertical partitioning - OLTP setting",
        metadata={"num_rows": num_rows, "num_queries": num_queries},
    )
    result.add_series(
        _run_setting("oltp", fractions, num_rows, num_queries, device_config, seed)
    )
    result.add_note(
        "Paper shape: as in the OLAP setting but with smaller absolute "
        "runtimes; vertical partitioning still beats both pure layouts for "
        "mixed workloads."
    )
    return result
