"""Figure 8: workload runtime for different horizontal partitionings.

The paper fixes a mixed workload (5 % OLAP, update queries addressing 10 % of
the data — the "OLTP data") and then varies how much of the table is kept in a
row-store partition, from 0 % (everything columnar) to 20 % (the hot 10 % plus
additional random data).  The workload runtime is minimal when exactly the
recommended 10 % of hot data lives in the row store and grows roughly linearly
in both directions.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.bench.results import ExperimentResult, ExperimentSeries
from repro.bench.runner import register
from repro.config import DEFAULT_SEED, DeviceModelConfig
from repro.core.advisor.partition_advisor import PartitionAdvisor
from repro.core.cost_model.estimator import TableProfile
from repro.engine.database import HybridDatabase
from repro.engine.partitioning import HorizontalPartitionSpec, TablePartitioning
from repro.engine.statistics import compute_table_statistics
from repro.engine.types import Store
from repro.query.predicates import ge
from repro.query.workload import Workload
from repro.workloads.datagen import SyntheticTableConfig, build_table
from repro.workloads.mixed import MixedWorkloadConfig, build_mixed_workload
from repro.workloads.oltp import HotRegion, OltpMix

DEFAULT_ROW_STORE_FRACTIONS: Tuple[float, ...] = (
    0.0, 0.025, 0.05, 0.075, 0.10, 0.125, 0.15, 0.175, 0.20,
)


def _build_database(
    num_rows: int,
    row_store_fraction: float,
    device_config: Optional[DeviceModelConfig],
    seed: int,
) -> HybridDatabase:
    """Build the table with the given fraction of (trailing) rows in the row store."""
    database = HybridDatabase(device_config)
    table = build_table(SyntheticTableConfig(num_rows=num_rows, seed=seed))
    if row_store_fraction <= 0.0:
        table.load_into(database, Store.COLUMN)
        return database
    threshold = int(num_rows * (1.0 - row_store_fraction))
    database.create_table(table.schema, Store.COLUMN)
    database.load_rows(table.schema.name, table.rows)
    partitioning = TablePartitioning(
        horizontal=HorizontalPartitionSpec(
            predicate=ge("id", threshold), hot_store=Store.ROW, cold_store=Store.COLUMN
        )
    )
    database.apply_partitioning(table.schema.name, partitioning)
    return database


@register("fig8")
def run_fig8(
    row_store_fractions: Sequence[float] = DEFAULT_ROW_STORE_FRACTIONS,
    num_rows: int = 20_000,
    num_queries: int = 400,
    olap_fraction: float = 0.05,
    hot_fraction: float = 0.10,
    device_config: Optional[DeviceModelConfig] = None,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    """Fig. 8: runtime of the workload for different horizontal partitionings."""
    table = build_table(SyntheticTableConfig(num_rows=num_rows, seed=seed))
    hot_low = int(num_rows * (1.0 - hot_fraction))
    hot_region = HotRegion(
        column="id", low=hot_low, high=num_rows - 1, span=max(10, num_rows // 200)
    )
    workload = build_mixed_workload(
        table.roles,
        MixedWorkloadConfig(
            num_queries=num_queries,
            olap_fraction=olap_fraction,
            oltp_mix=OltpMix(
                point_select_fraction=0.2, update_fraction=0.6, insert_fraction=0.2
            ),
            hot_region=hot_region,
            seed=seed,
        ),
    )

    result = ExperimentResult(
        experiment_id="fig8",
        title="Runtime of workload for different horizontal partitionings",
        metadata={
            "num_rows": num_rows,
            "num_queries": num_queries,
            "olap_fraction": olap_fraction,
            "hot_fraction": hot_fraction,
        },
    )
    series = result.add_series(
        ExperimentSeries(
            name="workload runtime vs. fraction of row-store data",
            x_label="row_store_fraction",
            columns=["runtime_s"],
            y_label="seconds",
        )
    )
    for fraction in row_store_fractions:
        database = _build_database(num_rows, fraction, device_config, seed)
        runtime = database.run_workload(workload).total_runtime_s
        series.add_point(fraction, {"runtime_s": runtime})

    # What would the partition advisor itself recommend for this workload?
    reference = HybridDatabase(device_config)
    build_table(SyntheticTableConfig(num_rows=num_rows, seed=seed)).load_into(
        reference, Store.COLUMN
    )
    profile = TableProfile(
        schema=table.schema,
        statistics=compute_table_statistics(reference.table_object(table.schema.name)),
    )
    decision = PartitionAdvisor().recommend_for_table(
        table.schema.name, workload, profile
    )
    if decision.hot_region is not None:
        column, low, high = decision.hot_region
        recommended_fraction = (num_rows - low) / num_rows if isinstance(low, (int, float)) else None
        result.metadata["advisor_hot_region"] = f"{column} in [{low}, {high}]"
        if recommended_fraction is not None:
            result.metadata["advisor_row_store_fraction"] = round(recommended_fraction, 4)
    result.add_note(
        "Paper shape: the runtime is minimal at the recommended ~10% row-store "
        "fraction and increases when the row-store partition shrinks or grows."
    )
    return result
