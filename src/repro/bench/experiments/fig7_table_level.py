"""Figure 7: quality of the table-level store recommendation.

(a) A single 30-attribute table under mixed workloads with an increasing OLAP
fraction: the runtime is measured with the table kept in the row store only,
in the column store only, and in the store recommended by the advisor.

(b) The same sweep for a star schema: the small dimension table is pinned to
the row store (as the paper does) and the advisor decides the fact table's
store; the OLAP queries join the fact table with the dimension table.

Paper shape: the row store wins at very small OLAP fractions, the column
store beyond a small crossover, and the advisor's recommendation tracks the
minimum of the two curves (missing it only where the curves nearly touch).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.bench.results import ExperimentResult, ExperimentSeries
from repro.bench.runner import register
from repro.config import DEFAULT_SEED, DeviceModelConfig
from repro.core.advisor.advisor import StorageAdvisor
from repro.core.cost_model.calibration import CostModelCalibrator
from repro.engine.database import HybridDatabase
from repro.engine.types import Store
from repro.query.workload import Workload
from repro.workloads.datagen import SyntheticTableConfig, build_table
from repro.workloads.mixed import MixedWorkloadConfig, build_mixed_workload
from repro.workloads.star_schema import StarSchemaConfig, build_star_schema, build_star_workload

DEFAULT_FRACTIONS: Tuple[float, ...] = (0.0, 0.0125, 0.025, 0.0375, 0.05)


def _make_advisor(device_config: Optional[DeviceModelConfig], calibrate: bool) -> StorageAdvisor:
    advisor = StorageAdvisor(device_config=device_config)
    if calibrate:
        advisor.initialize_cost_model(
            CostModelCalibrator(device_config, sizes=(1_000, 3_000, 8_000))
        )
    return advisor


@register("fig7a")
def run_fig7a(
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    num_rows: int = 20_000,
    num_queries: int = 300,
    device_config: Optional[DeviceModelConfig] = None,
    calibrate: bool = True,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    """Fig. 7(a): recommendation quality for single-table workloads."""
    advisor = _make_advisor(device_config, calibrate)
    table = build_table(SyntheticTableConfig(num_rows=num_rows, seed=seed))

    result = ExperimentResult(
        experiment_id="fig7a",
        title="Recommendation quality - single-table queries",
        metadata={"num_rows": num_rows, "num_queries": num_queries},
    )
    series = result.add_series(
        ExperimentSeries(
            name="workload runtime vs. OLAP fraction",
            x_label="olap_fraction",
            columns=["row_only_s", "column_only_s", "advisor_s"],
            y_label="seconds",
        )
    )

    for index, fraction in enumerate(fractions):
        workload = build_mixed_workload(
            table.roles,
            MixedWorkloadConfig(
                num_queries=num_queries, olap_fraction=fraction, seed=seed + index
            ),
        )
        values = {}
        for store in Store:
            database = HybridDatabase(device_config)
            build_table(SyntheticTableConfig(num_rows=num_rows, seed=seed)).load_into(
                database, store
            )
            values[f"{store.value}_only_s"] = database.run_workload(workload).total_runtime_s

        # Advisor: recommend on a fresh copy, apply, then run the workload.
        database = HybridDatabase(device_config)
        build_table(SyntheticTableConfig(num_rows=num_rows, seed=seed)).load_into(
            database, Store.ROW
        )
        recommendation = advisor.recommend(database, workload, include_partitioning=False)
        advisor.apply(database, recommendation)
        values["advisor_s"] = database.run_workload(workload).total_runtime_s
        recommended = recommendation.choice_for(table.roles.table)
        series.add_point(
            fraction,
            values,
            annotations={"recommended_store": getattr(recommended, "value", str(recommended))},
        )
    result.add_note(
        "Paper shape: row store wins at ~0-2.5% OLAP, column store beyond; the "
        "advisor's runtime follows the lower envelope of the two curves."
    )
    return result


@register("fig7b")
def run_fig7b(
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    fact_rows: int = 40_000,
    dimension_rows: int = 1_000,
    num_queries: int = 300,
    device_config: Optional[DeviceModelConfig] = None,
    calibrate: bool = True,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    """Fig. 7(b): recommendation quality for workloads with join queries."""
    advisor = _make_advisor(device_config, calibrate)
    config = StarSchemaConfig(fact_rows=fact_rows, dimension_rows=dimension_rows, seed=seed)
    star = build_star_schema(config)

    result = ExperimentResult(
        experiment_id="fig7b",
        title="Recommendation quality - join queries (star schema)",
        metadata={
            "fact_rows": fact_rows,
            "dimension_rows": dimension_rows,
            "num_queries": num_queries,
        },
    )
    series = result.add_series(
        ExperimentSeries(
            name="workload runtime vs. OLAP fraction",
            x_label="olap_fraction",
            columns=["row_only_s", "column_only_s", "advisor_s"],
            y_label="seconds",
        )
    )

    for index, fraction in enumerate(fractions):
        workload = build_star_workload(
            star, num_queries=num_queries, olap_fraction=fraction, seed=seed + index
        )
        values = {}
        # Baselines: the dimension table stays in the row store (as in the
        # paper); only the fact table's store differs.
        for store in Store:
            database = HybridDatabase(device_config)
            build_star_schema(config).load_into(
                database, fact_store=store, dimension_store=Store.ROW
            )
            values[f"{store.value}_only_s"] = database.run_workload(workload).total_runtime_s

        database = HybridDatabase(device_config)
        build_star_schema(config).load_into(
            database, fact_store=Store.ROW, dimension_store=Store.ROW
        )
        recommendation = advisor.recommend(database, workload, include_partitioning=False)
        advisor.apply(database, recommendation)
        values["advisor_s"] = database.run_workload(workload).total_runtime_s
        recommended = recommendation.choice_for(star.config.fact_name)
        series.add_point(
            fraction,
            values,
            annotations={"recommended_store": getattr(recommended, "value", str(recommended))},
        )
    result.add_note(
        "Paper shape: very similar to the single-table case; the advisor "
        "recommends the optimal store for the fact table."
    )
    return result
