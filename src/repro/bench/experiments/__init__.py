"""Experiment modules, one per figure of the paper's evaluation section."""

from repro.bench.experiments import (  # noqa: F401
    fig6_accuracy,
    fig7_table_level,
    fig8_horizontal,
    fig9_vertical,
    fig10_tpch,
)

__all__ = [
    "fig6_accuracy",
    "fig7_table_level",
    "fig8_horizontal",
    "fig9_vertical",
    "fig10_tpch",
]
