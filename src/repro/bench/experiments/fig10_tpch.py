"""Figure 10: combination and comparison of the approaches on TPC-H.

The paper loads TPC-H (scale factor 1) and runs a 5000-query mixed workload
with about 1 % OLAP queries under four storage layouts:

* **RS only** — every table in the row store,
* **CS only** — every table in the column store,
* **Table**   — the advisor's table-level recommendation,
* **Partitioned** — the advisor's recommendation including horizontal and
  vertical partitioning.

Paper shape: RS-only and CS-only are the slowest, the table-level
recommendation is clearly faster, and the partitioned layout is fastest —
about 40 % faster than the table-level layout and about 65 % faster than
CS-only.  The reproduction uses a scaled-down data set and workload (both
configurable); the ordering and the rough magnitude of the improvements are
what we reproduce.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.bench.results import ExperimentResult, ExperimentSeries
from repro.bench.runner import register
from repro.config import DEFAULT_SEED, DeviceModelConfig
from repro.core.advisor.advisor import StorageAdvisor
from repro.core.advisor.recommendation import Recommendation
from repro.core.cost_model.calibration import CostModelCalibrator
from repro.engine.database import HybridDatabase
from repro.engine.types import Store
from repro.query.workload import Workload
from repro.workloads.tpch.datagen import TpchData, TpchGenerator
from repro.workloads.tpch.workload import build_tpch_workload


def _fresh_database(
    data: TpchData, store: Store, device_config: Optional[DeviceModelConfig]
) -> HybridDatabase:
    database = HybridDatabase(device_config)
    data.load_into(database, default_store=store)
    return database


def _run_layout(
    data: TpchData,
    workload: Workload,
    device_config: Optional[DeviceModelConfig],
    advisor: Optional[StorageAdvisor] = None,
    include_partitioning: bool = False,
    base_store: Store = Store.ROW,
) -> Dict[str, object]:
    database = _fresh_database(data, base_store, device_config)
    recommendation: Optional[Recommendation] = None
    if advisor is not None:
        recommendation = advisor.recommend(
            database, workload, include_partitioning=include_partitioning
        )
        advisor.apply(database, recommendation)
    runtime_s = database.run_workload(workload).total_runtime_s
    return {"runtime_s": runtime_s, "recommendation": recommendation, "database": database}


@register("fig10")
def run_fig10(
    scale_factor: float = 0.005,
    num_queries: int = 2_000,
    olap_fraction: float = 0.01,
    device_config: Optional[DeviceModelConfig] = None,
    calibrate: bool = True,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    """Fig. 10: comparison of decisions on different levels (TPC-H scenario)."""
    generator = TpchGenerator(scale_factor=scale_factor, seed=seed)
    data = generator.generate_all()
    workload = build_tpch_workload(
        data, num_queries=num_queries, olap_fraction=olap_fraction, seed=seed
    )

    advisor = StorageAdvisor(device_config=device_config)
    if calibrate:
        advisor.initialize_cost_model(
            CostModelCalibrator(device_config, sizes=(1_000, 3_000, 8_000))
        )

    runs = {
        "rs_only": _run_layout(data, workload, device_config, base_store=Store.ROW),
        "cs_only": _run_layout(data, workload, device_config, base_store=Store.COLUMN),
        "table": _run_layout(
            data, workload, device_config, advisor=advisor, include_partitioning=False
        ),
        "partitioned": _run_layout(
            data, workload, device_config, advisor=advisor, include_partitioning=True
        ),
    }

    result = ExperimentResult(
        experiment_id="fig10",
        title="Comparison of decisions on different levels (TPC-H scenario)",
        metadata={
            "scale_factor": scale_factor,
            "num_queries": num_queries,
            "olap_fraction": olap_fraction,
            "lineitem_rows": data.num_rows("lineitem"),
            "orders_rows": data.num_rows("orders"),
        },
    )
    series = result.add_series(
        ExperimentSeries(
            name="workload runtime per storage layout",
            x_label="layout",
            columns=["runtime_s"],
            y_label="seconds",
        )
    )
    for layout in ("rs_only", "cs_only", "table", "partitioned"):
        series.add_point(layout, {"runtime_s": runs[layout]["runtime_s"]})

    table_runtime = runs["table"]["runtime_s"]
    partitioned_runtime = runs["partitioned"]["runtime_s"]
    cs_runtime = runs["cs_only"]["runtime_s"]
    if table_runtime > 0:
        result.metadata["partitioned_vs_table_improvement"] = round(
            1.0 - partitioned_runtime / table_runtime, 4
        )
    if cs_runtime > 0:
        result.metadata["partitioned_vs_cs_improvement"] = round(
            1.0 - partitioned_runtime / cs_runtime, 4
        )

    table_recommendation = runs["table"]["recommendation"]
    if table_recommendation is not None:
        column_tables = sorted(
            table
            for table, choice in table_recommendation.layout.choices.items()
            if choice is Store.COLUMN
        )
        result.metadata["table_level_column_tables"] = ", ".join(column_tables) or "(none)"
    partitioned_recommendation = runs["partitioned"]["recommendation"]
    if partitioned_recommendation is not None:
        partitioned_tables = sorted(
            partitioned_recommendation.layout.partitioned_tables()
        )
        result.metadata["partitioned_tables"] = ", ".join(partitioned_tables) or "(none)"

    result.add_note(
        "Paper shape: RS-only and CS-only are slowest; the table-level "
        "recommendation is clearly faster; the partitioned layout is fastest "
        "(paper: ~40% over Table, ~65% over CS-only)."
    )
    return result
