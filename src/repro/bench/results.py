"""Result containers and text rendering for the experiment harness.

Every experiment produces an :class:`ExperimentResult` holding one or more
:class:`ExperimentSeries` — the rows/series the corresponding figure or table
of the paper reports.  The containers render as aligned text tables so that
the benchmark harness and the examples can print paper-style output, and they
expose the raw numbers for the tests that assert the qualitative shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


@dataclass
class SeriesPoint:
    """One x position of a series with its measured values."""

    x: Any
    values: Dict[str, float] = field(default_factory=dict)
    annotations: Dict[str, Any] = field(default_factory=dict)

    def value(self, column: str) -> float:
        return self.values[column]


@dataclass
class ExperimentSeries:
    """A sweep over one parameter with several measured columns."""

    name: str
    x_label: str
    columns: List[str]
    y_label: str = "runtime"
    points: List[SeriesPoint] = field(default_factory=list)

    def add_point(self, x: Any, values: Dict[str, float],
                  annotations: Optional[Dict[str, Any]] = None) -> SeriesPoint:
        point = SeriesPoint(x=x, values=dict(values), annotations=dict(annotations or {}))
        self.points.append(point)
        return point

    def column(self, name: str) -> List[float]:
        """All values of one column, in x order."""
        return [point.values[name] for point in self.points]

    def xs(self) -> List[Any]:
        return [point.x for point in self.points]

    def to_rows(self) -> List[List[str]]:
        header = [self.x_label] + self.columns
        rows = [header]
        for point in self.points:
            row = [_format_cell(point.x)]
            for column in self.columns:
                row.append(_format_cell(point.values.get(column)))
            rows.append(row)
        return rows

    def to_text(self) -> str:
        """Render the series as an aligned text table."""
        rows = self.to_rows()
        widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
        lines = [f"# {self.name} ({self.y_label})"]
        for index, row in enumerate(rows):
            lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
            if index == 0:
                lines.append("  ".join("-" * width for width in widths))
        return "\n".join(lines)

    def to_csv(self) -> str:
        rows = self.to_rows()
        return "\n".join(",".join(row) for row in rows)


@dataclass
class ExperimentResult:
    """The complete result of one experiment (one figure/table of the paper)."""

    experiment_id: str
    title: str
    series: List[ExperimentSeries] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    metadata: Dict[str, Any] = field(default_factory=dict)

    def add_series(self, series: ExperimentSeries) -> ExperimentSeries:
        self.series.append(series)
        return series

    def series_named(self, name: str) -> ExperimentSeries:
        for series in self.series:
            if series.name == name:
                return series
        raise KeyError(f"no series named {name!r} in experiment {self.experiment_id}")

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        """Render the whole experiment as text (title, series tables, notes)."""
        lines = [f"=== {self.experiment_id}: {self.title} ==="]
        for key, value in sorted(self.metadata.items()):
            lines.append(f"  {key}: {value}")
        for series in self.series:
            lines.append("")
            lines.append(series.to_text())
        if self.notes:
            lines.append("")
            lines.append("Notes:")
            for note in self.notes:
                lines.append(f"  - {note}")
        return "\n".join(lines)


def _format_cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.1f}"
        if abs(value) >= 1:
            return f"{value:.3f}"
        return f"{value:.4f}"
    return str(value)
