"""The paper's primary contribution: the storage advisor and its cost model."""

from repro.core.advisor import (
    OnlineAdvisorMonitor,
    PartitionAdvisor,
    Recommendation,
    StorageAdvisor,
    StorageLayout,
    TableLevelAdvisor,
    TableRecommendation,
)
from repro.core.cost_model import (
    CostModel,
    CostModelCalibrator,
    CostModelParameters,
    TableProfile,
    analytic_parameters,
)
from repro.core.statistics import WorkloadStatistics

__all__ = [
    "CostModel",
    "CostModelCalibrator",
    "CostModelParameters",
    "OnlineAdvisorMonitor",
    "PartitionAdvisor",
    "Recommendation",
    "StorageAdvisor",
    "StorageLayout",
    "TableLevelAdvisor",
    "TableProfile",
    "TableRecommendation",
    "WorkloadStatistics",
    "analytic_parameters",
]
