"""The storage advisor's cost model (Section 3 of the paper)."""

from repro.core.cost_model.adjustments import (
    AdjustmentFunction,
    ConstantAdjustment,
    LinearAdjustment,
    PiecewiseLinearAdjustment,
)
from repro.core.cost_model.calibration import (
    CalibrationReport,
    CalibrationSample,
    CostModelCalibrator,
)
from repro.core.cost_model.estimator import (
    CostContribution,
    TableProfile,
    query_contributions,
)
from repro.core.cost_model.model import CostModel, WorkloadEstimate
from repro.core.cost_model.parameters import (
    COST_TERMS,
    CostModelParameters,
    CostTermWeights,
    analytic_parameters,
)

__all__ = [
    "COST_TERMS",
    "AdjustmentFunction",
    "CalibrationReport",
    "CalibrationSample",
    "ConstantAdjustment",
    "CostContribution",
    "CostModel",
    "CostModelCalibrator",
    "CostModelParameters",
    "CostTermWeights",
    "LinearAdjustment",
    "PiecewiseLinearAdjustment",
    "TableProfile",
    "WorkloadEstimate",
    "analytic_parameters",
    "query_contributions",
]
