"""Cost-term extraction: turning a query plus data characteristics into work.

The estimator computes, for a query and a hypothetical store assignment, the
amount of work of each kind the hybrid store would perform — without touching
any data.  Only *query characteristics* (query type, number of aggregates and
their functions, grouping, selectivity, number of affected rows/columns) and
*data characteristics* from the catalog (row counts, widths, data types,
distinct counts, compression rates) enter the computation, exactly the
inputs the paper's cost model uses (Section 3.1).

The result is a list of :class:`CostContribution` objects (one for the base
table plus one per joined table), which the
:class:`~repro.core.cost_model.model.CostModel` turns into milliseconds using
its per-store parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.engine.column_store import SCAN_MATERIALIZATION_THRESHOLD
from repro.engine.schema import TableSchema
from repro.engine.statistics import TableStatistics
from repro.engine.types import Store
from repro.engine.zonemap import (
    ColumnZone,
    is_nan,
    zone_can_match,
    zone_pruning_enabled,
)
from repro.errors import EstimationError
from repro.query.ast import (
    AggregationQuery,
    DeleteQuery,
    InsertQuery,
    Query,
    QueryType,
    SelectQuery,
    UpdateQuery,
    split_qualified,
)
from repro.query.predicates import Between, CompareOp, Comparison, Predicate


@dataclass(frozen=True)
class TableProfile:
    """Schema plus statistics of one table — the estimator's view of the catalog."""

    schema: TableSchema
    statistics: TableStatistics

    @property
    def num_rows(self) -> int:
        return self.statistics.num_rows

    @property
    def row_width_bytes(self) -> int:
        return self.schema.row_width_bytes

    def column_width(self, name: str) -> int:
        return self.schema.column(name).width_bytes

    def column_compressed_bytes(self, name: str) -> float:
        if self.statistics.has_column(name):
            return self.statistics.column_compressed_bytes(name)
        return self.num_rows * self.column_width(name)

    def column_code_bytes(self, name: str) -> float:
        """Bytes a column-store scan of *name* reads (code array only)."""
        if self.statistics.has_column(name):
            return self.statistics.column_code_bytes(name)
        return self.num_rows * self.column_width(name)

    def dtype_cost_factor(self, name: str) -> float:
        return self.schema.column(name).dtype.cost_factor


@dataclass
class CostContribution:
    """Work of one table's share of a query, to be priced with store weights."""

    table: str
    store: Store
    query_type: QueryType
    terms: Dict[str, float] = field(default_factory=dict)

    def add(self, term: str, amount: float) -> None:
        if amount:
            self.terms[term] = self.terms.get(term, 0.0) + amount


def query_contributions(
    query: Query,
    store_assignment: Mapping[str, Store],
    profiles: Mapping[str, TableProfile],
) -> List[CostContribution]:
    """Compute the per-table cost contributions of *query*.

    ``store_assignment`` maps every table referenced by the query to the store
    it is (hypothetically) kept in; ``profiles`` supplies the schemas and
    statistics.
    """
    for table in query.tables:
        if table not in store_assignment:
            raise EstimationError(f"no store assignment for table {table!r}")
        if table not in profiles:
            raise EstimationError(f"no statistics for table {table!r}")

    if isinstance(query, AggregationQuery):
        return _aggregation_contributions(query, store_assignment, profiles)
    if isinstance(query, SelectQuery):
        return [_select_contribution(query, store_assignment, profiles)]
    if isinstance(query, InsertQuery):
        return [_insert_contribution(query, store_assignment, profiles)]
    if isinstance(query, UpdateQuery):
        return [_update_contribution(query, store_assignment, profiles)]
    if isinstance(query, DeleteQuery):
        return [_delete_contribution(query, store_assignment, profiles)]
    raise EstimationError(f"unsupported query type: {type(query).__name__}")


# -- shared helpers ---------------------------------------------------------------


def predicate_prunes_profile(
    predicate: Optional[Predicate], profile: TableProfile
) -> bool:
    """Whether the catalog statistics prove *predicate* matches no row.

    The estimated counterpart of the executor's zone-map pruning: the
    per-table ``min_value``/``max_value`` statistics act as a single
    table-wide zone.  When they prove the predicate disjoint, the scan
    terms are dropped from the estimate — mirroring the access path, which
    skips the scan entirely.  Null counts are unknown at this level, so all
    NULL-based proofs stay conservative.
    """
    if predicate is None or not zone_pruning_enabled():
        return False
    zones = {}
    for name in predicate.columns():
        _, column = split_qualified(name)
        if not profile.statistics.has_column(column):
            continue
        stats = profile.statistics.column(column)
        if stats.min_value is None or stats.max_value is None:
            continue  # unknown range: no synopsis, never prunes
        if is_nan(stats.min_value) or is_nan(stats.max_value):
            # NaN-polluted bounds (NaN propagates through the stats
            # collectors' min/max) cannot serve as zone bounds — every
            # comparison against them is false, which would read as a
            # "provably empty" proof for predicates that do match rows.
            continue
        zones[name] = ColumnZone(
            min_value=stats.min_value,
            max_value=stats.max_value,
            null_count=None,
            num_rows=profile.num_rows,
        )
    return not zone_can_match(predicate, zones, profile.num_rows)


def partition_scan_fraction(
    predicate: Optional[Predicate], profile: TableProfile
) -> float:
    """Estimated fraction of the table's rows in partitions the scan keeps.

    The estimated counterpart of partition-granular zone pruning: the
    catalog records per-partition min/max/null-count statistics for
    partitioned tables (:class:`~repro.engine.statistics
    .PartitionStatistics`, derived from the exact zone synopses), so the
    estimator prices exactly the partitions the executor will scan instead
    of approximating from the whole-table range.  Unpartitioned tables (no
    partition statistics) degrade to the whole-table proof of
    :func:`predicate_prunes_profile` — 0.0 (provably empty, scan terms
    dropped) or 1.0.  Only *read* estimates consume this: the write path
    keeps seed-identical accounting, so DML estimates stay unscaled.
    """
    if predicate is None or not zone_pruning_enabled():
        return 1.0
    partitions = getattr(profile.statistics, "partitions", ())
    if not partitions:
        return 0.0 if predicate_prunes_profile(predicate, profile) else 1.0
    total = sum(partition.num_rows for partition in partitions)
    if total <= 0:
        return 1.0
    surviving = 0
    for partition in partitions:
        if partition.num_rows == 0:
            continue
        zones = {}
        for name in predicate.columns():
            _, column = split_qualified(name)
            stats = partition.columns.get(column)
            if stats is None:
                continue
            if is_nan(stats.min_value) or is_nan(stats.max_value):
                continue  # defensive: NaN bounds cannot serve as a zone
            zones[name] = ColumnZone(
                min_value=stats.min_value,
                max_value=stats.max_value,
                null_count=stats.null_count,
                num_rows=partition.num_rows,
                has_nan=stats.has_nan,
            )
        if zone_can_match(predicate, zones, partition.num_rows):
            surviving += partition.num_rows
    return surviving / total


def _selectivity(predicate: Optional[Predicate], profile: TableProfile) -> float:
    if predicate is None:
        return 1.0
    selectivity = predicate.estimate_selectivity(profile.statistics.columns)
    return min(1.0, max(0.0, selectivity))


def _matched_rows(predicate: Optional[Predicate], profile: TableProfile) -> float:
    if predicate is None:
        return float(profile.num_rows)
    return _selectivity(predicate, profile) * profile.num_rows


def _uses_primary_key_index(predicate: Optional[Predicate], schema: TableSchema) -> bool:
    """Whether the row store can answer *predicate* with its primary-key index.

    The row store maintains both an equality and a range index on a
    single-column primary key, so comparisons and BETWEEN ranges on that
    column avoid a table scan.
    """
    if predicate is None:
        return False
    primary_key = schema.primary_key
    if len(primary_key) != 1:
        return False
    key = primary_key[0]
    if isinstance(predicate, Comparison) and predicate.column == key:
        return True
    if isinstance(predicate, Between) and predicate.column == key:
        return True
    return False


def _charge_row_store_lookup(
    contribution: CostContribution,
    predicate: Optional[Predicate],
    profile: TableProfile,
    matched: float,
    scan_fraction: float = 1.0,
) -> None:
    """Terms for locating matching rows in the row store.

    ``scan_fraction`` scales the scan-volume terms to the partitions the
    zone maps keep (matched rows only live in surviving partitions, so the
    matched-row terms stay unscaled).
    """
    if predicate is None:
        return
    if _uses_primary_key_index(predicate, profile.schema):
        contribution.add("index_probes", 1.0)
        contribution.add("random_fetches", matched)
    else:
        contribution.add(
            "row_scan_bytes",
            profile.num_rows * profile.row_width_bytes * scan_fraction,
        )
        contribution.add("pred_evals", float(profile.num_rows) * scan_fraction)


def _charge_column_store_lookup(
    contribution: CostContribution,
    predicate: Optional[Predicate],
    profile: TableProfile,
    scan_fraction: float = 1.0,
) -> None:
    """Terms for locating matching rows in the column store (implicit index)."""
    if predicate is None:
        return
    contribution.add("index_probes", 1.0)
    for name in sorted(predicate.columns()):
        _, column = split_qualified(name)
        if profile.schema.has_column(column):
            contribution.add(
                "column_scan_bytes",
                profile.column_code_bytes(column) * scan_fraction,
            )
    contribution.add("vector_compares", float(profile.num_rows) * scan_fraction)


def _charge_column_store_materialisation(
    contribution: CostContribution,
    profile: TableProfile,
    columns,
    matched: float,
    scan_fraction: float = 1.0,
) -> None:
    """Terms for materialising *matched* rows of *columns* from the column store.

    Mirrors the engine's access-path choice: sparse position lists pay tuple
    reconstruction per cell, dense ones a sequential scan of the code arrays
    (scaled to the surviving partitions) plus a decode per qualifying value.
    """
    if profile.num_rows <= 0 or not columns:
        return
    selectivity = matched / profile.num_rows
    if selectivity <= SCAN_MATERIALIZATION_THRESHOLD:
        contribution.add("reconstructions", matched * len(columns))
        return
    for column in sorted(columns):
        if profile.schema.has_column(column):
            contribution.add(
                "column_scan_bytes",
                profile.column_code_bytes(column) * scan_fraction,
            )
    contribution.add("decodes", matched * len(columns))


# -- aggregation queries --------------------------------------------------------------


def _aggregation_contributions(
    query: AggregationQuery,
    store_assignment: Mapping[str, Store],
    profiles: Mapping[str, TableProfile],
) -> List[CostContribution]:
    base_profile = profiles[query.table]
    base_store = store_assignment[query.table]
    base = CostContribution(query.table, base_store, QueryType.AGGREGATION)
    base.add("queries", 1.0)

    scan_fraction = partition_scan_fraction(query.predicate, base_profile)
    pruned = scan_fraction == 0.0
    matched = 0.0 if pruned else _matched_rows(query.predicate, base_profile)

    # Base-table columns the aggregation has to read (aggregates, grouping,
    # join keys) — the predicate columns are accounted for by the lookup terms.
    needed = set()
    for spec in query.aggregates:
        owner, column = split_qualified(spec.column)
        if (owner or query.table) == query.table and column != "*":
            needed.add(column)
    for name in query.group_by:
        owner, column = split_qualified(name)
        if (owner or query.table) == query.table:
            needed.add(column)
    for join in query.joins:
        needed.add(join.left_column)
    needed = {name for name in needed if base_profile.schema.has_column(name)}
    if not needed:
        narrowest = min(
            base_profile.schema.columns, key=lambda column: column.width_bytes
        )
        needed = {narrowest.name}

    if pruned:
        pass  # the scan is skipped outright; only the query overhead remains
    elif base_store is Store.ROW:
        if query.predicate is not None:
            _charge_row_store_lookup(base, query.predicate, base_profile, matched,
                                     scan_fraction)
            base.add("random_fetches", matched)
        else:
            base.add(
                "row_scan_bytes", base_profile.num_rows * base_profile.row_width_bytes
            )
    else:
        if query.predicate is not None:
            _charge_column_store_lookup(base, query.predicate, base_profile,
                                        scan_fraction)
            _charge_column_store_materialisation(base, base_profile, needed,
                                                 matched, scan_fraction)
        else:
            for column in sorted(needed):
                base.add("column_scan_bytes", base_profile.column_code_bytes(column))
            base.add("decodes", float(base_profile.num_rows) * len(needed))

    # The aggregation itself: one accumulator update per qualifying row and
    # aggregate, weighted by the aggregated columns' data-type cost factors
    # (the paper's c_dataType adjustment).
    dtype_weight = 0.0
    for spec in query.aggregates:
        owner, column = split_qualified(spec.column)
        profile = profiles.get(owner or query.table, base_profile)
        if column != "*" and profile.schema.has_column(column):
            dtype_weight += profile.dtype_cost_factor(column)
        else:
            dtype_weight += 1.0
    base.add("agg_updates", matched * dtype_weight)
    if query.has_group_by:
        base.add("group_rows", matched)

    contributions = [base]
    for join in query.joins:
        dimension_profile = profiles[join.table]
        dimension_store = store_assignment[join.table]
        dimension = CostContribution(join.table, dimension_store, QueryType.AGGREGATION)
        dimension_columns = {join.right_column}
        for name in query.group_by:
            owner, column = split_qualified(name)
            if owner == join.table:
                dimension_columns.add(column)
        for spec in query.aggregates:
            owner, column = split_qualified(spec.column)
            if owner == join.table:
                dimension_columns.add(column)
        dimension_columns = {
            name for name in dimension_columns if dimension_profile.schema.has_column(name)
        }
        if dimension_store is Store.ROW:
            dimension.add(
                "row_scan_bytes",
                dimension_profile.num_rows * dimension_profile.row_width_bytes,
            )
        else:
            for column in sorted(dimension_columns):
                dimension.add(
                    "column_scan_bytes",
                    dimension_profile.column_code_bytes(column),
                )
            dimension.add(
                "decodes", float(dimension_profile.num_rows) * len(dimension_columns)
            )
        contributions.append(dimension)

        # Join terms are charged to the base contribution: build on the joined
        # table, probe with the (filtered) base rows, convert layouts if the
        # two sides live in different stores.
        base.add("join_build_rows", float(dimension_profile.num_rows))
        base.add("join_probe_rows", matched)
        if dimension_store is not base_store:
            base.add(
                "conversion_cells",
                float(dimension_profile.num_rows) * len(dimension_columns),
            )
    return contributions


# -- point / range queries ---------------------------------------------------------------


def _select_contribution(
    query: SelectQuery,
    store_assignment: Mapping[str, Store],
    profiles: Mapping[str, TableProfile],
) -> CostContribution:
    profile = profiles[query.table]
    store = store_assignment[query.table]
    contribution = CostContribution(query.table, store, QueryType.SELECT)
    contribution.add("queries", 1.0)

    scan_fraction = partition_scan_fraction(query.predicate, profile)
    if scan_fraction == 0.0:
        # The statistics prove an empty result; the scan never runs.
        return contribution

    matched = _matched_rows(query.predicate, profile)
    if query.limit is not None:
        matched = min(matched, float(query.limit))
    num_selected = len(query.columns) if query.columns else profile.schema.num_columns

    if store is Store.ROW:
        if query.predicate is None:
            contribution.add("row_scan_bytes", profile.num_rows * profile.row_width_bytes)
        else:
            _charge_row_store_lookup(contribution, query.predicate, profile, matched,
                                     scan_fraction)
            contribution.add("random_fetches", matched)
    else:
        _charge_column_store_lookup(contribution, query.predicate, profile,
                                    scan_fraction)
        selected = (
            list(query.columns) if query.columns else list(profile.schema.column_names)
        )
        _charge_column_store_materialisation(contribution, profile, selected,
                                             matched, scan_fraction)
    return contribution


# -- inserts, updates, deletes ----------------------------------------------------------------


def _insert_contribution(
    query: InsertQuery,
    store_assignment: Mapping[str, Store],
    profiles: Mapping[str, TableProfile],
) -> CostContribution:
    profile = profiles[query.table]
    store = store_assignment[query.table]
    contribution = CostContribution(query.table, store, QueryType.INSERT)
    contribution.add("queries", 1.0)
    count = float(query.num_rows)
    contribution.add("index_probes", count)
    if store is Store.ROW:
        contribution.add("insert_rows", count)
        contribution.add("insert_bytes", count * profile.row_width_bytes)
    else:
        contribution.add("insert_cells", count * profile.schema.num_columns)
    return contribution


def _update_contribution(
    query: UpdateQuery,
    store_assignment: Mapping[str, Store],
    profiles: Mapping[str, TableProfile],
) -> CostContribution:
    profile = profiles[query.table]
    store = store_assignment[query.table]
    contribution = CostContribution(query.table, store, QueryType.UPDATE)
    contribution.add("queries", 1.0)
    matched = _matched_rows(query.predicate, profile)
    if store is Store.ROW:
        # In-place update of the assigned cells only.
        _charge_row_store_lookup(contribution, query.predicate, profile, matched)
        contribution.add("update_cells", matched * len(query.assignments))
    else:
        # The column store re-appends a full row version per affected row.
        _charge_column_store_lookup(contribution, query.predicate, profile)
        contribution.add("update_cells", matched * profile.schema.num_columns)
    return contribution


def _delete_contribution(
    query: DeleteQuery,
    store_assignment: Mapping[str, Store],
    profiles: Mapping[str, TableProfile],
) -> CostContribution:
    profile = profiles[query.table]
    store = store_assignment[query.table]
    contribution = CostContribution(query.table, store, QueryType.DELETE)
    contribution.add("queries", 1.0)
    matched = _matched_rows(query.predicate, profile)
    if store is Store.ROW:
        _charge_row_store_lookup(contribution, query.predicate, profile, matched)
    else:
        _charge_column_store_lookup(contribution, query.predicate, profile)
    contribution.add("update_cells", matched * profile.schema.num_columns)
    return contribution
