"""Adjustment functions of the cost model.

The paper expresses estimated costs as base costs multiplied by *adjustment
functions* of the query and data characteristics — "most of these functions
are simple linear functions (e.g. ``f_#rows``), piecewise linear functions
(e.g. ``f_compression``) or even constants (e.g. ``c_dataType``)"
(Section 3.1).  This module provides exactly those three function families,
each with a ``fit`` constructor used during calibration and a compact
serialisable representation.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import CalibrationError


class AdjustmentFunction:
    """Base class of the adjustment function families."""

    kind: str = "abstract"

    def __call__(self, value: float) -> float:
        raise NotImplementedError

    def to_dict(self) -> Dict:
        raise NotImplementedError

    @staticmethod
    def from_dict(data: Dict) -> "AdjustmentFunction":
        kind = data.get("kind")
        if kind == ConstantAdjustment.kind:
            return ConstantAdjustment(data["factor"])
        if kind == LinearAdjustment.kind:
            return LinearAdjustment(data["slope"], data["intercept"])
        if kind == PiecewiseLinearAdjustment.kind:
            return PiecewiseLinearAdjustment(
                tuple(data["xs"]), tuple(data["ys"])
            )
        raise CalibrationError(f"unknown adjustment function kind {kind!r}")


@dataclass(frozen=True)
class ConstantAdjustment(AdjustmentFunction):
    """A constant multiplicative factor, e.g. ``c_dataType`` or ``c_groupBy``."""

    factor: float

    kind = "constant"

    def __call__(self, value: float = 1.0) -> float:
        return self.factor

    def to_dict(self) -> Dict:
        return {"kind": self.kind, "factor": self.factor}


@dataclass(frozen=True)
class LinearAdjustment(AdjustmentFunction):
    """An affine adjustment ``f(x) = slope * x + intercept``, e.g. ``f_#rows``."""

    slope: float
    intercept: float = 0.0

    kind = "linear"

    def __call__(self, value: float) -> float:
        return self.slope * value + self.intercept

    def to_dict(self) -> Dict:
        return {"kind": self.kind, "slope": self.slope, "intercept": self.intercept}

    @classmethod
    def fit(cls, xs: Sequence[float], ys: Sequence[float]) -> "LinearAdjustment":
        """Least-squares fit of an affine function to the given samples."""
        if len(xs) != len(ys) or len(xs) < 2:
            raise CalibrationError("linear fit needs at least two (x, y) samples")
        design = np.vstack([np.asarray(xs, dtype=float), np.ones(len(xs))]).T
        slope, intercept = np.linalg.lstsq(design, np.asarray(ys, dtype=float), rcond=None)[0]
        return cls(slope=float(slope), intercept=float(intercept))


@dataclass(frozen=True)
class PiecewiseLinearAdjustment(AdjustmentFunction):
    """A piecewise-linear adjustment, e.g. ``f_compression`` or ``f_selectivity``.

    Defined by breakpoints ``xs`` (strictly increasing) and values ``ys``;
    evaluation interpolates linearly between breakpoints and extrapolates the
    first/last segment outside the covered range.
    """

    xs: Tuple[float, ...]
    ys: Tuple[float, ...]

    kind = "piecewise"

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys) or len(self.xs) < 2:
            raise CalibrationError("piecewise adjustment needs >= 2 breakpoints")
        if any(b <= a for a, b in zip(self.xs, self.xs[1:])):
            raise CalibrationError("piecewise breakpoints must be strictly increasing")
        object.__setattr__(self, "xs", tuple(float(x) for x in self.xs))
        object.__setattr__(self, "ys", tuple(float(y) for y in self.ys))

    def __call__(self, value: float) -> float:
        xs, ys = self.xs, self.ys
        if value <= xs[0]:
            segment = 0
        elif value >= xs[-1]:
            segment = len(xs) - 2
        else:
            segment = bisect.bisect_right(xs, value) - 1
        x0, x1 = xs[segment], xs[segment + 1]
        y0, y1 = ys[segment], ys[segment + 1]
        slope = (y1 - y0) / (x1 - x0)
        return y0 + slope * (value - x0)

    def to_dict(self) -> Dict:
        return {"kind": self.kind, "xs": list(self.xs), "ys": list(self.ys)}

    @classmethod
    def fit(
        cls, xs: Sequence[float], ys: Sequence[float], num_segments: int = 4
    ) -> "PiecewiseLinearAdjustment":
        """Fit by averaging samples into ``num_segments + 1`` breakpoints."""
        if len(xs) != len(ys) or len(xs) < 2:
            raise CalibrationError("piecewise fit needs at least two (x, y) samples")
        order = np.argsort(xs)
        xs_sorted = np.asarray(xs, dtype=float)[order]
        ys_sorted = np.asarray(ys, dtype=float)[order]
        breakpoints = np.linspace(xs_sorted[0], xs_sorted[-1], num_segments + 1)
        # Collapse duplicate breakpoints (possible when all xs are equal).
        breakpoints = np.unique(breakpoints)
        if len(breakpoints) < 2:
            raise CalibrationError("piecewise fit needs a non-degenerate x range")
        values = np.interp(breakpoints, xs_sorted, ys_sorted)
        return cls(tuple(breakpoints.tolist()), tuple(values.tolist()))
