"""The cost model: estimating query and workload runtimes per store.

``Costs = BaseCosts · QueryAdjustment · DataAdjustment`` (Section 3.1): the
:class:`CostModel` combines the cost terms extracted by the estimator (query
and data characteristics) with its per-store, per-query-type parameters (base
costs) to predict the runtime a query would have in a hypothetical storage
layout — without executing anything.

The model can be constructed from analytic defaults or from the parameters
produced by :class:`~repro.core.cost_model.calibration.CostModelCalibrator`
(the paper's offline "initialize cost model" step).

Invariant against the execution engine: the estimator prices the *model* of
an access path (sequential bytes, decodes, probes, ...), and the engine's
:class:`~repro.engine.timing.CostAccountant` charges that same model during
execution.  Wall-clock rewrites of the engine — the vectorized batch
pipeline, the late-materialized dictionary-code pipeline — must keep the
charged :class:`~repro.engine.timing.CostBreakdown` bit-identical to the
scalar reference (a column scan still charges one dictionary decode per
value even when the codes travel undecoded), otherwise the calibrated
weights and the estimation-accuracy figures silently drift.  The equivalence
is pinned by ``tests/engine/test_late_materialization.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional

from repro.config import DeviceModelConfig
from repro.core.cost_model.estimator import (
    CostContribution,
    TableProfile,
    query_contributions,
)
from repro.core.cost_model.parameters import CostModelParameters, analytic_parameters
from repro.engine.catalog import Catalog
from repro.engine.statistics import TableStatistics
from repro.engine.types import Store
from repro.errors import EstimationError
from repro.query.ast import Query, QueryType
from repro.query.workload import Workload

StoreAssignment = Mapping[str, Store]


@dataclass
class WorkloadEstimate:
    """Estimated runtime of a workload under one store assignment."""

    assignment: Dict[str, Store]
    total_ms: float
    per_query_ms: list = field(default_factory=list)
    per_type_ms: Dict[QueryType, float] = field(default_factory=dict)

    @property
    def total_s(self) -> float:
        return self.total_ms / 1000.0


class CostModel:
    """Estimates query runtimes for row-store and column-store placements."""

    def __init__(
        self,
        parameters: Optional[CostModelParameters] = None,
        device_config: Optional[DeviceModelConfig] = None,
    ) -> None:
        self._parameters = parameters or analytic_parameters(device_config)
        # Per-(query, referenced stores, profiles) estimate memo.  The
        # advisor's exhaustive join-group enumeration and per-table cost
        # reports re-estimate the same queries under assignments that only
        # differ for *other* tables; the memo collapses those repeats.
        # Keys are built from object identities (query, per-table profile);
        # each entry pins those exact objects, so a key's ids can never be
        # reused by different live objects and a refreshed profile (a new
        # object, new id) simply misses.  The cache is generational: once it
        # reaches the limit it is cleared wholesale, which bounds memory in
        # long-running online-monitor loops (each re-profiling cycle creates
        # new profile objects whose old entries could never hit again).
        self._estimate_cache: Dict[tuple, tuple] = {}
        self._estimate_cache_limit = 100_000
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def parameters(self) -> CostModelParameters:
        return self._parameters

    @parameters.setter
    def parameters(self, value: CostModelParameters) -> None:
        # Cached estimates were priced under the old parameters.
        self._parameters = value
        self.reset_cache()

    # -- profile helpers -----------------------------------------------------------

    @staticmethod
    def profiles_from_catalog(catalog: Catalog) -> Dict[str, TableProfile]:
        """Build the estimator's table profiles from a system catalog."""
        return {
            name: TableProfile(
                schema=catalog.schema(name), statistics=catalog.statistics_of(name)
            )
            for name in catalog.table_names()
        }

    @staticmethod
    def profiles_from_statistics(
        schemas: Mapping[str, "TableSchemaLike"],
        statistics: Mapping[str, TableStatistics],
    ) -> Dict[str, TableProfile]:
        """Build profiles from explicit schema and statistics mappings."""
        return {
            name: TableProfile(schema=schemas[name], statistics=statistics[name])
            for name in schemas
        }

    # -- query estimation ------------------------------------------------------------

    def estimate_query_ms(
        self,
        query: Query,
        assignment: StoreAssignment,
        profiles: Mapping[str, TableProfile],
    ) -> float:
        """Estimated runtime (ms) of *query* under *assignment*.

        Estimates are memoized per (query, stores-of-referenced-tables,
        profiles-of-referenced-tables): assignments that only differ on
        tables the query does not touch share one cache entry.
        """
        key = None
        tables = query.tables
        try:
            if len(tables) == 1:
                table = tables[0]
                key = (id(query), table, assignment[table], id(profiles[table]))
            else:
                key = (id(query),) + tuple(
                    (table, assignment[table], id(profiles[table]))
                    for table in tables
                )
        except KeyError:
            pass  # incomplete assignment/profiles: let the estimator raise
        if key is not None:
            entry = self._estimate_cache.get(key)
            if entry is not None:
                self.cache_hits += 1
                return entry[2]
        contributions = query_contributions(query, assignment, profiles)
        estimate = self._price_contributions(contributions)
        if key is not None:
            self.cache_misses += 1
            if len(self._estimate_cache) >= self._estimate_cache_limit:
                self._estimate_cache.clear()
            self._estimate_cache[key] = (
                query,
                tuple(profiles[table] for table in tables),
                estimate,
            )
        return estimate

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of estimate calls served from the memo (0.0 when unused)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def reset_cache(self) -> None:
        self._estimate_cache.clear()
        self.cache_hits = 0
        self.cache_misses = 0

    def estimate_query_per_store(
        self,
        query: Query,
        profiles: Mapping[str, TableProfile],
        fixed_assignment: Optional[StoreAssignment] = None,
    ) -> Dict[Store, float]:
        """Estimate *query* with its base table in either store.

        Tables other than the query's base table keep the store given in
        ``fixed_assignment`` (default: column store).
        """
        estimates = {}
        for store in Store:
            assignment = dict(fixed_assignment or {})
            for table in query.tables:
                assignment.setdefault(table, Store.COLUMN)
            assignment[query.table] = store
            estimates[store] = self.estimate_query_ms(query, assignment, profiles)
        return estimates

    def _price_contributions(self, contributions: Iterable[CostContribution]) -> float:
        total_ms = 0.0
        for contribution in contributions:
            weights = self.parameters.weights_for(contribution.store, contribution.query_type)
            total_ms += weights.cost_ms(contribution.terms)
        return total_ms

    # -- workload estimation -------------------------------------------------------------

    def estimate_workload(
        self,
        workload: Workload,
        assignment: StoreAssignment,
        profiles: Mapping[str, TableProfile],
    ) -> WorkloadEstimate:
        """Estimated runtime of a whole workload under one store assignment."""
        missing = set(workload.tables()) - set(assignment)
        if missing:
            raise EstimationError(
                f"store assignment is missing tables: {sorted(missing)}"
            )
        estimate = WorkloadEstimate(assignment=dict(assignment), total_ms=0.0)
        for query in workload:
            query_ms = self.estimate_query_ms(query, assignment, profiles)
            estimate.per_query_ms.append(query_ms)
            estimate.per_type_ms[query.query_type] = (
                estimate.per_type_ms.get(query.query_type, 0.0) + query_ms
            )
            estimate.total_ms += query_ms
        return estimate

    def estimate_workload_ms(
        self,
        workload: Workload,
        assignment: StoreAssignment,
        profiles: Mapping[str, TableProfile],
    ) -> float:
        """Shortcut for :meth:`estimate_workload` returning only the total.

        Skips the per-query/per-type bookkeeping — this is the advisor's hot
        enumeration path.  The left-to-right sum matches
        :meth:`estimate_workload`'s accumulation exactly.
        """
        missing = set(workload.tables()) - set(assignment)
        if missing:
            raise EstimationError(
                f"store assignment is missing tables: {sorted(missing)}"
            )
        total_ms = 0.0
        for query in workload:
            total_ms += self.estimate_query_ms(query, assignment, profiles)
        return total_ms
