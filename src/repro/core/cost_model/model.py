"""The cost model: estimating query and workload runtimes per store.

``Costs = BaseCosts · QueryAdjustment · DataAdjustment`` (Section 3.1): the
:class:`CostModel` combines the cost terms extracted by the estimator (query
and data characteristics) with its per-store, per-query-type parameters (base
costs) to predict the runtime a query would have in a hypothetical storage
layout — without executing anything.

The model can be constructed from analytic defaults or from the parameters
produced by :class:`~repro.core.cost_model.calibration.CostModelCalibrator`
(the paper's offline "initialize cost model" step).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional

from repro.config import DeviceModelConfig
from repro.core.cost_model.estimator import (
    CostContribution,
    TableProfile,
    query_contributions,
)
from repro.core.cost_model.parameters import CostModelParameters, analytic_parameters
from repro.engine.catalog import Catalog
from repro.engine.statistics import TableStatistics
from repro.engine.types import Store
from repro.errors import EstimationError
from repro.query.ast import Query, QueryType
from repro.query.workload import Workload

StoreAssignment = Mapping[str, Store]


@dataclass
class WorkloadEstimate:
    """Estimated runtime of a workload under one store assignment."""

    assignment: Dict[str, Store]
    total_ms: float
    per_query_ms: list = field(default_factory=list)
    per_type_ms: Dict[QueryType, float] = field(default_factory=dict)

    @property
    def total_s(self) -> float:
        return self.total_ms / 1000.0


class CostModel:
    """Estimates query runtimes for row-store and column-store placements."""

    def __init__(
        self,
        parameters: Optional[CostModelParameters] = None,
        device_config: Optional[DeviceModelConfig] = None,
    ) -> None:
        self.parameters = parameters or analytic_parameters(device_config)

    # -- profile helpers -----------------------------------------------------------

    @staticmethod
    def profiles_from_catalog(catalog: Catalog) -> Dict[str, TableProfile]:
        """Build the estimator's table profiles from a system catalog."""
        return {
            name: TableProfile(
                schema=catalog.schema(name), statistics=catalog.statistics_of(name)
            )
            for name in catalog.table_names()
        }

    @staticmethod
    def profiles_from_statistics(
        schemas: Mapping[str, "TableSchemaLike"],
        statistics: Mapping[str, TableStatistics],
    ) -> Dict[str, TableProfile]:
        """Build profiles from explicit schema and statistics mappings."""
        return {
            name: TableProfile(schema=schemas[name], statistics=statistics[name])
            for name in schemas
        }

    # -- query estimation ------------------------------------------------------------

    def estimate_query_ms(
        self,
        query: Query,
        assignment: StoreAssignment,
        profiles: Mapping[str, TableProfile],
    ) -> float:
        """Estimated runtime (ms) of *query* under *assignment*."""
        contributions = query_contributions(query, assignment, profiles)
        return self._price_contributions(contributions)

    def estimate_query_per_store(
        self,
        query: Query,
        profiles: Mapping[str, TableProfile],
        fixed_assignment: Optional[StoreAssignment] = None,
    ) -> Dict[Store, float]:
        """Estimate *query* with its base table in either store.

        Tables other than the query's base table keep the store given in
        ``fixed_assignment`` (default: column store).
        """
        estimates = {}
        for store in Store:
            assignment = dict(fixed_assignment or {})
            for table in query.tables:
                assignment.setdefault(table, Store.COLUMN)
            assignment[query.table] = store
            estimates[store] = self.estimate_query_ms(query, assignment, profiles)
        return estimates

    def _price_contributions(self, contributions: Iterable[CostContribution]) -> float:
        total_ms = 0.0
        for contribution in contributions:
            weights = self.parameters.weights_for(contribution.store, contribution.query_type)
            total_ms += weights.cost_ms(contribution.terms)
        return total_ms

    # -- workload estimation -------------------------------------------------------------

    def estimate_workload(
        self,
        workload: Workload,
        assignment: StoreAssignment,
        profiles: Mapping[str, TableProfile],
    ) -> WorkloadEstimate:
        """Estimated runtime of a whole workload under one store assignment."""
        missing = set(workload.tables()) - set(assignment)
        if missing:
            raise EstimationError(
                f"store assignment is missing tables: {sorted(missing)}"
            )
        estimate = WorkloadEstimate(assignment=dict(assignment), total_ms=0.0)
        for query in workload:
            query_ms = self.estimate_query_ms(query, assignment, profiles)
            estimate.per_query_ms.append(query_ms)
            estimate.per_type_ms[query.query_type] = (
                estimate.per_type_ms.get(query.query_type, 0.0) + query_ms
            )
            estimate.total_ms += query_ms
        return estimate

    def estimate_workload_ms(
        self,
        workload: Workload,
        assignment: StoreAssignment,
        profiles: Mapping[str, TableProfile],
    ) -> float:
        """Shortcut for :meth:`estimate_workload` returning only the total."""
        return self.estimate_workload(workload, assignment, profiles).total_ms
