"""The cost model: estimating query and workload runtimes per store.

``Costs = BaseCosts · QueryAdjustment · DataAdjustment`` (Section 3.1): the
:class:`CostModel` combines the cost terms extracted by the estimator (query
and data characteristics) with its per-store, per-query-type parameters (base
costs) to predict the runtime a query would have in a hypothetical storage
layout — without executing anything.

The model can be constructed from analytic defaults or from the parameters
produced by :class:`~repro.core.cost_model.calibration.CostModelCalibrator`
(the paper's offline "initialize cost model" step).

Invariant against the execution engine: the estimator prices the *model* of
an access path (sequential bytes, decodes, probes, ...), and the engine's
:class:`~repro.engine.timing.CostAccountant` charges that same model during
execution.  Wall-clock rewrites of the engine — the vectorized batch
pipeline, the late-materialized dictionary-code pipeline — must keep the
charged :class:`~repro.engine.timing.CostBreakdown` bit-identical to the
scalar reference (a column scan still charges one dictionary decode per
value even when the codes travel undecoded), otherwise the calibrated
weights and the estimation-accuracy figures silently drift.  The equivalence
is pinned by ``tests/engine/test_late_materialization.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional

import hashlib

from repro.config import DeviceModelConfig
from repro.core.cost_model.estimator import (
    CostContribution,
    TableProfile,
    query_contributions,
)
from repro.core.cost_model.parameters import CostModelParameters, analytic_parameters
from repro.engine.catalog import Catalog
from repro.engine.statistics import TableStatistics
from repro.engine.types import Store
from repro.errors import EstimationError
from repro.query.ast import Query, QueryType
from repro.query.fingerprint import query_fingerprint
from repro.query.workload import Workload

StoreAssignment = Mapping[str, Store]


class EstimateMemo:
    """Shared estimate memo keyed by content fingerprints.

    Keys combine the *query fingerprint* with, per referenced table, the
    hypothetical store and the *statistics fingerprint* — the same keying the
    session plan cache uses — plus a fingerprint of the model parameters the
    estimate was priced under.  Because keys are content-derived (never
    object identities), one memo can safely be shared between cost-model
    instances, between the advisor's enumeration and the session planner, and
    across statistics refreshes that did not change anything.

    The memo is generational: when it reaches *limit* entries it is cleared
    wholesale, which bounds memory in long-running online-monitor loops.
    """

    def __init__(self, limit: int = 100_000) -> None:
        self._entries: Dict[tuple, float] = {}
        self._limit = limit
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get(self, key: tuple) -> Optional[float]:
        estimate = self._entries.get(key)
        if estimate is not None:
            self.hits += 1
        return estimate

    def put(self, key: tuple, estimate: float) -> None:
        self.misses += 1
        if len(self._entries) >= self._limit:
            self._entries.clear()
        self._entries[key] = estimate

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


@dataclass
class WorkloadEstimate:
    """Estimated runtime of a workload under one store assignment."""

    assignment: Dict[str, Store]
    total_ms: float
    per_query_ms: list = field(default_factory=list)
    per_type_ms: Dict[QueryType, float] = field(default_factory=dict)

    @property
    def total_s(self) -> float:
        return self.total_ms / 1000.0


class CostModel:
    """Estimates query runtimes for row-store and column-store placements."""

    def __init__(
        self,
        parameters: Optional[CostModelParameters] = None,
        device_config: Optional[DeviceModelConfig] = None,
        memo: Optional[EstimateMemo] = None,
    ) -> None:
        self._parameters = parameters or analytic_parameters(device_config)
        self._parameters_fp = _parameters_fingerprint(self._parameters)
        # Estimate memo keyed by (parameters, query fingerprint, per-table
        # (store, statistics fingerprint)) — see :class:`EstimateMemo`.  The
        # advisor's exhaustive join-group enumeration and per-table cost
        # reports re-estimate the same queries under assignments that only
        # differ for *other* tables; the memo collapses those repeats, and —
        # because the keying is content-based — it is shared with the session
        # planner: a query planned through the session API pre-warms the
        # entries the advisor and online monitor consult for the current
        # layout.  Pass an explicit *memo* to share one across models (the
        # parameters fingerprint in the key keeps differently-calibrated
        # models from colliding).
        self.memo = memo if memo is not None else EstimateMemo()

    @property
    def parameters(self) -> CostModelParameters:
        return self._parameters

    @property
    def parameters_fingerprint(self) -> str:
        """Content fingerprint of the current parameters (keys caches)."""
        return self._parameters_fp

    @parameters.setter
    def parameters(self, value: CostModelParameters) -> None:
        # The parameters fingerprint keys the memo, so entries priced under
        # the old parameters simply stop matching — no clear needed.
        self._parameters = value
        self._parameters_fp = _parameters_fingerprint(value)

    # -- profile helpers -----------------------------------------------------------

    @staticmethod
    def profiles_from_catalog(catalog: Catalog) -> Dict[str, TableProfile]:
        """Build the estimator's table profiles from a system catalog."""
        return {
            name: TableProfile(
                schema=catalog.schema(name), statistics=catalog.statistics_of(name)
            )
            for name in catalog.table_names()
        }

    @staticmethod
    def profiles_from_statistics(
        schemas: Mapping[str, "TableSchemaLike"],
        statistics: Mapping[str, TableStatistics],
    ) -> Dict[str, TableProfile]:
        """Build profiles from explicit schema and statistics mappings."""
        return {
            name: TableProfile(schema=schemas[name], statistics=statistics[name])
            for name in schemas
        }

    # -- query estimation ------------------------------------------------------------

    def estimate_query_ms(
        self,
        query: Query,
        assignment: StoreAssignment,
        profiles: Mapping[str, TableProfile],
    ) -> float:
        """Estimated runtime (ms) of *query* under *assignment*.

        Estimates are memoized in :attr:`memo` per (query fingerprint,
        stores-of-referenced-tables, statistics-fingerprints-of-referenced-
        tables): assignments that only differ on tables the query does not
        touch share one entry, as do structurally identical query objects and
        statistics refreshes that did not change the data characteristics.
        """
        key = self.estimate_key(query, assignment, profiles)
        if key is not None:
            estimate = self.memo.get(key)
            if estimate is not None:
                return estimate
        contributions = query_contributions(query, assignment, profiles)
        estimate = self._price_contributions(contributions)
        if key is not None:
            self.memo.put(key, estimate)
        return estimate

    def estimate_key(
        self,
        query: Query,
        assignment: StoreAssignment,
        profiles: Mapping[str, TableProfile],
    ) -> Optional[tuple]:
        """The memo key of one estimate, or ``None`` for incomplete inputs."""
        try:
            return (
                self._parameters_fp,
                query_fingerprint(query),
            ) + tuple(
                (table, assignment[table].value, profiles[table].statistics.fingerprint)
                for table in query.tables
            )
        except KeyError:
            return None  # incomplete assignment/profiles: let the estimator raise

    @property
    def cache_hits(self) -> int:
        return self.memo.hits

    @property
    def cache_misses(self) -> int:
        return self.memo.misses

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of estimate calls served from the memo (0.0 when unused)."""
        return self.memo.hit_rate

    def reset_cache(self) -> None:
        self.memo.clear()

    def estimate_query_per_store(
        self,
        query: Query,
        profiles: Mapping[str, TableProfile],
        fixed_assignment: Optional[StoreAssignment] = None,
    ) -> Dict[Store, float]:
        """Estimate *query* with its base table in either store.

        Tables other than the query's base table keep the store given in
        ``fixed_assignment`` (default: column store).
        """
        estimates = {}
        for store in Store:
            assignment = dict(fixed_assignment or {})
            for table in query.tables:
                assignment.setdefault(table, Store.COLUMN)
            assignment[query.table] = store
            estimates[store] = self.estimate_query_ms(query, assignment, profiles)
        return estimates

    def price_contribution_ms(self, contribution: CostContribution) -> float:
        """Price one table's contribution (used by EXPLAIN term breakdowns)."""
        weights = self.parameters.weights_for(contribution.store, contribution.query_type)
        return weights.cost_ms(contribution.terms)

    def _price_contributions(self, contributions: Iterable[CostContribution]) -> float:
        total_ms = 0.0
        for contribution in contributions:
            weights = self.parameters.weights_for(contribution.store, contribution.query_type)
            total_ms += weights.cost_ms(contribution.terms)
        return total_ms

    # -- workload estimation -------------------------------------------------------------

    def estimate_workload(
        self,
        workload: Workload,
        assignment: StoreAssignment,
        profiles: Mapping[str, TableProfile],
    ) -> WorkloadEstimate:
        """Estimated runtime of a whole workload under one store assignment."""
        missing = set(workload.tables()) - set(assignment)
        if missing:
            raise EstimationError(
                f"store assignment is missing tables: {sorted(missing)}"
            )
        estimate = WorkloadEstimate(assignment=dict(assignment), total_ms=0.0)
        for query in workload:
            query_ms = self.estimate_query_ms(query, assignment, profiles)
            estimate.per_query_ms.append(query_ms)
            estimate.per_type_ms[query.query_type] = (
                estimate.per_type_ms.get(query.query_type, 0.0) + query_ms
            )
            estimate.total_ms += query_ms
        return estimate

    def estimate_workload_ms(
        self,
        workload: Workload,
        assignment: StoreAssignment,
        profiles: Mapping[str, TableProfile],
    ) -> float:
        """Shortcut for :meth:`estimate_workload` returning only the total.

        Skips the per-query/per-type bookkeeping — this is the advisor's hot
        enumeration path.  The left-to-right sum matches
        :meth:`estimate_workload`'s accumulation exactly.
        """
        missing = set(workload.tables()) - set(assignment)
        if missing:
            raise EstimationError(
                f"store assignment is missing tables: {sorted(missing)}"
            )
        total_ms = 0.0
        for query in workload:
            total_ms += self.estimate_query_ms(query, assignment, profiles)
        return total_ms


def _parameters_fingerprint(parameters: CostModelParameters) -> str:
    """Content fingerprint of a parameter set (keys the estimate memo)."""
    tokens = []
    as_dict = parameters.to_dict()
    for key in sorted(as_dict):
        weights = as_dict[key]
        tokens.append(key)
        for name in sorted(weights):
            tokens.append(f"{name}={weights[name]!r}")
    return hashlib.blake2b("|".join(tokens).encode("utf-8"), digest_size=8).hexdigest()
