"""Offline calibration of the cost model (Section 4, "Initialize cost model").

The paper initialises its cost model by running representative tests on the
target system so that the base costs and adjustment functions reflect the
current hardware and configuration.  The calibrator does the same against our
execution engine:

1. it builds small calibration tables with a mix of data types and
   cardinalities,
2. it runs a suite of representative queries of every query type against both
   stores, recording for each execution the *cost terms* the estimator
   derives from catalog statistics alone and the *measured* (simulated)
   runtime, and
3. it fits, per ``(store, query type)``, non-negative per-term weights with a
   least-squares fit.

The fitted :class:`~repro.core.cost_model.parameters.CostModelParameters`
start from the analytic defaults, so terms that never occur in the
calibration workload keep a sensible value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import nnls

from repro.config import DEFAULT_SEED, DeviceModelConfig
from repro.core.cost_model.estimator import TableProfile, query_contributions
from repro.core.cost_model.parameters import (
    COST_TERMS,
    CostModelParameters,
    CostTermWeights,
    analytic_parameters,
)
from repro.engine.database import HybridDatabase
from repro.engine.schema import TableSchema
from repro.engine.types import DataType, Store
from repro.errors import CalibrationError
from repro.query.ast import Query, QueryType
from repro.query.builder import aggregate, delete, insert, select, update
from repro.query.predicates import between, eq, ge


@dataclass
class CalibrationSample:
    """One observation: cost terms of a query and its measured runtime."""

    store: Store
    query_type: QueryType
    terms: Dict[str, float]
    runtime_ns: float


@dataclass
class CalibrationReport:
    """Outcome of a calibration run."""

    parameters: CostModelParameters
    samples: List[CalibrationSample] = field(default_factory=list)
    fitted_groups: List[Tuple[Store, QueryType]] = field(default_factory=list)

    @property
    def num_samples(self) -> int:
        return len(self.samples)


class CostModelCalibrator:
    """Calibrates cost-model parameters against the execution engine."""

    #: Row counts of the calibration tables (kept small: calibration must be
    #: cheap, as the paper notes for its offline mode).
    DEFAULT_SIZES = (1_000, 3_000, 8_000)

    def __init__(
        self,
        device_config: Optional[DeviceModelConfig] = None,
        sizes: Sequence[int] = DEFAULT_SIZES,
        seed: int = DEFAULT_SEED,
        min_samples_per_group: int = 4,
    ) -> None:
        self.device_config = device_config
        self.sizes = tuple(sizes)
        self.seed = seed
        self.min_samples_per_group = min_samples_per_group

    # -- public API -----------------------------------------------------------------

    def calibrate(self) -> CalibrationReport:
        """Run the calibration benchmarks and fit the parameters."""
        samples: List[CalibrationSample] = []
        for store in Store:
            for num_rows in self.sizes:
                samples.extend(self._run_benchmarks(store, num_rows))
        if not samples:
            raise CalibrationError("calibration produced no samples")
        parameters = self._fit(samples)
        report = CalibrationReport(parameters=parameters, samples=samples)
        report.fitted_groups = sorted(
            {(sample.store, sample.query_type) for sample in samples},
            key=lambda key: (key[0].value, key[1].value),
        )
        return report

    # -- benchmark workload ------------------------------------------------------------

    def _calibration_schema(self) -> TableSchema:
        return TableSchema.build(
            "calibration",
            [
                ("id", DataType.INTEGER),
                ("key_int", DataType.INTEGER),
                ("key_double", DataType.DOUBLE),
                ("key_decimal", DataType.DECIMAL),
                ("group_small", DataType.VARCHAR),
                ("group_large", DataType.INTEGER),
                ("filter_value", DataType.INTEGER),
                ("status", DataType.VARCHAR),
                ("payload_a", DataType.DOUBLE),
                ("payload_b", DataType.BIGINT),
                ("payload_c", DataType.VARCHAR),
                ("flag", DataType.BOOLEAN),
            ],
            primary_key=["id"],
        )

    def _calibration_rows(self, num_rows: int) -> List[dict]:
        """Synthetic calibration rows, drawn vectorially.

        One :class:`numpy.random.Generator` draw per column replaces the
        per-row ``random.Random`` loop that dominated calibration startup.
        The stream is deterministic per ``(seed, num_rows)`` — pinned by a
        golden-value test, since the fitted parameters depend on it.
        """
        # Distinct streams per (seed, table size); the shift keeps the size
        # bits from aliasing with neighbouring seeds.
        rng = np.random.default_rng((self.seed << 16) ^ num_rows)
        key_int = rng.integers(0, 501, size=num_rows).tolist()
        key_double = (rng.random(num_rows) * 1_000.0).tolist()
        key_decimal = np.round(rng.random(num_rows) * 100.0, 2).tolist()
        filter_value = rng.integers(0, 1_000, size=num_rows).tolist()
        payload_a = rng.random(num_rows).tolist()
        payload_b = rng.integers(0, 10_000_001, size=num_rows).tolist()
        group_small = [f"g{i}" for i in range(8)]
        payload_c = [f"text_{i}" for i in range(50)]
        statuses = ("open", "closed", "pending")
        return [
            {
                "id": i,
                "key_int": key_int[i],
                "key_double": key_double[i],
                "key_decimal": key_decimal[i],
                "group_small": group_small[i % 8],
                "group_large": i % 200,
                "filter_value": filter_value[i],
                "status": statuses[i % 3],
                "payload_a": payload_a[i],
                "payload_b": payload_b[i],
                "payload_c": payload_c[i % 50],
                "flag": bool(i % 2),
            }
            for i in range(num_rows)
        ]

    def _benchmark_queries(self, num_rows: int) -> List[Query]:
        """Representative queries covering every query type and characteristic."""
        queries: List[Query] = [
            aggregate("calibration").sum("key_double").build(),
            aggregate("calibration").sum("key_int").avg("key_double").build(),
            (
                aggregate("calibration")
                .sum("key_double")
                .avg("key_int")
                .min("key_decimal")
                .build()
            ),
            aggregate("calibration").sum("key_double").group_by("group_small").build(),
            (
                aggregate("calibration")
                .sum("key_double")
                .avg("key_int")
                .group_by("group_large")
                .build()
            ),
            (
                aggregate("calibration")
                .sum("key_double")
                .where(between("filter_value", 0, 499))
                .build()
            ),
            aggregate("calibration").count("*").build(),
            select("calibration").where(eq("id", num_rows // 2)).build(),
            select("calibration").columns("id", "status").where(eq("id", 7)).build(),
            (
                select("calibration")
                .columns("id", "key_double", "status")
                .where(between("filter_value", 100, 199))
                .build()
            ),
            select("calibration").where(eq("status", "open")).limit(50).build(),
            insert("calibration", [self._new_row(num_rows, offset=0)]),
            insert(
                "calibration",
                [self._new_row(num_rows, offset=i + 1) for i in range(5)],
            ),
            update("calibration", {"status": "closed"}, eq("id", num_rows // 3)),
            update(
                "calibration",
                {"status": "archived", "flag": False},
                between("filter_value", 900, 999),
            ),
            update("calibration", {"payload_a": 0.5}, eq("group_small", "g3")),
            delete("calibration", eq("id", num_rows // 4)),
            delete("calibration", ge("filter_value", 995)),
        ]
        return queries

    def _new_row(self, num_rows: int, offset: int) -> dict:
        return {
            "id": 10_000_000 + num_rows + offset,
            "key_int": 1,
            "key_double": 1.0,
            "key_decimal": 1.0,
            "group_small": "g0",
            "group_large": 0,
            "filter_value": 1,
            "status": "new",
            "payload_a": 0.0,
            "payload_b": 0,
            "payload_c": "new",
            "flag": True,
        }

    def _run_benchmarks(self, store: Store, num_rows: int) -> List[CalibrationSample]:
        database = HybridDatabase(self.device_config)
        schema = self._calibration_schema()
        database.create_table(schema, store)
        database.load_rows("calibration", self._calibration_rows(num_rows))

        samples = []
        assignment = {"calibration": store}
        for query in self._benchmark_queries(num_rows):
            # Terms are derived from the catalog statistics *before* the query
            # runs (data-modifying queries change the statistics).
            profiles = {
                "calibration": TableProfile(
                    schema=schema, statistics=database.statistics("calibration")
                )
            }
            contributions = query_contributions(query, assignment, profiles)
            result = database.execute(query)
            if len(contributions) != 1:
                continue
            samples.append(
                CalibrationSample(
                    store=store,
                    query_type=query.query_type,
                    terms=dict(contributions[0].terms),
                    runtime_ns=result.cost.total_ns,
                )
            )
            database.refresh_statistics("calibration")
        return samples

    # -- fitting -------------------------------------------------------------------------

    def _fit(self, samples: Sequence[CalibrationSample]) -> CostModelParameters:
        parameters = analytic_parameters(self.device_config)
        grouped: Dict[Tuple[Store, QueryType], List[CalibrationSample]] = {}
        for sample in samples:
            grouped.setdefault((sample.store, sample.query_type), []).append(sample)

        for (store, query_type), group in grouped.items():
            if len(group) < self.min_samples_per_group:
                continue
            fitted = self._fit_group(group, parameters.weights_for(store, query_type))
            parameters.set_weights(store, query_type, fitted)
        return parameters

    def _fit_group(
        self, samples: Sequence[CalibrationSample], fallback: CostTermWeights
    ) -> CostTermWeights:
        """Non-negative least-squares fit of the per-term weights of one group."""
        active_terms = [
            term for term in COST_TERMS
            if any(sample.terms.get(term) for sample in samples)
        ]
        if not active_terms:
            return fallback
        design = np.array(
            [[sample.terms.get(term, 0.0) for term in active_terms] for sample in samples],
            dtype=float,
        )
        target = np.array([sample.runtime_ns for sample in samples], dtype=float)
        # Normalise columns so that nnls is well conditioned across terms whose
        # magnitudes differ by orders of magnitude (bytes vs. probes).
        scales = design.max(axis=0)
        scales[scales == 0.0] = 1.0
        solution, _ = nnls(design / scales, target)
        weights = dict(fallback.weights)
        for term, value, scale in zip(active_terms, solution, scales):
            weights[term] = float(value / scale)
        return CostTermWeights(weights)
