"""Cost-model parameters: per-store, per-query-type base costs and weights.

The estimator (:mod:`repro.core.cost_model.estimator`) describes every query
as a set of *cost terms* — named quantities of work such as sequentially
scanned bytes, dictionary decodes, tuple reconstructions or hash probes,
derived only from query and data characteristics.  The parameters map each
term to a per-unit cost (nanoseconds).  One :class:`CostTermWeights` vector
exists per ``(store, query type)`` pair, mirroring the paper's store-specific
base costs and adjustment functions (``BaseSUMCosts^RS``, ``c^CS_groupBy``,
...).

Two ways to obtain parameters:

* :func:`analytic_parameters` derives them directly from the engine's device
  model — the "cheap" offline default; and
* :class:`~repro.core.cost_model.calibration.CostModelCalibrator` measures
  representative queries on the running system and fits the weights, which is
  the paper's "initialize cost model" step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.config import DeviceModelConfig
from repro.engine.types import Store
from repro.query.ast import QueryType

#: The cost-term vocabulary shared by the estimator and the calibrator.
COST_TERMS: Tuple[str, ...] = (
    "row_scan_bytes",        # sequentially scanned row-store bytes
    "column_scan_bytes",     # sequentially scanned compressed column bytes
    "decodes",               # dictionary decodes
    "vector_compares",       # vectorised comparisons on compressed codes
    "pred_evals",            # row-at-a-time predicate evaluations
    "reconstructions",       # tuple-reconstruction cell accesses
    "random_fetches",        # random row accesses (row store)
    "index_probes",          # index / dictionary probes
    "agg_updates",           # aggregate accumulator updates
    "group_rows",            # rows pushed through a GROUP BY hash table
    "join_build_rows",       # hash-join build-side rows
    "join_probe_rows",       # hash-join probe-side rows
    "conversion_cells",      # cross-store layout-conversion cells
    "insert_rows",           # inserted rows (index maintenance, appends)
    "insert_bytes",          # appended row-store bytes
    "insert_cells",          # inserted column-store cells
    "update_cells",          # updated cells
    "queries",               # fixed per-query overhead
)


@dataclass
class CostTermWeights:
    """Per-unit costs (nanoseconds) for one ``(store, query type)`` pair."""

    weights: Dict[str, float] = field(default_factory=dict)

    def cost_ns(self, terms: Mapping[str, float]) -> float:
        """Dot product of the term quantities with the weights."""
        return sum(self.weights.get(name, 0.0) * value for name, value in terms.items())

    def cost_ms(self, terms: Mapping[str, float]) -> float:
        return self.cost_ns(terms) / 1_000_000.0

    def updated(self, new_weights: Mapping[str, float]) -> "CostTermWeights":
        merged = dict(self.weights)
        merged.update(new_weights)
        return CostTermWeights(merged)

    def to_dict(self) -> Dict[str, float]:
        return dict(self.weights)


@dataclass
class CostModelParameters:
    """The full parameter set of the cost model."""

    per_store_and_type: Dict[Tuple[Store, QueryType], CostTermWeights] = field(
        default_factory=dict
    )

    def weights_for(self, store: Store, query_type: QueryType) -> CostTermWeights:
        key = (store, query_type)
        if key not in self.per_store_and_type:
            self.per_store_and_type[key] = CostTermWeights()
        return self.per_store_and_type[key]

    def set_weights(
        self, store: Store, query_type: QueryType, weights: CostTermWeights
    ) -> None:
        self.per_store_and_type[(store, query_type)] = weights

    def to_dict(self) -> Dict[str, Dict[str, float]]:
        return {
            f"{store.value}:{query_type.value}": weights.to_dict()
            for (store, query_type), weights in self.per_store_and_type.items()
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Mapping[str, float]]) -> "CostModelParameters":
        parameters = cls()
        for key, weights in data.items():
            store_name, type_name = key.split(":", 1)
            parameters.set_weights(
                Store(store_name), QueryType(type_name), CostTermWeights(dict(weights))
            )
        return parameters


def analytic_parameters(
    device_config: Optional[DeviceModelConfig] = None,
) -> CostModelParameters:
    """Derive cost-model parameters directly from the device model constants.

    These parameters make the cost model usable without calibration; the
    calibrated parameters replace them once the offline initialisation step
    has run (Section 4, "Initialize cost model").
    """
    config = device_config or DeviceModelConfig()
    base = {
        "row_scan_bytes": config.seq_read_ns_per_byte,
        "column_scan_bytes": config.seq_read_ns_per_byte,
        "decodes": config.dict_decode_ns,
        "vector_compares": config.vector_compare_ns,
        "pred_evals": config.predicate_eval_ns,
        "reconstructions": config.tuple_reconstruct_ns,
        "random_fetches": config.random_access_ns,
        "index_probes": config.hash_probe_ns,
        "agg_updates": config.aggregate_update_ns,
        "group_rows": config.group_by_update_ns,
        "join_build_rows": config.hash_insert_ns,
        "join_probe_rows": config.hash_probe_ns,
        "conversion_cells": config.layout_conversion_ns_per_cell,
        "insert_rows": config.hash_probe_ns + 2 * config.hash_insert_ns,
        "insert_bytes": config.row_append_ns_per_byte,
        "insert_cells": config.cs_insert_value_ns,
        "update_cells": config.row_update_value_ns,
        "queries": config.query_overhead_ns,
    }
    parameters = CostModelParameters()
    for store in Store:
        for query_type in QueryType:
            weights = dict(base)
            if store is Store.COLUMN:
                weights["update_cells"] = config.cs_update_value_ns
            parameters.set_weights(store, query_type, CostTermWeights(weights))
    return parameters


def zero_parameters(stores: Iterable[Store] = Store,
                    query_types: Iterable[QueryType] = QueryType) -> CostModelParameters:
    """All-zero parameters (useful as a calibration starting point in tests)."""
    parameters = CostModelParameters()
    for store in stores:
        for query_type in query_types:
            parameters.set_weights(store, query_type, CostTermWeights({}))
    return parameters
