"""Statistics consumed and maintained by the storage advisor."""

from repro.core.statistics.table_stats import (
    ColumnStatistics,
    TableStatistics,
    compute_table_statistics,
    statistics_from_schema,
)
from repro.core.statistics.workload_stats import (
    TableWorkloadStatistics,
    WorkloadStatistics,
)

__all__ = [
    "ColumnStatistics",
    "TableStatistics",
    "TableWorkloadStatistics",
    "WorkloadStatistics",
    "compute_table_statistics",
    "statistics_from_schema",
]
