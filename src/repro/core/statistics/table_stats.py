"""Table statistics used by the storage advisor.

The data characteristics of the cost model (row counts, widths, distinct
counts, compression rates) are computed by the engine and stored in the
system catalog; this module re-exports them under the advisor's namespace so
that advisor-side code does not need to reach into engine internals, and adds
the offline-mode helper :func:`statistics_from_schema` for the case where the
data does not exist yet.
"""

from repro.engine.statistics import (
    ColumnStatistics,
    TableStatistics,
    compute_table_statistics,
    statistics_from_schema,
)

__all__ = [
    "ColumnStatistics",
    "TableStatistics",
    "compute_table_statistics",
    "statistics_from_schema",
]
