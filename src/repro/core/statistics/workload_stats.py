"""Extended workload statistics (the online mode's recorded information).

Section 4 of the paper lists examples of extended workload statistics: "the
number of inserts per table, the number of updates and aggregates per
attribute or the number of joins between tables".  This module implements a
recorder for exactly that information.  It can be filled in two ways:

* offline — from a recorded or expected :class:`~repro.query.workload.Workload`
  (:meth:`WorkloadStatistics.from_workload`), or
* online — incrementally, query by query, through
  :meth:`WorkloadStatistics.record` (used by the online monitor's execution
  listener).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from repro.query.ast import (
    AggregationQuery,
    DeleteQuery,
    InsertQuery,
    Query,
    QueryType,
    SelectQuery,
    UpdateQuery,
    split_qualified,
)
from repro.query.workload import AttributeAccessCounts, Workload


@dataclass
class TableWorkloadStatistics:
    """Per-table counters of the extended workload statistics."""

    table: str
    queries_by_type: Dict[QueryType, int] = field(default_factory=dict)
    rows_inserted: int = 0
    attribute_counts: Dict[str, AttributeAccessCounts] = field(default_factory=dict)

    @property
    def total_queries(self) -> int:
        return sum(self.queries_by_type.values())

    @property
    def num_inserts(self) -> int:
        return self.queries_by_type.get(QueryType.INSERT, 0)

    @property
    def num_updates(self) -> int:
        return self.queries_by_type.get(QueryType.UPDATE, 0)

    @property
    def num_aggregations(self) -> int:
        return self.queries_by_type.get(QueryType.AGGREGATION, 0)

    @property
    def insert_fraction(self) -> float:
        if self.total_queries == 0:
            return 0.0
        return self.num_inserts / self.total_queries

    @property
    def update_fraction(self) -> float:
        if self.total_queries == 0:
            return 0.0
        return self.num_updates / self.total_queries

    @property
    def olap_fraction(self) -> float:
        if self.total_queries == 0:
            return 0.0
        return self.num_aggregations / self.total_queries

    def attribute(self, name: str) -> AttributeAccessCounts:
        return self.attribute_counts.setdefault(name, AttributeAccessCounts())


class WorkloadStatistics:
    """Extended workload statistics across all tables."""

    def __init__(self) -> None:
        self.per_table: Dict[str, TableWorkloadStatistics] = {}
        self.join_counts: Dict[FrozenSet[str], int] = {}
        self.total_queries = 0

    # -- construction -----------------------------------------------------------------

    @classmethod
    def from_workload(cls, workload: Workload) -> "WorkloadStatistics":
        statistics = cls()
        for query in workload:
            statistics.record(query)
        return statistics

    def table(self, name: str) -> TableWorkloadStatistics:
        return self.per_table.setdefault(name, TableWorkloadStatistics(table=name))

    # -- recording ----------------------------------------------------------------------

    def record(self, query: Query) -> None:
        """Update the statistics with one executed (or expected) query."""
        self.total_queries += 1
        for table_name in query.tables:
            table_stats = self.table(table_name)
            table_stats.queries_by_type[query.query_type] = (
                table_stats.queries_by_type.get(query.query_type, 0) + 1
            )
        if isinstance(query, AggregationQuery):
            self._record_aggregation(query)
        elif isinstance(query, SelectQuery):
            self._record_select(query)
        elif isinstance(query, InsertQuery):
            self.table(query.table).rows_inserted += query.num_rows
        elif isinstance(query, UpdateQuery):
            self._record_update(query)
        elif isinstance(query, DeleteQuery):
            self._record_delete(query)

    def _record_aggregation(self, query: AggregationQuery) -> None:
        for join in query.joins:
            key = frozenset({query.table, join.table})
            self.join_counts[key] = self.join_counts.get(key, 0) + 1
        for spec in query.aggregates:
            owner, column = split_qualified(spec.column)
            if column == "*":
                continue
            self.table(owner or query.table).attribute(column).aggregations += 1
        for name in query.group_by:
            owner, column = split_qualified(name)
            self.table(owner or query.table).attribute(column).group_bys += 1
        if query.predicate is not None:
            for name in query.predicate.columns():
                owner, column = split_qualified(name)
                self.table(owner or query.table).attribute(column).olap_selections += 1

    def _record_select(self, query: SelectQuery) -> None:
        stats = self.table(query.table)
        for column in query.columns:
            stats.attribute(column).projections += 1
        if query.predicate is not None:
            for column in query.predicate.columns():
                stats.attribute(column).point_selections += 1

    def _record_update(self, query: UpdateQuery) -> None:
        stats = self.table(query.table)
        for column in query.updated_columns:
            stats.attribute(column).updates += 1
        if query.predicate is not None:
            for column in query.predicate.columns():
                stats.attribute(column).point_selections += 1

    def _record_delete(self, query: DeleteQuery) -> None:
        stats = self.table(query.table)
        if query.predicate is not None:
            for column in query.predicate.columns():
                stats.attribute(column).point_selections += 1

    # -- lookups ---------------------------------------------------------------------------

    def tables(self) -> Tuple[str, ...]:
        return tuple(sorted(self.per_table))

    def joins_between(self, left: str, right: str) -> int:
        return self.join_counts.get(frozenset({left, right}), 0)

    def joined_tables(self, table: str) -> Tuple[str, ...]:
        partners = set()
        for pair, count in self.join_counts.items():
            if table in pair and count > 0:
                partners |= set(pair) - {table}
        return tuple(sorted(partners))

    def summary(self) -> str:
        lines = [f"{self.total_queries} queries recorded"]
        for name in self.tables():
            stats = self.per_table[name]
            lines.append(
                f"  {name}: {stats.total_queries} queries "
                f"(inserts={stats.num_inserts}, updates={stats.num_updates}, "
                f"aggregations={stats.num_aggregations})"
            )
        return "\n".join(lines)
