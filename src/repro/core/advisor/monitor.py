"""Online working mode: workload recording and periodic re-evaluation.

In the online mode the advisor "continuously recommend[s] beneficial storage
layout adaptations" from detailed workload statistics recorded at runtime
(Section 4).  :class:`OnlineAdvisorMonitor` attaches to a
:class:`~repro.engine.database.HybridDatabase` as an execution listener,
records every executed query (plus the extended workload statistics), and
after every ``online_reevaluation_interval`` queries re-runs the advisor.  An
adaptation is reported only when the estimated improvement over the current
layout exceeds the configured hysteresis threshold, so the layout does not
flap on noisy workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.config import AdvisorConfig
from repro.core.advisor.advisor import StorageAdvisor
from repro.core.advisor.recommendation import Recommendation, StorageLayout
from repro.core.statistics.workload_stats import WorkloadStatistics
from repro.engine.database import HybridDatabase
from repro.engine.executor.executor import QueryResult
from repro.engine.types import Store
from repro.query.ast import Query
from repro.query.workload import Workload

#: Callback invoked when the monitor finds a beneficial adaptation.
AdaptationCallback = Callable[[Recommendation], None]


@dataclass
class MonitorState:
    """Bookkeeping of the online monitor."""

    queries_since_evaluation: int = 0
    total_queries: int = 0
    evaluations: int = 0
    adaptations_found: int = 0
    last_recommendation: Optional[Recommendation] = None
    # Estimate drift, tracked when attached to a Session: sums of the plans'
    # estimated runtimes vs. the executions' actual (simulated) runtimes.
    estimated_ms_total: float = 0.0
    actual_ms_total: float = 0.0

    @property
    def estimation_drift(self) -> float:
        """``estimated / actual`` over all session-monitored queries (1.0 = spot on)."""
        if self.actual_ms_total <= 0.0:
            return 1.0
        return self.estimated_ms_total / self.actual_ms_total


class OnlineAdvisorMonitor:
    """Records the executed workload and periodically re-evaluates the layout."""

    def __init__(
        self,
        advisor: StorageAdvisor,
        database: HybridDatabase,
        config: Optional[AdvisorConfig] = None,
        window_size: int = 10_000,
        include_partitioning: bool = True,
        on_adaptation: Optional[AdaptationCallback] = None,
    ) -> None:
        self.advisor = advisor
        self.database = database
        self.config = config or advisor.config
        self.window_size = window_size
        self.include_partitioning = include_partitioning
        self.on_adaptation = on_adaptation
        self.recorded = Workload(name="online")
        self.statistics = WorkloadStatistics()
        self.state = MonitorState()
        self._attached = False
        self._session = None

    # -- lifecycle -------------------------------------------------------------------

    @classmethod
    def for_session(cls, session, **kwargs) -> "OnlineAdvisorMonitor":
        """Build a monitor over a :class:`repro.api.Session` and attach it.

        The monitor consumes the session's plan objects: besides recording
        every executed query for re-evaluation, it tracks the drift between
        the plans' estimated runtimes and the actual execution costs
        (:attr:`MonitorState.estimation_drift`) — no estimate is re-derived.
        """
        monitor = cls(session.advisor(), session.database, **kwargs)
        monitor.attach_session(session)
        return monitor

    def attach(self) -> None:
        """Start recording queries executed directly on the database.

        A no-op while a session is attached: session executions reach the
        database listeners too, so listening on both levels would record
        every session query twice.
        """
        if not self._attached and self._session is None:
            self.database.add_execution_listener(self._on_query)
            self._attached = True

    def detach(self) -> None:
        """Stop recording executed queries."""
        if self._attached:
            self.database.remove_execution_listener(self._on_query)
            self._attached = False

    def attach_session(self, session) -> None:
        """Record the session's executions, consuming its plan objects.

        Supersedes an engine-level :meth:`attach` (which is detached first):
        session executions reach the database listeners too, so listening on
        both levels would record every query twice.
        """
        if self._session is None:
            self.detach()
            self._session = session
            session.add_plan_listener(self._on_plan_execution)

    def detach_session(self) -> None:
        if self._session is not None:
            self._session.remove_plan_listener(self._on_plan_execution)
            self._session = None

    def __enter__(self) -> "OnlineAdvisorMonitor":
        self.attach()
        return self

    def __exit__(self, *exc_info) -> None:
        self.detach()
        self.detach_session()

    # -- recording --------------------------------------------------------------------

    def _on_plan_execution(self, query: Query, plan, result: QueryResult) -> None:
        self.state.estimated_ms_total += plan.estimated_ms
        self.state.actual_ms_total += result.runtime_ms
        self._on_query(query, result)

    def _on_query(self, query: Query, result: QueryResult) -> None:
        self.recorded.add(query)
        if len(self.recorded) > self.window_size:
            del self.recorded.queries[: len(self.recorded) - self.window_size]
        self.statistics.record(query)
        self.state.total_queries += 1
        self.state.queries_since_evaluation += 1
        if self.state.queries_since_evaluation >= self.config.online_reevaluation_interval:
            recommendation = self.evaluate()
            if recommendation is not None and self.on_adaptation is not None:
                self.on_adaptation(recommendation)

    # -- recurring shapes (materialized-view candidates) --------------------------------

    def recurring_aggregates(self, min_occurrences: int = 2) -> Dict[str, int]:
        """Fingerprint -> occurrence count of recurring recorded aggregations.

        Counts the shapes :meth:`recommend_views` would consider — join-free,
        placeholder-free aggregations — over the recorded window, using the
        same query fingerprints the planner's view rewrite matches on.
        """
        from repro.query.ast import AggregationQuery
        from repro.query.fingerprint import fingerprint_tokens, query_fingerprint

        counts: Dict[str, int] = {}
        for query in self.recorded:
            if not isinstance(query, AggregationQuery) or query.joins:
                continue
            if "v:param:" in fingerprint_tokens(query):
                continue
            fingerprint = query_fingerprint(query)
            counts[fingerprint] = counts.get(fingerprint, 0) + 1
        return {
            fingerprint: count
            for fingerprint, count in counts.items()
            if count >= min_occurrences
        }

    def recommend_views(self, min_occurrences: int = 2):
        """Materialized views worth creating for the recorded window."""
        return self.advisor.recommend_views(
            self.database, self.recorded, min_occurrences=min_occurrences
        )

    # -- evaluation ---------------------------------------------------------------------

    def evaluate(self) -> Optional[Recommendation]:
        """Re-evaluate the layout; return a recommendation if it is beneficial.

        Returns ``None`` when the current layout is already within the
        configured improvement threshold of the recommended one.
        """
        self.state.queries_since_evaluation = 0
        if len(self.recorded) == 0:
            return None
        self.state.evaluations += 1
        recommendation = self.advisor.recommend(
            self.database, self.recorded, include_partitioning=self.include_partitioning
        )
        self.state.last_recommendation = recommendation
        if not self._is_improvement(recommendation):
            return None
        self.state.adaptations_found += 1
        return recommendation

    def _is_improvement(self, recommendation: Recommendation) -> bool:
        """Compare the recommendation against the database's current layout."""
        current = self._current_layout()
        profiles = self.advisor.cost_model.profiles_from_catalog(self.database.catalog)
        tables = [
            table for table in self.recorded.tables()
            if table in profiles and table in current.choices
        ]
        if not tables:
            return False
        current_assignment = current.store_assignment()
        recommended_assignment = recommendation.layout.store_assignment()
        for table in self.recorded.tables():
            current_assignment.setdefault(table, Store.COLUMN)
            recommended_assignment.setdefault(table, Store.COLUMN)
        current_ms = self.advisor.cost_model.estimate_workload_ms(
            self.recorded, current_assignment, profiles
        )
        recommended_ms = self.advisor.cost_model.estimate_workload_ms(
            self.recorded, recommended_assignment, profiles
        )
        if current_ms <= 0:
            return False
        layout_changed = self._layout_differs(current, recommendation.layout)
        improvement = 1.0 - recommended_ms / current_ms
        return layout_changed and improvement >= self.config.min_relative_improvement

    def _current_layout(self) -> StorageLayout:
        layout = StorageLayout()
        for entry in self.database.catalog:
            if entry.is_partitioned:
                layout.choices[entry.name] = entry.partitioning
            else:
                layout.choices[entry.name] = entry.store
        return layout

    @staticmethod
    def _layout_differs(current: StorageLayout, recommended: StorageLayout) -> bool:
        for table, choice in recommended.choices.items():
            if table not in current.choices:
                return True
            existing = current.choices[table]
            if isinstance(choice, Store) != isinstance(existing, Store):
                return True
            if isinstance(choice, Store) and choice is not existing:
                return True
            if not isinstance(choice, Store) and choice != existing:
                return True
        return False

    # -- applying ------------------------------------------------------------------------------

    def apply_pending(self) -> bool:
        """Apply the last beneficial recommendation, if any."""
        recommendation = self.state.last_recommendation
        if recommendation is None:
            return False
        self.advisor.apply(self.database, recommendation)
        return True
