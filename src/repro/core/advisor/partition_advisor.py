"""Store-aware partitioning heuristics (Section 3.2 of the paper).

Determining optimal partitions is prohibitively expensive, so the paper uses
a simplified, heuristic approach with at most two horizontal and two vertical
partitions per table:

* **Horizontal** — if the workload contains a sufficient fraction of insert
  queries, a row-store partition for newly arriving tuples is recommended;
  if a contiguous region of tuples is frequently updated, that hot region is
  recommended for the row store while the historic remainder stays columnar.
* **Vertical** — attributes that are mainly used for updates or point
  accesses (OLTP attributes) go to a row-store partition; keyfigures and
  group-by attributes stay in the column store.

The heuristics work purely on the workload (and standard table statistics),
exactly as described in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.config import AdvisorConfig
from repro.core.cost_model.estimator import TableProfile
from repro.core.statistics.workload_stats import WorkloadStatistics
from repro.engine.partitioning import (
    HorizontalPartitionSpec,
    TablePartitioning,
    VerticalPartitionSpec,
)
from repro.engine.types import Store
from repro.query.ast import Query, QueryType, UpdateQuery
from repro.query.predicates import Between, CompareOp, Comparison, Predicate, ge
from repro.query.workload import Workload


@dataclass
class PartitioningDecision:
    """The partition advisor's reasoning for one table."""

    table: str
    partitioning: Optional[TablePartitioning]
    insert_fraction: float = 0.0
    update_fraction: float = 0.0
    hot_region: Optional[Tuple[str, object, object]] = None
    oltp_attributes: Tuple[str, ...] = ()
    olap_attributes: Tuple[str, ...] = ()
    reason: str = ""


class PartitionAdvisor:
    """Heuristic horizontal/vertical partitioning recommendations."""

    def __init__(self, config: Optional[AdvisorConfig] = None) -> None:
        self.config = config or AdvisorConfig()

    # -- public API ---------------------------------------------------------------------

    def recommend(
        self,
        workload: Workload,
        profiles: Mapping[str, TableProfile],
        table_assignment: Optional[Mapping[str, Store]] = None,
    ) -> Dict[str, PartitioningDecision]:
        """Recommend partitionings for every table referenced by the workload."""
        statistics = WorkloadStatistics.from_workload(workload)
        decisions: Dict[str, PartitioningDecision] = {}
        for table in workload.tables():
            if table not in profiles:
                continue
            decisions[table] = self.recommend_for_table(
                table, workload, profiles[table], statistics
            )
        return decisions

    def recommend_for_table(
        self,
        table: str,
        workload: Workload,
        profile: TableProfile,
        statistics: Optional[WorkloadStatistics] = None,
    ) -> PartitioningDecision:
        """Apply the Section 3.2 heuristics to one table."""
        statistics = statistics or WorkloadStatistics.from_workload(workload)
        table_stats = statistics.table(table)
        decision = PartitioningDecision(
            table=table,
            partitioning=None,
            insert_fraction=table_stats.insert_fraction,
            update_fraction=table_stats.update_fraction,
        )

        if table_stats.num_aggregations == 0:
            # Pure OLTP table: an unpartitioned row-store table is already the
            # best layout, partitioning would only add union/join overhead.
            decision.reason = "no analytical queries; keep the table unpartitioned"
            return decision

        horizontal = self._horizontal_heuristic(table, workload, profile, decision)
        vertical = self._vertical_heuristic(table, profile, table_stats, decision)
        if horizontal is None and vertical is None:
            decision.reason = decision.reason or "no beneficial split found"
            return decision
        decision.partitioning = TablePartitioning(horizontal=horizontal, vertical=vertical)
        return decision

    # -- horizontal heuristic ----------------------------------------------------------------

    def _horizontal_heuristic(
        self,
        table: str,
        workload: Workload,
        profile: TableProfile,
        decision: PartitioningDecision,
    ) -> Optional[HorizontalPartitionSpec]:
        """Recommend a hot row-store partition for inserts / frequently updated rows."""
        hot_region = self._hot_update_region(table, workload, profile)
        wants_insert_partition = (
            decision.insert_fraction >= self.config.insert_fraction_threshold
        )
        if hot_region is not None:
            column, low, high = hot_region
            decision.hot_region = hot_region
            predicate: Predicate = Between(column, low, high)
            decision.reason = (
                f"rows with {column} in [{low}, {high}] are frequently updated"
            )
            return HorizontalPartitionSpec(
                predicate=predicate, hot_store=Store.ROW, cold_store=Store.COLUMN
            )
        if wants_insert_partition:
            # A partition for newly arriving tuples: everything beyond the
            # current maximum of the primary key is routed to the row store.
            primary_key = profile.schema.primary_key
            if len(primary_key) == 1 and profile.statistics.has_column(primary_key[0]):
                key = primary_key[0]
                current_max = profile.statistics.column(key).max_value
                if current_max is not None:
                    decision.reason = (
                        f"{decision.insert_fraction:.1%} of the queries are inserts; "
                        "new tuples go to a row-store partition"
                    )
                    return HorizontalPartitionSpec(
                        predicate=Comparison(key, CompareOp.GT, current_max),
                        hot_store=Store.ROW,
                        cold_store=Store.COLUMN,
                    )
        return None

    def _hot_update_region(
        self, table: str, workload: Workload, profile: TableProfile
    ) -> Optional[Tuple[str, object, object]]:
        """Find a contiguous region of tuples that receives most of the updates.

        The region is derived from the predicates of the update queries: if
        the bulk of them constrain the same column, the bounding range of
        those predicates approximates the "frequently updated as a whole"
        tuples of the paper.  The region is only reported when it covers a
        minority of the table (otherwise the whole table is hot and a plain
        row-store table is the better answer).
        """
        updates = [
            query for query in workload.queries_for_table(table)
            if isinstance(query, UpdateQuery) and query.predicate is not None
        ]
        if not updates:
            return None
        ranges_by_column: Dict[str, List[Tuple[object, object]]] = {}
        for query in updates:
            bounds = _predicate_bounds(query.predicate)
            if bounds is None:
                continue
            column, low, high = bounds
            ranges_by_column.setdefault(column, []).append((low, high))
        if not ranges_by_column:
            return None
        column, ranges = max(ranges_by_column.items(), key=lambda item: len(item[1]))
        if len(ranges) < max(2, self.config.hot_row_access_threshold * len(updates)):
            return None
        lows = [low for low, _ in ranges if low is not None]
        highs = [high for _, high in ranges if high is not None]
        if not lows or not highs:
            return None
        low, high = min(lows), max(highs)
        coverage = self._range_coverage(profile, column, low, high)
        if coverage is None or coverage > self.config.hot_row_access_threshold:
            return None
        return column, low, high

    @staticmethod
    def _range_coverage(
        profile: TableProfile, column: str, low, high
    ) -> Optional[float]:
        if not profile.statistics.has_column(column):
            return None
        stats = profile.statistics.column(column)
        minimum, maximum = stats.min_value, stats.max_value
        if not all(isinstance(v, (int, float)) for v in (minimum, maximum, low, high)):
            return None
        if maximum <= minimum:
            return None
        return max(0.0, min(1.0, (high - low) / (maximum - minimum)))

    # -- vertical heuristic -------------------------------------------------------------------

    def _vertical_heuristic(
        self,
        table: str,
        profile: TableProfile,
        table_stats,
        decision: PartitioningDecision,
    ) -> Optional[VerticalPartitionSpec]:
        """Split OLTP attributes into a row-store partition."""
        key_columns = set(profile.schema.primary_key)
        oltp_attributes: List[str] = []
        olap_attributes: List[str] = []
        for column in profile.schema.column_names:
            if column in key_columns:
                continue
            counts = table_stats.attribute_counts.get(column)
            if counts is None or counts.total_accesses == 0:
                # Untouched attributes stay with the analytical partition.
                olap_attributes.append(column)
                continue
            if counts.oltp_ratio >= self.config.oltp_attribute_threshold:
                oltp_attributes.append(column)
            else:
                olap_attributes.append(column)
        decision.oltp_attributes = tuple(oltp_attributes)
        decision.olap_attributes = tuple(olap_attributes)
        if not oltp_attributes or not olap_attributes:
            return None
        if not any(
            table_stats.attribute_counts.get(column, None)
            and table_stats.attribute_counts[column].olap_accesses > 0
            for column in olap_attributes
        ):
            return None
        reason = (
            f"OLTP attributes {oltp_attributes} move to a row-store partition; "
            f"analytical attributes stay columnar"
        )
        decision.reason = (decision.reason + "; " if decision.reason else "") + reason
        return VerticalPartitionSpec(
            row_store_columns=tuple(oltp_attributes),
            column_store_columns=tuple(olap_attributes),
        )


def _predicate_bounds(predicate: Predicate) -> Optional[Tuple[str, object, object]]:
    """Extract ``(column, low, high)`` bounds from a simple range/point predicate."""
    if isinstance(predicate, Between):
        return predicate.column, predicate.low, predicate.high
    if isinstance(predicate, Comparison):
        if predicate.op is CompareOp.EQ:
            return predicate.column, predicate.value, predicate.value
        if predicate.op in (CompareOp.GE, CompareOp.GT):
            return predicate.column, predicate.value, None
        if predicate.op in (CompareOp.LE, CompareOp.LT):
            return predicate.column, None, predicate.value
    return None
