"""The storage advisor: table-level and partition-level recommendations."""

from repro.core.advisor.advisor import StorageAdvisor
from repro.core.advisor.ddl import (
    apply_layout,
    apply_recommendation,
    statement_for_partitioning,
    statement_for_store,
    statements_for_layout,
)
from repro.core.advisor.monitor import OnlineAdvisorMonitor
from repro.core.advisor.partition_advisor import PartitionAdvisor, PartitioningDecision
from repro.core.advisor.recommendation import (
    Recommendation,
    StorageLayout,
    StoreChoice,
    TableRecommendation,
)
from repro.core.advisor.table_level import TableLevelAdvisor, TableLevelResult

__all__ = [
    "OnlineAdvisorMonitor",
    "PartitionAdvisor",
    "PartitioningDecision",
    "Recommendation",
    "StorageAdvisor",
    "StorageLayout",
    "StoreChoice",
    "TableLevelAdvisor",
    "TableLevelResult",
    "TableRecommendation",
    "apply_layout",
    "apply_recommendation",
    "statement_for_partitioning",
    "statement_for_store",
    "statements_for_layout",
]
