"""The storage advisor façade (offline and online working modes, Section 4).

Typical offline usage::

    advisor = StorageAdvisor()
    advisor.initialize_cost_model()              # calibrate against the system
    recommendation = advisor.recommend(database, workload)
    print(recommendation.describe())
    advisor.apply(database, recommendation)      # or hand the DDL to the DBA

The online mode is provided by
:class:`~repro.core.advisor.monitor.OnlineAdvisorMonitor`, which records the
executed workload through an execution listener and periodically asks this
advisor for adaptation recommendations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.config import AdvisorConfig, DeviceModelConfig
from repro.core.advisor.ddl import apply_recommendation, statements_for_layout
from repro.core.advisor.partition_advisor import PartitionAdvisor, PartitioningDecision
from repro.core.advisor.recommendation import (
    Recommendation,
    ShardKeyRecommendation,
    StorageLayout,
    TableRecommendation,
    ViewRecommendation,
)
from repro.core.advisor.table_level import TableLevelAdvisor
from repro.core.cost_model.calibration import CalibrationReport, CostModelCalibrator
from repro.core.cost_model.estimator import (
    CostContribution,
    TableProfile,
    query_contributions,
)
from repro.core.cost_model.model import CostModel
from repro.engine.database import HybridDatabase
from repro.engine.matview import view_serve_bytes
from repro.engine.schema import TableSchema
from repro.engine.shard import shard_fan_out, shard_min_rows
from repro.engine.statistics import TableStatistics
from repro.engine.timing import CostBreakdown, DeviceModel
from repro.engine.types import Store
from repro.errors import AdvisorError
from repro.query.ast import AggregationQuery, SelectQuery, split_qualified
from repro.query.workload import Workload

#: Estimator terms a shard crew divides among itself (each worker touches
#: ``1/fan_out`` of the rows and bytes).  Everything else — per-query
#: overheads, index probes, join build/probe work, conversions — stays
#: serial in the parent.
_SHARDABLE_TERMS = frozenset({
    "row_scan_bytes", "column_scan_bytes", "pred_evals", "vector_compares",
    "decodes", "reconstructions", "agg_updates", "random_fetches",
})


class StorageAdvisor:
    """Recommends the storage layout of a hybrid-store database."""

    def __init__(
        self,
        config: Optional[AdvisorConfig] = None,
        cost_model: Optional[CostModel] = None,
        device_config: Optional[DeviceModelConfig] = None,
    ) -> None:
        self.config = config or AdvisorConfig()
        self.device_config = device_config
        self.cost_model = cost_model or CostModel(device_config=device_config)
        self._table_level = TableLevelAdvisor(self.cost_model, self.config)
        self._partition_advisor = PartitionAdvisor(self.config)
        self.last_calibration: Optional[CalibrationReport] = None

    # -- cost model initialisation (offline mode, step 1) --------------------------------

    def initialize_cost_model(
        self, calibrator: Optional[CostModelCalibrator] = None
    ) -> CalibrationReport:
        """Calibrate the cost model against the execution engine.

        This is the paper's "initialize cost model" step: representative tests
        are run so that base costs and adjustment functions reflect the
        current system.  The fitted parameters replace the analytic defaults.
        """
        calibrator = calibrator or CostModelCalibrator(self.device_config)
        report = calibrator.calibrate()
        # The memo carries over: its keys include a parameters fingerprint,
        # so entries priced under the old parameters can never be served.
        self.cost_model = CostModel(parameters=report.parameters,
                                    device_config=self.device_config,
                                    memo=self.cost_model.memo)
        self._table_level = TableLevelAdvisor(self.cost_model, self.config)
        self.last_calibration = report
        return report

    # -- offline recommendation -------------------------------------------------------------

    def recommend(
        self,
        database: HybridDatabase,
        workload: Workload,
        include_partitioning: bool = True,
    ) -> Recommendation:
        """Recommend a storage layout for *database* under *workload*."""
        database.refresh_statistics()
        profiles = self.cost_model.profiles_from_catalog(database.catalog)
        return self.recommend_from_profiles(workload, profiles, include_partitioning)

    def recommend_offline(
        self,
        schemas: Mapping[str, TableSchema],
        statistics: Mapping[str, TableStatistics],
        workload: Workload,
        include_partitioning: bool = True,
    ) -> Recommendation:
        """Offline-mode recommendation from schema + basic statistics only.

        This is the cheap input path of Figure 4: no running database is
        needed, only the schema, (expected) table statistics and a recorded or
        expected workload.
        """
        profiles = {
            name: TableProfile(schema=schemas[name], statistics=statistics[name])
            for name in schemas
        }
        return self.recommend_from_profiles(workload, profiles, include_partitioning)

    def recommend_from_profiles(
        self,
        workload: Workload,
        profiles: Mapping[str, TableProfile],
        include_partitioning: bool = True,
    ) -> Recommendation:
        """Core recommendation logic shared by the offline and online modes."""
        if len(workload) == 0:
            raise AdvisorError("cannot recommend a layout for an empty workload")
        relevant = [table for table in workload.tables() if table in profiles]
        if not relevant:
            raise AdvisorError("the workload does not reference any known table")

        table_result = self._table_level.recommend(workload, profiles)
        layout = StorageLayout(dict(table_result.assignment))

        decisions: Dict[str, PartitioningDecision] = {}
        if include_partitioning:
            decisions = self._partition_advisor.recommend(
                workload, profiles, table_result.assignment
            )
            for table, decision in decisions.items():
                if decision.partitioning is not None:
                    layout.choices[table] = decision.partitioning

        table_recommendations = []
        for table in sorted(table_result.assignment):
            costs = table_result.per_table_costs.get(table, {})
            reason = ""
            decision = decisions.get(table)
            if decision is not None and decision.partitioning is not None:
                reason = decision.reason
            table_recommendations.append(
                TableRecommendation(
                    table=table,
                    choice=layout.choices[table],
                    estimated_ms_row=costs.get(Store.ROW, 0.0),
                    estimated_ms_column=costs.get(Store.COLUMN, 0.0),
                    reason=reason,
                )
            )

        row_only = {table: Store.ROW for table in table_result.assignment}
        column_only = {table: Store.COLUMN for table in table_result.assignment}
        recommendation = Recommendation(
            layout=layout,
            table_recommendations=table_recommendations,
            estimated_total_ms=self.cost_model.estimate_workload_ms(
                workload, layout.store_assignment(), profiles
            ),
            estimated_row_only_ms=self.cost_model.estimate_workload_ms(
                workload, row_only, profiles
            ),
            estimated_column_only_ms=self.cost_model.estimate_workload_ms(
                workload, column_only, profiles
            ),
        )
        recommendation.ddl_statements = statements_for_layout(layout)
        return recommendation

    # -- shard-key recommendation -----------------------------------------------------------------

    def recommend_shard_keys(
        self,
        database: HybridDatabase,
        workload: Workload,
        fan_out: Optional[int] = None,
        assignment: Optional[Mapping[str, Store]] = None,
    ) -> Dict[str, ShardKeyRecommendation]:
        """Recommend a shard key (and fan-out) per shard-eligible table.

        The what-if reuses the store decision's machinery: each candidate
        key reprices the workload's :func:`query_contributions` with the
        crew-divisible terms scaled by ``1/fan_out`` — ``group_rows``
        additionally shrinks only when the shard key aligns with a query's
        grouping (aligned shards keep their group state disjoint) — plus the
        device's dispatch overhead.  Results are memoized in the shared
        :class:`~repro.core.cost_model.memo.EstimateMemo` under keys composed
        from :meth:`CostModel.estimate_key`, so repeated advising is served
        from cache and every invalidation rule (parameters, statistics)
        carries over.  *assignment* fixes per-table stores (e.g. from a
        prior :meth:`recommend`); only column-store tables at or above the
        shard row floor are considered.
        """
        if len(workload) == 0:
            raise AdvisorError("cannot recommend shard keys for an empty workload")
        fan_out = fan_out or shard_fan_out()
        database.refresh_statistics()
        profiles = self.cost_model.profiles_from_catalog(database.catalog)
        stores = dict(assignment or {})
        device = DeviceModel(self.device_config)
        dispatch_ms = device.shard_dispatch(fan_out) / 1e6
        recommendations: Dict[str, ShardKeyRecommendation] = {}
        for table in workload.tables():
            profile = profiles.get(table)
            if profile is None:
                continue
            if stores.get(table, Store.COLUMN) is not Store.COLUMN:
                continue
            if profile.num_rows < shard_min_rows():
                continue
            queries = [
                query for query in workload.queries_for_table(table)
                if query.table == table and self._shardable_query(query)
            ]
            if not queries:
                continue
            candidates = self._shard_key_candidates(table, queries, profile)
            best_key, best_serial, best_sharded = None, 0.0, float("inf")
            for candidate in candidates:
                serial_ms = sharded_ms = 0.0
                for query in queries:
                    serial, sharded = self._shard_whatif(
                        query, table, candidate, fan_out,
                        stores, profiles, dispatch_ms,
                    )
                    serial_ms += serial
                    sharded_ms += sharded
                # Ties favour plain row ranges (candidates start with None).
                if sharded_ms < best_sharded:
                    best_key, best_serial, best_sharded = (
                        candidate, serial_ms, sharded_ms
                    )
            if best_sharded >= best_serial:
                continue  # dispatch overhead eats the gain: stay serial
            if best_key is None:
                reason = "row-range shards"
            else:
                reason = f"aligns with group-by on {best_key!r}"
            recommendations[table] = ShardKeyRecommendation(
                table=table, shard_key=best_key, fan_out=fan_out,
                estimated_serial_ms=best_serial,
                estimated_sharded_ms=best_sharded, reason=reason,
                whatif_plan=self._hypothetical_plan(database, queries[0]),
            )
        return recommendations

    def _hypothetical_plan(self, database: HybridDatabase, query):
        """A renderable :class:`~repro.api.plan.PhysicalPlan` of *query*.

        What-if output used to be cost scalars only; recommendations now
        carry the representative query's physical plan so their ``explain()``
        renders through the same renderer as ``EXPLAIN``.  Imported lazily:
        the api layer depends on the advisor, not the other way around.
        """
        from repro.api.plan import Planner

        return Planner(database, lambda: self.cost_model).plan(query)

    # -- materialized-view recommendation ---------------------------------------------------------

    def recommend_views(
        self,
        database: HybridDatabase,
        workload: Workload,
        min_occurrences: int = 2,
    ) -> "list[ViewRecommendation]":
        """Propose materialized views for *workload*'s recurring aggregations.

        Recurrence is counted by query fingerprint — the same key the online
        monitor records and the planner's rewrite matches on.  Each eligible
        shape (aggregation, no joins, no placeholders, not already
        materialized) is priced through the shared
        :class:`~repro.core.cost_model.memo.EstimateMemo` exactly like store
        moves: base cost = the cost model's estimate under the current
        layout, view cost = query overhead plus a sequential read of the
        estimated materialized rows (the same byte formula the session
        charges when serving).  Proposals with positive total benefit are
        returned best-first, each carrying renderable base/rewritten plans.
        """
        if len(workload) == 0:
            raise AdvisorError("cannot recommend views for an empty workload")
        database.refresh_statistics()
        profiles = self.cost_model.profiles_from_catalog(database.catalog)
        device = DeviceModel(self.device_config)
        from repro.query.fingerprint import fingerprint_tokens, query_fingerprint

        shapes: Dict[str, list] = {}
        for query in workload:
            if not isinstance(query, AggregationQuery) or query.joins:
                continue
            if query.table not in profiles:
                continue
            if "v:param:" in fingerprint_tokens(query):
                continue
            fingerprint = query_fingerprint(query)
            shape = shapes.get(fingerprint)
            if shape is None:
                shapes[fingerprint] = [query, 1]
            else:
                shape[1] += 1

        recommendations: list = []
        for fingerprint in sorted(shapes):
            query, occurrences = shapes[fingerprint]
            if occurrences < min_occurrences:
                continue
            if database.catalog.view_for_fingerprint(fingerprint) is not None:
                continue
            assignment: Dict[str, Store] = {}
            for name in query.tables:
                entry = database.catalog.entry(name)
                assignment[name] = (
                    entry.store if not entry.is_partitioned else Store.COLUMN
                )
            base_ms = self.cost_model.estimate_query_ms(query, assignment, profiles)
            rows = self._estimated_view_rows(query, profiles[query.table])
            base_key = self.cost_model.estimate_key(query, assignment, profiles)
            view_ms = None
            if base_key is not None:
                view_ms = self.cost_model.memo.get(("matview-whatif",) + base_key)
            if view_ms is None:
                view_ms = (
                    device.query_overhead()
                    + device.sequential_read(view_serve_bytes(rows, query))
                ) / 1e6
                if base_key is not None:
                    self.cost_model.memo.put(
                        ("matview-whatif",) + base_key, view_ms
                    )
            if base_ms <= view_ms:
                continue  # serving the view would not beat the base plan
            name = f"mv_{query.table}_{fingerprint[:8]}"
            base_plan, view_plan = self._view_whatif_plans(
                database, query, name, fingerprint, view_ms
            )
            recommendations.append(
                ViewRecommendation(
                    view=name,
                    table=query.table,
                    fingerprint=fingerprint,
                    query=query,
                    occurrences=occurrences,
                    estimated_base_ms=base_ms,
                    estimated_view_ms=view_ms,
                    estimated_rows=rows,
                    base_plan=base_plan,
                    view_plan=view_plan,
                )
            )
        recommendations.sort(
            key=lambda item: item.estimated_benefit_ms, reverse=True
        )
        return recommendations

    @staticmethod
    def _estimated_view_rows(query: AggregationQuery, profile: TableProfile) -> int:
        """Estimated materialized row count: the group-key cardinality product."""
        if not query.group_by:
            return 1
        distinct = 1
        for name in query.group_by:
            _, column = split_qualified(name)
            statistics = profile.statistics.columns.get(column)
            if statistics is not None and statistics.num_distinct > 0:
                distinct *= statistics.num_distinct
        return max(1, min(distinct, max(profile.num_rows, 1)))

    def _view_whatif_plans(self, database, query, name, fingerprint, view_ms):
        """Hypothetical (base, rewritten) plans for a proposed view.

        Imported lazily — the api layer depends on the advisor, not the
        other way around.  The rewritten plan is the base plan with the
        :class:`~repro.api.plan.ViewRewrite` recorded and the estimate
        replaced by the view-serve price, so rendering both shows exactly
        what ``EXPLAIN`` would print before and after ``create_view``.
        """
        import dataclasses

        from repro.api.plan import CostEstimate, Planner, ViewRewrite

        planner = Planner(database, lambda: self.cost_model)
        base_plan = planner.plan(query)
        view_plan = dataclasses.replace(
            base_plan,
            view_rewrite=ViewRewrite(view=name, fingerprint=fingerprint),
            estimate=CostEstimate(
                total_ms=view_ms,
                per_table_ms={query.table: view_ms},
                per_term_ms={"view_scan": view_ms},
                assignment=dict(base_plan.estimate.assignment),
            ),
        )
        return base_plan, view_plan

    @staticmethod
    def _shardable_query(query) -> bool:
        if isinstance(query, AggregationQuery):
            return not query.joins
        if isinstance(query, SelectQuery):
            return query.predicate is not None
        return False

    @staticmethod
    def _shard_key_candidates(table, queries, profile) -> list:
        """``None`` (row ranges) plus every grouped/filtered base column."""
        names = set()
        for query in queries:
            for name in getattr(query, "group_by", ()):
                owner, column = split_qualified(name)
                if owner in (None, table):
                    names.add(column)
            if query.predicate is not None:
                for name in query.predicate.columns():
                    owner, column = split_qualified(name)
                    if owner in (None, table):
                        names.add(column)
        return [None] + sorted(
            name for name in names if profile.schema.has_column(name)
        )

    def _shard_whatif(
        self, query, table, candidate, fan_out, stores, profiles, dispatch_ms,
    ) -> "tuple[float, float]":
        """``(serial_ms, sharded_ms)`` of *query* with *table* sharded on *candidate*."""
        in_group = candidate is not None and any(
            split_qualified(name)[1] == candidate
            and split_qualified(name)[0] in (None, table)
            for name in getattr(query, "group_by", ())
        )
        full_assignment = {
            name: stores.get(name, Store.COLUMN) for name in query.tables
        }
        base_key = self.cost_model.estimate_key(query, full_assignment, profiles)
        memo_key = None
        if base_key is not None:
            memo_key = ("shard-whatif", fan_out, candidate, in_group) + base_key
            cached = self.cost_model.memo.get(memo_key)
            if cached is not None:
                return cached
        serial_ms = sharded_ms = 0.0
        for contribution in query_contributions(query, full_assignment, profiles):
            priced = self.cost_model.price_contribution_ms(contribution)
            serial_ms += priced
            if contribution.table != table:
                sharded_ms += priced  # dimension work stays in the parent
                continue
            terms = {}
            for term, amount in contribution.terms.items():
                if term in _SHARDABLE_TERMS or (term == "group_rows" and in_group):
                    amount /= fan_out
                terms[term] = amount
            sharded_ms += self.cost_model.price_contribution_ms(
                CostContribution(contribution.table, contribution.store,
                                 contribution.query_type, terms)
            )
        sharded_ms += dispatch_ms
        value = (serial_ms, sharded_ms)
        if memo_key is not None:
            self.cost_model.memo.put(memo_key, value)
        return value

    # -- table-level only shortcut ----------------------------------------------------------------

    def recommend_table_level(
        self, database: HybridDatabase, workload: Workload
    ) -> Recommendation:
        """Recommendation restricted to whole-table store decisions."""
        return self.recommend(database, workload, include_partitioning=False)

    # -- applying recommendations ------------------------------------------------------------------

    def apply(
        self, database: HybridDatabase, recommendation: Recommendation
    ) -> Dict[str, CostBreakdown]:
        """Apply *recommendation* to *database* (the "automatic" option)."""
        return apply_recommendation(database, recommendation)
