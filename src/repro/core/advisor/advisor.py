"""The storage advisor façade (offline and online working modes, Section 4).

Typical offline usage::

    advisor = StorageAdvisor()
    advisor.initialize_cost_model()              # calibrate against the system
    recommendation = advisor.recommend(database, workload)
    print(recommendation.describe())
    advisor.apply(database, recommendation)      # or hand the DDL to the DBA

The online mode is provided by
:class:`~repro.core.advisor.monitor.OnlineAdvisorMonitor`, which records the
executed workload through an execution listener and periodically asks this
advisor for adaptation recommendations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.config import AdvisorConfig, DeviceModelConfig
from repro.core.advisor.ddl import apply_recommendation, statements_for_layout
from repro.core.advisor.partition_advisor import PartitionAdvisor, PartitioningDecision
from repro.core.advisor.recommendation import (
    Recommendation,
    StorageLayout,
    TableRecommendation,
)
from repro.core.advisor.table_level import TableLevelAdvisor
from repro.core.cost_model.calibration import CalibrationReport, CostModelCalibrator
from repro.core.cost_model.estimator import TableProfile
from repro.core.cost_model.model import CostModel
from repro.engine.database import HybridDatabase
from repro.engine.schema import TableSchema
from repro.engine.statistics import TableStatistics
from repro.engine.timing import CostBreakdown
from repro.engine.types import Store
from repro.errors import AdvisorError
from repro.query.workload import Workload


class StorageAdvisor:
    """Recommends the storage layout of a hybrid-store database."""

    def __init__(
        self,
        config: Optional[AdvisorConfig] = None,
        cost_model: Optional[CostModel] = None,
        device_config: Optional[DeviceModelConfig] = None,
    ) -> None:
        self.config = config or AdvisorConfig()
        self.device_config = device_config
        self.cost_model = cost_model or CostModel(device_config=device_config)
        self._table_level = TableLevelAdvisor(self.cost_model, self.config)
        self._partition_advisor = PartitionAdvisor(self.config)
        self.last_calibration: Optional[CalibrationReport] = None

    # -- cost model initialisation (offline mode, step 1) --------------------------------

    def initialize_cost_model(
        self, calibrator: Optional[CostModelCalibrator] = None
    ) -> CalibrationReport:
        """Calibrate the cost model against the execution engine.

        This is the paper's "initialize cost model" step: representative tests
        are run so that base costs and adjustment functions reflect the
        current system.  The fitted parameters replace the analytic defaults.
        """
        calibrator = calibrator or CostModelCalibrator(self.device_config)
        report = calibrator.calibrate()
        # The memo carries over: its keys include a parameters fingerprint,
        # so entries priced under the old parameters can never be served.
        self.cost_model = CostModel(parameters=report.parameters,
                                    device_config=self.device_config,
                                    memo=self.cost_model.memo)
        self._table_level = TableLevelAdvisor(self.cost_model, self.config)
        self.last_calibration = report
        return report

    # -- offline recommendation -------------------------------------------------------------

    def recommend(
        self,
        database: HybridDatabase,
        workload: Workload,
        include_partitioning: bool = True,
    ) -> Recommendation:
        """Recommend a storage layout for *database* under *workload*."""
        database.refresh_statistics()
        profiles = self.cost_model.profiles_from_catalog(database.catalog)
        return self.recommend_from_profiles(workload, profiles, include_partitioning)

    def recommend_offline(
        self,
        schemas: Mapping[str, TableSchema],
        statistics: Mapping[str, TableStatistics],
        workload: Workload,
        include_partitioning: bool = True,
    ) -> Recommendation:
        """Offline-mode recommendation from schema + basic statistics only.

        This is the cheap input path of Figure 4: no running database is
        needed, only the schema, (expected) table statistics and a recorded or
        expected workload.
        """
        profiles = {
            name: TableProfile(schema=schemas[name], statistics=statistics[name])
            for name in schemas
        }
        return self.recommend_from_profiles(workload, profiles, include_partitioning)

    def recommend_from_profiles(
        self,
        workload: Workload,
        profiles: Mapping[str, TableProfile],
        include_partitioning: bool = True,
    ) -> Recommendation:
        """Core recommendation logic shared by the offline and online modes."""
        if len(workload) == 0:
            raise AdvisorError("cannot recommend a layout for an empty workload")
        relevant = [table for table in workload.tables() if table in profiles]
        if not relevant:
            raise AdvisorError("the workload does not reference any known table")

        table_result = self._table_level.recommend(workload, profiles)
        layout = StorageLayout(dict(table_result.assignment))

        decisions: Dict[str, PartitioningDecision] = {}
        if include_partitioning:
            decisions = self._partition_advisor.recommend(
                workload, profiles, table_result.assignment
            )
            for table, decision in decisions.items():
                if decision.partitioning is not None:
                    layout.choices[table] = decision.partitioning

        table_recommendations = []
        for table in sorted(table_result.assignment):
            costs = table_result.per_table_costs.get(table, {})
            reason = ""
            decision = decisions.get(table)
            if decision is not None and decision.partitioning is not None:
                reason = decision.reason
            table_recommendations.append(
                TableRecommendation(
                    table=table,
                    choice=layout.choices[table],
                    estimated_ms_row=costs.get(Store.ROW, 0.0),
                    estimated_ms_column=costs.get(Store.COLUMN, 0.0),
                    reason=reason,
                )
            )

        row_only = {table: Store.ROW for table in table_result.assignment}
        column_only = {table: Store.COLUMN for table in table_result.assignment}
        recommendation = Recommendation(
            layout=layout,
            table_recommendations=table_recommendations,
            estimated_total_ms=self.cost_model.estimate_workload_ms(
                workload, layout.store_assignment(), profiles
            ),
            estimated_row_only_ms=self.cost_model.estimate_workload_ms(
                workload, row_only, profiles
            ),
            estimated_column_only_ms=self.cost_model.estimate_workload_ms(
                workload, column_only, profiles
            ),
        )
        recommendation.ddl_statements = statements_for_layout(layout)
        return recommendation

    # -- table-level only shortcut ----------------------------------------------------------------

    def recommend_table_level(
        self, database: HybridDatabase, workload: Workload
    ) -> Recommendation:
        """Recommendation restricted to whole-table store decisions."""
        return self.recommend(database, workload, include_partitioning=False)

    # -- applying recommendations ------------------------------------------------------------------

    def apply(
        self, database: HybridDatabase, recommendation: Recommendation
    ) -> Dict[str, CostBreakdown]:
        """Apply *recommendation* to *database* (the "automatic" option)."""
        return apply_recommendation(database, recommendation)
