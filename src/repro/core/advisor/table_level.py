"""Table-level store recommendation (Section 3.1 of the paper).

For every table the advisor compares the estimated workload runtime with the
table in the row store against the column store and picks the cheaper one.
Joins couple the decisions of the participating tables — "it may be better to
move both tables to the same store when they are often used for joins" — so
tables connected by join queries are optimised together: their store
combinations are enumerated exhaustively (the paper's "four estimates instead
of two" for a two-table join), falling back to a greedy improvement search
for very large join groups.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.config import AdvisorConfig
from repro.core.cost_model.estimator import TableProfile
from repro.core.cost_model.model import CostModel
from repro.engine.types import Store
from repro.errors import AdvisorError
from repro.query.ast import AggregationQuery, Query
from repro.query.workload import Workload


@dataclass
class TableLevelResult:
    """Outcome of the table-level optimisation."""

    assignment: Dict[str, Store] = field(default_factory=dict)
    #: Estimated workload share (ms) per table and store, computed with the
    #: other tables fixed to their recommended stores.
    per_table_costs: Dict[str, Dict[Store, float]] = field(default_factory=dict)
    total_ms: float = 0.0


class TableLevelAdvisor:
    """Chooses a store per table by minimising the estimated workload runtime."""

    def __init__(self, cost_model: CostModel, config: Optional[AdvisorConfig] = None) -> None:
        self.cost_model = cost_model
        self.config = config or AdvisorConfig()

    # -- public API -------------------------------------------------------------------

    def recommend(
        self, workload: Workload, profiles: Mapping[str, TableProfile]
    ) -> TableLevelResult:
        """Return the cost-minimal store assignment for the workload's tables."""
        tables = [table for table in workload.tables() if table in profiles]
        if not tables:
            raise AdvisorError("the workload does not reference any known table")

        groups = self._join_groups(workload, tables)
        assignment: Dict[str, Store] = {}
        for group in groups:
            group_queries = [
                query for query in workload
                if any(table in group for table in query.tables)
            ]
            group_workload = Workload(group_queries, name=f"group({','.join(sorted(group))})")
            assignment.update(self._optimise_group(sorted(group), group_workload, profiles))

        result = TableLevelResult(assignment=assignment)
        result.total_ms = self.cost_model.estimate_workload_ms(
            workload, assignment, profiles
        )
        result.per_table_costs = self._per_table_costs(workload, profiles, assignment)
        return result

    # -- join groups ---------------------------------------------------------------------

    @staticmethod
    def _join_groups(workload: Workload, tables: Sequence[str]) -> List[Set[str]]:
        """Partition the tables into groups connected by join queries."""
        parent: Dict[str, str] = {table: table for table in tables}

        def find(table: str) -> str:
            while parent[table] != table:
                parent[table] = parent[parent[table]]
                table = parent[table]
            return table

        def union(left: str, right: str) -> None:
            root_left, root_right = find(left), find(right)
            if root_left != root_right:
                parent[root_right] = root_left

        for query in workload:
            if isinstance(query, AggregationQuery):
                for join in query.joins:
                    if query.table in parent and join.table in parent:
                        union(query.table, join.table)
        groups: Dict[str, Set[str]] = {}
        for table in tables:
            groups.setdefault(find(table), set()).add(table)
        return list(groups.values())

    # -- per-group optimisation --------------------------------------------------------------

    def _optimise_group(
        self,
        group: Sequence[str],
        workload: Workload,
        profiles: Mapping[str, TableProfile],
    ) -> Dict[str, Store]:
        if len(group) <= self.config.max_exhaustive_join_group:
            return self._optimise_exhaustively(group, workload, profiles)
        return self._optimise_greedily(group, workload, profiles)

    def _optimise_exhaustively(
        self,
        group: Sequence[str],
        workload: Workload,
        profiles: Mapping[str, TableProfile],
    ) -> Dict[str, Store]:
        best_assignment: Optional[Dict[str, Store]] = None
        best_cost = float("inf")
        for stores in itertools.product(Store, repeat=len(group)):
            assignment = dict(zip(group, stores))
            cost = self.cost_model.estimate_workload_ms(workload, assignment, profiles)
            if cost < best_cost:
                best_cost = cost
                best_assignment = assignment
        assert best_assignment is not None
        return best_assignment

    def _optimise_greedily(
        self,
        group: Sequence[str],
        workload: Workload,
        profiles: Mapping[str, TableProfile],
    ) -> Dict[str, Store]:
        assignment = {table: Store.COLUMN for table in group}
        cost = self.cost_model.estimate_workload_ms(workload, assignment, profiles)
        improved = True
        while improved:
            improved = False
            for table in group:
                candidate = dict(assignment)
                candidate[table] = assignment[table].other
                candidate_cost = self.cost_model.estimate_workload_ms(
                    workload, candidate, profiles
                )
                if candidate_cost < cost:
                    assignment = candidate
                    cost = candidate_cost
                    improved = True
        return assignment

    # -- reporting --------------------------------------------------------------------------------

    def _per_table_costs(
        self,
        workload: Workload,
        profiles: Mapping[str, TableProfile],
        assignment: Mapping[str, Store],
    ) -> Dict[str, Dict[Store, float]]:
        """Estimated workload runtime with each table flipped to either store."""
        costs: Dict[str, Dict[Store, float]] = {}
        for table in assignment:
            table_workload = workload.restricted_to(table)
            costs[table] = {}
            for store in Store:
                candidate = dict(assignment)
                candidate[table] = store
                costs[table][store] = self.cost_model.estimate_workload_ms(
                    table_workload, candidate, profiles
                )
        return costs
