"""Recommendation data structures of the storage advisor."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.engine.partitioning import TablePartitioning
from repro.engine.types import Store

#: A per-table layout choice: a plain store or a store-aware partitioning.
StoreChoice = Union[Store, TablePartitioning]


@dataclass
class StorageLayout:
    """A complete storage layout: one :data:`StoreChoice` per table."""

    choices: Dict[str, StoreChoice] = field(default_factory=dict)

    def store_assignment(self, default: Store = Store.COLUMN) -> Dict[str, Store]:
        """Collapse the layout to a per-table store assignment.

        Partitioned tables report the store of their analytical (historic)
        portion, which is what the table-level cost model needs when it
        estimates joins against them.
        """
        assignment = {}
        for table, choice in self.choices.items():
            if isinstance(choice, Store):
                assignment[table] = choice
            elif choice.vertical is not None or choice.horizontal is None:
                assignment[table] = Store.COLUMN
            else:
                assignment[table] = choice.horizontal.cold_store
        for table, store in list(assignment.items()):
            if store is None:  # pragma: no cover - defensive
                assignment[table] = default
        return assignment

    def partitioned_tables(self) -> Dict[str, TablePartitioning]:
        return {
            table: choice
            for table, choice in self.choices.items()
            if isinstance(choice, TablePartitioning)
        }

    def describe(self) -> str:
        lines = []
        for table in sorted(self.choices):
            choice = self.choices[table]
            if isinstance(choice, Store):
                lines.append(f"{table}: {choice.value} store")
            else:
                lines.append(f"{table}: {choice.describe()}")
        return "\n".join(lines)

    @classmethod
    def uniform(cls, tables, store: Store) -> "StorageLayout":
        """A layout that keeps every listed table in *store* (baseline layouts)."""
        return cls({table: store for table in tables})


@dataclass
class TableRecommendation:
    """The advisor's decision for one table."""

    table: str
    choice: StoreChoice
    estimated_ms_row: float
    estimated_ms_column: float
    reason: str = ""

    @property
    def recommended_store(self) -> Optional[Store]:
        return self.choice if isinstance(self.choice, Store) else None

    @property
    def is_partitioned(self) -> bool:
        return isinstance(self.choice, TablePartitioning)

    @property
    def estimated_ms_chosen(self) -> float:
        if isinstance(self.choice, Store) and self.choice is Store.ROW:
            return self.estimated_ms_row
        return self.estimated_ms_column

    def describe(self) -> str:
        if isinstance(self.choice, Store):
            layout = f"{self.choice.value} store"
        else:
            layout = self.choice.describe()
        return (
            f"{self.table}: {layout} "
            f"(estimated workload share: row={self.estimated_ms_row:.2f} ms, "
            f"column={self.estimated_ms_column:.2f} ms){' - ' + self.reason if self.reason else ''}"
        )


@dataclass
class ShardKeyRecommendation:
    """The advisor's shard-parallelism decision for one table.

    ``shard_key`` is the column whose grouping the shard layout should align
    with (``None`` = plain row-range shards); the estimates come from the
    same what-if repricing machinery as the store decision, memoized in the
    cost model's :class:`~repro.core.cost_model.memo.EstimateMemo`.
    """

    table: str
    shard_key: Optional[str]
    fan_out: int
    estimated_serial_ms: float
    estimated_sharded_ms: float
    reason: str = ""
    #: The hypothetical :class:`~repro.api.plan.PhysicalPlan` the what-if was
    #: priced for (the table's representative shardable query), renderable by
    #: the EXPLAIN renderer via :meth:`explain`.
    whatif_plan: Optional[object] = None

    @property
    def estimated_speedup(self) -> float:
        if self.estimated_sharded_ms <= 0:
            return 0.0
        return self.estimated_serial_ms / self.estimated_sharded_ms

    def describe(self) -> str:
        key = self.shard_key or "row ranges"
        return (
            f"{self.table}: shard by {key} x{self.fan_out} "
            f"(estimated {self.estimated_serial_ms:.2f} ms -> "
            f"{self.estimated_sharded_ms:.2f} ms)"
            f"{' - ' + self.reason if self.reason else ''}"
        )

    def explain(self) -> str:
        """EXPLAIN rendering of the representative what-if plan."""
        if self.whatif_plan is None:
            return self.describe()
        from repro.api.explain import render_plan

        return render_plan(self.whatif_plan)


@dataclass
class ViewRecommendation:
    """The advisor's proposal to materialize one recurring aggregation.

    Priced through the same shared :class:`EstimateMemo` as store moves: the
    base cost is the cost model's estimate of executing the defining query
    against the current layout, the view cost prices serving the materialized
    rows (query overhead + a sequential read of the view), and the benefit is
    their difference accumulated over the shape's recurrences in the
    monitored workload.  ``base_plan``/``view_plan`` are hypothetical
    :class:`~repro.api.plan.PhysicalPlan` objects renderable by the EXPLAIN
    renderer (:meth:`explain`).
    """

    view: str
    table: str
    fingerprint: str
    query: object
    occurrences: int
    estimated_base_ms: float
    estimated_view_ms: float
    estimated_rows: int
    base_plan: Optional[object] = None
    view_plan: Optional[object] = None

    @property
    def estimated_benefit_ms(self) -> float:
        """Estimated workload savings over all recurrences."""
        return (self.estimated_base_ms - self.estimated_view_ms) * self.occurrences

    @property
    def estimated_speedup(self) -> float:
        if self.estimated_view_ms <= 0:
            return 0.0
        return self.estimated_base_ms / self.estimated_view_ms

    def describe(self) -> str:
        return (
            f"{self.view}: materialize query {self.fingerprint} over "
            f"{self.table} (seen {self.occurrences}x, ~{self.estimated_rows} "
            f"row(s); estimated {self.estimated_base_ms:.2f} ms -> "
            f"{self.estimated_view_ms:.2f} ms per run, "
            f"{self.estimated_benefit_ms:.2f} ms total)"
        )

    def explain(self) -> str:
        """EXPLAIN rendering of the base plan vs. the rewritten what-if plan."""
        if self.base_plan is None or self.view_plan is None:
            return self.describe()
        from repro.api.explain import render_plan

        return (
            "without view:\n" + render_plan(self.base_plan)
            + "\nwith view:\n" + render_plan(self.view_plan)
        )


@dataclass
class Recommendation:
    """A full storage-layout recommendation for a workload."""

    layout: StorageLayout
    table_recommendations: List[TableRecommendation] = field(default_factory=list)
    estimated_total_ms: float = 0.0
    estimated_row_only_ms: float = 0.0
    estimated_column_only_ms: float = 0.0
    ddl_statements: List[str] = field(default_factory=list)

    @property
    def estimated_improvement_vs_row(self) -> float:
        """Relative improvement of the recommended layout over row-store-only."""
        if self.estimated_row_only_ms <= 0:
            return 0.0
        return 1.0 - self.estimated_total_ms / self.estimated_row_only_ms

    @property
    def estimated_improvement_vs_column(self) -> float:
        """Relative improvement of the recommended layout over column-store-only."""
        if self.estimated_column_only_ms <= 0:
            return 0.0
        return 1.0 - self.estimated_total_ms / self.estimated_column_only_ms

    def choice_for(self, table: str) -> StoreChoice:
        return self.layout.choices[table]

    def describe(self) -> str:
        lines = ["Storage advisor recommendation:"]
        for recommendation in self.table_recommendations:
            lines.append("  " + recommendation.describe())
        lines.append(
            f"  estimated workload runtime: {self.estimated_total_ms:.2f} ms "
            f"(row-only {self.estimated_row_only_ms:.2f} ms, "
            f"column-only {self.estimated_column_only_ms:.2f} ms)"
        )
        if self.ddl_statements:
            lines.append("  statements:")
            for statement in self.ddl_statements:
                lines.append(f"    {statement}")
        return "\n".join(lines)
