"""DDL generation and application of storage-advisor recommendations.

The paper's advisor presents its recommendations to the administrator
together with "the respective statements to move the data into the
recommended store"; alternatively the layout can be applied automatically.
This module renders those statements (in the SQL-ish dialect of this
reproduction) and applies a recommendation to a running
:class:`~repro.engine.database.HybridDatabase`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.advisor.recommendation import Recommendation, StorageLayout
from repro.engine.database import HybridDatabase
from repro.engine.partitioning import TablePartitioning
from repro.engine.timing import CostBreakdown
from repro.engine.types import Store


def statement_for_store(table: str, store: Store) -> str:
    """Render the statement that moves *table* into *store*."""
    return f"ALTER TABLE {table} MOVE TO {store.value.upper()} STORE;"


def statement_for_partitioning(table: str, partitioning: TablePartitioning) -> str:
    """Render the statement that applies *partitioning* to *table*."""
    clauses: List[str] = []
    if partitioning.horizontal is not None:
        horizontal = partitioning.horizontal
        clauses.append(
            f"HOT ROWS WHERE {horizontal.predicate!r} IN "
            f"{horizontal.hot_store.value.upper()} STORE"
        )
        clauses.append(
            f"REMAINING ROWS IN {horizontal.cold_store.value.upper()} STORE"
        )
    if partitioning.vertical is not None:
        vertical = partitioning.vertical
        clauses.append(
            f"COLUMNS ({', '.join(vertical.row_store_columns)}) IN ROW STORE"
        )
        clauses.append(
            f"COLUMNS ({', '.join(vertical.column_store_columns)}) IN COLUMN STORE"
        )
    joined = ", ".join(clauses)
    return f"ALTER TABLE {table} PARTITION BY ({joined});"


def statements_for_layout(
    layout: StorageLayout, current_layout: Optional[Dict[str, Store]] = None
) -> List[str]:
    """Render the statements needed to reach *layout*.

    When ``current_layout`` is given, tables that already reside in the
    recommended store are skipped (partitionings are always emitted because
    their internals cannot be compared cheaply).
    """
    statements: List[str] = []
    for table in sorted(layout.choices):
        choice = layout.choices[table]
        if isinstance(choice, Store):
            if current_layout is not None and current_layout.get(table) is choice:
                continue
            statements.append(statement_for_store(table, choice))
        else:
            statements.append(statement_for_partitioning(table, choice))
    return statements


def apply_recommendation(
    database: HybridDatabase, recommendation: Recommendation
) -> Dict[str, CostBreakdown]:
    """Apply a recommendation to the database, returning per-table movement costs."""
    return apply_layout(database, recommendation.layout)


def apply_layout(
    database: HybridDatabase, layout: StorageLayout
) -> Dict[str, CostBreakdown]:
    """Apply a storage layout to the database, returning per-table movement costs."""
    costs: Dict[str, CostBreakdown] = {}
    for table in sorted(layout.choices):
        if not database.has_table(table):
            continue
        choice = layout.choices[table]
        if isinstance(choice, Store):
            entry = database.catalog.entry(table)
            if not entry.is_partitioned and entry.store is choice:
                continue
            costs[table] = database.move_table(table, choice)
        else:
            costs[table] = database.apply_partitioning(table, choice)
    return costs
