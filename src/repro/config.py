"""Global configuration objects for the repro library.

Two kinds of configuration live here:

* :class:`DeviceModelConfig` — the constants of the analytic timing model that
  converts the work performed by the execution engine (bytes scanned, random
  accesses, dictionary decodes, ...) into simulated time.  The paper measured
  wall-clock time on SAP HANA hardware; we substitute a deterministic device
  model so that experiments are reproducible and independent of the Python
  interpreter (see DESIGN.md, Section 2).

* :class:`AdvisorConfig` — tunable thresholds of the storage advisor
  (partitioning heuristics, enumeration limits, online re-evaluation period).

Both are plain dataclasses with sensible defaults; every experiment can
override individual fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


DEFAULT_SEED = 20120827  # first day of VLDB 2012, used as the default RNG seed


@dataclass(frozen=True)
class DeviceModelConfig:
    """Constants of the simulated device (all costs in nanoseconds).

    The defaults are loosely modelled on a 2.5 GHz in-memory system: sequential
    scans proceed at a few GB/s once predicate evaluation is included, random
    accesses cost on the order of a cache miss, and the column store pays
    per-value dictionary maintenance on writes.  Absolute values are not meant
    to match the paper's hardware; only the *relative* behaviour of the two
    stores matters for the reproduction (see DESIGN.md).
    """

    #: Sequential memory traffic, per byte (covers read + light processing).
    seq_read_ns_per_byte: float = 0.5
    #: A dependent random access (cache/TLB miss dominated).
    random_access_ns: float = 90.0
    #: Decoding one dictionary-compressed value (code -> value lookup).
    dict_decode_ns: float = 2.5
    #: Reconstructing one attribute of one tuple from a column-store column.
    tuple_reconstruct_ns: float = 60.0
    #: Evaluating a predicate against one value (row-at-a-time interpretation).
    predicate_eval_ns: float = 3.0
    #: Comparing one compressed code in a vectorised column-store scan.
    vector_compare_ns: float = 0.5
    #: Updating one aggregate accumulator with one value.
    aggregate_update_ns: float = 4.0
    #: Maintaining the grouping hash table for one row of a GROUP BY.
    group_by_update_ns: float = 10.0
    #: Hashing + inserting one key into a hash table (joins, group-by).
    hash_insert_ns: float = 45.0
    #: Probing a hash table with one key.
    hash_probe_ns: float = 30.0
    #: Appending one byte to the row store (includes page bookkeeping).
    row_append_ns_per_byte: float = 1.0
    #: Writing one value in place in the row store.
    row_update_value_ns: float = 25.0
    #: Inserting one value into a column-store column (dictionary lookup,
    #: possible dictionary growth, appending the code to the delta buffer).
    cs_insert_value_ns: float = 550.0
    #: Updating one cell of a column-store row.  Column stores implement
    #: updates as "invalidate + re-insert the full row version", so the engine
    #: charges this for *every* column of an updated row, not only the
    #: assigned ones.
    cs_update_value_ns: float = 800.0
    #: Converting one cell between memory layouts for a cross-store operation.
    layout_conversion_ns_per_cell: float = 70.0
    #: Fixed per-query overhead (admission, planning), in nanoseconds.
    query_overhead_ns: float = 15_000.0
    #: Fixed per-partition overhead added when a query spans partitions
    #: (union / join assembly bookkeeping).
    partition_overhead_ns: float = 5_000.0
    #: Per-shard scatter/gather overhead of the shard-parallel executor
    #: (task dispatch, result collection and merge bookkeeping).  Consumed
    #: only by the parallel-runtime projection — never billed to a query's
    #: :class:`~repro.engine.timing.CostBreakdown`.
    shard_dispatch_ns: float = 25_000.0

    def scaled(self, factor: float) -> "DeviceModelConfig":
        """Return a copy with every per-operation cost multiplied by *factor*.

        Used by the ablation benchmarks to check that the advisor's decisions
        are insensitive to a uniform re-scaling of the device constants.
        """
        return replace(
            self,
            **{
                name: getattr(self, name) * factor
                for name in self.__dataclass_fields__
            },
        )


@dataclass(frozen=True)
class AdvisorConfig:
    """Tunable thresholds and limits of the storage advisor."""

    #: Fraction of insert queries in the workload above which a dedicated
    #: row-store partition for newly arriving tuples is recommended
    #: (Section 3.2, "Get fraction of insert queries").
    insert_fraction_threshold: float = 0.05
    #: Fraction of update/point accesses a tuple region must receive to be
    #: classified as "frequently updated as a whole" (hot OLTP rows).
    hot_row_access_threshold: float = 0.5
    #: Fraction of an attribute's accesses that must be OLTP-style (updates,
    #: point selections) for it to be classified as an OLTP attribute for the
    #: vertical split (Section 3.2, "Get OLTP attributes").
    oltp_attribute_threshold: float = 0.6
    #: Minimum number of workload queries before the online monitor will
    #: recompute a recommendation.
    online_reevaluation_interval: int = 200
    #: Maximum number of tables in a join-connected group for which all store
    #: combinations are enumerated exhaustively; larger groups fall back to a
    #: greedy per-table improvement search.
    max_exhaustive_join_group: int = 8
    #: Relative cost improvement a layout change must achieve before the
    #: online monitor reports an adaptation (hysteresis against flapping).
    min_relative_improvement: float = 0.02


@dataclass(frozen=True)
class DurabilityConfig:
    """Durability knobs: write-ahead logging and the delta/main merge.

    Consumed by :func:`repro.api.connect` when a ``wal_path`` is given, and
    by the engine's column-store backends for merge scheduling.
    """

    #: When the WAL flushes to disk: ``"commit"`` after every statement,
    #: ``"batch"`` every :attr:`wal_batch_size` records, ``"off"`` only on
    #: checkpoint/close (fastest, loses the tail on a crash).
    wal_sync_mode: str = "commit"
    #: Records buffered between flushes in ``"batch"`` mode.
    wal_batch_size: int = 32
    #: Delta size (rows) at which a column-store insert triggers a merge.
    delta_merge_threshold: int = 65536


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs of the resilient execution layer (shard retries, deadlines).

    Consumed by :func:`repro.api.connect` (``resilience=...``) and applied to
    the shard executor's process-wide defaults; ``shard_config(...)`` scopes
    temporary overrides the same way tests override the fan-out.
    """

    #: Total sharded attempts per query (1 = no retry) before the query
    #: degrades to the serial rung of the ladder.
    max_attempts: int = 2
    #: Base seconds the parent waits for a gather before declaring the crew
    #: wedged.  Scaled up with the sharded row count (see
    #: :func:`repro.engine.shard.gather_timeout_for`) so large benches under
    #: CI load don't trip it.
    gather_timeout_s: float = 30.0
    #: Base of the bounded exponential backoff between retry attempts; the
    #: delay for attempt *n* is ``backoff_s * 2**(n-1)`` plus deterministic
    #: jitter, capped at :attr:`backoff_cap_s`.
    backoff_s: float = 0.05
    #: Upper bound on any single retry backoff sleep.
    backoff_cap_s: float = 1.0
    #: Poll interval of the gather loop — the granularity at which worker
    #: deaths, gather timeouts and query deadlines are detected.
    heartbeat_poll_s: float = 0.05


@dataclass(frozen=True)
class IntegrityConfig:
    """Knobs of the data-integrity layer (checksums, scrub, quarantine).

    Consumed by :func:`repro.api.connect` (``integrity=...``) and applied to
    the engine's process-wide defaults (the shard worker pool and its shared
    segments are process-wide, so checksum policy must be too).  Verification
    is billed zero simulated cost either way — only wall clock and the
    integrity counters are affected.
    """

    #: Master switch.  ``False`` disables checksum maintenance, scan-time
    #: verification and shard shm verification entirely (quarantine state
    #: already recorded keeps raising — corrupt data is never served).
    enabled: bool = True
    #: Verify a column-store unit's checksum (at most once per zone epoch)
    #: when a scan first reads it.
    verify_on_scan: bool = True
    #: Ship expected code-array crcs with shard tasks so workers verify the
    #: attached shared-memory segments before executing.
    verify_on_attach: bool = True


@dataclass
class ReproConfig:
    """Top-level configuration bundle used by examples and benchmarks."""

    device: DeviceModelConfig = field(default_factory=DeviceModelConfig)
    advisor: AdvisorConfig = field(default_factory=AdvisorConfig)
    durability: DurabilityConfig = field(default_factory=DurabilityConfig)
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    integrity: IntegrityConfig = field(default_factory=IntegrityConfig)
    seed: int = DEFAULT_SEED
