"""The session API: one entry point over the hybrid-store engine.

``connect()`` opens a :class:`Session`, which drives every statement through
the explicit pipeline

    parse → bind → plan (LogicalPlan → PhysicalPlan) → execute

with a plan cache keyed by ``(query fingerprint, layout/statistics
fingerprint)``: repeated and prepared statements skip re-planning, and any
DDL, store move, repartitioning or statistics refresh makes the affected
plans unreachable.  The same :class:`~repro.api.plan.PhysicalPlan` objects
feed ``EXPLAIN`` (:meth:`Session.explain`), the storage advisor
(:meth:`Session.advisor` — estimates share one content-keyed memo with the
planner) and the online monitor
(:meth:`repro.core.advisor.monitor.OnlineAdvisorMonitor.attach_session`).

Executing through a session charges *bit-identical*
:class:`~repro.engine.timing.CostBreakdown` costs to the legacy
``HybridDatabase.execute`` path — plans pre-resolve access paths, they never
change what a query costs.

Typical usage::

    from repro.api import connect

    session = connect()
    session.create_table(schema, Store.ROW)
    session.load_rows("sales", rows)

    result = session.sql("SELECT sum(revenue) FROM sales GROUP BY region")
    lookup = session.prepare("SELECT * FROM sales WHERE id = ?")
    row = lookup.execute([42])
    print(session.explain("SELECT sum(revenue) FROM sales GROUP BY region"))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.api.binder import Params, bind, statement_parameters
from repro.api.explain import render_plan
from repro.api.plan import PhysicalPlan, PlanCache, Planner
from repro.config import (
    AdvisorConfig,
    DeviceModelConfig,
    DurabilityConfig,
    IntegrityConfig,
    ResilienceConfig,
)
from repro.core.advisor.advisor import StorageAdvisor
from repro.core.advisor.recommendation import Recommendation
from repro.engine.database import HybridDatabase, WorkloadRunResult
from repro.engine.matview import (
    REFRESH_INCREMENTAL,
    MaterializedView,
    RefreshResult,
    matview_enabled,
    view_serve_bytes,
)
from repro.engine.deadline import query_deadline
from repro.engine.integrity import (
    IntegrityReport,
    apply_integrity_config,
    integrity_counters,
    scrub,
)
from repro.engine.shard import (
    apply_resilience_config,
    audit_shared_segments,
    resilience_counters,
    shutdown_worker_pool,
)
from repro.engine.wal import RecoveryReport, WriteAheadLog, recover as wal_recover
from repro.engine.executor.executor import QueryResult
from repro.engine.partitioning import TablePartitioning
from repro.engine.schema import TableSchema
from repro.engine.statistics import TableStatistics
from repro.engine.timing import CostAccountant, CostBreakdown
from repro.engine.types import Store
from repro.errors import BindError, CatalogError, QueryTimeoutError, WalError
from repro.query.ast import Parameter, Query
from repro.query.parser import parse
from repro.query.workload import Workload

#: Signature of session plan listeners: (bound query, plan, result).
PlanExecutionListener = Callable[[Query, PhysicalPlan, QueryResult], None]

_PARSE_CACHE_LIMIT = 1024


@dataclass
class SessionStats:
    """Counter snapshot of one session (see :meth:`Session.stats`)."""

    queries_executed: int
    statements_parsed: int
    parse_cache_hits: int
    prepared_statements: int
    plan_cache_size: int
    plan_cache_hits: int
    plan_cache_misses: int
    plan_cache_evictions: int
    estimate_memo_hits: int
    estimate_memo_misses: int
    #: Aggregations served from a materialized view.
    view_rewrite_hits: int = 0
    #: Plans that recorded a view rewrite but fell back to base-table
    #: execution (views disabled, view dropped, defining-query mismatch).
    view_rewrite_misses: int = 0
    #: Serve-time refreshes that merged cached unit partials.
    view_incremental_refreshes: int = 0
    #: Serve-time refreshes that recomputed from scratch (incl. initial).
    view_full_refreshes: int = 0
    #: Sharded attempts retried after a failure (resilience layer, this
    #: session's lifetime — deltas of the process-wide counters).
    shard_retries: int = 0
    #: Worker processes the shard supervisor replaced individually.
    shard_worker_replacements: int = 0
    #: Queries that exhausted the sharded retry budget and ran serially.
    shard_degradations: int = 0
    #: Shared-memory segments the close/atexit audit had to reclaim.
    shard_segments_reclaimed: int = 0
    #: Unexpected (non-race) errors swallowed during pool teardown.
    shard_teardown_errors: int = 0
    #: Queries cancelled by an expired ``execute(timeout=...)`` deadline.
    query_timeouts: int = 0
    #: Checksum verifications performed (integrity layer, this session's
    #: lifetime — deltas of the process-wide counters).
    integrity_units_verified: int = 0
    #: Checksum mismatches detected (scan-time or scrub).
    integrity_corruption_detected: int = 0
    #: Partition units placed in quarantine.
    integrity_units_quarantined: int = 0
    #: Quarantined units rebuilt by :meth:`Session.repair`.
    integrity_units_repaired: int = 0

    @property
    def plan_cache_hit_rate(self) -> float:
        total = self.plan_cache_hits + self.plan_cache_misses
        return self.plan_cache_hits / total if total else 0.0


class PreparedStatement:
    """A parsed, validated statement whose plan survives re-execution.

    Produced by :meth:`Session.prepare`.  The plan is built from the
    *template* (placeholders contribute default selectivities) and cached by
    the session's plan cache, so ``execute`` only binds the parameter values
    and runs — no re-parse, no re-plan, until DDL/store moves/statistics
    refresh invalidate the plan.
    """

    def __init__(self, session: "Session", sql: str, template: Query) -> None:
        self.session = session
        self.sql = sql
        self.template = template
        #: The statement's placeholders (positional first, in index order).
        self.parameters: Tuple[Parameter, ...] = statement_parameters(template)

    def execute(self, params: Params = None,
                timeout: Optional[float] = None) -> QueryResult:
        """Bind *params* and execute through the cached plan."""
        return self.session.execute(self.template, params=params,
                                    timeout=timeout)

    __call__ = execute

    def plan(self) -> PhysicalPlan:
        """The statement's current physical plan (re-planned if stale)."""
        return self.session.plan_for(self.template)

    def explain(self, params: Params = None, analyze: bool = False) -> str:
        return self.session.explain(self.template, params=params, analyze=analyze)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PreparedStatement({self.sql!r})"


class Session:
    """A connection-like façade over one :class:`HybridDatabase`."""

    def __init__(
        self,
        database: Optional[HybridDatabase] = None,
        device_config: Optional[DeviceModelConfig] = None,
        advisor_config: Optional[AdvisorConfig] = None,
        plan_cache_capacity: int = 512,
        wal_path: Optional[str] = None,
        durability: Optional[DurabilityConfig] = None,
        resilience: Optional[ResilienceConfig] = None,
        integrity: Optional[IntegrityConfig] = None,
    ) -> None:
        self.database = database if database is not None else HybridDatabase(device_config)
        self._advisor = StorageAdvisor(
            config=advisor_config, device_config=self.database.device.config
        )
        self._planner = Planner(self.database, lambda: self._advisor.cost_model)
        self._plan_cache = PlanCache(capacity=plan_cache_capacity)
        self._parse_cache: Dict[str, Query] = {}
        self._plan_listeners: List[PlanExecutionListener] = []
        self._queries_executed = 0
        self._statements_parsed = 0
        self._parse_cache_hits = 0
        self._prepared_statements = 0
        self._view_rewrite_hits = 0
        self._view_rewrite_misses = 0
        self._view_incremental_refreshes = 0
        self._view_full_refreshes = 0
        self._query_timeouts = 0
        # Resilience counters are process-wide (the worker pool is shared);
        # the session reports its own lifetime as deltas from this snapshot.
        self._resilience_baseline = resilience_counters().snapshot()
        # Integrity counters follow the same process-wide pattern.
        self._integrity_baseline = integrity_counters().snapshot()
        self._closed = False
        if resilience is not None:
            apply_resilience_config(resilience)
        if integrity is not None:
            apply_integrity_config(integrity)
        if durability is not None:
            self.database.delta_merge_threshold = durability.delta_merge_threshold
        if wal_path is not None and self.database.wal is None:
            durability = durability or DurabilityConfig()
            self.database.attach_wal(
                WriteAheadLog(
                    wal_path,
                    sync_mode=durability.wal_sync_mode,
                    batch_size=durability.wal_batch_size,
                )
            )

    # -- context management -------------------------------------------------------

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        # Close unconditionally: an exception inside the ``with`` body must
        # not leak the WAL file handle or cached plans.
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release cached plans and close an attached WAL.

        Idempotent and exception-safe: calling it twice (or after a failed
        statement) is a no-op the second time, listeners are dropped so a
        half-torn-down monitor cannot be re-notified, and the WAL is flushed
        and closed even if clearing a cache were to fail.  The database
        itself stays usable.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self.clear_caches()
            self._plan_listeners.clear()
            # The shard worker pool is process-wide (shared-memory segments
            # plus worker processes); closing the session releases it.  The
            # next sharded query — from a later session — recreates it.
            # The ledger audit then asserts every segment the pool ever
            # published was unlinked exactly once, reclaiming (and counting)
            # anything a mid-query worker death managed to orphan.
            shutdown_worker_pool()
            audit_shared_segments()
        finally:
            wal = self.database.wal
            if wal is not None and not wal.closed:
                wal.close()

    def clear_caches(self) -> None:
        """Drop every cached parse, plan and cost estimate (cold starts, tests).

        The session stays fully usable: the next statement runs the whole
        parse -> bind -> plan pipeline again and re-populates the caches.
        The shared :class:`EstimateMemo` is cleared too, so stale estimates
        priced against superseded physical state cannot outlive the plans
        that consumed them.
        """
        self._plan_cache.clear()
        self._parse_cache.clear()
        self._advisor.cost_model.reset_cache()

    # -- the pipeline -------------------------------------------------------------

    def parse(self, statement: str) -> Query:
        """Parse *statement* (cached by its exact text)."""
        cached = self._parse_cache.get(statement)
        if cached is not None:
            self._parse_cache_hits += 1
            return cached
        query = parse(statement)
        self._statements_parsed += 1
        if len(self._parse_cache) >= _PARSE_CACHE_LIMIT:
            self._parse_cache.clear()
        self._parse_cache[statement] = query
        return query

    def bind(self, query_or_sql: Union[Query, str], params: Params = None,
             partial: bool = False) -> Query:
        """Bind a statement against the catalog (names, types, parameters)."""
        template = self._template(query_or_sql)
        return bind(template, self.database.catalog, params, partial=partial)

    def plan_for(self, query_or_sql: Union[Query, str]) -> PhysicalPlan:
        """The physical plan of a statement under the current layout.

        Served from the plan cache when the statement's fingerprint and the
        participating tables' layout/statistics versions both match;
        re-planned otherwise.
        """
        template = self._template(query_or_sql)
        return self._cached_plan(template)

    def execute(self, query_or_sql: Union[Query, str], params: Params = None,
                timeout: Optional[float] = None) -> QueryResult:
        """Run one statement through parse → bind → plan → execute.

        *timeout* (seconds) arms a cooperative deadline over the execution:
        on expiry :class:`~repro.errors.QueryTimeoutError` is raised, no
        result is recorded, no cost is billed (the cancelled execution's
        accountant dies with it) and the shard worker pool — if a wedged
        worker had to be abandoned — is repaired before the error surfaces.
        """
        template = self._template(query_or_sql)
        bound = bind(template, self.database.catalog, params)
        plan = self._cached_plan(template)
        try:
            with query_deadline(timeout):
                result = self._run_plan(bound, plan)
        except QueryTimeoutError:
            self._query_timeouts += 1
            raise
        plan.record_execution(result)
        self._queries_executed += 1
        for listener in self._plan_listeners:
            listener(bound, plan, result)
        return result

    def _run_plan(self, bound: Query, plan: PhysicalPlan) -> QueryResult:
        """Execute *bound* through *plan* — from its view when one matches."""
        result = self._serve_from_view(bound, plan)
        if result is None:
            result = self.database.execute_with_paths(bound, plan.paths)
        return result

    def _serve_from_view(self, bound: Query, plan: PhysicalPlan) -> Optional[QueryResult]:
        """Answer *bound* from the plan's materialized view, if possible.

        ``None`` falls back to base-table execution.  A stale view is
        refreshed first — incrementally when the partial-merge contract
        allows, from scratch otherwise — and the refresh cost is charged to
        this query's :class:`CostBreakdown`: freshness is never traded for
        speed, the rewrite only amortizes the recompute across the recurring
        executions that *don't* follow a write.
        """
        rewrite = plan.view_rewrite
        if rewrite is None:
            return None
        if not matview_enabled():
            self._view_rewrite_misses += 1
            return None
        database = self.database
        try:
            view = database.view(rewrite.view)
        except CatalogError:
            self._view_rewrite_misses += 1
            return None
        if view.query != bound:
            # Defensive: binding rewrote the query (e.g. DATE literal
            # coercion), so the materialized state answers a different
            # question than the one being asked.
            self._view_rewrite_misses += 1
            return None
        table_object = database.table_object(view.table)
        accountant = CostAccountant(database.device)
        accountant.charge_query_overhead()
        served = "served"
        if not view.is_fresh(table_object):
            refresh = view.refresh(table_object, database.device)
            if refresh.kind == REFRESH_INCREMENTAL:
                self._view_incremental_refreshes += 1
            else:
                self._view_full_refreshes += 1
            accountant.breakdown.merge(refresh.cost)
            served = f"served after {refresh.kind} refresh"
        accountant.charge_ns(
            "view_scan",
            database.device.sequential_read(
                view_serve_bytes(view.num_rows, view.query)
            ),
        )
        self._view_rewrite_hits += 1
        return QueryResult(
            rows=[dict(row) for row in view.result_rows],
            affected_rows=0,
            cost=accountant.breakdown,
            view_hits={view.name: served},
        )

    def sql(self, statement: str, params: Params = None,
            timeout: Optional[float] = None) -> QueryResult:
        """Execute a SQL-ish statement.

        ``EXPLAIN <statement>`` (optionally ``EXPLAIN ANALYZE``) returns the
        rendered plan as rows with a single ``plan`` column instead of
        executing the statement (``ANALYZE`` executes it once to show actual
        costs).  *timeout* arms a cooperative deadline exactly like
        :meth:`execute`.
        """
        stripped = statement.strip()
        lowered = stripped.lower()
        if lowered.startswith("explain"):
            rest = stripped[len("explain"):].strip()
            analyze = rest.lower().startswith("analyze")
            if analyze:
                rest = rest[len("analyze"):].strip()
            text = self.explain(rest, params=params, analyze=analyze)
            return QueryResult(
                rows=[{"plan": line} for line in text.splitlines()],
                affected_rows=0,
                cost=CostBreakdown(),
            )
        return self.execute(stripped, params=params, timeout=timeout)

    def prepare(self, statement: str) -> PreparedStatement:
        """Parse, validate and plan *statement* once for repeated execution."""
        template = self.parse(statement)
        # Validate names/types now; placeholders stay unbound until execute.
        bind(template, self.database.catalog, None, partial=True)
        self._cached_plan(template)  # warm the plan cache
        self._prepared_statements += 1
        return PreparedStatement(self, statement, template)

    def explain(self, query_or_sql: Union[Query, str], params: Params = None,
                analyze: bool = False) -> str:
        """Render the physical plan (``analyze=True`` also executes once)."""
        template = self._template(query_or_sql)
        bound = bind(template, self.database.catalog, params,
                     partial=params is None)
        plan = self._cached_plan(template)
        actual: Optional[QueryResult] = None
        if analyze:
            if statement_parameters(bound):
                raise BindError(
                    "EXPLAIN ANALYZE needs parameter values for a "
                    "parameterized statement"
                )
            actual = self._run_plan(bound, plan)
            plan.record_execution(actual)
            self._queries_executed += 1
            for listener in self._plan_listeners:
                listener(bound, plan, actual)
        return render_plan(plan, actual)

    # -- workloads ---------------------------------------------------------------

    def run_workload(self, workload: Workload) -> WorkloadRunResult:
        """Execute every workload query through the session pipeline."""
        run = WorkloadRunResult(workload_name=workload.name)
        for query in workload:
            result = self.execute(query)
            run.record(query, result)
        return run

    # -- advisor ------------------------------------------------------------------

    def advisor(self) -> StorageAdvisor:
        """The session's storage advisor.

        It shares the planner's cost model (and therefore the content-keyed
        estimate memo): estimates computed while planning pre-warm the
        advisor's evaluation of the current layout, and vice versa.
        """
        return self._advisor

    def recommend(self, workload: Workload,
                  include_partitioning: bool = True) -> Recommendation:
        return self._advisor.recommend(
            self.database, workload, include_partitioning=include_partitioning
        )

    def recommend_shard_keys(self, workload: Workload, fan_out=None,
                             assignment=None):
        """Per-table shard-key recommendations (see the advisor's docstring)."""
        return self._advisor.recommend_shard_keys(
            self.database, workload, fan_out=fan_out, assignment=assignment
        )

    def recommend_views(self, workload: Workload, min_occurrences: int = 2):
        """Materialized views worth creating for *workload*'s recurring shapes.

        Pass the online monitor's recorded workload
        (:attr:`~repro.core.advisor.monitor.OnlineAdvisorMonitor.recorded`)
        to recommend from live traffic.  Each proposal is priced through the
        shared :class:`EstimateMemo` exactly like store moves — base-table
        cost vs. serving the materialized rows — and carries both physical
        plans, renderable via
        :meth:`~repro.core.advisor.recommendation.ViewRecommendation.explain`.
        """
        return self._advisor.recommend_views(
            self.database, workload, min_occurrences=min_occurrences
        )

    def apply(self, recommendation: Recommendation) -> None:
        """Apply a recommendation (DDL bumps versions → plans invalidate)."""
        self._advisor.apply(self.database, recommendation)

    # -- plan listeners (consumed by the online monitor) ---------------------------

    def add_plan_listener(self, listener: PlanExecutionListener) -> None:
        self._plan_listeners.append(listener)

    def remove_plan_listener(self, listener: PlanExecutionListener) -> None:
        self._plan_listeners.remove(listener)

    # -- statistics ----------------------------------------------------------------

    def stats(self) -> SessionStats:
        """Counter snapshot: pipeline, plan-cache and estimate-memo activity."""
        memo = self._advisor.cost_model.memo
        live = resilience_counters()
        base = self._resilience_baseline
        integrity_live = integrity_counters()
        integrity_base = self._integrity_baseline
        return SessionStats(
            queries_executed=self._queries_executed,
            statements_parsed=self._statements_parsed,
            parse_cache_hits=self._parse_cache_hits,
            prepared_statements=self._prepared_statements,
            plan_cache_size=len(self._plan_cache),
            plan_cache_hits=self._plan_cache.hits,
            plan_cache_misses=self._plan_cache.misses,
            plan_cache_evictions=self._plan_cache.evictions,
            estimate_memo_hits=memo.hits,
            estimate_memo_misses=memo.misses,
            view_rewrite_hits=self._view_rewrite_hits,
            view_rewrite_misses=self._view_rewrite_misses,
            view_incremental_refreshes=self._view_incremental_refreshes,
            view_full_refreshes=self._view_full_refreshes,
            shard_retries=live.shard_retries - base.shard_retries,
            shard_worker_replacements=(
                live.worker_replacements - base.worker_replacements
            ),
            shard_degradations=(
                live.shard_degradations - base.shard_degradations
            ),
            shard_segments_reclaimed=(
                live.segments_reclaimed - base.segments_reclaimed
            ),
            shard_teardown_errors=(
                live.teardown_errors - base.teardown_errors
            ),
            query_timeouts=self._query_timeouts,
            integrity_units_verified=(
                integrity_live.units_verified - integrity_base.units_verified
            ),
            integrity_corruption_detected=(
                integrity_live.corruption_detected
                - integrity_base.corruption_detected
            ),
            integrity_units_quarantined=(
                integrity_live.units_quarantined
                - integrity_base.units_quarantined
            ),
            integrity_units_repaired=(
                integrity_live.units_repaired - integrity_base.units_repaired
            ),
        )

    # -- DDL / data conveniences (delegation) --------------------------------------

    def create_table(self, schema: TableSchema, store: Store = Store.ROW):
        return self.database.create_table(schema, store)

    def drop_table(self, name: str) -> None:
        self.database.drop_table(name)

    def load_rows(self, name: str, rows: Iterable[Mapping[str, Any]]) -> int:
        return self.database.load_rows(name, rows)

    # -- materialized views ---------------------------------------------------------

    def create_view(self, name: str,
                    query_or_sql: Union[Query, str]) -> MaterializedView:
        """Create a materialized view of an aggregation statement.

        The defining statement is parsed and bound like any query, the view
        materializes immediately, and the planner starts rewriting matching
        statements to it (the view-catalog version bump invalidates every
        cached plan).
        """
        template = self._template(query_or_sql)
        bound = bind(template, self.database.catalog, None)
        return self.database.create_view(name, bound)

    def drop_view(self, name: str) -> None:
        self.database.drop_view(name)

    def refresh_view(self, name: str) -> RefreshResult:
        """Explicitly bring one materialized view up to date."""
        return self.database.refresh_view(name)

    def views(self) -> List[str]:
        return self.database.view_names()

    def view(self, name: str) -> MaterializedView:
        return self.database.view(name)

    def move_table(self, name: str, store: Store) -> CostBreakdown:
        return self.database.move_table(name, store)

    def apply_partitioning(self, name: str,
                           partitioning: TablePartitioning) -> CostBreakdown:
        return self.database.apply_partitioning(name, partitioning)

    def remove_partitioning(self, name: str, store: Store) -> CostBreakdown:
        return self.database.remove_partitioning(name, store)

    def refresh_statistics(
        self, name: Optional[str] = None
    ) -> Dict[str, TableStatistics]:
        return self.database.refresh_statistics(name)

    # -- durability ----------------------------------------------------------------

    def checkpoint(self) -> int:
        """Snapshot the database into the attached WAL and reset the log."""
        return self.database.checkpoint()

    def snapshot(self, name: str):
        """A consistent read view of table *name* (snapshot isolation)."""
        return self.database.snapshot(name)

    def merge_deltas(self, name: Optional[str] = None) -> int:
        """Merge column-store delta rows into main (one table, or all)."""
        return self.database.merge_deltas(name)

    # -- integrity -----------------------------------------------------------------

    def verify_integrity(self) -> IntegrityReport:
        """Scrub every table's partition units against their checksums.

        Walks every column-store unit (per partition for partitioned
        tables), verifies each against the checksum recorded when it was
        last legitimately mutated, and quarantines any mismatch: later
        access raises :class:`~repro.errors.DataCorruptionError` naming the
        exact table/partition/column until :meth:`repair` rebuilds the
        unit.  The scrub itself charges no simulated cost.
        """
        return scrub(
            self.database.table_object(name)
            for name in self.database.table_names()
        )

    def repair(self) -> int:
        """Rebuild quarantined units from the WAL; returns units repaired.

        Requires an attached write-ahead log: the committed state is
        recovered from it (latest checkpoint snapshot plus replay, exactly
        the crash-recovery path) and every table holding quarantined units
        is swapped for its recovered — pristine — copy, restoring rows and
        query costs bit-identical to the uncorrupted state.  Tables without
        quarantined units are untouched.  A no-op (returning 0) when
        nothing is quarantined.
        """
        database = self.database
        wal = database.wal
        if wal is None:
            raise WalError(
                "repair() needs an attached write-ahead log to rebuild "
                "quarantined units from (connect with wal_path=...)"
            )
        damaged: Dict[str, int] = {}
        for name in database.table_names():
            count = 0
            for _label, backend in database.table_object(name).integrity_units():
                state = getattr(backend, "integrity", None)
                if state is not None:
                    count += len(state.quarantined_columns())
            if count:
                damaged[name] = count
        if not damaged:
            return 0
        wal.flush()
        recovered = wal_recover(wal.path, database.device.config)
        repaired = 0
        for name, count in damaged.items():
            if name not in recovered.database.table_names():
                raise WalError(
                    f"cannot repair table {name!r}: the write-ahead log "
                    "does not cover it"
                )
            database.adopt_table(name, recovered.database.table_object(name))
            repaired += count
        integrity_counters().units_repaired += repaired
        # Plans and estimates priced against the replaced objects must go.
        self.clear_caches()
        return repaired

    def describe(self) -> str:
        return self.database.describe()

    def table_names(self) -> List[str]:
        return self.database.table_names()

    # -- internals ------------------------------------------------------------------

    def _template(self, query_or_sql: Union[Query, str]) -> Query:
        if isinstance(query_or_sql, str):
            return self.parse(query_or_sql)
        return query_or_sql

    def _cached_plan(self, template: Query) -> PhysicalPlan:
        planner = self._planner
        key = (
            planner.logical(template).fingerprint,
            self.database.layout_fingerprint(template.tables),
            self._advisor.cost_model.parameters_fingerprint,
            # View DDL (and explicit refreshes) bump this version: a plan
            # that recorded — or skipped — a view rewrite must not outlive
            # the view catalog it was planned against.
            self.database.catalog.view_catalog_version,
        )
        plan = self._plan_cache.get(key)
        if plan is None:
            # Planning needs the tables to exist; surface a BindError (not a
            # CatalogError) so callers see one error family for bad names.
            for name in template.tables:
                if not self.database.catalog.has_table(name):
                    raise BindError(f"unknown table {name!r}")
            plan = planner.plan(template)
            self._plan_cache.put(key, plan)
        return plan


def connect(
    database: Optional[HybridDatabase] = None,
    device_config: Optional[DeviceModelConfig] = None,
    advisor_config: Optional[AdvisorConfig] = None,
    plan_cache_capacity: int = 512,
    wal_path: Optional[str] = None,
    durability: Optional[DurabilityConfig] = None,
    resilience: Optional[ResilienceConfig] = None,
    integrity: Optional[IntegrityConfig] = None,
) -> Session:
    """Open a :class:`Session` over a new (or an existing) database.

    With a *wal_path*, every DDL/DML statement is logged to a write-ahead
    log at that path so the database can be rebuilt with :func:`recover`
    after a crash.  *durability* tunes the WAL sync mode and the delta
    merge threshold (see :class:`~repro.config.DurabilityConfig`).
    *resilience* tunes the resilient execution layer — shard retry budget,
    gather timeout, backoff — process-wide (see
    :class:`~repro.config.ResilienceConfig`).  *integrity* tunes the
    checksum layer — scan-time and shard-attach verification — also
    process-wide (see :class:`~repro.config.IntegrityConfig`).
    """
    return Session(
        database=database,
        device_config=device_config,
        advisor_config=advisor_config,
        plan_cache_capacity=plan_cache_capacity,
        wal_path=wal_path,
        durability=durability,
        resilience=resilience,
        integrity=integrity,
    )


def recover(
    path: str,
    device_config: Optional[DeviceModelConfig] = None,
    advisor_config: Optional[AdvisorConfig] = None,
    plan_cache_capacity: int = 512,
    durability: Optional[DurabilityConfig] = None,
) -> Tuple[Session, RecoveryReport]:
    """Rebuild a database from the WAL at *path* and open a session over it.

    Replays the log (restoring the latest checkpoint snapshot first, when
    one exists), then re-opens the log for appending — truncating any torn
    tail — so the returned session is durable again.  The report describes
    what replay found: corrupt records skipped, torn bytes dropped, LSNs
    applied, and whether the checkpoint snapshot itself was corrupt
    (``report.snapshot_corrupt`` — bad magic, framing, checksum or payload):
    a corrupt snapshot is never restored from; recovery falls back to
    replaying the full log instead.  Recovery itself is read-only and
    idempotent; only the re-open for appending trims the file.
    """
    result = wal_recover(path, device_config)
    durability = durability or DurabilityConfig()
    result.database.attach_wal(
        WriteAheadLog(
            path,
            sync_mode=durability.wal_sync_mode,
            batch_size=durability.wal_batch_size,
        )
    )
    session = Session(
        database=result.database,
        advisor_config=advisor_config,
        plan_cache_capacity=plan_cache_capacity,
        durability=durability,
    )
    return session, result.report
