"""repro.api — the session API over the hybrid-store engine.

This package is the public entry point of the system: ``connect()`` opens a
:class:`~repro.api.session.Session` that drives every statement through the
explicit ``parse → bind → plan → execute`` pipeline, with

* **prepared statements** (:meth:`Session.prepare`) — ``?``/named
  placeholders, bound and type-checked against the catalog schema,
* a **plan cache** keyed by ``(query fingerprint, layout/statistics
  fingerprint)`` — invalidated by DDL, store moves, repartitioning and
  statistics refresh,
* **EXPLAIN** (:meth:`Session.explain` or ``session.sql("EXPLAIN ...")``) —
  the physical plan tree with estimated (and optionally actual) costs, and
* the **storage advisor** (:meth:`Session.advisor`) sharing the planner's
  content-keyed estimate memo.

The legacy façades (``HybridDatabase.execute``, the standalone
``StorageAdvisor``) remain available and cost-identical; the session wires
them together.
"""

from repro.api.binder import bind, statement_parameters
from repro.api.explain import describe_predicate, render_plan
from repro.api.plan import (
    CostEstimate,
    LogicalPlan,
    PhysicalPlan,
    PlanCache,
    Planner,
    TableAccessPlan,
)
from repro.api.session import (
    PreparedStatement,
    Session,
    SessionStats,
    connect,
    recover,
)
from repro.engine.wal import RecoveryReport

__all__ = [
    "CostEstimate",
    "LogicalPlan",
    "PhysicalPlan",
    "PlanCache",
    "Planner",
    "PreparedStatement",
    "RecoveryReport",
    "Session",
    "SessionStats",
    "TableAccessPlan",
    "bind",
    "connect",
    "describe_predicate",
    "recover",
    "render_plan",
    "statement_parameters",
]
