"""EXPLAIN: rendering physical plans as deterministic text.

:func:`render_plan` produces a stable, human-readable tree for a
:class:`~repro.api.plan.PhysicalPlan` — the resolved access path per table,
the predicate, and the cost model's estimate broken down by cost term.  With
an actual :class:`~repro.engine.executor.executor.QueryResult` (``EXPLAIN
ANALYZE``), the measured :class:`~repro.engine.timing.CostBreakdown` is
rendered next to the estimate, which makes estimation drift directly
visible.  The output contains no volatile values (object ids, wall-clock),
so it can be pinned by golden tests.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.api.plan import PhysicalPlan
from repro.engine.executor.executor import QueryResult
from repro.query.ast import (
    AggregationQuery,
    DeleteQuery,
    InsertQuery,
    Parameter,
    Query,
    SelectQuery,
    UpdateQuery,
)
from repro.query.predicates import (
    And,
    Between,
    Comparison,
    InList,
    IsNull,
    Not,
    Or,
    Predicate,
    TruePredicate,
)


def render_plan(plan: PhysicalPlan, actual: Optional[QueryResult] = None) -> str:
    """Render *plan* as an EXPLAIN tree (estimated, plus actual if given)."""
    lines: List[str] = []
    query = plan.query
    lines.append(f"{_query_label(query)} [query {plan.fingerprint}]")
    lines.append(f"  estimated: {plan.estimate.total_ms:.3f} ms")
    if actual is not None:
        lines.append(f"  actual:    {actual.cost.total_ms:.3f} ms")
    for line in _operator_tree(plan):
        lines.append("  " + line)
    if actual is not None and actual.scan_stats:
        # Zone-map pruning telemetry: how many prunable partitions each
        # table's access path actually scanned vs. skipped.  The plan's
        # predicted counts live in the Scan lines' decisions; a pinned test
        # holds the two equal.
        lines.append("  partitions (scanned/skipped):")
        for table in sorted(actual.scan_stats):
            scanned, skipped = actual.scan_stats[table]
            lines.append(f"    {table:<22}{scanned:>4} / {skipped}")
    if actual is not None and actual.delta_scans:
        # Delta/main telemetry: rows each scan read from the write-optimised
        # delta vs the dictionary-encoded main.  Only rendered when a scan
        # actually touched a delta, so merge pressure is visible without
        # changing the EXPLAIN output of merged (or load-only) tables.
        lines.append("  delta scan (main/delta rows):")
        for table in sorted(actual.delta_scans):
            main_rows, delta_rows = actual.delta_scans[table]
            lines.append(f"    {table:<22}{main_rows:>4} / {delta_rows}")
    if actual is not None and actual.view_hits:
        # Materialized-view telemetry: the query was answered from the named
        # view — after a refresh when the view had gone stale (the refresh
        # cost is part of the actual cost above; stale rows never serve).
        lines.append("  materialized view:")
        for view in sorted(actual.view_hits):
            lines.append(f"    {view:<22}{actual.view_hits[view]}")
    if actual is not None and actual.agg_strategies:
        # Aggregate-pushdown telemetry: the strategy execution consumed —
        # pinned equal to the plan's recorded strategy in the Aggregate line.
        lines.append("  aggregate pushdown:")
        for table in sorted(actual.agg_strategies):
            lines.append(f"    {table:<22}{actual.agg_strategies[table]}")
    if actual is not None and actual.shard_stats:
        # Shard-execution telemetry: the fan-out the scatter/gather actually
        # ran with and each shard's rows scanned/matched.  Only rendered when
        # the query really executed sharded (a fallback leaves this empty).
        lines.append("  shard execution (scanned/matched):")
        for table in sorted(actual.shard_stats):
            fan_out, shards = actual.shard_stats[table]
            per_shard = ", ".join(
                f"{scanned}/{matched}" for scanned, matched in shards
            )
            lines.append(f"    {table:<22}fan-out {fan_out}: {per_shard}")
    if actual is not None and actual.degradations:
        # Degradation-ladder telemetry: the execution walked down from its
        # planned tier (e.g. shard-parallel -> retry -> serial).  A degraded
        # query still charges the serial reference bit-identically; this
        # block exists so the fallback never happens silently.
        lines.append("  degraded:")
        for table in sorted(actual.degradations):
            lines.append(f"    {table:<22}{actual.degradations[table]}")
    if actual is not None and actual.integrity:
        # Integrity telemetry: checksum verifications (and any detections or
        # quarantines) this execution performed.  Verification is billed
        # zero simulated cost, so the block never shifts the numbers above;
        # it exists so corruption handling never happens silently.
        lines.append("  integrity:")
        for event in sorted(actual.integrity):
            lines.append(f"    {event:<22}{actual.integrity[event]}")
    if plan.estimate.per_term_ms:
        lines.append("  estimated cost terms (ms):")
        for term in sorted(plan.estimate.per_term_ms):
            lines.append(f"    {term:<22}{plan.estimate.per_term_ms[term]:>10.4f}")
    if actual is not None and actual.cost.components:
        lines.append("  actual cost components (ms):")
        for component, _ in actual.cost.items():
            lines.append(
                f"    {component:<22}{actual.cost.component_ms(component):>10.4f}"
            )
    return "\n".join(lines)


def describe_predicate(predicate: Optional[Predicate]) -> str:
    """SQL-ish rendering of a predicate tree."""
    if predicate is None or isinstance(predicate, TruePredicate):
        return "TRUE"
    if isinstance(predicate, Comparison):
        return f"{predicate.column} {predicate.op.value} {_literal(predicate.value)}"
    if isinstance(predicate, Between):
        low = _literal(predicate.low) if predicate.low is not None else "-inf"
        high = _literal(predicate.high) if predicate.high is not None else "+inf"
        return f"{predicate.column} BETWEEN {low} AND {high}"
    if isinstance(predicate, InList):
        values = ", ".join(_literal(value) for value in predicate.values)
        return f"{predicate.column} IN ({values})"
    if isinstance(predicate, IsNull):
        return f"{predicate.column} IS NULL"
    if isinstance(predicate, And):
        return " AND ".join(_child(child) for child in predicate.predicates)
    if isinstance(predicate, Or):
        return " OR ".join(_child(child) for child in predicate.predicates)
    if isinstance(predicate, Not):
        return f"NOT {_child(predicate.predicate)}"
    return repr(predicate)  # pragma: no cover - future predicates


def _child(predicate: Predicate) -> str:
    text = describe_predicate(predicate)
    if isinstance(predicate, (And, Or)):
        return f"({text})"
    return text


def _literal(value: Any) -> str:
    if isinstance(value, Parameter):
        return value.label
    if isinstance(value, str):
        return f"'{value}'"
    if value is None:
        return "NULL"
    return repr(value)


def _query_label(query: Query) -> str:
    return type(query).__name__


def _operator_tree(plan: PhysicalPlan) -> List[str]:
    query = plan.query
    access = {table_plan.table: table_plan for table_plan in plan.table_plans}
    lines: List[str] = []

    def scan_lines(table: str, depth: int, predicate: Optional[Predicate]) -> None:
        table_plan = access[table]
        pad = "   " * depth
        lines.append(f"{pad}-> Scan {table_plan.describe()}")
        if predicate is not None:
            lines.append(f"{pad}   predicate: {describe_predicate(predicate)}")

    if isinstance(query, AggregationQuery):
        specs = ", ".join(
            f"{spec.function.value}({spec.column})"
            + (f" AS {spec.alias}" if spec.alias else "")
            for spec in query.aggregates
        )
        lines.append(f"-> Aggregate {specs}")
        if query.group_by:
            lines.append(f"   group by: {', '.join(query.group_by)}")
        strategy = access[query.table].aggregate_strategy
        if strategy is not None:
            lines.append(f"   strategy: {strategy.describe()}")
        if plan.view_rewrite is not None:
            lines.append(f"   rewrite: {plan.view_rewrite.describe()}")
        shards = access[query.table].shard_decision
        if shards is not None and shards.sharded:
            lines.append(f"   shards: {shards.describe()}")
            lines.append(f"   ladder: {shards.describe_ladder()}")
        depth = 1
        for join in query.joins:
            pad = "   " * depth
            lines.append(
                f"{pad}-> HashJoin {join.table} "
                f"ON {query.table}.{join.left_column} = "
                f"{join.table}.{join.right_column}"
            )
            scan_lines(join.table, depth + 1, None)
        scan_lines(query.table, depth, query.predicate)
    elif isinstance(query, SelectQuery):
        columns = ", ".join(query.columns) if query.columns else "*"
        suffix = f" LIMIT {query.limit}" if query.limit is not None else ""
        lines.append(f"-> Project {columns}{suffix}")
        shards = access[query.table].shard_decision
        if shards is not None and shards.sharded:
            lines.append(f"   shards: {shards.describe()}")
            lines.append(f"   ladder: {shards.describe_ladder()}")
        scan_lines(query.table, 1, query.predicate)
    elif isinstance(query, InsertQuery):
        lines.append(f"-> Insert into {query.table} ({query.num_rows} row(s))")
        table_plan = access[query.table]
        lines.append(f"   target: {table_plan.describe()}")
    elif isinstance(query, UpdateQuery):
        assigned = ", ".join(sorted(query.assignments))
        lines.append(f"-> Update {query.table} SET {assigned}")
        scan_lines(query.table, 1, query.predicate)
    elif isinstance(query, DeleteQuery):
        lines.append(f"-> Delete from {query.table}")
        scan_lines(query.table, 1, query.predicate)
    return lines
