"""Logical and physical plans, the planner and the session plan cache.

The session pipeline makes the formerly implicit planning work explicit:

* a :class:`LogicalPlan` is the bound query plus its content fingerprint,
* a :class:`PhysicalPlan` additionally captures the *resolved access path*
  of every referenced table (store, partitioning, index choice, vertical-
  partition pruning), the estimated :class:`CostEstimate` from the cost
  model, and the layout/statistics fingerprint the plan was built under,
* the :class:`Planner` turns queries into physical plans, and
* the :class:`PlanCache` memoizes plans per ``(query fingerprint,
  layout/statistics fingerprint)`` — DDL, store moves, repartitioning and
  statistics refresh bump the participating tables' versions (see
  :meth:`repro.engine.database.HybridDatabase.table_version`), so stale
  plans become unreachable without any explicit invalidation hook.

Executing a plan charges *bit-identical* costs to the legacy
``HybridDatabase.execute`` path: the plan only pre-resolves the access
paths; every cost is still charged by the stores and operators during
execution.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.cost_model.estimator import TableProfile
from repro.core.cost_model.model import CostModel
from repro.engine.database import HybridDatabase
from repro.engine.executor.agg_pushdown import AggregateStrategy
from repro.engine.executor.executor import QueryResult
from repro.engine.partitioning import PartitionedTable
from repro.engine.types import Store
from repro.engine.zonemap import ScanDecision
from repro.query.ast import Query, QueryType
from repro.query.fingerprint import query_fingerprint
from repro.query.predicates import Between, CompareOp, Comparison, Predicate


@dataclass(frozen=True)
class LogicalPlan:
    """The bound query plus its content fingerprint."""

    query: Query
    fingerprint: str

    @property
    def query_type(self) -> QueryType:
        return self.query.query_type

    @property
    def tables(self) -> Tuple[str, ...]:
        return self.query.tables


@dataclass
class TableAccessPlan:
    """Resolved physical access of one table."""

    table: str
    store: Optional[Store]          # None for partitioned tables
    partitioned: bool
    num_rows: int
    access: str                     # e.g. "full scan", "hash-index lookup(id)"
    layout: str                     # human-readable layout description
    pruning: Optional[str] = None   # vertical-partition pruning note
    #: Zone-map pruning decision of this table's scan (base table of a
    #: filtered read only); the executor consumes the same object.
    scan_decision: Optional[ScanDecision] = None
    #: Aggregate-pushdown strategy (base table of an aggregation only); the
    #: executor consumes the same object, so EXPLAIN and execution coincide.
    aggregate_strategy: Optional[AggregateStrategy] = None
    #: Shard fan-out decision (base table of a read query only); the
    #: executor consumes the same object.
    shard_decision: Optional[Any] = None

    def describe(self) -> str:
        text = f"{self.table}: {self.layout}, {self.num_rows} rows, {self.access}"
        if self.pruning:
            text += f" [{self.pruning}]"
        decision = self.scan_decision
        if decision is not None and decision.skipped:
            text += f" [zone pruning: {decision.describe()}]"
        shards = self.shard_decision
        if shards is not None and shards.sharded:
            text += f" [shards: {shards.describe()}]"
        return text


@dataclass(frozen=True)
class ViewRewrite:
    """A planner rewrite: answer the query from a materialized view.

    Recorded in the :class:`PhysicalPlan` whenever the catalog holds a view
    whose defining-query fingerprint equals the plan's — regardless of the
    ``matview_disabled()`` toggle, which gates *serving*, not detection, so
    EXPLAIN can always show what the planner would do.  A stale view is
    refreshed before serving (never serve stale rows); the session falls back
    to base-table execution when views are disabled or the view disappeared.
    """

    view: str
    fingerprint: str

    def describe(self) -> str:
        return f"materialized view {self.view} [view {self.fingerprint}]"


@dataclass
class CostEstimate:
    """The cost model's estimate for one physical plan.

    ``per_term_ms`` is the estimated cost broken down by cost-model term
    (the estimator's vocabulary: scanned bytes, decodes, hash probes, ...),
    summed over the participating tables — the estimated counterpart of the
    executor's :class:`~repro.engine.timing.CostBreakdown`.
    """

    total_ms: float
    per_table_ms: Dict[str, float] = field(default_factory=dict)
    per_term_ms: Dict[str, float] = field(default_factory=dict)
    assignment: Dict[str, Store] = field(default_factory=dict)


@dataclass
class PhysicalPlan:
    """An executable physical plan.

    Holds the resolved access paths (ready to execute), the per-table access
    descriptions, the cost estimate, and the fingerprints that key the plan
    cache.  ``executions`` counts how often this plan object ran.
    """

    logical: LogicalPlan
    paths: Dict[str, Any]
    table_plans: List[TableAccessPlan]
    estimate: CostEstimate
    layout_fingerprint: tuple
    statistics_fingerprints: Dict[str, str]
    executions: int = 0
    last_actual: Optional[QueryResult] = None
    #: Materialized-view rewrite (aggregations only); the session serves the
    #: query from the named view when views are enabled.
    view_rewrite: Optional[ViewRewrite] = None

    @property
    def query(self) -> Query:
        return self.logical.query

    @property
    def fingerprint(self) -> str:
        return self.logical.fingerprint

    @property
    def estimated_ms(self) -> float:
        return self.estimate.total_ms

    @property
    def scan_decisions(self) -> Dict[str, ScanDecision]:
        """Per-table zone-pruning decisions recorded at plan time."""
        return {
            table_plan.table: table_plan.scan_decision
            for table_plan in self.table_plans
            if table_plan.scan_decision is not None
        }

    def record_execution(self, result: QueryResult) -> None:
        self.executions += 1
        self.last_actual = result


class Planner:
    """Builds physical plans against a database's current layout."""

    def __init__(
        self,
        database: HybridDatabase,
        cost_model_provider: Callable[[], CostModel],
    ) -> None:
        self.database = database
        self._cost_model_provider = cost_model_provider

    @property
    def cost_model(self) -> CostModel:
        return self._cost_model_provider()

    def logical(self, query: Query) -> LogicalPlan:
        return LogicalPlan(query=query, fingerprint=query_fingerprint(query))

    def plan(self, query: Query) -> PhysicalPlan:
        """Build a physical plan for *query* under the current layout."""
        logical = self.logical(query)
        database = self.database
        paths = database.resolve_access_paths(query)
        table_plans = [
            self._table_access_plan(name, query, paths) for name in query.tables
        ]
        estimate = self._estimate(query)
        return PhysicalPlan(
            logical=logical,
            paths=paths,
            table_plans=table_plans,
            estimate=estimate,
            layout_fingerprint=database.layout_fingerprint(query.tables),
            statistics_fingerprints={
                name: database.catalog.statistics_of(name).fingerprint
                for name in query.tables
            },
            view_rewrite=self._view_rewrite(query),
        )

    def _view_rewrite(self, query: Query) -> Optional[ViewRewrite]:
        """A rewrite to a materialized view matching *query*, if one exists.

        Matching is by defining-query fingerprint (the recurrence key the
        online monitor counts too).  The plan cache keys plans by the view
        catalog's version, so CREATE/DROP/refresh of any view makes plans
        that recorded (or skipped) a rewrite unreachable.
        """
        view = self.database.matching_view(query)
        if view is None:
            return None
        return ViewRewrite(view=view.name, fingerprint=view.fingerprint)

    # -- access-path description ---------------------------------------------------

    def _table_access_plan(
        self, name: str, query: Query, paths: Dict[str, Any]
    ) -> TableAccessPlan:
        database = self.database
        entry = database.catalog.entry(name)
        table = database.table_object(name)
        predicate = getattr(query, "predicate", None) if name == query.table else None
        # The access path derived (and recorded) its zone-pruning decision
        # and aggregate-pushdown strategy while the paths were resolved; the
        # plan carries the same objects the executor will consume, so
        # EXPLAIN and execution provably coincide.
        decision = getattr(paths.get(name), "scan_decision", None)
        strategy = (
            getattr(paths.get(name), "aggregate_strategy", None)
            if name == query.table else None
        )
        shards = (
            getattr(paths.get(name), "shard_decision", None)
            if name == query.table else None
        )
        if isinstance(table, PartitionedTable):
            return TableAccessPlan(
                table=name,
                store=None,
                partitioned=True,
                num_rows=table.num_rows,
                access=self._partitioned_access(table, query, predicate),
                layout=f"partitioned ({table.partitioning.describe()})",
                pruning=self._pruning_note(table, query),
                scan_decision=decision,
                aggregate_strategy=strategy,
                shard_decision=shards,
            )
        return TableAccessPlan(
            table=name,
            store=entry.store,
            partitioned=False,
            num_rows=table.num_rows,
            access=self._stored_access(table, predicate),
            layout=entry.describe_layout(),
            scan_decision=decision,
            aggregate_strategy=strategy,
            shard_decision=shards,
        )

    @staticmethod
    def _stored_access(table, predicate: Optional[Predicate]) -> str:
        if predicate is None:
            return "full scan"
        if table.store is Store.COLUMN:
            if isinstance(predicate, (Comparison, Between)):
                return f"dictionary-coded scan({next(iter(predicate.columns()))})"
            return "column scan + predicate"
        # Row store: mirror the executor's index selection statically.
        if isinstance(predicate, Comparison) and table.has_index(predicate.column):
            if predicate.op is CompareOp.EQ:
                return f"index lookup({predicate.column})"
            if predicate.op in (CompareOp.LT, CompareOp.LE, CompareOp.GT,
                                CompareOp.GE):
                return f"index range scan({predicate.column})"
        if isinstance(predicate, Between) and table.has_index(predicate.column):
            return f"index range scan({predicate.column})"
        return "full scan + predicate"

    @staticmethod
    def _partitioned_access(table: PartitionedTable, query: Query,
                            predicate: Optional[Predicate]) -> str:
        segments = len(table.main_parts) + (1 if table.hot is not None else 0)
        return f"partition union over {segments} segment(s)"

    @staticmethod
    def _pruning_note(table: PartitionedTable, query: Query) -> Optional[str]:
        if not table.has_vertical_split:
            return None
        needed = sorted(query.columns_of(table.name))
        if not needed:
            return None
        parts = table.main_parts_for_columns(needed)
        return (
            f"vertical pruning: {len(parts)} of {len(table.main_parts)} "
            "main part(s) touched"
        )

    # -- estimation ----------------------------------------------------------------

    def _estimate(self, query: Query) -> CostEstimate:
        from repro.core.cost_model.estimator import query_contributions

        database = self.database
        model = self.cost_model
        assignment: Dict[str, Store] = {}
        profiles: Dict[str, TableProfile] = {}
        for name in query.tables:
            entry = database.catalog.entry(name)
            # Partitioned tables have no single store; the cost model prices
            # them as column store (their historic portion's usual layout).
            assignment[name] = entry.store if not entry.is_partitioned else Store.COLUMN
            profiles[name] = TableProfile(
                schema=entry.schema, statistics=database.catalog.statistics_of(name)
            )
        total_ms = model.estimate_query_ms(query, assignment, profiles)
        per_table: Dict[str, float] = {}
        per_term: Dict[str, float] = {}
        for contribution in query_contributions(query, assignment, profiles):
            table_ms = model.price_contribution_ms(contribution)
            per_table[contribution.table] = per_table.get(contribution.table, 0.0) + table_ms
            weights = model.parameters.weights_for(
                contribution.store, contribution.query_type
            )
            for term, amount in contribution.terms.items():
                term_ms = weights.weights.get(term, 0.0) * amount / 1_000_000.0
                if term_ms:
                    per_term[term] = per_term.get(term, 0.0) + term_ms
        return CostEstimate(
            total_ms=total_ms,
            per_table_ms=per_table,
            per_term_ms=per_term,
            assignment=assignment,
        )


class PlanCache:
    """LRU cache of physical plans keyed by (query, layout/statistics) fingerprints."""

    def __init__(self, capacity: int = 512) -> None:
        self.capacity = capacity
        self._plans: "OrderedDict[tuple, PhysicalPlan]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._plans)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get(self, key: tuple) -> Optional[PhysicalPlan]:
        plan = self._plans.get(key)
        if plan is None:
            self.misses += 1
            return None
        self._plans.move_to_end(key)
        self.hits += 1
        return plan

    def put(self, key: tuple, plan: PhysicalPlan) -> None:
        self._plans[key] = plan
        self._plans.move_to_end(key)
        while len(self._plans) > self.capacity:
            self._plans.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._plans.clear()
