"""The bind step: resolve a parsed query against the catalog.

Binding sits between parsing and planning in the session pipeline
(``parse → bind → plan → execute``).  It

* checks that every referenced table and column exists in the catalog,
* type-checks literals against the catalog schema (a string compared to an
  INTEGER column is a :class:`~repro.errors.BindError`, not a silent empty
  result), and
* substitutes :class:`~repro.query.ast.Parameter` placeholders with the
  supplied parameter values, coercing each through the target column's
  :meth:`~repro.engine.types.DataType.coerce`.

Binding never rewrites literals that already type-check — the bound query
executes with exactly the values the caller wrote, which keeps the session
path result- and cost-identical to the legacy ``HybridDatabase.execute``
path.  The one exception is DATE columns, where ISO string literals are
coerced to :class:`datetime.date` (the legacy path would crash on ordered
comparisons of mixed types).
"""

from __future__ import annotations

import datetime
from dataclasses import replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.engine.catalog import Catalog
from repro.engine.schema import Column, TableSchema
from repro.engine.types import DataType
from repro.errors import BindError, CatalogError, SchemaError
from repro.query.ast import (
    AggregationQuery,
    DeleteQuery,
    InsertQuery,
    Parameter,
    Query,
    SelectQuery,
    UpdateQuery,
    split_qualified,
)
from repro.query.predicates import (
    And,
    Between,
    Comparison,
    InList,
    IsNull,
    Not,
    Or,
    Predicate,
    TruePredicate,
)

Params = Union[None, Sequence[Any], Mapping[str, Any]]


def statement_parameters(query: Query) -> Tuple[Parameter, ...]:
    """All placeholders of *query*, positional ones in index order."""
    found: List[Parameter] = []
    _collect_parameters(query, found)
    positional = sorted(
        (p for p in found if p.index is not None), key=lambda p: p.index
    )
    named: List[Parameter] = []
    seen = set()
    for parameter in found:
        if parameter.name is not None and parameter.name not in seen:
            seen.add(parameter.name)
            named.append(parameter)
    return tuple(positional) + tuple(named)


def has_parameters(query: Query) -> bool:
    return bool(statement_parameters(query))


def bind(query: Query, catalog: Catalog, params: Params = None,
         partial: bool = False) -> Query:
    """Bind *query* against *catalog*, substituting *params* for placeholders.

    Returns a (possibly new) query object that is safe to plan and execute;
    raises :class:`BindError` for unknown tables/columns, literals or
    parameters that do not type-check, and parameter lists that do not match
    the statement's placeholders.

    With ``partial=True`` and no *params*, placeholders are left unbound
    (names and types still validate) — this is how ``prepare`` and plain
    ``EXPLAIN`` validate a parameterized statement without values; a
    partially bound query can be planned but not executed.
    """
    binder = _Binder(query, catalog, params, partial=partial)
    return binder.bind()


class _Binder:
    def __init__(self, query: Query, catalog: Catalog, params: Params,
                 partial: bool = False) -> None:
        self.query = query
        self.catalog = catalog
        self.params = params
        self.partial = partial
        self._used_positional = 0
        self._used_named: set = set()

    # -- entry ------------------------------------------------------------------

    def bind(self) -> Query:
        query = self.query
        placeholders = statement_parameters(query)
        self._check_params_shape(placeholders)
        for table in query.tables:
            self._schema(table)
        if isinstance(query, AggregationQuery):
            bound = self._bind_aggregation(query)
        elif isinstance(query, SelectQuery):
            bound = self._bind_select(query)
        elif isinstance(query, InsertQuery):
            bound = self._bind_insert(query)
        elif isinstance(query, UpdateQuery):
            bound = self._bind_update(query)
        elif isinstance(query, DeleteQuery):
            predicate = self._bind_predicate(query.predicate, query.table)
            bound = query if predicate is query.predicate else replace(
                query, predicate=predicate
            )
        else:  # pragma: no cover - exhaustive over the Query union
            raise BindError(f"cannot bind query type {type(query).__name__}")
        self._check_params_consumed(placeholders)
        return bound

    # -- per-statement binding ---------------------------------------------------

    def _bind_aggregation(self, query: AggregationQuery) -> AggregationQuery:
        base = self._schema(query.table)
        for join in query.joins:
            joined = self._schema(join.table)
            self._column(base, join.left_column, query.table)
            self._column(joined, join.right_column, join.table)
        for spec in query.aggregates:
            if spec.column == "*":
                continue
            self._resolve_column(query, spec.column)
        for name in query.group_by:
            self._resolve_column(query, name)
        predicate = self._bind_predicate(query.predicate, query.table)
        if predicate is query.predicate:
            return query
        return replace(query, predicate=predicate)

    def _bind_select(self, query: SelectQuery) -> SelectQuery:
        schema = self._schema(query.table)
        for name in query.columns:
            self._column(schema, name, query.table)
        predicate = self._bind_predicate(query.predicate, query.table)
        if predicate is query.predicate:
            return query
        return replace(query, predicate=predicate)

    def _bind_insert(self, query: InsertQuery) -> InsertQuery:
        schema = self._schema(query.table)
        rows = []
        changed = False
        for row in query.rows:
            bound_row: Dict[str, Any] = {}
            for name, value in row.items():
                column = self._column(schema, name, query.table)
                bound = self._bind_value(value, column, query.table)
                bound_row[name] = bound
                changed = changed or bound is not value
            rows.append(bound_row)
        return replace(query, rows=tuple(rows)) if changed else query

    def _bind_update(self, query: UpdateQuery) -> UpdateQuery:
        schema = self._schema(query.table)
        assignments: Dict[str, Any] = {}
        changed = False
        for name, value in query.assignments.items():
            column = self._column(schema, name, query.table)
            bound = self._bind_value(value, column, query.table)
            assignments[name] = bound
            changed = changed or bound is not value
        predicate = self._bind_predicate(query.predicate, query.table)
        if not changed and predicate is query.predicate:
            return query
        return replace(query, assignments=assignments, predicate=predicate)

    # -- predicate binding --------------------------------------------------------

    def _bind_predicate(
        self, predicate: Optional[Predicate], base_table: str
    ) -> Optional[Predicate]:
        if predicate is None or isinstance(predicate, TruePredicate):
            return predicate
        if isinstance(predicate, Comparison):
            column = self._predicate_column(predicate.column, base_table)
            value = self._bind_value(predicate.value, column, base_table)
            if value is predicate.value:
                return predicate
            return Comparison(predicate.column, predicate.op, value)
        if isinstance(predicate, Between):
            column = self._predicate_column(predicate.column, base_table)
            low = self._bind_value(predicate.low, column, base_table)
            high = self._bind_value(predicate.high, column, base_table)
            if low is predicate.low and high is predicate.high:
                return predicate
            return Between(predicate.column, low, high,
                           predicate.include_low, predicate.include_high)
        if isinstance(predicate, InList):
            column = self._predicate_column(predicate.column, base_table)
            values = tuple(
                self._bind_value(value, column, base_table)
                for value in predicate.values
            )
            if all(new is old for new, old in zip(values, predicate.values)):
                return predicate
            return InList(predicate.column, values)
        if isinstance(predicate, IsNull):
            self._predicate_column(predicate.column, base_table)
            return predicate
        if isinstance(predicate, (And, Or)):
            children = tuple(
                self._bind_predicate(child, base_table)
                for child in predicate.predicates
            )
            if all(new is old for new, old in zip(children, predicate.predicates)):
                return predicate
            return type(predicate)(children)
        if isinstance(predicate, Not):
            child = self._bind_predicate(predicate.predicate, base_table)
            return predicate if child is predicate.predicate else Not(child)
        raise BindError(
            f"cannot bind predicate of type {type(predicate).__name__}"
        )  # pragma: no cover - future predicates

    # -- lookups -----------------------------------------------------------------

    def _schema(self, table: str) -> TableSchema:
        try:
            return self.catalog.schema(table)
        except CatalogError:
            raise BindError(f"unknown table {table!r}") from None

    def _column(self, schema: TableSchema, name: str, table: str) -> Column:
        try:
            return schema.column(name)
        except SchemaError:
            raise BindError(
                f"table {table!r} has no column {name!r}"
            ) from None

    def _predicate_column(self, name: str, base_table: str) -> Column:
        owner, column = split_qualified(name)
        table = owner or base_table
        return self._column(self._schema(table), column, table)

    def _resolve_column(self, query: AggregationQuery, name: str) -> Column:
        owner, column = split_qualified(name)
        table = owner or query.table
        if table != query.table and table not in {j.table for j in query.joins}:
            raise BindError(
                f"column {name!r} references table {table!r}, which the query "
                "neither selects from nor joins"
            )
        return self._column(self._schema(table), column, table)

    # -- values and parameters -----------------------------------------------------

    def _bind_value(self, value: Any, column: Column, table: str) -> Any:
        if isinstance(value, Parameter):
            if self.partial and self.params is None:
                return value  # leave unbound: plan-only binding
            raw = self._parameter_value(value)
            if raw is None:
                return None
            try:
                return column.dtype.coerce(raw)
            except SchemaError:
                raise BindError(
                    f"parameter {value.label} = {raw!r} is not valid for column "
                    f"{table}.{column.name} ({column.dtype.value})"
                ) from None
        self._check_literal(value, column, table)
        if column.dtype is DataType.DATE and isinstance(value, str):
            # ISO date strings are the only literal form the parser can
            # produce for DATE columns; coerce them (mixed-type ordered
            # comparisons would crash at execution otherwise).
            try:
                return column.dtype.coerce(value)
            except SchemaError:
                raise BindError(
                    f"literal {value!r} is not a valid date for column "
                    f"{table}.{column.name}"
                ) from None
        return value

    def _check_literal(self, value: Any, column: Column, table: str) -> None:
        if value is None:
            return
        dtype = column.dtype
        ok = True
        if dtype in (DataType.INTEGER, DataType.BIGINT, DataType.DOUBLE,
                     DataType.DECIMAL):
            ok = isinstance(value, (int, float)) and not isinstance(value, bool)
        elif dtype is DataType.VARCHAR:
            ok = isinstance(value, str)
        elif dtype is DataType.BOOLEAN:
            ok = isinstance(value, bool)
        elif dtype is DataType.DATE:
            ok = isinstance(value, (datetime.date, str))
        if not ok:
            raise BindError(
                f"literal {value!r} ({type(value).__name__}) does not type-check "
                f"against column {table}.{column.name} ({dtype.value})"
            )

    def _parameter_value(self, parameter: Parameter) -> Any:
        if parameter.name is not None:
            if not isinstance(self.params, Mapping):
                raise BindError(
                    f"statement uses named parameter {parameter.label} but "
                    "params is not a mapping"
                )
            if parameter.name not in self.params:
                raise BindError(f"missing value for parameter {parameter.label}")
            self._used_named.add(parameter.name)
            return self.params[parameter.name]
        if isinstance(self.params, Mapping) or self.params is None:
            raise BindError(
                "statement uses positional '?' parameters but params is not a "
                "sequence"
            )
        if parameter.index >= len(self.params):
            raise BindError(
                f"statement needs {parameter.index + 1} positional parameters, "
                f"got {len(self.params)}"
            )
        self._used_positional = max(self._used_positional, parameter.index + 1)
        return self.params[parameter.index]

    def _check_params_shape(self, placeholders: Tuple[Parameter, ...]) -> None:
        positional = [p for p in placeholders if p.index is not None]
        named = [p for p in placeholders if p.name is not None]
        if positional and named:
            raise BindError(
                "statement mixes positional '?' and named ':name' parameters"
            )
        if not placeholders:
            if self.params:
                raise BindError(
                    "params supplied but the statement has no placeholders"
                )
            return
        if self.params is None:
            if self.partial:
                return
            kinds = "?" if positional else ":name"
            raise BindError(
                f"statement has {len(placeholders)} unbound {kinds} "
                "parameter(s) but no params were supplied"
            )

    def _check_params_consumed(self, placeholders: Tuple[Parameter, ...]) -> None:
        if not placeholders or self.params is None:
            return
        positional = [p for p in placeholders if p.index is not None]
        if positional:
            expected = max(p.index for p in positional) + 1
            supplied = len(self.params)  # sequence, checked in _parameter_value
            if supplied != expected:
                raise BindError(
                    f"statement has {expected} positional parameter(s), "
                    f"got {supplied}"
                )
            return
        extra = set(self.params) - self._used_named
        if extra:
            raise BindError(
                f"params contain names the statement does not use: "
                f"{sorted(extra)}"
            )


def _collect_parameters(query: Query, out: List[Parameter]) -> None:
    predicate = getattr(query, "predicate", None)
    if isinstance(query, InsertQuery):
        for row in query.rows:
            for value in row.values():
                if isinstance(value, Parameter):
                    out.append(value)
    if isinstance(query, UpdateQuery):
        for value in query.assignments.values():
            if isinstance(value, Parameter):
                out.append(value)
    if predicate is not None:
        _collect_predicate_parameters(predicate, out)


def _collect_predicate_parameters(predicate: Predicate, out: List[Parameter]) -> None:
    if isinstance(predicate, Comparison):
        if isinstance(predicate.value, Parameter):
            out.append(predicate.value)
    elif isinstance(predicate, Between):
        for value in (predicate.low, predicate.high):
            if isinstance(value, Parameter):
                out.append(value)
    elif isinstance(predicate, InList):
        for value in predicate.values:
            if isinstance(value, Parameter):
                out.append(value)
    elif isinstance(predicate, (And, Or)):
        for child in predicate.predicates:
            _collect_predicate_parameters(child, out)
    elif isinstance(predicate, Not):
        _collect_predicate_parameters(predicate.predicate, out)
