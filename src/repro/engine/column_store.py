"""The column store backend.

Every column is kept dictionary-encoded (:mod:`repro.engine.compression`).
Scanning a single attribute therefore touches only that column's compressed
bytes — the source of the column store's advantage on analytical queries —
while reconstructing complete tuples, inserting rows and updating values pay
per-cell penalties (dictionary maintenance, random accesses across columns).

The sorted dictionary also provides the "implicit index" the paper mentions
for point and range predicates: :func:`compile_code_mask` translates a value
predicate — ``EQ/NE/LT/LE/GT/GE``, ``BETWEEN``, ``IN``, ``IS NULL`` and any
``AND``/``OR``/``NOT`` combination of them — into code intervals and
memberships via ``bisect`` on the dictionary, and evaluates it with
vectorised integer comparisons over the code arrays.  No value is decoded;
NULL (the reserved code 0) and NaN (sorted last) are excluded or included
exactly as the scalar evaluator would.  Predicates the compiler cannot
express (incomparable literal types, columns it does not know) fall back to
the decode-and-compare path, which mirrors the row store's evaluator.
``code_domain_disabled()`` forces that fallback everywhere — the
differential fuzzer and the scan benchmarks use it as the reference path.

**Delta/main split** (the paper's write-optimised store): DML inserts append
to an uncompressed per-column delta buffer (:class:`DeltaColumn`) — no
dictionary re-sort, no code remap, no zone rebuild — while the dictionary-
encoded *main* stays frozen between merges.  Scans union main and delta;
:meth:`ColumnStoreTable.merge_delta` re-encodes the delta into main
(explicitly, or when the delta reaches ``merge_threshold`` rows).  The merge
is modelled as asynchronous reorganisation and is charge-free; every *read*
charge and statistic is computed over the **logical** column (main rows plus
delta rows, main dictionary plus the delta's new values), so the
:class:`~repro.engine.timing.CostBreakdown` of any query is bit-identical to
the inline-write reference reachable via ``delta_writes_disabled()`` — the
delta is a wall-clock write optimisation, not a cost-model change.  Updates
and deletes merge first and then mutate main exactly as the reference does.

**Snapshot visibility**: :meth:`ColumnStoreTable.snapshot` seals the table
and returns a consistent read view; the next merge or in-place mutation
copies-on-write, so readers opened before a merge keep seeing the table as
of the snapshot while writers proceed.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.engine.batch import (
    BatchColumn,
    ColumnBatch,
    EncodedColumn,
    evaluate_predicate_mask,
    values_to_array,
)
from repro.engine.compression import CompressedColumn, code_width_bytes
from repro.engine.integrity import TableIntegrity, verify_on_scan_enabled
from repro.engine.schema import TableSchema
from repro.engine.timing import CostAccountant
from repro.engine.types import Store
from repro.engine.zonemap import ColumnZone, is_nan, next_zone_epoch, widen_zone
from repro.errors import ExecutionError
from repro.testing import faults
from repro.query.predicates import (
    And,
    Between,
    CompareOp,
    Comparison,
    InList,
    IsNull,
    Not,
    Or,
    Predicate,
    TruePredicate,
)

#: When a position list covers more than this fraction of the table, the
#: column store materialises the requested columns with a sequential scan of
#: the code arrays (late materialisation) instead of one random access per
#: cell.  The cost-model estimator uses the same threshold so that estimated
#: and measured costs follow the same access-path choice.
SCAN_MATERIALIZATION_THRESHOLD = 0.15

_CODE_DOMAIN_ENABLED = True


def code_domain_enabled() -> bool:
    """Whether predicates compile to code-domain masks (vs decode/compare)."""
    return _CODE_DOMAIN_ENABLED


@contextmanager
def code_domain_disabled() -> Iterator[None]:
    """Force the decode-and-compare fallback for every predicate.

    The differential fuzzer runs under this to pin result equivalence of the
    two paths, and the scan benchmarks use it as the reference measurement.
    """
    global _CODE_DOMAIN_ENABLED
    previous = _CODE_DOMAIN_ENABLED
    _CODE_DOMAIN_ENABLED = False
    try:
        yield
    finally:
        _CODE_DOMAIN_ENABLED = previous


_DELTA_WRITES_ENABLED = True

#: Delta size (in rows) at which an insert triggers an automatic merge.
DEFAULT_MERGE_THRESHOLD = 65536


def delta_writes_enabled() -> bool:
    """Whether DML inserts append to the delta (vs inline dictionary encoding)."""
    return _DELTA_WRITES_ENABLED


@contextmanager
def delta_writes_disabled() -> Iterator[None]:
    """Force the inline-write reference path for every insert.

    The recovery and differential fuzzers run the reference executions under
    this toggle: results *and* ``CostBreakdown`` charges must be bit-identical
    to the delta path.  (A delta already buffered keeps serving reads — the
    toggle governs where new writes go, not how existing rows are read.)
    """
    global _DELTA_WRITES_ENABLED
    previous = _DELTA_WRITES_ENABLED
    _DELTA_WRITES_ENABLED = False
    try:
        yield
    finally:
        _DELTA_WRITES_ENABLED = previous


class DeltaColumn:
    """Uncompressed append buffer of one column — the write-optimised delta.

    Appends are O(1): the value lands in a plain list, with no dictionary
    re-sort and no code remap (the frozen main column is untouched).
    Alongside the raw values the delta maintains exactly the aggregates the
    logical statistics need:

    * ``null_count`` and ``has_nan`` (zone synopses),
    * ``new_values`` — the distinct values absent from the frozen main
      dictionary (the logical distinct count is ``main + new``), and
    * ``representative`` — one orderable value, used by the predicate
      compiler to probe literal comparability so its fallback verdict matches
      what the merged dictionary would have produced.
    """

    __slots__ = (
        "values",
        "null_count",
        "has_nan",
        "new_values",
        "representative",
        "_array",
    )

    def __init__(self) -> None:
        self.values: List[Any] = []
        self.null_count = 0
        self.has_nan = False
        self.new_values: set = set()
        self.representative: Any = None
        self._array: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.values)

    def append(self, value: Any, main_dictionary) -> None:
        self.values.append(value)
        self._array = None
        if value is None:
            self.null_count += 1
        elif is_nan(value):
            self.has_nan = True
        else:
            self.representative = value
            if (
                value not in self.new_values
                and main_dictionary.encode_existing(value) is None
            ):
                self.new_values.add(value)

    def truncate(self, length: int, main_dictionary) -> None:
        """Roll back to the first *length* values (aborted batch insert)."""
        survivors = self.values[:length]
        self.__init__()
        for value in survivors:
            self.append(value, main_dictionary)

    def array(self) -> np.ndarray:
        """The buffered values as a numpy array (cached until the next append)."""
        if self._array is None:
            self._array = values_to_array(list(self.values))
        return self._array

    @property
    def new_null(self) -> bool:
        """Whether the delta introduces NULL to a NULL-free main dictionary."""
        return self.null_count > 0


class ColumnStoreSnapshot:
    """Consistent read view of a column-store table at snapshot time.

    Shares the (frozen) main column objects and copies the small delta
    buffers; :meth:`ColumnStoreTable.snapshot` seals the table so any later
    merge or in-place mutation swaps in fresh column objects (copy-on-write)
    instead of touching the shared ones.
    """

    __slots__ = ("schema", "_columns", "_delta_values", "num_rows")

    def __init__(
        self,
        schema: TableSchema,
        columns: Dict[str, CompressedColumn],
        delta_values: Dict[str, Tuple[Any, ...]],
        num_rows: int,
    ) -> None:
        self.schema = schema
        self._columns = columns
        self._delta_values = delta_values
        self.num_rows = num_rows

    def column_values(self, column: str) -> List[Any]:
        main = self._columns[column].values_array_at(None).tolist()
        return main + list(self._delta_values[column])

    def rows(self) -> List[Dict[str, Any]]:
        names = self.schema.column_names
        lists = [self.column_values(name) for name in names]
        return [dict(zip(names, values)) for values in zip(*lists)] if lists else []


def _concat_values(main: np.ndarray, delta: np.ndarray) -> np.ndarray:
    """Concatenate a main decode with a delta buffer, keeping object-ness.

    ``np.concatenate`` of an object part with a native part would try to
    coerce; building an object array preserves the exact values (NULLs
    included) the way a merged-dictionary decode would.
    """
    if main.dtype == object or delta.dtype == object:
        result = np.empty(len(main) + len(delta), dtype=object)
        result[: len(main)] = main
        result[len(main):] = delta
        return result
    return np.concatenate([main, delta])


#: A charge record of one compiled predicate leaf: the compressed column it
#: scans and whether it performed a dictionary (bisect) probe.
CodeLeaf = Tuple[CompressedColumn, bool]


def compile_code_mask(
    predicate: Predicate,
    columns: Mapping[str, CompressedColumn],
    num_rows: int,
) -> Optional[Tuple[np.ndarray, List[CodeLeaf]]]:
    """Compile *predicate* to a boolean mask over the code arrays.

    Returns ``(mask, leaves)`` or ``None`` when any part of the predicate
    cannot be answered in the code domain (unknown column, incomparable
    literal type) — compilation is all-or-nothing and charge-free, so a
    failed attempt never double-charges against the fallback path.  The
    *leaves* list one entry per simple predicate evaluated, for the caller
    to convert into cost charges.

    NULL awareness: a dictionary holding NULL reserves code 0 for it.  Value
    comparisons and ranges never include code 0 (``range_codes`` offsets its
    interval past it; ``NE`` masks it out explicitly), ``IS NULL`` is exactly
    ``codes == 0``, and an ``IN``-list containing NULL picks code 0 up
    through ``encode_existing(None)`` — all matching the scalar evaluator's
    row-at-a-time semantics.
    """
    leaves: List[CodeLeaf] = []
    mask = _compile_mask(predicate, columns, num_rows, leaves)
    if mask is None:
        return None
    return mask, leaves


def compile_code_leaves(
    predicate: Predicate, columns: Mapping[str, CompressedColumn]
) -> Optional[List[CodeLeaf]]:
    """Dry compilation: the leaves :func:`compile_code_mask` would evaluate.

    Performs exactly the dictionary translations of a real compilation (the
    only operations that can fail) but never touches a code array, so the
    success verdict and the leaf list — and therefore the cost charges
    derived from them — are guaranteed identical to the wet compilation.
    Used to replay scan charges for scans that zone maps proved unnecessary.
    """
    leaves: List[CodeLeaf] = []
    if _compile_mask(predicate, columns, 0, leaves, dry=True) is None:
        return None
    return leaves


#: Placeholder returned for every mask during dry compilation.
_DRY_MASK: Any = "dry"


def _compile_mask(
    predicate: Predicate,
    columns: Mapping[str, CompressedColumn],
    num_rows: int,
    leaves: List[CodeLeaf],
    dry: bool = False,
) -> Optional[np.ndarray]:
    if isinstance(predicate, TruePredicate):
        return _DRY_MASK if dry else np.ones(num_rows, dtype=bool)
    if isinstance(predicate, (And, Or)):
        combined: Optional[np.ndarray] = None
        for child in predicate.predicates:
            mask = _compile_mask(child, columns, num_rows, leaves, dry)
            if mask is None:
                return None
            if dry or combined is None:
                combined = mask
            elif isinstance(predicate, And):
                combined = combined & mask
            else:
                combined = combined | mask
        return combined
    if isinstance(predicate, Not):
        # The leaf masks already encode NULL semantics (a NULL row fails
        # every comparison), so plain inversion matches the scalar
        # evaluator: NOT(amount > 5) *does* match NULL rows.
        mask = _compile_mask(predicate.predicate, columns, num_rows, leaves, dry)
        if mask is None:
            return None
        return mask if dry else ~mask
    if isinstance(predicate, IsNull):
        column = columns.get(predicate.column)
        if column is None:
            return None
        leaves.append((column, False))
        if dry:
            return _DRY_MASK
        codes = column.codes
        if column.dictionary.has_null:
            return codes == 0
        return np.zeros(len(codes), dtype=bool)
    if isinstance(predicate, (Comparison, Between, InList)):
        column = columns.get(predicate.column)
        if column is None:
            return None
        mask = _leaf_code_mask(column, predicate, dry)
        if mask is None:
            # The dictionary cannot answer this predicate (incomparable
            # literal types); the whole compilation falls back.
            return None
        leaves.append((column, True))
        return mask
    return None


def _leaf_code_mask(
    column: CompressedColumn, predicate: Predicate, dry: bool = False
) -> Optional[np.ndarray]:
    """Mask of a simple predicate over *column*'s code array, or ``None``.

    Value constants translate to code ranges through the sorted dictionary
    (``bisect``); a ``TypeError`` from comparing a literal of an
    incomparable type against the dictionary values aborts the translation
    (the caller falls back to the value-level evaluator, which mirrors the
    row store's behaviour exactly).  With ``dry=True`` the translations run
    but the mask itself is skipped (see :func:`compile_code_leaves`).
    """
    codes = column.codes
    dictionary = column.dictionary
    try:
        if isinstance(predicate, Comparison):
            return _comparison_code_mask(column, codes, predicate, dry)
        if isinstance(predicate, Between):
            if dictionary.holds_null:
                # BETWEEN never matches NULL, and the all-NULL dictionary
                # cannot order its bounds.
                return _DRY_MASK if dry else np.zeros(len(codes), dtype=bool)
            lo, hi = dictionary.range_codes(
                predicate.low, predicate.high,
                predicate.include_low, predicate.include_high,
            )
            if dry:
                return _DRY_MASK
            # ``range_codes`` offsets past the reserved NULL code, so NULL
            # rows (code 0) never fall inside the interval.
            mask = (codes >= lo) & (codes < hi)
            nan_code = dictionary.nan_code
            if nan_code is not None:
                # The scalar evaluator tests Between by *exclusion*
                # (value < low / value > high), which NaN never fails.
                mask |= codes == nan_code
            return mask
        # A NaN member matches nothing (IN is chained equality); it also can
        # never be *found* — ``encode_existing`` bisects only the orderable
        # values — so it simply contributes no member code.
        member_codes = [
            dictionary.encode_existing(value) for value in predicate.values
        ]
        member_codes = [code for code in member_codes if code is not None]
        if dry:
            return _DRY_MASK
        if not member_codes:
            return np.zeros(len(codes), dtype=bool)
        return np.isin(codes, np.asarray(member_codes, dtype=np.int64))
    except TypeError:
        return None


def _comparison_code_mask(
    column: CompressedColumn, codes: np.ndarray, predicate: Comparison,
    dry: bool = False,
) -> np.ndarray:
    dictionary = column.dictionary
    if predicate.value is None or dictionary.holds_null:
        # ``column <op> NULL`` never matches, and neither does any
        # comparison over an all-NULL column (row-at-a-time semantics:
        # a comparison involving NULL is false, whatever the operator).
        return _DRY_MASK if dry else np.zeros(len(codes), dtype=bool)
    has_null = dictionary.has_null
    if predicate.op is CompareOp.EQ:
        code = dictionary.encode_existing(predicate.value)
        if dry:
            return _DRY_MASK
        if code is None:
            return np.zeros(len(codes), dtype=bool)
        return codes == code
    if predicate.op is CompareOp.NE:
        code = dictionary.encode_existing(predicate.value)
        if dry:
            return _DRY_MASK
        if code is None:
            mask = np.ones(len(codes), dtype=bool)
        else:
            mask = codes != code
        if has_null:
            # NULL rows fail every comparison, != included.
            mask &= codes != 0
        return mask
    if isinstance(predicate.value, float) and predicate.value != predicate.value:
        # Ordered comparison against a NaN literal is false for every
        # value (bisect would place NaN at position 0 and wrongly match
        # everything for >=).
        return _DRY_MASK if dry else np.zeros(len(codes), dtype=bool)
    # Ordered comparisons never match NaN row-at-a-time (every comparison
    # is False); a NaN dictionary entry sorts last, so exclude its code
    # from the range masks explicitly.
    nan_code = dictionary.nan_code
    if predicate.op in (CompareOp.LT, CompareOp.LE):
        lo, hi = dictionary.range_codes(
            None, predicate.value, include_high=predicate.op is CompareOp.LE
        )
        if dry:
            return _DRY_MASK
        mask = codes < hi
        if has_null:
            # The reserved NULL code 0 is below every value code.
            mask &= codes != 0
    else:
        lo, hi = dictionary.range_codes(
            predicate.value, None, include_low=predicate.op is CompareOp.GE
        )
        if dry:
            return _DRY_MASK
        # ``lo`` is offset past the NULL code, which excludes NULL rows.
        mask = codes >= lo
    if nan_code is not None:
        mask &= codes != nan_code
    return mask


class ColumnStoreTable:
    """In-memory column-oriented, dictionary-compressed table."""

    store = Store.COLUMN

    #: Delta size at which an insert triggers an automatic merge (class-level
    #: default; tests and sessions override per instance).
    merge_threshold = DEFAULT_MERGE_THRESHOLD

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._columns: Dict[str, CompressedColumn] = {
            column.name: CompressedColumn(column.name, column.dtype)
            for column in schema.columns
        }
        self._num_rows = 0
        # Write-optimised delta: per-column uncompressed append buffers.
        # ``_num_rows`` always counts main + delta; delta rows occupy the
        # positions ``main_rows .. num_rows-1`` in append order, which merges
        # preserve (the delta is re-encoded onto the end of main).
        self._delta: Dict[str, DeltaColumn] = {
            name: DeltaColumn() for name in self._columns
        }
        self._delta_len = 0
        # Snapshot support: a sealed table copies-on-write before any
        # in-place mutation of its main columns (see ``snapshot``).
        self._sealed = False
        self._pk_column: Optional[str] = None
        if len(schema.primary_key) == 1:
            self._pk_column = schema.primary_key[0]
        # Primary-key uniqueness is checked against this set; the dictionary
        # alone is not sufficient because several rows may share a code.
        self._pk_values: set = set()
        # Zone-map state: every mutator bumps the epoch; per-column synopses
        # are rebuilt lazily on the next consult (see ``column_zone``).
        self._zone_epoch = next_zone_epoch()
        self._zone_cache: Dict[str, Tuple[int, ColumnZone]] = {}
        # Integrity state: per-unit content checksums keyed by the same zone
        # epoch, plus quarantine bookkeeping (see ``_integrity_check``).
        self.integrity = TableIntegrity(schema.name)

    # -- basic properties --------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return self._num_rows

    @property
    def delta_rows(self) -> int:
        """Rows buffered in the write-optimised delta (not yet merged)."""
        return self._delta_len

    @property
    def main_rows(self) -> int:
        """Rows in the dictionary-encoded main store."""
        return self._num_rows - self._delta_len

    @property
    def row_width_bytes(self) -> int:
        return self.schema.row_width_bytes

    @property
    def memory_bytes(self) -> float:
        return sum(
            self._logical_compressed_bytes(name) for name in self._columns
        )

    def compression_rate(self, column: Optional[str] = None) -> float:
        """Compressed-to-raw size ratio for one column or the whole table.

        Computed over the **logical** column (main plus delta) so the ratio —
        and every estimate derived from it — is independent of merge timing.
        """
        if column is not None:
            if self._num_rows == 0:
                return 1.0
            raw = self._num_rows * self.schema.column(column).dtype.width_bytes
            return min(1.0, self._logical_compressed_bytes(column) / raw) if raw else 1.0
        if self._num_rows == 0:
            return 1.0
        raw = sum(
            self._num_rows * col.dtype.width_bytes for col in self.schema.columns
        )
        compressed = sum(
            self._logical_compressed_bytes(name) for name in self._columns
        )
        return min(1.0, compressed / raw) if raw else 1.0

    def has_index(self, column: str) -> bool:
        """Every column-store column has an implicit (dictionary) index."""
        return True

    def column_compressed_bytes(self, column: str) -> float:
        return self._logical_compressed_bytes(column)

    def column_code_bytes(self, column: str) -> float:
        """Bytes a sequential scan of *column* reads (code array only)."""
        return self._logical_code_bytes(column)

    # -- logical statistics (main + delta) ---------------------------------------

    def _logical_distinct(self, column: str) -> int:
        """Distinct count of the merged column, without merging.

        Main's dictionary size (NULL and NaN entries included) plus the
        delta's genuinely new values, NULL and NaN counted once each.
        """
        compressed = self._columns[column]
        delta = self._delta[column]
        distinct = compressed.num_distinct + len(delta.new_values)
        if delta.null_count and not compressed.dictionary.has_null:
            distinct += 1
        if delta.has_nan and compressed.dictionary.nan_code is None:
            distinct += 1
        return distinct

    def _logical_code_bytes(self, column: str) -> float:
        """Code-array bytes of the merged column: total rows at merged width."""
        return self._num_rows * code_width_bytes(self._logical_distinct(column))

    def _logical_compressed_bytes(self, column: str) -> float:
        distinct = self._logical_distinct(column)
        dict_bytes = distinct * self.schema.column(column).dtype.width_bytes
        return self._num_rows * code_width_bytes(distinct) + dict_bytes

    # -- loading and modification ----------------------------------------------------

    def insert_rows(
        self, rows: Sequence[Mapping[str, Any]], accountant: Optional[CostAccountant] = None
    ) -> List[int]:
        """Insert validated rows, returning their positions.

        Every cell pays the column-store insert penalty (dictionary lookup and
        potential re-encoding, delta append); the primary key additionally
        pays a uniqueness probe.  The *charges* are per row, but the physical
        append is columnar — one :meth:`CompressedColumn.extend` per column,
        so each dictionary merges the batch's new values in a single pass.

        A validation error or duplicate primary key aborts the batch at the
        offending row: every earlier row of the batch is inserted (and
        charged), the offending and later rows are not — exactly the
        partial-state contract of the original per-row append loop.  A value
        a dictionary unexpectedly rejects aborts the whole batch cleanly:
        nothing is inserted, no primary key stays registered, and the error
        propagates.  NULL mixes freely with values — the dictionary reserves
        code 0 for it (:class:`~repro.engine.compression.ColumnDictionary`).
        """
        self._bump_zone_epoch()
        pending: List[Dict[str, Any]] = []
        failure: Optional[Exception] = None
        for raw_row in rows:
            try:
                validated = self.schema.validate_row(raw_row)
                if self._pk_column is not None:
                    key = validated[self._pk_column]
                    if accountant is not None:
                        accountant.charge_index_probe()
                    if key in self._pk_values:
                        raise ExecutionError(
                            f"duplicate primary key {key!r} in table {self.schema.name!r}"
                        )
                    self._pk_values.add(key)
            except Exception as exc:
                failure = exc
                break
            pending.append(validated)
        positions = []
        if pending:
            try:
                if _DELTA_WRITES_ENABLED:
                    self._extend_delta(pending)
                else:
                    self._unseal_for_write()
                    self._extend_columns(pending)
            except Exception:
                if self._pk_column is not None:
                    for row in pending:
                        self._pk_values.discard(row[self._pk_column])
                raise
            for _ in pending:
                if accountant is not None:
                    accountant.charge_cs_value_inserts(self.schema.num_columns)
                positions.append(self._num_rows)
                self._num_rows += 1
        if failure is not None:
            raise failure
        if self._delta_len >= self.merge_threshold:
            self.merge_delta()
        return positions

    def _extend_columns(self, pending: Sequence[Mapping[str, Any]]) -> None:
        """One :meth:`CompressedColumn.extend` per column, atomically.

        If a column unexpectedly rejects its values the already-extended
        columns are truncated back, so the table never ends up with
        misaligned column lengths.
        """
        extended: List[Tuple[CompressedColumn, int]] = []
        try:
            for name, column in self._columns.items():
                extended.append((column, len(column)))
                column.extend([row[name] for row in pending])
        except Exception:
            for column, old_size in extended:
                column.truncate(old_size)
            raise

    def _extend_delta(self, pending: Sequence[Mapping[str, Any]]) -> None:
        """Delta-path twin of :meth:`_extend_columns`, with the same rollback.

        If a column rejects one of its values mid-batch the already-extended
        delta buffers are truncated back, so the buffers never end up with
        misaligned lengths.
        """
        extended: List[Tuple[str, int]] = []
        try:
            for name, delta in self._delta.items():
                extended.append((name, len(delta)))
                dictionary = self._columns[name].dictionary
                for row in pending:
                    delta.append(row[name], dictionary)
        except Exception:
            for name, old_len in extended:
                self._delta[name].truncate(old_len, self._columns[name].dictionary)
            raise
        self._delta_len += len(pending)

    def merge_delta(self) -> int:
        """Re-encode the delta into main; returns the number of rows merged.

        The merge builds aside and swaps: each main column is cloned, the
        clone absorbs the delta values in one :meth:`CompressedColumn.extend`
        pass, and only then does the table switch over.  A crash at any of
        the ``merge.*`` fault points therefore leaves the table consistent
        (either entirely pre-merge or entirely post-merge), and snapshots
        keep reading the old column objects.  Dictionary accumulation is
        history-order independent, so the post-merge physical state is
        bit-identical to inline insertion — the basis of the
        ``delta_writes_disabled()`` equivalence contract.  The merge itself
        is charge-free: it models asynchronous reorganisation, and all read
        charges are logical (main + delta) anyway.
        """
        if self._delta_len == 0:
            return 0
        faults.fault_point("merge.before")
        merged = self._delta_len
        rebuilt: Dict[str, CompressedColumn] = {}
        for name, column in self._columns.items():
            clone = column.clone()
            clone.extend(list(self._delta[name].values))
            rebuilt[name] = clone
        faults.fault_point("merge.after_build")
        self._columns = rebuilt
        self._delta = {name: DeltaColumn() for name in self._columns}
        self._delta_len = 0
        self._sealed = False
        self._bump_zone_epoch()
        faults.fault_point("merge.after_swap")
        return merged

    def _unseal_for_write(self) -> None:
        """Copy-on-write before an in-place mutation of the main columns.

        No-op unless a :meth:`snapshot` sealed the table; then every main
        column is cloned so the snapshot keeps the originals.  (Delta appends
        never need this — snapshots copy the delta values outright.)
        """
        if self._sealed:
            self._columns = {
                name: column.clone() for name, column in self._columns.items()
            }
            self._sealed = False

    def snapshot(self) -> ColumnStoreSnapshot:
        """A consistent read view of the table as of now (see module docs)."""
        self._sealed = True
        return ColumnStoreSnapshot(
            self.schema,
            dict(self._columns),
            {name: tuple(delta.values) for name, delta in self._delta.items()},
            self._num_rows,
        )

    def bulk_load(self, rows: Sequence[Mapping[str, Any]]) -> None:
        """Load rows without cost accounting (used by generators and tests).

        Rows are validated column-at-a-time and each column dictionary is
        built in one bulk pass — no intermediate row dicts.
        """
        if not rows:
            return
        self._bump_zone_epoch()
        if self._num_rows == 0:
            self._unseal_for_write()
            columns = self.schema.validate_rows_columnar(rows)
            for name, column in self._columns.items():
                column.bulk_load(columns[name])
            self._num_rows = len(rows)
            if self._pk_column is not None:
                keys = columns[self._pk_column]
                self._pk_values = set(keys)
                if len(self._pk_values) != len(keys):
                    raise ExecutionError(
                        f"duplicate primary key while bulk loading {self.schema.name!r}"
                    )
        else:
            validated = [self.schema.validate_row(row) for row in rows]
            self.insert_rows(validated, accountant=None)
            # Bulk loads are synchronous reorganisation points: merging right
            # away keeps the physical state of load paths identical to the
            # pre-delta pipeline (only DML inserts populate a lasting delta).
            self.merge_delta()

    def bulk_load_columns(self, columns: Mapping[str, Any], num_rows: int) -> None:
        """Adopt already-validated column data (store-conversion fast path).

        Each column is dictionary-encoded in one bulk pass; no row dict is
        ever built.  Values must be coerced already (they come from the other
        store's backend).
        """
        if self._num_rows:
            raise ExecutionError("bulk_load_columns requires an empty table")
        self._bump_zone_epoch()
        self._unseal_for_write()
        for name, compressed in self._columns.items():
            compressed.bulk_load(columns[name])
        self._num_rows = num_rows
        if self._pk_column is not None:
            keys = columns[self._pk_column]
            self._pk_values = set(keys.tolist() if isinstance(keys, np.ndarray) else keys)
            if len(self._pk_values) != num_rows:
                raise ExecutionError(
                    f"duplicate primary key while bulk loading {self.schema.name!r}"
                )

    def update_rows(
        self,
        positions: Sequence[int],
        assignments: Mapping[str, Any],
        accountant: Optional[CostAccountant] = None,
    ) -> int:
        """Update *assignments* on the rows at *positions*.

        Dictionary-compressed column stores cannot modify a row in place: an
        update invalidates the old row version and re-appends a complete new
        version to the delta.  Accordingly every affected row is charged the
        update penalty for *all* of the table's columns, which is the main
        reason updates favour the row store in the paper's cost model.

        Updates merge the delta first (charge-free, position-preserving) and
        then mutate main exactly as the pre-delta pipeline did — *positions*
        computed over the union before the merge stay valid.
        """
        if not assignments:
            return 0
        self.merge_delta()
        self._unseal_for_write()
        self._bump_zone_epoch()
        coerced = {
            name: self.schema.column(name).dtype.coerce(value)
            for name, value in assignments.items()
        }
        for position in positions:
            for name, value in coerced.items():
                if name == self._pk_column:
                    old = self._columns[name].value_at(position)
                    if value != old and value in self._pk_values:
                        raise ExecutionError(
                            f"duplicate primary key {value!r} in table {self.schema.name!r}"
                        )
                    self._pk_values.discard(old)
                    self._pk_values.add(value)
                self._columns[name].set_value(position, value)
            if accountant is not None:
                accountant.charge_cs_value_updates(self.schema.num_columns)
        return len(positions)

    def delete_rows(
        self, positions: Sequence[int], accountant: Optional[CostAccountant] = None
    ) -> int:
        """Physically remove the rows at *positions* (rebuilds every column).

        The rebuild is columnar: each column masks its code array and shrinks
        its dictionary to the surviving codes — no row is ever reconstructed
        as a dict.  Like updates, deletes merge the delta first.
        """
        if len(positions) == 0:
            return 0
        self.merge_delta()
        self._unseal_for_write()
        self._bump_zone_epoch()
        doomed = np.unique(np.asarray(positions, dtype=np.int64))
        if accountant is not None:
            accountant.charge_cs_value_updates(len(doomed) * self.schema.num_columns)
        in_range = doomed[(doomed >= 0) & (doomed < self._num_rows)]
        if len(in_range):
            keep_mask = np.ones(self._num_rows, dtype=bool)
            keep_mask[in_range] = False
            if self._pk_column is not None:
                removed_keys = self._columns[self._pk_column].values_at(in_range)
                self._pk_values.difference_update(removed_keys)
            for column in self._columns.values():
                kept_codes = column.codes[keep_mask]
                column.load_codes(column.dictionary.rebuild_from_codes(kept_codes)
                                  if len(kept_codes)
                                  else column.dictionary.bulk_build([]))
            self._num_rows = int(keep_mask.sum())
        return len(doomed)

    # -- reads -----------------------------------------------------------------------

    def _integrity_check(self, columns) -> None:
        """Integrity gate of every read entry point.

        Quarantined units raise :class:`~repro.errors.DataCorruptionError`
        on every access; with scan verification enabled each unit is
        additionally checksum-verified at most once per (column, zone
        epoch) — a mutation bumps the epoch and records a fresh baseline,
        so detection means the content changed *without* a mutation.
        Verification charges zero simulated cost (no accountant involved);
        only the process-wide integrity counters move.
        """
        state = self.integrity
        for name in columns:
            state.check_quarantine(name)
        if not verify_on_scan_enabled():
            return
        epoch = self._zone_epoch
        for name in columns:
            if not state.scan_pending(name, epoch):
                continue
            compressed = self._columns[name]
            if not state.verify(
                name, compressed.codes, compressed.dictionary, epoch
            ):
                state.check_quarantine(name)  # raises the typed error

    def filter_positions(
        self, predicate: Optional[Predicate], accountant: Optional[CostAccountant] = None
    ) -> Optional[np.ndarray]:
        """Return positions of rows matching *predicate* (``None`` = all rows).

        Predicates compile to vectorized integer comparisons over the code
        arrays via :func:`compile_code_mask` (the sorted dictionary is the
        implicit index); predicates the compiler cannot express fall back to
        decode-and-compare, which additionally pays per-value decode costs
        for the referenced columns.
        """
        if predicate is None:
            return None
        self._integrity_check(
            name for name in sorted(predicate.columns()) if name in self._columns
        )
        delta_len = self._delta_len
        if accountant is not None and delta_len:
            accountant.record_delta_scan(
                self.schema.name, self._num_rows - delta_len, delta_len
            )
        if _CODE_DOMAIN_ENABLED and (not delta_len or self._delta_compile_ok(predicate)):
            compiled = compile_code_mask(
                predicate, self._columns, self._num_rows - delta_len
            )
            if compiled is not None:
                mask, leaves = compiled
                if accountant is not None:
                    for column, probed in leaves:
                        if probed:
                            # Dictionary lookup of the literal(s).
                            accountant.charge_index_probe()
                        accountant.charge_sequential_read(
                            "column_scan", self._logical_code_bytes(column.name)
                        )
                        accountant.charge_vector_compares(self._num_rows)
                if delta_len:
                    # The delta portion is evaluated in the value domain —
                    # result-equivalent to the code domain (the differential
                    # fuzzer pins this) and charge-free: the charges above
                    # already cover the full logical column.
                    arrays = {
                        name: self._delta[name].array()
                        for name in predicate.columns()
                    }
                    delta_mask = evaluate_predicate_mask(predicate, arrays, delta_len)
                    mask = np.concatenate([mask, delta_mask])
                return np.nonzero(mask)[0].astype(np.int64)
        # Fallback: decode the referenced columns (vectorized gather) and
        # evaluate the predicate over the value arrays; predicates the
        # vectorized evaluator cannot express run the row-at-a-time loop.
        referenced = sorted(predicate.columns())
        if accountant is not None:
            for name in referenced:
                accountant.charge_sequential_read(
                    "column_scan", self._logical_code_bytes(name)
                )
            accountant.charge_dict_decodes(self._num_rows * len(referenced))
            accountant.charge_predicate_evals(self._num_rows)
        arrays = {name: self._union_values_array(name) for name in referenced}
        mask = evaluate_predicate_mask(predicate, arrays, self._num_rows)
        return np.nonzero(mask)[0].astype(np.int64)

    def _delta_compile_ok(self, predicate: Predicate) -> bool:
        """Whether code-domain compilation stays valid with a non-empty delta.

        Compilation over the frozen main dictionary can only diverge from the
        inline reference (which would have merged the delta's values into the
        dictionary) in its *TypeError verdict*: an ordered comparison or a
        BETWEEN bisects the literal against the dictionary values, and a
        literal comparable with main's values may be incomparable with the
        delta's (or vice versa — main empty, delta populated).  Column values
        are dtype-coerced and therefore homogeneous, so probing one
        representative delta value reproduces the merged dictionary's verdict
        exactly.  ``EQ``/``NE``/``IN``/``IS NULL`` never fall back
        (``encode_existing`` swallows the TypeError), and comparisons against
        NULL or NaN literals short-circuit before any bisect — no probe.
        """
        if isinstance(predicate, (And, Or)):
            return all(self._delta_compile_ok(child) for child in predicate.predicates)
        if isinstance(predicate, Not):
            return self._delta_compile_ok(predicate.predicate)
        if isinstance(predicate, Comparison):
            if predicate.op in (CompareOp.LT, CompareOp.LE, CompareOp.GT, CompareOp.GE):
                value = predicate.value
                if value is None or (isinstance(value, float) and value != value):
                    return True
                return self._probe_orderable(predicate.column, value)
            return True
        if isinstance(predicate, Between):
            # NaN bounds do reach the bisect in the inline path, so they are
            # probed too (float vs str comparison raises regardless of NaN).
            for bound in (predicate.low, predicate.high):
                if bound is not None and not self._probe_orderable(
                    predicate.column, bound
                ):
                    return False
            return True
        return True

    def _probe_orderable(self, column: str, literal: Any) -> bool:
        delta = self._delta.get(column)
        if delta is None or delta.representative is None:
            return True
        try:
            literal < delta.representative  # noqa: B015 — probe for TypeError
            return True
        except TypeError:
            return False

    def charge_filter_scan(
        self, predicate: Predicate, accountant: Optional[CostAccountant]
    ) -> None:
        """Replay the charges of :meth:`filter_positions` without scanning.

        Zone-pruned DML uses this: when the zones prove *predicate* matches
        no row, the scan is skipped but the query must cost exactly what the
        seed pipeline charged for scanning and matching nothing.  The dry
        compilation (:func:`compile_code_leaves`) reproduces the real
        compiler's success verdict and leaf order, so the charges cannot
        drift from the scanned path.
        """
        if accountant is None or predicate is None:
            return
        if _CODE_DOMAIN_ENABLED and (
            not self._delta_len or self._delta_compile_ok(predicate)
        ):
            leaves = compile_code_leaves(predicate, self._columns)
            if leaves is not None:
                for column, probed in leaves:
                    if probed:
                        accountant.charge_index_probe()
                    accountant.charge_sequential_read(
                        "column_scan", self._logical_code_bytes(column.name)
                    )
                    accountant.charge_vector_compares(self._num_rows)
                return
        referenced = sorted(predicate.columns())
        for name in referenced:
            accountant.charge_sequential_read(
                "column_scan", self._logical_code_bytes(name)
            )
        accountant.charge_dict_decodes(self._num_rows * len(referenced))
        accountant.charge_predicate_evals(self._num_rows)

    def fetch_rows(
        self,
        positions: Optional[Sequence[int]],
        columns: Optional[Sequence[str]] = None,
        accountant: Optional[CostAccountant] = None,
    ) -> List[Dict[str, Any]]:
        """Materialise (reconstruct) tuples from the requested columns.

        Tuple reconstruction pays one random access + decode per requested
        cell, which is why selecting many attributes of many rows is the
        column store's weak spot.
        """
        selected = tuple(columns) if columns is not None else self.schema.column_names
        for name in selected:
            self.schema.column(name)
        self._integrity_check(selected)
        if positions is None:
            gather = None
            num_positions = self._num_rows
        else:
            gather = np.asarray(positions, dtype=np.int64)
            num_positions = len(gather)
        if accountant is not None:
            for name in selected:
                self._charge_materialisation(name, num_positions, accountant)
        batch = ColumnBatch(
            {name: self._union_values_array(name, gather) for name in selected},
            num_rows=num_positions,
        )
        return batch.to_rows()

    def _charge_materialisation(
        self, column: str, num_positions: int, accountant: CostAccountant
    ) -> None:
        """Charge for materialising *num_positions* values of one column.

        Sparse position lists pay one tuple-reconstruction (random access +
        decode) per value; dense position lists are served by a sequential
        scan of the code array plus a decode per qualifying value, which is
        how a real column store late-materialises wide selections.
        """
        if self._num_rows == 0:
            return
        if num_positions <= self._num_rows * SCAN_MATERIALIZATION_THRESHOLD:
            accountant.charge_tuple_reconstructions(num_positions)
        else:
            accountant.charge_sequential_read(
                "column_scan", self._logical_code_bytes(column)
            )
            accountant.charge_dict_decodes(num_positions)

    def column_values(
        self,
        column: str,
        positions: Optional[Sequence[int]] = None,
        accountant: Optional[CostAccountant] = None,
    ) -> List[Any]:
        """Return the values of one column, decoding from the dictionary.

        A full-column read is a sequential scan of the compressed codes plus a
        decode per value — the column store's fast path for aggregation.
        """
        return self.column_array(column, positions, accountant).tolist()

    def column_array(
        self,
        column: str,
        positions: Optional[Sequence[int]] = None,
        accountant: Optional[CostAccountant] = None,
    ) -> np.ndarray:
        """Vectorized :meth:`column_values`: decode straight into a numpy array.

        Charges are identical to the scalar accessor — the batch pipeline is a
        wall-clock optimisation, not a cost-model change.
        """
        self._integrity_check((column,))
        if positions is None:
            if accountant is not None:
                accountant.charge_sequential_read(
                    "column_scan", self._logical_code_bytes(column)
                )
                accountant.charge_dict_decodes(self._num_rows)
            return self._union_values_array(column, None)
        if accountant is not None:
            self._charge_materialisation(column, len(positions), accountant)
        return self._union_values_array(
            column, np.asarray(positions, dtype=np.int64)
        )

    def _union_values_array(
        self, column: str, positions: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Decoded values across main and delta (all rows or a gather).

        With an empty delta this is exactly the main column's decode.
        Otherwise main positions decode through the dictionary and delta
        positions index the raw value buffer; either part being an object
        array (NULL present, or an empty dictionary) promotes the result to
        object, mirroring what decoding the merged dictionary would yield.
        """
        compressed = self._columns[column]
        delta = self._delta[column]
        if not len(delta):
            return compressed.values_array_at(positions)
        main_size = len(compressed)
        if positions is None:
            return _concat_values(compressed.values_array_at(None), delta.array())
        positions = np.asarray(positions, dtype=np.int64)
        in_main = positions < main_size
        if in_main.all():
            return compressed.values_array_at(positions)
        delta_array = delta.array()
        if not in_main.any():
            return delta_array[positions - main_size]
        main_part = compressed.values_array_at(positions[in_main])
        delta_part = delta_array[positions[~in_main] - main_size]
        if main_part.dtype == object or delta_part.dtype == object:
            result = np.empty(len(positions), dtype=object)
        else:
            result = np.empty(
                len(positions), dtype=np.result_type(main_part, delta_part)
            )
        result[in_main] = main_part
        result[~in_main] = delta_part
        return result

    def compressed_column(self, column: str) -> CompressedColumn:
        """The main store's compressed column (shard publication reads it)."""
        return self._columns[column]

    def charge_encoded_read(
        self, column: str, num_positions: Optional[int],
        accountant: CostAccountant,
    ) -> None:
        """Replay :meth:`column_encoded`'s charges without reading.

        The sharded aggregation path gathers its inputs from worker
        processes and then bills the serial collect exactly:
        ``num_positions=None`` is the unfiltered full-column scan, an int is
        a filtered materialisation of that many positions.  Only valid with
        an empty delta — sharding never runs otherwise.
        """
        if num_positions is None:
            accountant.charge_sequential_read(
                "column_scan", self._logical_code_bytes(column)
            )
            accountant.charge_dict_decodes(self._num_rows)
        else:
            self._charge_materialisation(column, num_positions, accountant)

    def column_encoded(
        self,
        column: str,
        positions: Optional[Sequence[int]] = None,
        accountant: Optional[CostAccountant] = None,
    ) -> BatchColumn:
        """Late-materialized read: the column's ``(codes, dictionary)`` pair.

        No value is decoded — downstream operators work on the codes and the
        dictionary is consulted only for the values that reach the result.
        The *charges* are identical to :meth:`column_array` (including the
        per-value decode charge): carrying codes is a wall-clock optimisation
        of the simulator, not a cost-model change — the simulated system
        still decodes each value it returns.

        With a non-empty delta the requested rows span two encodings, so the
        read degrades to a decoded value array (still a :data:`BatchColumn`;
        every consumer handles both shapes).  Charges are unaffected — they
        were always the decode charges.
        """
        self._integrity_check((column,))
        compressed = self._columns[column]
        if positions is None:
            if accountant is not None:
                accountant.charge_sequential_read(
                    "column_scan", self._logical_code_bytes(column)
                )
                accountant.charge_dict_decodes(self._num_rows)
            if self._delta_len:
                return self._union_values_array(column, None)
            return EncodedColumn(compressed.codes_at(None), compressed.dictionary)
        if accountant is not None:
            self._charge_materialisation(column, len(positions), accountant)
        if self._delta_len:
            return self._union_values_array(
                column, np.asarray(positions, dtype=np.int64)
            )
        return EncodedColumn(compressed.codes_at(positions), compressed.dictionary)

    def scan_columns(
        self,
        columns: Sequence[str],
        positions: Optional[Sequence[int]] = None,
        accountant: Optional[CostAccountant] = None,
    ) -> Dict[str, List[Any]]:
        """Read several columns; each column is scanned (or reconstructed) separately."""
        return {
            name: self.column_values(name, positions, accountant) for name in columns
        }

    def scan_batch(
        self,
        columns: Sequence[str],
        positions: Optional[Sequence[int]] = None,
        accountant: Optional[CostAccountant] = None,
    ) -> ColumnBatch:
        """Batch variant of :meth:`scan_columns`: one decoded array per column."""
        if positions is not None and not isinstance(positions, np.ndarray):
            positions = np.asarray(positions, dtype=np.int64)
        num_rows = self._num_rows if positions is None else len(positions)
        return ColumnBatch(
            {name: self.column_array(name, positions, accountant) for name in columns},
            num_rows=num_rows,
        )

    def all_rows(self) -> List[Dict[str, Any]]:
        """Return every row as a dict, without cost accounting (for conversions)."""
        names = self.schema.column_names
        self._integrity_check(names)
        batch = ColumnBatch(
            {name: self._union_values_array(name, None) for name in names},
            num_rows=self._num_rows,
        )
        return batch.to_rows()

    def _row_as_dict(self, position: int) -> Dict[str, Any]:
        main_size = self._num_rows - self._delta_len
        if position >= main_size:
            index = position - main_size
            return {
                name: self._delta[name].values[index]
                for name in self.schema.column_names
            }
        return {
            name: self._columns[name].value_at(position)
            for name in self.schema.column_names
        }

    # -- zone maps ----------------------------------------------------------------------

    def _bump_zone_epoch(self) -> None:
        self._zone_epoch = next_zone_epoch()

    @property
    def zone_epoch(self) -> int:
        """Monotonic counter bumped by every mutation (zone staleness token)."""
        return self._zone_epoch

    def column_zone(self, column: str) -> ColumnZone:
        """The column's zone synopsis (cached per zone epoch).

        The bounds are **exact** over the stored rows: in-place updates can
        orphan dictionary entries, so instead of trusting the dictionary's
        value bounds the synopsis reduces the live code array (one
        vectorized int64 pass, cached per zone epoch) and decodes only the
        two extreme codes — the sorted dictionary makes the smallest live
        value code the minimum value.  Exact bounds are what allows
        zero-scan MIN/MAX answers to come straight from the zone; the NULL
        count is maintained incrementally over the reserved code 0.
        """
        cached = self._zone_cache.get(column)
        if cached is not None and cached[0] == self._zone_epoch:
            return cached[1]
        compressed = self._columns[column]
        dictionary = compressed.dictionary
        live = compressed.codes
        if dictionary.has_null:
            live = live[live != 0]
        has_nan = False
        nan_code = dictionary.nan_code
        if nan_code is not None and len(live):
            nan_mask = live == nan_code
            has_nan = bool(nan_mask.any())
            if has_nan:
                live = live[~nan_mask]
        if len(live):
            low = dictionary.decode(int(live.min()))
            high = dictionary.decode(int(live.max()))
        else:
            low = high = None
        zone = ColumnZone(
            min_value=low,
            max_value=high,
            null_count=compressed.null_count,
            num_rows=self._num_rows - self._delta_len,
            has_nan=has_nan,
        )
        delta = self._delta[column]
        if len(delta):
            # Fold the delta values into the main synopsis — exact bounds,
            # exactly as if the delta had been merged.  ``widen_zone`` bails
            # only on an unorderable mix; dtype coercion makes that next to
            # impossible, but if it happens the merge makes it moot.
            widened = widen_zone(zone, delta.values, len(delta))
            if widened is None:
                self.merge_delta()
                return self.column_zone(column)
            zone = widened
        self._zone_cache[column] = (self._zone_epoch, zone)
        return zone

    # -- statistics helpers -----------------------------------------------------------

    def column_distinct_count(self, column: str) -> int:
        return self._logical_distinct(column)

    def column_min_max(self, column: str) -> Tuple[Any, Any]:
        """Bounds of the merged dictionary's entries (NaN sorts last).

        Mirrors reading ``dictionary.values[0]`` / ``values[-1]`` off the
        merged dictionary: NULL is excluded, and a NaN entry — main's or one
        the delta introduces — is the maximum because the sorted dictionary
        places it last.
        """
        compressed = self._columns[column]
        delta = self._delta[column]
        dict_values = [
            value for value in compressed.dictionary.values if value is not None
        ]
        if not len(delta):
            if not dict_values:
                return None, None
            return dict_values[0], dict_values[-1]
        nan_value = None
        if dict_values and is_nan(dict_values[-1]):
            nan_value = dict_values[-1]
            dict_values = dict_values[:-1]
        if delta.has_nan and nan_value is None:
            nan_value = float("nan")
        bounds: List[Any] = []
        if dict_values:
            bounds.extend((dict_values[0], dict_values[-1]))
        if delta.new_values:
            new_sorted = sorted(delta.new_values)
            bounds.extend((new_sorted[0], new_sorted[-1]))
        if not bounds:
            if nan_value is not None:
                return nan_value, nan_value
            return None, None
        low = min(bounds)
        high = max(bounds) if nan_value is None else nan_value
        return low, high

    def column_code_width(self, column: str) -> int:
        return code_width_bytes(self._logical_distinct(column))
