"""Write-ahead log and crash recovery for :class:`HybridDatabase`.

The WAL is a *logical* redo log: every record describes one committed
statement (a DDL operation, a bulk load, or a DML query's bound AST) rather
than physical page images.  Replaying the records through a fresh database —
the same code paths that executed them the first time — rebuilds a
bit-identical engine state, including the dictionary entry order, zone maps
and the simulated-cost statistics, because the engine is deterministic.

On-disk format::

    RPWAL1\\n                                 magic (7 bytes)
    [u32 length][u32 crc32][payload] ...     records, little-endian header

where ``payload`` is ``pickle((lsn, record_type, data))``.  The CRC covers
the payload only; the length prefix lets recovery skip a checksum-corrupt
record and keep replaying the records behind it.  A record whose header or
payload extends past the end of the file is a *torn tail* (the process died
mid-flush): recovery stops there and reports the number of bytes ignored,
and re-opening the log for appending truncates the tail away.

Sync modes (how much of the log survives a crash):

``"commit"``
    Every appended record is flushed and ``fsync``-ed before the append
    returns — a crash loses at most the statement in flight.
``"batch"``
    Records buffer in memory and flush every ``batch_size`` appends — a
    crash loses at most one batch.
``"off"``
    Records buffer until an explicit :meth:`WriteAheadLog.flush`,
    :meth:`WriteAheadLog.checkpoint` or :meth:`WriteAheadLog.close` — fast,
    but a crash loses everything since the last flush.

A :meth:`WriteAheadLog.checkpoint` pickles the database state into a
side-car snapshot file (written to a temp file and atomically renamed) and
resets the log; recovery restores the snapshot first and replays only the
records with an LSN greater than the snapshot's, which makes recovery
idempotent across every crash window of the checkpoint itself.

Every step a crash could separate from its neighbours calls
:func:`repro.testing.faults.fault_point`; the recovery differential fuzzer
(``tests/engine/test_recovery_fuzz.py``) crashes at each of them and asserts
the recovered database equals a committed-prefix reference.
"""

from __future__ import annotations

import io
import os
import pickle
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, List, Mapping, Optional, Sequence, Tuple

from repro.config import DeviceModelConfig
from repro.engine.database import HybridDatabase
from repro.engine.partitioning import TablePartitioning
from repro.engine.schema import TableSchema
from repro.engine.types import Store
from repro.errors import SnapshotCorruptError, WalError
from repro.query.ast import Query
from repro.testing import faults

MAGIC = b"RPWAL1\n"

#: Checkpoint snapshot side-car files carry their own magic + crc frame
#: (``SNAPSHOT_MAGIC`` + ``_HEADER`` + pickle payload), so a flipped bit or
#: a truncation is a typed :class:`SnapshotCorruptError`, never undefined
#: pickle behaviour.  The version digit is part of the magic, like the log's.
SNAPSHOT_MAGIC = b"RPSNAP1\n"

#: ``[u32 payload length][u32 crc32(payload)]`` little-endian record header.
_HEADER = struct.Struct("<II")

SYNC_MODES = ("off", "commit", "batch")

# Record types.  The payload data per type:
CREATE_TABLE = "create_table"  # (TableSchema, Store)
DROP_TABLE = "drop_table"  # table name
MOVE_TABLE = "move_table"  # (name, Store)
APPLY_PARTITIONING = "apply_partitioning"  # (name, TablePartitioning)
REMOVE_PARTITIONING = "remove_partitioning"  # (name, Store)
LOAD_ROWS = "load_rows"  # (name, list-of-row-dicts)
DML = "dml"  # bound Query AST (INSERT / UPDATE / DELETE)


def _fsync(handle: io.BufferedWriter) -> None:
    handle.flush()
    os.fsync(handle.fileno())


@dataclass(frozen=True)
class _ScannedRecord:
    offset: int
    lsn: int
    record_type: str
    data: Any


@dataclass(frozen=True)
class _LogScan:
    """Result of parsing a log file: valid records plus damage bookkeeping."""

    records: Tuple[_ScannedRecord, ...]
    #: File offsets of records whose CRC did not match (skipped).
    corrupt_offsets: Tuple[int, ...]
    #: Offset where a torn tail begins, or ``None`` if the file ends cleanly.
    torn_tail_offset: Optional[int]
    #: Total file size in bytes.
    file_bytes: int

    @property
    def valid_end(self) -> int:
        """End of the parseable region (start of the torn tail, if any)."""
        if self.torn_tail_offset is not None:
            return self.torn_tail_offset
        return self.file_bytes

    @property
    def torn_tail_bytes(self) -> int:
        return self.file_bytes - self.valid_end

    @property
    def max_lsn(self) -> int:
        if not self.records:
            return 0
        return max(record.lsn for record in self.records)


def _scan_log(path: str) -> _LogScan:
    with open(path, "rb") as handle:
        data = handle.read()
    if not data.startswith(MAGIC):
        if MAGIC.startswith(data):
            # Torn checkpoint reset: the crash hit between ``truncate(0)``
            # and the magic landing on disk, so the file is empty (or a
            # strict prefix of the magic).  Everything up to the snapshot
            # already lives in the side-car; treat the whole file as a torn
            # tail with zero records rather than rejecting it.
            return _LogScan(
                records=(),
                corrupt_offsets=(),
                torn_tail_offset=0,
                file_bytes=len(data),
            )
        raise WalError(f"{path!r} is not a WAL file (bad magic)")
    records: List[_ScannedRecord] = []
    corrupt: List[int] = []
    torn: Optional[int] = None
    offset = len(MAGIC)
    while offset < len(data):
        if offset + _HEADER.size > len(data):
            torn = offset  # incomplete header
            break
        length, crc = _HEADER.unpack_from(data, offset)
        body_start = offset + _HEADER.size
        if body_start + length > len(data):
            torn = offset  # incomplete payload
            break
        payload = data[body_start:body_start + length]
        if zlib.crc32(payload) != crc:
            corrupt.append(offset)
            offset = body_start + length
            continue
        lsn, record_type, record_data = pickle.loads(payload)
        records.append(_ScannedRecord(offset, lsn, record_type, record_data))
        offset = body_start + length
    return _LogScan(
        records=tuple(records),
        corrupt_offsets=tuple(corrupt),
        torn_tail_offset=torn,
        file_bytes=len(data),
    )


class WriteAheadLog:
    """Length-prefixed, CRC-checksummed redo log with buffered appends.

    Opening a path that already holds a log resumes it: the tail is scanned,
    any torn suffix is truncated away, and new appends continue after the
    highest LSN on file (or after the side-car snapshot's LSN, whichever is
    larger).
    """

    def __init__(
        self,
        path: str,
        sync_mode: str = "commit",
        batch_size: int = 32,
    ) -> None:
        if sync_mode not in SYNC_MODES:
            raise WalError(
                f"unknown sync mode {sync_mode!r}; expected one of {SYNC_MODES}"
            )
        if batch_size < 1:
            raise WalError("batch_size must be >= 1")
        self.path = path
        self.snapshot_path = path + ".snapshot"
        self.sync_mode = sync_mode
        self.batch_size = batch_size
        self._buffer = bytearray()
        self._buffered_records = 0
        self._closed = False
        self._lsn = 0

        if os.path.exists(path) and os.path.getsize(path) > 0:
            scan = _scan_log(path)
            self._lsn = scan.max_lsn
            if scan.valid_end < len(MAGIC):
                # Torn checkpoint reset left the file without a complete
                # magic; rewrite it from scratch so appends land behind a
                # valid header again.
                self._handle = open(path, "wb")
                self._handle.write(MAGIC)
                _fsync(self._handle)
            else:
                self._handle = open(path, "r+b")
                if scan.torn_tail_bytes:
                    # A previous process died mid-flush; cut the torn tail
                    # so the next record starts at a clean boundary.
                    self._handle.truncate(scan.valid_end)
                    _fsync(self._handle)
                self._handle.seek(scan.valid_end)
        else:
            self._handle = open(path, "wb")
            self._handle.write(MAGIC)
            _fsync(self._handle)
        if os.path.exists(self.snapshot_path):
            try:
                snapshot_lsn = _read_snapshot(self.snapshot_path)[0]
            except SnapshotCorruptError:
                # A corrupt side-car must not block re-opening the log: LSNs
                # resume from the log's own maximum, and recovery reports the
                # damage (``RecoveryReport.snapshot_corrupt``) when asked.
                pass
            else:
                self._lsn = max(self._lsn, snapshot_lsn)

    # -- appending ---------------------------------------------------------------

    @property
    def last_lsn(self) -> int:
        return self._lsn

    def append(self, record_type: str, data: Any) -> int:
        """Append one record, honouring the sync mode; returns its LSN."""
        if self._closed:
            raise WalError("write-ahead log is closed")
        faults.fault_point("wal.append.before")
        self._lsn += 1
        payload = pickle.dumps(
            (self._lsn, record_type, data), protocol=pickle.HIGHEST_PROTOCOL
        )
        self._buffer += _HEADER.pack(len(payload), zlib.crc32(payload))
        self._buffer += payload
        self._buffered_records += 1
        faults.fault_point("wal.append.buffered")
        if self.sync_mode == "commit" or (
            self.sync_mode == "batch" and self._buffered_records >= self.batch_size
        ):
            self.flush()
        return self._lsn

    def flush(self) -> None:
        """Write and ``fsync`` every buffered record."""
        if not self._buffer:
            return
        faults.fault_point("wal.flush.before_write")
        data = faults.filter_write("wal.flush.after_write", bytes(self._buffer))
        self._handle.write(data)
        self._handle.flush()
        faults.fault_point("wal.flush.after_write")
        os.fsync(self._handle.fileno())
        faults.fault_point("wal.flush.after_fsync")
        self._buffer.clear()
        self._buffered_records = 0

    def close(self) -> None:
        """Flush pending records and close the file.  Idempotent."""
        if self._closed:
            return
        self.flush()
        self._handle.close()
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    # -- typed logging helpers (one per loggable engine operation) -----------------

    def log_create_table(self, schema: TableSchema, store: Store) -> int:
        return self.append(CREATE_TABLE, (schema, store))

    def log_drop_table(self, name: str) -> int:
        return self.append(DROP_TABLE, name)

    def log_move_table(self, name: str, store: Store) -> int:
        return self.append(MOVE_TABLE, (name, store))

    def log_apply_partitioning(
        self, name: str, partitioning: TablePartitioning
    ) -> int:
        return self.append(APPLY_PARTITIONING, (name, partitioning))

    def log_remove_partitioning(self, name: str, store: Store) -> int:
        return self.append(REMOVE_PARTITIONING, (name, store))

    def log_load_rows(
        self, name: str, rows: Sequence[Mapping[str, Any]]
    ) -> int:
        return self.append(LOAD_ROWS, (name, [dict(row) for row in rows]))

    def log_dml(self, query: Query) -> int:
        return self.append(DML, query)

    # -- checkpointing ---------------------------------------------------------------

    def checkpoint(self, database: HybridDatabase) -> int:
        """Snapshot *database* and reset the log; returns the snapshot LSN.

        The snapshot is written to a temp file and atomically renamed over
        the side-car path, so every crash window leaves a recoverable pair:
        before the rename recovery replays the full log; after the rename
        the snapshot's LSN makes any not-yet-truncated records stale, and
        recovery skips them.
        """
        if self._closed:
            raise WalError("write-ahead log is closed")
        faults.fault_point("checkpoint.before_snapshot")
        self.flush()
        snapshot_lsn = self._lsn
        payload = pickle.dumps(
            (snapshot_lsn, database.snapshot_state()),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        tmp_path = self.snapshot_path + ".tmp"
        with open(tmp_path, "wb") as handle:
            handle.write(SNAPSHOT_MAGIC)
            handle.write(_HEADER.pack(len(payload), zlib.crc32(payload)))
            handle.write(payload)
            _fsync(handle)
        faults.fault_point("checkpoint.after_snapshot")
        os.replace(tmp_path, self.snapshot_path)
        faults.fault_point("checkpoint.after_replace")
        # Reset the log: everything up to snapshot_lsn now lives in the
        # snapshot.  A crash before the truncate leaves stale records behind,
        # which recovery's LSN filter skips; a crash between the truncate and
        # the magic landing leaves a file _scan_log treats as an all-torn
        # tail (zero records), so recovery restores the snapshot alone.
        self._handle.seek(0)
        self._handle.truncate(0)
        faults.fault_point("checkpoint.after_truncate")
        self._handle.write(MAGIC)
        _fsync(self._handle)
        faults.fault_point("checkpoint.after_reset")
        return snapshot_lsn


# -- recovery --------------------------------------------------------------------------


@dataclass
class RecoveryReport:
    """What recovery found and did — equality-comparable for idempotency tests."""

    #: Records replayed into the recovered database.
    records_applied: int = 0
    #: Records skipped because their LSN predates the restored snapshot.
    records_stale: int = 0
    #: File offsets of checksum-corrupt records that were skipped.
    corrupt_offsets: Tuple[int, ...] = ()
    #: Offset of the torn tail (``None`` when the log ends at a boundary).
    torn_tail_offset: Optional[int] = None
    #: Bytes of torn tail ignored by replay.
    torn_tail_bytes: int = 0
    #: Whether a checkpoint snapshot was restored before replay.
    snapshot_restored: bool = False
    #: Whether a snapshot file existed but failed its frame validation (bad
    #: magic, truncation, crc mismatch).  Restore is skipped and the whole
    #: log is replayed — ``snapshot_lsn`` stays 0, so the LSN filter marks
    #: nothing stale; full-log replay recovers the committed state whenever
    #: the log still covers the prefix (e.g. a crash before the checkpoint's
    #: truncate).
    snapshot_corrupt: bool = False
    #: LSN recorded in the restored snapshot (0 without a snapshot).
    snapshot_lsn: int = 0
    #: Highest LSN replayed (or the snapshot LSN if nothing was replayed).
    last_lsn: int = 0
    #: Statements that raised during replay, as ``(lsn, error message)``.
    #: Expected for DML whose original execution also failed part-way (the
    #: engine's partial-state contract is deterministic, so replaying the
    #: failure reproduces the exact committed state).
    replay_errors: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when neither the log nor the snapshot carried any damage."""
        return (
            self.torn_tail_offset is None
            and not self.corrupt_offsets
            and not self.snapshot_corrupt
        )


@dataclass(frozen=True)
class RecoveryResult:
    database: HybridDatabase
    report: RecoveryReport


def _read_snapshot(path: str) -> Tuple[int, Any]:
    """Read and validate a framed checkpoint snapshot.

    Every defect — wrong or truncated magic, truncated header or payload,
    crc mismatch, or a payload pickle that fails to load despite a matching
    crc — raises the typed :class:`SnapshotCorruptError`.  Nothing here is
    swallowed into torn-tail handling: a snapshot is atomically renamed
    into place, so *any* damage is corruption, not a torn write.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    if not data.startswith(SNAPSHOT_MAGIC):
        raise SnapshotCorruptError(
            f"{path!r} is not a checkpoint snapshot (bad magic)"
        )
    header_end = len(SNAPSHOT_MAGIC) + _HEADER.size
    if len(data) < header_end:
        raise SnapshotCorruptError(f"{path!r}: truncated snapshot header")
    length, crc = _HEADER.unpack_from(data, len(SNAPSHOT_MAGIC))
    payload = data[header_end:]
    if len(payload) != length:
        raise SnapshotCorruptError(
            f"{path!r}: truncated snapshot payload "
            f"(expected {length} bytes, found {len(payload)})"
        )
    if zlib.crc32(payload) != crc:
        raise SnapshotCorruptError(f"{path!r}: snapshot checksum mismatch")
    try:
        return pickle.loads(payload)
    except Exception as error:
        raise SnapshotCorruptError(
            f"{path!r}: snapshot payload does not unpickle ({error!r})"
        ) from error


def recover(
    path: str, device_config: Optional[DeviceModelConfig] = None
) -> RecoveryResult:
    """Rebuild a :class:`HybridDatabase` from the log (and snapshot) at *path*.

    Purely read-only: the log file is not modified, so recovering the same
    path twice yields identical databases and identical reports.  (Re-opening
    the path with :class:`WriteAheadLog` afterwards truncates any torn tail
    before appending resumes.)
    """
    report = RecoveryReport()
    database = HybridDatabase(device_config)

    snapshot_path = path + ".snapshot"
    if os.path.exists(snapshot_path):
        try:
            snapshot_lsn, state = _read_snapshot(snapshot_path)
        except SnapshotCorruptError:
            # Fall back to full-log replay: with snapshot_lsn at 0 the LSN
            # filter below marks nothing stale, so every surviving record
            # replays.  That recovers the committed state whenever the log
            # still covers the snapshot's prefix (e.g. the crash windows
            # before the checkpoint truncate); the report flags the damage
            # either way.
            report.snapshot_corrupt = True
        else:
            database.restore_state(state)
            report.snapshot_restored = True
            report.snapshot_lsn = snapshot_lsn
            report.last_lsn = snapshot_lsn

    if os.path.exists(path):
        scan = _scan_log(path)
        report.corrupt_offsets = scan.corrupt_offsets
        report.torn_tail_offset = scan.torn_tail_offset
        report.torn_tail_bytes = scan.torn_tail_bytes
        for record in scan.records:
            if record.lsn <= report.snapshot_lsn:
                report.records_stale += 1
                continue
            _apply_record(database, record, report)
            report.records_applied += 1
            report.last_lsn = record.lsn
    return RecoveryResult(database=database, report=report)


def _apply_record(
    database: HybridDatabase, record: _ScannedRecord, report: RecoveryReport
) -> None:
    kind, data = record.record_type, record.data
    if kind == CREATE_TABLE:
        schema, store = data
        database.create_table(schema, store)
    elif kind == DROP_TABLE:
        database.drop_table(data)
    elif kind == MOVE_TABLE:
        name, store = data
        database.move_table(name, store)
    elif kind == APPLY_PARTITIONING:
        name, partitioning = data
        database.apply_partitioning(name, partitioning)
    elif kind == REMOVE_PARTITIONING:
        name, store = data
        database.remove_partitioning(name, store)
    elif kind == LOAD_ROWS:
        name, rows = data
        database.load_rows(name, rows)
    elif kind == DML:
        try:
            database.execute(data)
        except Exception as error:  # deterministic partial-state replay
            report.replay_errors.append((record.lsn, str(error)))
    else:
        raise WalError(f"unknown WAL record type {kind!r}")
