"""Materialized views: precomputed aggregation state with incremental refresh.

A :class:`MaterializedView` materializes the result of one aggregation query
(no joins, no placeholders) as **mergeable partial states** — the same
``partition_partial_rows`` / ``merge_partition_partials`` contract the
partition-partial aggregation tier uses — kept *per refresh unit* of the base
table (the whole table for an unpartitioned :class:`StoredTable`; the main
portion and the hot partition of a :class:`PartitionedTable`), each stamped
with the unit's zone-epoch token.

Maintenance is **off the DML path**: writes only bump zone epochs, exactly as
they already do for scan decisions and aggregate strategies.  A stale view is
detected by comparing the stored unit tokens against the current epochs, and
:meth:`MaterializedView.refresh` recomputes *only the units whose token
changed*, merging their fresh partials with the unchanged units' cached
states.  The associative merge is only used when it provably reproduces the
reference (no NaN among group keys or MIN/MAX inputs — the same hazard test
as the partition-partial tier); otherwise every refresh recomputes from
scratch, which is always correct.

The ``matview_disabled()`` toggle keeps the recompute-per-query reference
reachable: with views off, the session never serves from a view and every
query charges its :class:`~repro.engine.timing.CostBreakdown` bit-identically
to a database without views (pinned by the differential fuzzer).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.engine.deadline import deadline_check
from repro.engine.executor.access import SimpleAccessPath, empty_batch
from repro.engine.executor.agg_pushdown import _partial_merge_safe
from repro.engine.executor.aggregates import (
    GroupedAggregation,
    merge_partition_partials,
    partition_partial_rows,
)
from repro.engine.executor.operators import aggregation_scan_columns, _assemble_inputs
from repro.engine.executor.rewrite import (
    HOT_PARTITION,
    MAIN_PARTITION,
    PartitionedAccessPath,
    access_path_for,
)
from repro.engine.partitioning import PartitionedTable
from repro.engine.timing import CostAccountant, CostBreakdown, DeviceModel
from repro.errors import CatalogError
from repro.testing.faults import fault_point
from repro.query.ast import AggregationQuery
from repro.query.fingerprint import fingerprint_tokens, query_fingerprint

__all__ = [
    "MaterializedView",
    "RefreshResult",
    "matview_disabled",
    "matview_enabled",
    "view_serve_bytes",
]

#: Refresh kinds reported by :class:`RefreshResult`.
REFRESH_INITIAL = "initial"
REFRESH_INCREMENTAL = "incremental"
REFRESH_FULL = "full"
REFRESH_NOOP = "noop"

_MATVIEW_ENABLED = True


def matview_enabled() -> bool:
    """Whether the session may answer matching queries from materialized views."""
    return _MATVIEW_ENABLED


@contextmanager
def matview_disabled() -> Iterator[None]:
    """Force every aggregation to execute against the base table.

    The differential fuzzer runs recurring aggregates under this toggle too
    and pins results *and* :class:`~repro.engine.timing.CostBreakdown`
    charges identical to a database without views — views are a wall-clock
    optimisation of the read path, never a semantic change.
    """
    global _MATVIEW_ENABLED
    previous = _MATVIEW_ENABLED
    _MATVIEW_ENABLED = False
    try:
        yield
    finally:
        _MATVIEW_ENABLED = previous


def view_serve_bytes(num_rows: int, query: AggregationQuery) -> int:
    """Bytes a view serve reads: the materialized rows at 8 bytes per cell.

    Shared between the session's serve-time charge and the advisor's what-if
    pricing, so the estimate and the accountant agree by construction.
    """
    width = len(query.group_by) + len(query.aggregates)
    return num_rows * width * 8


@dataclass
class RefreshResult:
    """Outcome of one :meth:`MaterializedView.refresh`."""

    view: str
    kind: str
    units_recomputed: Tuple[str, ...] = ()
    units_reused: Tuple[str, ...] = ()
    cost: CostBreakdown = field(default_factory=CostBreakdown)

    @property
    def incremental(self) -> bool:
        return self.kind == REFRESH_INCREMENTAL

    def describe(self) -> str:
        if self.kind == REFRESH_NOOP:
            return "fresh (no refresh needed)"
        return (
            f"{self.kind} refresh: recomputed "
            f"[{', '.join(self.units_recomputed) or '-'}], reused "
            f"[{', '.join(self.units_reused) or '-'}]"
        )


def _unit_specs(table_object) -> List[Tuple[str, tuple]]:
    """``(label, zone-epoch token)`` of every refresh unit of *table_object*.

    The unit granularity matches the partition-partial aggregation tier: the
    main portion (all its vertical parts under one token — any change
    anywhere in main invalidates it) and the hot partition refresh
    independently, so OLTP traffic landing in hot never forces the historic
    portion to recompute.
    """
    if isinstance(table_object, PartitionedTable):
        units = [
            (MAIN_PARTITION,
             tuple(part.zone_epoch for part in table_object.main_parts)),
        ]
        if table_object.hot is not None:
            units.append((HOT_PARTITION, (table_object.hot.zone_epoch,)))
        return units
    return [(table_object.name, (table_object.zone_epoch,))]


def _collect_unit(table_object, label, columns, predicate, accountant,
                  encode_columns=()):
    """The filtered batch of one refresh unit, charged on *accountant*."""
    if isinstance(table_object, PartitionedTable):
        path = PartitionedAccessPath(table_object)
        if label == MAIN_PARTITION:
            batch, _ = path._collect_from_main(
                columns, predicate, accountant, encode_columns=encode_columns
            )
            return batch
        hot = table_object.hot
        if hot is None or hot.num_rows == 0:
            return empty_batch(columns)
        return SimpleAccessPath(hot, inner=True).collect_batch(
            columns, predicate, accountant
        )
    return SimpleAccessPath(table_object, inner=True).collect_batch(
        columns, predicate, accountant, encode_columns=encode_columns
    )


class MaterializedView:
    """Materialized state of one aggregation query over one base table."""

    def __init__(self, name: str, query: AggregationQuery) -> None:
        if not isinstance(query, AggregationQuery):
            raise CatalogError(
                f"materialized view {name!r} needs an aggregation query, got "
                f"{type(query).__name__}"
            )
        if query.joins:
            raise CatalogError(
                f"materialized view {name!r}: joined aggregations are not "
                "supported"
            )
        if "v:param:" in fingerprint_tokens(query):
            raise CatalogError(
                f"materialized view {name!r}: the defining query must not "
                "contain placeholders"
            )
        self.name = name
        self.query = query
        self.fingerprint = query_fingerprint(query)
        #: Result rows of the last refresh (served as copies by the session).
        self.result_rows: List[Dict[str, Any]] = []
        self._unit_tokens: Dict[str, tuple] = {}
        self._unit_partials: Dict[str, List[Dict[str, Any]]] = {}
        self._materialized = False

    @property
    def table(self) -> str:
        return self.query.table

    @property
    def num_rows(self) -> int:
        return len(self.result_rows)

    def is_fresh(self, table_object) -> bool:
        """Whether the materialized state reflects *table_object*'s epochs."""
        return self._materialized and dict(_unit_specs(table_object)) == self._unit_tokens

    def describe(self) -> str:
        group = f" group by {', '.join(self.query.group_by)}" if self.query.group_by else ""
        specs = ", ".join(
            f"{spec.function.value}({spec.column})" for spec in self.query.aggregates
        )
        return (
            f"{self.name}: {specs} over {self.table}{group} "
            f"({self.num_rows} row(s), view {self.fingerprint})"
        )

    # -- refresh ---------------------------------------------------------------------

    def refresh(self, table_object, device: Optional[DeviceModel] = None) -> RefreshResult:
        """Bring the view up to date with *table_object*; returns what it did.

        Incremental when the associative merge is provably safe: only units
        whose zone-epoch token changed since the last refresh recompute their
        partial states, and the per-unit states merge through the
        partition-partial contract.  Otherwise (NaN hazards, unorderable
        merges) the whole result recomputes from scratch.  Either way the
        returned :class:`~repro.engine.timing.CostBreakdown` charges the
        collects and aggregate updates the refresh actually performed.
        """
        accountant = CostAccountant(device)
        specs = _unit_specs(table_object)
        tokens = dict(specs)
        if self._materialized and tokens == self._unit_tokens:
            return RefreshResult(view=self.name, kind=REFRESH_NOOP,
                                 cost=accountant.breakdown)
        # Crash discipline: the view's served state is the atomically
        # installed (result_rows, _unit_tokens, _materialized) triple at the
        # bottom.  A crash at any declared point below leaves the old triple
        # in place — _unit_partials may hold fresher per-unit states, but
        # they are only ever consumed when _unit_tokens vouches for them, so
        # the next refresh recomputes exactly the stale units.
        fault_point("matview.refresh.before")

        query = self.query
        base_columns, encode_columns = aggregation_scan_columns(
            query, table_object.schema
        )
        group_names = list(query.group_by)
        initial = not self._materialized
        path = access_path_for(table_object)
        safe, _hazard = _partial_merge_safe(path, query)

        if not safe:
            rows = self._recompute_full(
                path, query, base_columns, encode_columns, group_names, accountant
            )
            self._unit_partials = {}
            reused: List[str] = []
            recomputed = [label for label, _ in specs]
        else:
            recomputed, reused = [], []
            partials_in_order: List[List[Dict[str, Any]]] = []
            new_partials: Dict[str, List[Dict[str, Any]]] = {}
            for label, token in specs:
                deadline_check()
                cached = self._unit_partials.get(label)
                if cached is not None and self._unit_tokens.get(label) == token:
                    partials_in_order.append(cached)
                    new_partials[label] = cached
                    reused.append(label)
                    continue
                batch = _collect_unit(
                    table_object, label, base_columns, query.predicate,
                    accountant, encode_columns,
                )
                accountant.charge_aggregate_updates(
                    batch.num_rows * len(query.aggregates)
                )
                if group_names:
                    accountant.charge_group_by_updates(batch.num_rows)
                if batch.num_rows == 0:
                    partial: List[Dict[str, Any]] = []
                else:
                    inputs, keys = _assemble_inputs(query, batch.raw_columns())
                    partial = partition_partial_rows(
                        query.aggregates, group_names, inputs, keys,
                        batch.num_rows,
                    )
                new_partials[label] = partial
                partials_in_order.append(partial)
                recomputed.append(label)
                fault_point("matview.refresh.after_unit")
            try:
                rows = merge_partition_partials(
                    query.aggregates, group_names, partials_in_order
                )
                self._unit_partials = new_partials
            except TypeError:
                # Unorderable partial merge (exotic mixed types across
                # units): recompute from scratch, which is always correct.
                accountant = CostAccountant(device)
                rows = self._recompute_full(
                    path, query, base_columns, encode_columns, group_names,
                    accountant,
                )
                self._unit_partials = {}
                recomputed = [label for label, _ in specs]
                reused = []

        fault_point("matview.refresh.before_install")
        self.result_rows = rows
        self._unit_tokens = tokens
        self._materialized = True
        if initial:
            kind = REFRESH_INITIAL
        elif reused:
            kind = REFRESH_INCREMENTAL
        else:
            kind = REFRESH_FULL
        return RefreshResult(
            view=self.name, kind=kind, units_recomputed=tuple(recomputed),
            units_reused=tuple(reused), cost=accountant.breakdown,
        )

    @staticmethod
    def _recompute_full(path, query, base_columns, encode_columns, group_names,
                        accountant) -> List[Dict[str, Any]]:
        """Reference recompute: collect everything, reduce once."""
        batch = path.collect_batch(
            base_columns, query.predicate, accountant,
            encode_columns=encode_columns,
        )
        accountant.charge_aggregate_updates(batch.num_rows * len(query.aggregates))
        if group_names:
            accountant.charge_group_by_updates(batch.num_rows)
        inputs, keys = _assemble_inputs(query, batch.raw_columns())
        aggregation = GroupedAggregation(
            aggregates=query.aggregates, group_by_names=group_names
        )
        return aggregation.run(inputs, keys, batch.num_rows)
